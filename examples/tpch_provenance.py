"""TPC-H provenance: reproduce the paper's section V workload interactively.

Loads a small TPC-H database, runs a benchmark query normally and with
provenance, and shows the provenance explosion the paper's Fig. 11
reports -- then drills into the provenance of a single result row.

Run:  python examples/tpch_provenance.py [scale_factor]
"""

from __future__ import annotations

import sys
import time

from repro.tpch.dbgen import tpch_database
from repro.tpch.qgen import generate_query


def main() -> None:
    scale_factor = float(sys.argv[1]) if len(sys.argv) > 1 else 0.002
    print(f"Generating TPC-H data at SF {scale_factor} ...")
    db = tpch_database(scale_factor=scale_factor)
    lineitem_count = db.catalog.table("lineitem").row_count()
    print(f"loaded; lineitem has {lineitem_count} rows\n")

    number = 3  # shipping-priority query: 3-way join + aggregation
    normal_sql = generate_query(number, seed=4)
    prov_sql = generate_query(number, seed=4, provenance=True)

    start = time.perf_counter()
    normal = db.execute(normal_sql)
    normal_time = time.perf_counter() - start
    print(f"Q{number} (normal): {len(normal)} rows in {normal_time:.3f}s")
    print(normal.pretty(5))

    start = time.perf_counter()
    provenance = db.execute(prov_sql)
    prov_time = time.perf_counter() - start
    print(
        f"\nQ{number} (PROVENANCE): {len(provenance)} rows "
        f"({len(provenance.columns)} columns) in {prov_time:.3f}s"
    )
    print("provenance attributes:", [c for c in provenance.columns if c.startswith("prov_")])

    if provenance.rows:
        # Drill into the provenance of the top result row: which lineitem /
        # orders / customer tuples produced it?
        first = provenance.rows[0]
        width = len(normal.columns)
        print("\ntop result row:", first[:width])
        witnesses = [row for row in provenance.rows if row[:width] == first[:width]]
        print(f"contributing source combinations: {len(witnesses)}")
        for row in witnesses[:3]:
            print("   ", row[width:])

    factor = prov_time / normal_time if normal_time else float("inf")
    print(
        f"\nexecution overhead factor: {factor:.1f}x "
        f"(paper Fig. 10 band for most queries: 3-30x)"
    )


if __name__ == "__main__":
    main()
