"""Incremental and external provenance (paper sections IV-A.3 / IV-A.4).

Shows the three SQL-PLE mechanisms for controlling provenance scope:

1. storing a provenance computation with ``SELECT ... INTO`` and reusing
   it via ``FROM stored PROVENANCE (attrs)`` (incremental computation),
2. views whose body already computes provenance,
3. ``BASERELATION`` to stop tracing at a subquery boundary.

Run:  python examples/incremental_provenance.py
"""

from __future__ import annotations

import repro


def main() -> None:
    db = repro.connect()
    db.execute("CREATE TABLE items (id integer, price integer)")
    db.execute("INSERT INTO items VALUES (1, 100), (2, 10), (3, 25)")

    # --- 1. store provenance, then compute incrementally on top of it.
    db.execute(
        "SELECT PROVENANCE sum(price) AS total INTO stored_totals FROM items"
    )
    stored = db.execute("SELECT * FROM stored_totals")
    print("stored provenance relation (SELECT INTO):")
    print(stored.pretty(), "\n")

    incremental = db.execute(
        "SELECT PROVENANCE total * 10 AS scaled FROM stored_totals "
        "PROVENANCE (prov_items_id, prov_items_price)"
    )
    print("incremental provenance reusing the stored attributes:")
    print(incremental.pretty(), "\n")

    # --- 2. a view computing provenance (the paper's totalItemPrice).
    db.execute(
        "CREATE VIEW totalitemprice AS "
        "SELECT PROVENANCE sum(price) AS total FROM items"
    )
    via_view = db.execute(
        "SELECT PROVENANCE total * 10 FROM totalitemprice "
        "PROVENANCE (prov_items_id, prov_items_price)"
    )
    print("provenance through the totalItemPrice view:")
    print(via_view.pretty(), "\n")

    # --- 3. BASERELATION: treat the subquery itself as the source.
    limited = db.execute(
        "SELECT PROVENANCE total * 10 FROM "
        "(SELECT sum(price) AS total FROM items) BASERELATION AS sub"
    )
    print("limited scope with BASERELATION (provenance stops at `sub`):")
    print(limited.pretty())


if __name__ == "__main__":
    main()
