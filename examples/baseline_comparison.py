"""Comparing Perm with the two baselines on the same query.

* Cui-Widom lineage tracing returns a *list of relations* -- the paper's
  section III-B explains why that representation cannot be queried
  further with relational algebra.
* A Trio-style system stores lineage eagerly and traces tuple-at-a-time.
* Perm returns one relation whose rows pair results with their
  provenance -- directly queryable.

Run:  python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro.algebra import (
    Aggregate,
    AggSpec,
    Attr,
    BaseRelation,
    BoolAnd,
    Cross,
    Select,
    evaluate,
)
from repro.algebra.expr import attr_equal
from repro.baselines.cui_widom import format_lineage, lineage
from repro.baselines.trio import TrioSystem
from repro.core.algebra_rules import rewrite_algebra
from repro.storage.relation import Relation

import repro


def main() -> None:
    shop = Relation.from_rows(
        ["name", "numempl"], [("Merdies", 3), ("Joba", 14)]
    )
    sales = Relation.from_rows(
        ["sname", "itemid"],
        [("Merdies", 1), ("Merdies", 2), ("Merdies", 2), ("Joba", 3), ("Joba", 3)],
    )
    items = Relation.from_rows(["id", "price"], [(1, 100), (2, 10), (3, 25)])
    db = {"shop": shop, "sales": sales, "items": items}

    qex = Aggregate(
        Select(
            Cross(
                Cross(
                    BaseRelation("shop", ["name", "numempl"]),
                    BaseRelation("sales", ["sname", "itemid"]),
                ),
                BaseRelation("items", ["id", "price"]),
            ),
            BoolAnd((attr_equal("name", "sname"), attr_equal("itemid", "id"))),
        ),
        ["name"],
        [AggSpec("sum", Attr("price"), "total")],
    )

    print("Cui-Widom lineage (list-of-relations representation):")
    for result_tuple, result_lineage in sorted(lineage(qex, db).items()):
        print(f"  {result_tuple}: {format_lineage(qex, result_lineage)}")

    print("\nPerm algebra rewrite (single relation, rules R1-R9):")
    rewritten, _ = rewrite_algebra(qex)
    result = evaluate(rewritten, db)
    print("  columns:", list(result.columns))
    for row in sorted(result.rows()):
        print("  ", row)

    print("\nTrio-style eager lineage (SPJ subset -- a simple selection):")
    sql_db = repro.connect()
    sql_db.execute("CREATE TABLE items (id integer, price integer)")
    sql_db.execute("INSERT INTO items VALUES (1, 100), (2, 10), (3, 25)")
    trio = TrioSystem(sql_db)
    handle = trio.execute("SELECT id, price FROM items WHERE price > 20")
    for row in trio.query_stored_provenance(handle):
        print("  ", row)


if __name__ == "__main__":
    main()
