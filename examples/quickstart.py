"""Quickstart: the paper's running example (Figs. 2 and 4).

Builds the shop/sales/items database, runs the total-profit aggregation
query, and computes its provenance with ``SELECT PROVENANCE`` -- showing
that the rewritten query returns the original result extended with the
contributing tuples from every base relation.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro


def build_example_database() -> repro.PermDatabase:
    db = repro.connect()
    db.execute("CREATE TABLE shop (name text, numempl integer)")
    db.execute("CREATE TABLE sales (sname text, itemid integer)")
    db.execute("CREATE TABLE items (id integer, price integer)")
    db.execute("INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14)")
    db.execute(
        "INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), "
        "('Merdies', 2), ('Joba', 3), ('Joba', 3)"
    )
    db.execute("INSERT INTO items VALUES (1, 100), (2, 10), (3, 25)")
    return db


def main() -> None:
    db = build_example_database()

    query = (
        "SELECT name, sum(price) AS total FROM shop, sales, items "
        "WHERE name = sname AND itemid = id GROUP BY name"
    )
    print("The total profits per shop (paper Fig. 2):\n")
    print(db.execute(query).pretty())

    print("\nThe same query with SELECT PROVENANCE (paper Fig. 4):\n")
    provenance = db.execute(query.replace("SELECT", "SELECT PROVENANCE", 1))
    print(provenance.pretty())

    print(
        "\nEvery result row is extended with the contributing tuples from\n"
        "shop, sales and items; rows are duplicated when several source\n"
        "tuples contributed (influence-contribution semantics).\n"
    )

    # Because q+ is an ordinary relation, provenance can be *queried* with
    # plain SQL -- the paper's q1: items sold by shops with total > 100.
    q1 = (
        "SELECT DISTINCT prov_items_id FROM "
        f"({query.replace('SELECT', 'SELECT PROVENANCE', 1)}) AS prov "
        "WHERE total > 100"
    )
    print("Items contributing to totals over 100 (paper's q1):\n")
    print(db.execute(q1).pretty())


if __name__ == "__main__":
    main()
