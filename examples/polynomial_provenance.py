"""Semiring provenance polynomials on the paper's running example.

Computes ``SELECT PROVENANCE (polynomial)`` over the shop/sales/items
database and specializes the resulting ``N[X]`` polynomials in several
semirings -- bag multiplicities (counting), lineage (boolean) and minimal
derivation cost (tropical) -- all from one query execution.

Run:  python examples/polynomial_provenance.py
"""

from __future__ import annotations

import repro
from repro.semiring import get_semiring


def build_example_database() -> repro.PermDatabase:
    db = repro.connect()
    db.execute("CREATE TABLE shop (name text, numempl integer)")
    db.execute("CREATE TABLE sales (sname text, itemid integer)")
    db.execute("CREATE TABLE items (id integer, price integer)")
    db.execute("INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14)")
    db.execute(
        "INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), "
        "('Merdies', 2), ('Joba', 3), ('Joba', 3)"
    )
    db.execute("INSERT INTO items VALUES (1, 100), (2, 10), (3, 25)")
    return db


def main() -> None:
    db = build_example_database()

    query = (
        "SELECT PROVENANCE (polynomial) name, price FROM shop, sales, items "
        "WHERE name = sname AND itemid = id"
    )
    print("How-provenance of the shop/item pairs (one polynomial per tuple):\n")
    result = db.execute(query)
    for row in result.rows:
        print(f"  {row[0]:8} {row[1]:>4}   {row[2]}")

    print("\nThe same polynomials, specialized per semiring:\n")
    counting = result.evaluate_provenance("counting")
    boolean = result.evaluate_provenance("boolean")
    # Tropical: pretend each base tuple has a retrieval cost of 1.0; the
    # evaluation yields the cheapest derivation of each result tuple.
    cost = result.evaluate_provenance(
        "tropical", lambda variable: 1.0
    )
    print(f"  {'tuple':14} {'count':>5} {'exists':>7} {'min cost':>9}")
    for row, n, b, c in zip(result.rows, counting, boolean, cost):
        print(f"  {str(row[:2]):14} {n:>5} {str(b):>7} {c:>9}")

    print(
        "\nThe counting column equals the bag multiplicity the plain query\n"
        "would produce; the boolean column is the tuple's lineage.\n"
    )

    print("The rewritten query is ordinary SQL over the same schema:\n")
    print(db.rewritten_sql(query))

    print("\nAggregation sums the polynomials of each group's members:\n")
    agg = db.execute(
        "SELECT PROVENANCE (polynomial) sname, count(*) AS c "
        "FROM sales GROUP BY sname"
    )
    counting_sr = get_semiring("counting")
    for row in agg.rows:
        check = row[2].evaluate(semiring=counting_sr)
        print(f"  {row[0]:8} count={row[1]}  {row[2]}   (evaluates to {check})")


if __name__ == "__main__":
    main()
