"""Error taxonomy: every pipeline stage fails loudly and specifically."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    AnalyzeError,
    CatalogError,
    ExecutionError,
    LexError,
    ParseError,
    PermError,
    RewriteError,
    TypeMismatchError,
)


@pytest.fixture
def db(example_db):
    return example_db


def test_all_errors_are_permerrors():
    for cls in (LexError, ParseError, AnalyzeError, CatalogError,
                RewriteError, ExecutionError, TypeMismatchError):
        assert issubclass(cls, PermError)
    assert issubclass(TypeMismatchError, AnalyzeError)


def test_lex_error(db):
    with pytest.raises(LexError):
        db.execute("SELECT @ FROM shop")


def test_parse_error_with_position(db):
    with pytest.raises(ParseError) as excinfo:
        db.execute("SELECT FROM shop")
    assert excinfo.value.position > 0


def test_analyze_error_unknown_table(db):
    with pytest.raises(AnalyzeError, match="does not exist"):
        db.execute("SELECT 1 FROM ghosts")


def test_analyze_error_unknown_column(db):
    with pytest.raises(AnalyzeError, match="does not exist"):
        db.execute("SELECT ghost FROM shop")


def test_type_mismatch_error(db):
    with pytest.raises(TypeMismatchError):
        db.execute("SELECT name + 1 FROM shop")


def test_catalog_error_duplicate_table(db):
    with pytest.raises(CatalogError, match="already exists"):
        db.execute("CREATE TABLE shop (x integer)")


def test_rewrite_error_correlated(db):
    with pytest.raises(RewriteError, match="correlated"):
        db.execute(
            "SELECT PROVENANCE name FROM shop WHERE EXISTS "
            "(SELECT 1 FROM sales WHERE sname = name)"
        )


def test_rewrite_error_does_not_poison_database(db):
    """A failed rewrite must leave the database fully usable."""
    with pytest.raises(RewriteError):
        db.execute(
            "SELECT PROVENANCE name FROM shop WHERE EXISTS "
            "(SELECT 1 FROM sales WHERE sname = name)"
        )
    assert len(db.execute("SELECT name FROM shop")) == 2
    assert len(db.execute("SELECT PROVENANCE name FROM shop")) == 2


def test_execution_error_division_by_zero(db):
    with pytest.raises(ExecutionError, match="division by zero"):
        db.execute("SELECT numempl / 0 FROM shop")


def test_execution_error_mid_stream_leaves_catalog_intact(db):
    with pytest.raises(ExecutionError):
        db.execute("SELECT 1 / (numempl - 3) FROM shop")
    assert db.execute("SELECT count(*) FROM shop").scalar() == 2


def test_insert_into_missing_table(db):
    with pytest.raises(CatalogError):
        db.execute("INSERT INTO ghosts VALUES (1)")


def test_provenance_annotation_bad_attribute(db):
    with pytest.raises(RewriteError, match="not found"):
        db.execute("SELECT PROVENANCE name FROM shop PROVENANCE (nope)")


def test_ambiguous_column_message_names_the_column(db):
    db.execute("CREATE TABLE shop2 (name text)")
    with pytest.raises(AnalyzeError, match="name"):
        db.execute("SELECT name FROM shop, shop2")


def test_union_width_mismatch_message(db):
    with pytest.raises(AnalyzeError, match="same number of columns"):
        db.execute("SELECT name, numempl FROM shop UNION SELECT name FROM shop")


def test_scalar_sublink_cardinality_error_is_runtime(db):
    # Passes analysis and planning; fails only during execution.
    prepared = db.prepare("SELECT (SELECT name FROM shop)")
    with pytest.raises(ExecutionError, match="more than one row"):
        prepared.run()


def test_aggregate_in_where_rejected(db):
    with pytest.raises(AnalyzeError, match="not allowed"):
        db.execute("SELECT name FROM shop WHERE sum(numempl) > 1")


def test_group_by_violation_message(db):
    with pytest.raises(AnalyzeError, match="GROUP BY"):
        db.execute("SELECT name, numempl, count(*) FROM shop GROUP BY name")


def test_empty_sql_is_noop(db):
    assert db.execute("").command == "EMPTY"


def test_unknown_function_named_in_error(db):
    with pytest.raises(AnalyzeError, match="frobnicate"):
        db.execute("SELECT frobnicate(name) FROM shop")