"""Expression tree utilities: walk, transform, rebuild, var mapping."""

from __future__ import annotations

import pytest

from repro.analyzer import expressions as ex
from repro.datatypes import SQLType

INT = SQLType.INTEGER
BOOL = SQLType.BOOLEAN


def var(no: int, att: int, name: str = "") -> ex.Var:
    return ex.Var(varno=no, varattno=att, type=INT, name=name or f"v{no}_{att}")


def test_walk_yields_all_nodes():
    expr = ex.OpExpr("+", (var(0, 0), ex.Const(1, INT)), INT)
    nodes = list(ex.walk(expr))
    assert len(nodes) == 3
    assert expr in nodes


def test_walk_does_not_enter_sublink_subquery():
    from repro.analyzer.query_tree import Query

    sublink = ex.SubLink(
        kind=ex.SubLinkKind.ANY,
        subquery=Query(),
        testexpr=var(0, 0),
        operator="=",
        type=BOOL,
    )
    nodes = list(ex.walk(sublink))
    # The sublink itself and its testexpr, nothing from inside the Query.
    assert len(nodes) == 2


def test_contains_aggref():
    agg = ex.Aggref("sum", var(0, 0), INT)
    wrapped = ex.OpExpr("+", (agg, ex.Const(1, INT)), INT)
    assert ex.contains_aggref(wrapped)
    assert not ex.contains_aggref(var(0, 0))


def test_collect_vars_filters_levels():
    inner = var(0, 0)
    outer = ex.Var(varno=1, varattno=2, type=INT, name="o", levelsup=1)
    expr = ex.OpExpr("+", (inner, outer), INT)
    assert ex.collect_vars(expr) == [inner]
    assert ex.collect_vars(expr, levelsup=1) == [outer]


def test_transform_bottom_up():
    expr = ex.OpExpr("+", (var(0, 0), var(0, 1)), INT)

    def bump(node: ex.Expr):
        if isinstance(node, ex.Var):
            return ex.Var(node.varno, node.varattno + 10, node.type, node.name)
        return None

    result = ex.transform(expr, bump)
    assert {v.varattno for v in ex.collect_vars(result)} == {10, 11}
    # Original untouched (immutability).
    assert {v.varattno for v in ex.collect_vars(expr)} == {0, 1}


def test_map_vars_only_touches_level0():
    outer = ex.Var(varno=0, varattno=0, type=INT, name="o", levelsup=1)
    expr = ex.BoolOpExpr("and", (
        ex.OpExpr("=", (var(0, 0), outer), BOOL),
        ex.NullTest(var(0, 1), negated=False),
    ))
    mapped = ex.map_vars(expr, lambda v: ex.Const(99, INT))
    consts = [n for n in ex.walk(mapped) if isinstance(n, ex.Const)]
    assert len(consts) == 2
    assert any(isinstance(n, ex.Var) and n.levelsup == 1 for n in ex.walk(mapped))


@pytest.mark.parametrize(
    "node",
    [
        ex.OpExpr("*", (var(0, 0), var(0, 1)), INT),
        ex.BoolOpExpr("or", (ex.Const(True, BOOL), ex.Const(False, BOOL))),
        ex.FuncExpr("abs", (var(0, 0),), INT),
        ex.Aggref("sum", var(0, 0), INT),
        ex.CaseExpr(((ex.Const(True, BOOL), var(0, 0)),), var(0, 1), INT),
        ex.NullTest(var(0, 0), negated=True),
        ex.LikeTest(var(0, 0), ex.Const("x%", SQLType.TEXT), negated=False),
        ex.InList(var(0, 0), (ex.Const(1, INT), ex.Const(2, INT)), negated=True),
    ],
)
def test_rebuild_with_children_preserves_structure(node):
    children = list(node.children())
    rebuilt = ex.rebuild_with_children(node, children)
    assert type(rebuilt) is type(node)
    assert rebuilt.children() == node.children()
    assert rebuilt == node or isinstance(node, ex.SubLink)


def test_rebuild_case_pairs_round_trip():
    case = ex.CaseExpr(
        whens=(
            (ex.Const(True, BOOL), ex.Const(1, INT)),
            (ex.Const(False, BOOL), ex.Const(2, INT)),
        ),
        default=ex.Const(3, INT),
        type=INT,
    )
    rebuilt = ex.rebuild_with_children(case, list(case.children()))
    assert rebuilt == case


def test_rebuild_case_without_default():
    case = ex.CaseExpr(
        whens=((ex.Const(True, BOOL), ex.Const(1, INT)),), default=None, type=INT
    )
    rebuilt = ex.rebuild_with_children(case, list(case.children()))
    assert rebuilt == case
    assert rebuilt.default is None


def test_frozen_expressions_are_hashable_and_equal():
    a = ex.OpExpr("+", (var(0, 0), ex.Const(1, INT)), INT)
    b = ex.OpExpr("+", (var(0, 0), ex.Const(1, INT)), INT)
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


def test_str_rendering_smoke():
    expr = ex.BoolOpExpr(
        "and",
        (
            ex.OpExpr("=", (var(0, 0, "a"), ex.Const(1, INT)), BOOL),
            ex.NullTest(var(0, 1, "b"), negated=True),
        ),
    )
    text = str(expr)
    assert "AND" in text and "IS NOT NULL" in text
