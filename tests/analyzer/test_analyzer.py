"""Analyzer unit tests: resolution, typing, grouping, set ops, correlation."""

from __future__ import annotations

import pytest

import repro
from repro.analyzer.analyzer import Analyzer, query_references_outer
from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import QueryNodeClass, RTEKind
from repro.datatypes import SQLType
from repro.errors import AnalyzeError, TypeMismatchError
from repro.sql.parser import parse_statement


@pytest.fixture
def db():
    database = repro.connect()
    database.execute("CREATE TABLE t (a integer, b text, c float)")
    database.execute("CREATE TABLE s (a integer, d text)")
    return database


def analyze(db, sql):
    return Analyzer(db.catalog).analyze(parse_statement(sql))


# -- name resolution -------------------------------------------------------------


def test_unqualified_resolution(db):
    query = analyze(db, "SELECT b FROM t")
    var = query.target_list[0].expr
    assert isinstance(var, ex.Var)
    assert (var.varno, var.varattno) == (0, 1)
    assert var.type is SQLType.TEXT


def test_qualified_resolution(db):
    query = analyze(db, "SELECT t.a FROM t, s")
    var = query.target_list[0].expr
    assert (var.varno, var.varattno) == (0, 0)


def test_ambiguous_column(db):
    with pytest.raises(AnalyzeError, match="ambiguous"):
        analyze(db, "SELECT a FROM t, s")


def test_unknown_column(db):
    with pytest.raises(AnalyzeError, match="does not exist"):
        analyze(db, "SELECT zzz FROM t")


def test_unknown_relation(db):
    with pytest.raises(AnalyzeError, match="does not exist"):
        analyze(db, "SELECT 1 FROM missing")


def test_alias_hides_table_name(db):
    query = analyze(db, "SELECT x.a FROM t AS x")
    assert query.range_table[0].alias == "x"
    with pytest.raises(AnalyzeError):
        analyze(db, "SELECT t.a FROM t AS x")


def test_duplicate_alias_rejected(db):
    with pytest.raises(AnalyzeError, match="more than once"):
        analyze(db, "SELECT 1 FROM t, t")


def test_self_join_with_aliases(db):
    query = analyze(db, "SELECT x.a, y.a FROM t AS x, t AS y")
    vars_ = [t.expr for t in query.target_list]
    assert vars_[0].varno == 0 and vars_[1].varno == 1


def test_column_aliases_on_range_var(db):
    query = analyze(db, "SELECT p, q FROM t AS x (p, q)")
    assert query.output_columns() == ["p", "q"]


def test_too_many_column_aliases(db):
    with pytest.raises(AnalyzeError):
        analyze(db, "SELECT 1 FROM t AS x (p, q, r, s)")


# -- star expansion ---------------------------------------------------------------


def test_star_expansion(db):
    query = analyze(db, "SELECT * FROM t, s")
    assert query.output_columns() == ["a", "b", "c", "a", "d"]


def test_qualified_star(db):
    query = analyze(db, "SELECT s.* FROM t, s")
    assert query.output_columns() == ["a", "d"]


def test_star_without_from(db):
    with pytest.raises(AnalyzeError):
        analyze(db, "SELECT *")


# -- typing --------------------------------------------------------------------------


def test_arithmetic_typing(db):
    query = analyze(db, "SELECT a + 1, a + c, a / 2 FROM t")
    types = [t.expr.type for t in query.target_list]
    assert types == [SQLType.INTEGER, SQLType.FLOAT, SQLType.INTEGER]


def test_comparison_requires_compatible_types(db):
    with pytest.raises(TypeMismatchError):
        analyze(db, "SELECT 1 FROM t WHERE a = b")


def test_where_must_be_boolean(db):
    with pytest.raises(TypeMismatchError):
        analyze(db, "SELECT 1 FROM t WHERE a + 1")


def test_date_arithmetic_typing(db):
    query = analyze(
        db,
        "SELECT DATE '1995-01-01' + INTERVAL '1' MONTH, "
        "DATE '1995-02-01' - DATE '1995-01-01'",
    )
    assert query.target_list[0].expr.type is SQLType.DATE
    assert query.target_list[1].expr.type is SQLType.INTEGER


def test_case_merges_result_types(db):
    query = analyze(db, "SELECT CASE WHEN a > 0 THEN 1 ELSE 2.5 END FROM t")
    assert query.target_list[0].expr.type is SQLType.FLOAT


def test_case_incompatible_results(db):
    with pytest.raises(TypeMismatchError):
        analyze(db, "SELECT CASE WHEN a > 0 THEN 1 ELSE 'x' END FROM t")


def test_unknown_function(db):
    with pytest.raises(AnalyzeError, match="unknown function"):
        analyze(db, "SELECT frobnicate(a) FROM t")


def test_aggregate_typing(db):
    query = analyze(db, "SELECT sum(a), avg(a), count(*), min(b) FROM t")
    types = [t.expr.type for t in query.target_list]
    assert types == [SQLType.INTEGER, SQLType.FLOAT, SQLType.INTEGER, SQLType.TEXT]


def test_sum_requires_numeric(db):
    with pytest.raises(TypeMismatchError):
        analyze(db, "SELECT sum(b) FROM t")


# -- normalization ----------------------------------------------------------------------


def test_between_normalized_to_and(db):
    query = analyze(db, "SELECT 1 FROM t WHERE a BETWEEN 1 AND 5")
    quals = query.jointree.quals
    assert isinstance(quals, ex.BoolOpExpr) and quals.op == "and"


def test_in_list_normalized_to_or(db):
    query = analyze(db, "SELECT 1 FROM t WHERE a IN (1, 2)")
    quals = query.jointree.quals
    assert isinstance(quals, ex.BoolOpExpr) and quals.op == "or"


def test_not_in_list_normalized_to_and_of_ne(db):
    query = analyze(db, "SELECT 1 FROM t WHERE a NOT IN (1, 2)")
    quals = query.jointree.quals
    assert quals.op == "and"
    assert all(arg.op == "<>" for arg in quals.args)


def test_simple_case_normalized_to_searched(db):
    query = analyze(db, "SELECT CASE a WHEN 1 THEN 'x' END FROM t")
    case = query.target_list[0].expr
    assert isinstance(case, ex.CaseExpr)
    assert isinstance(case.whens[0][0], ex.OpExpr)


# -- aggregation validation ----------------------------------------------------------------


def test_bare_column_with_aggregate_rejected(db):
    with pytest.raises(AnalyzeError, match="GROUP BY"):
        analyze(db, "SELECT a, sum(c) FROM t")


def test_grouped_column_allowed(db):
    query = analyze(db, "SELECT a, sum(c) FROM t GROUP BY a")
    assert query.node_class() is QueryNodeClass.ASPJ


def test_group_by_expression_match(db):
    query = analyze(db, "SELECT a + 1, sum(c) FROM t GROUP BY a + 1")
    assert len(query.group_clause) == 1


def test_group_by_ordinal(db):
    query = analyze(db, "SELECT a, sum(c) FROM t GROUP BY 1")
    assert query.group_clause[0] == query.target_list[0].expr


def test_group_by_output_alias(db):
    query = analyze(db, "SELECT a AS grp, sum(c) FROM t GROUP BY grp")
    assert len(query.group_clause) == 1


def test_aggregates_not_allowed_in_where(db):
    with pytest.raises(AnalyzeError):
        analyze(db, "SELECT 1 FROM t WHERE sum(a) > 1")


def test_nested_aggregates_rejected(db):
    with pytest.raises(AnalyzeError, match="nested|not allowed"):
        analyze(db, "SELECT sum(count(a)) FROM t")


def test_having_without_group_makes_aspj(db):
    query = analyze(db, "SELECT count(*) FROM t HAVING count(*) > 1")
    assert query.node_class() is QueryNodeClass.ASPJ


def test_having_is_boolean(db):
    with pytest.raises(TypeMismatchError):
        analyze(db, "SELECT count(*) FROM t HAVING sum(a)")


# -- ORDER BY resolution ------------------------------------------------------------------


def test_order_by_output_name(db):
    query = analyze(db, "SELECT a AS x FROM t ORDER BY x")
    assert query.sort_clause[0].tlist_index == 0


def test_order_by_ordinal(db):
    query = analyze(db, "SELECT a, b FROM t ORDER BY 2")
    assert query.sort_clause[0].tlist_index == 1


def test_order_by_ordinal_out_of_range(db):
    with pytest.raises(AnalyzeError, match="out of range"):
        analyze(db, "SELECT a FROM t ORDER BY 3")


def test_order_by_expression_adds_junk_entry(db):
    query = analyze(db, "SELECT a FROM t ORDER BY c + 1")
    assert query.target_list[-1].resjunk is True
    assert query.output_columns() == ["a"]


def test_order_by_existing_expression_reused(db):
    query = analyze(db, "SELECT a, c + 1 AS x FROM t ORDER BY c + 1")
    assert len(query.target_list) == 2
    assert query.sort_clause[0].tlist_index == 1


def test_limit_must_be_constant(db):
    with pytest.raises(AnalyzeError):
        analyze(db, "SELECT a FROM t LIMIT a")


# -- set operations ---------------------------------------------------------------------------


def test_setop_query_structure(db):
    query = analyze(db, "SELECT a FROM t UNION SELECT a FROM s")
    assert query.node_class() is QueryNodeClass.SETOP
    assert len(query.range_table) == 2
    assert all(rte.kind is RTEKind.SUBQUERY for rte in query.range_table)


def test_setop_width_mismatch(db):
    with pytest.raises(AnalyzeError, match="same number of columns"):
        analyze(db, "SELECT a, b FROM t UNION SELECT a FROM s")


def test_setop_type_mismatch(db):
    with pytest.raises(TypeMismatchError):
        analyze(db, "SELECT a FROM t UNION SELECT b FROM t")


def test_setop_output_names_from_left(db):
    query = analyze(db, "SELECT a AS left_name FROM t UNION SELECT a FROM s")
    assert query.output_columns() == ["left_name"]


def test_setop_order_by_restricted_to_outputs(db):
    with pytest.raises(AnalyzeError):
        analyze(db, "SELECT a FROM t UNION SELECT a FROM s ORDER BY a + 1")


def test_nested_setops_flatten_into_one_node(db):
    query = analyze(
        db, "SELECT a FROM t UNION SELECT a FROM s UNION SELECT a FROM t AS t2"
    )
    assert len(query.range_table) == 3


# -- subqueries and correlation -------------------------------------------------------------------


def test_from_subquery(db):
    query = analyze(db, "SELECT x FROM (SELECT a AS x FROM t) AS sub")
    assert query.range_table[0].kind is RTEKind.SUBQUERY


def test_uncorrelated_sublink(db):
    query = analyze(db, "SELECT 1 FROM t WHERE a IN (SELECT a FROM s)")
    sublink = query.jointree.quals
    assert isinstance(sublink, ex.SubLink)
    assert sublink.correlated is False


def test_correlated_sublink_detected(db):
    query = analyze(db, "SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.a = t.a)")
    sublink = query.jointree.quals
    assert sublink.correlated is True


def test_transitively_correlated_sublink(db):
    # The middle sublink contains an inner sublink referencing the outermost
    # query: the middle one must be flagged correlated too.
    query = analyze(
        db,
        "SELECT 1 FROM t WHERE EXISTS ("
        "  SELECT 1 FROM s WHERE EXISTS ("
        "    SELECT 1 FROM t AS t2 WHERE t2.a = t.a))",
    )
    outer_sublink = query.jointree.quals
    assert outer_sublink.correlated is True


def test_query_references_outer_helper(db):
    query = analyze(db, "SELECT 1 FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.a = t.a)")
    assert query_references_outer(query.jointree.quals.subquery) is True
    assert query_references_outer(query) is False


def test_scalar_sublink_typed_from_output(db):
    query = analyze(db, "SELECT 1 FROM t WHERE c > (SELECT avg(c) FROM t AS t2)")
    sublink = query.jointree.quals.args[1]
    assert isinstance(sublink, ex.SubLink)
    assert sublink.type is SQLType.FLOAT


def test_sublink_requires_single_column(db):
    with pytest.raises(AnalyzeError, match="exactly one column"):
        analyze(db, "SELECT 1 FROM t WHERE a IN (SELECT a, d FROM s)")


def test_from_subqueries_cannot_be_correlated(db):
    with pytest.raises(AnalyzeError):
        analyze(db, "SELECT 1 FROM t, (SELECT t.a AS x FROM s) AS sub")


# -- joins -------------------------------------------------------------------------------------------


def test_join_using_builds_equality(db):
    query = analyze(db, "SELECT 1 FROM t JOIN s USING (a)")
    join = query.jointree.items[0]
    assert join.quals.op == "="


def test_natural_join_finds_common_columns(db):
    query = analyze(db, "SELECT 1 FROM t NATURAL JOIN s")
    assert query.jointree.items[0].quals is not None


def test_natural_join_without_common_columns(db):
    db.execute("CREATE TABLE u (z integer)")
    with pytest.raises(AnalyzeError, match="no common columns"):
        analyze(db, "SELECT 1 FROM t NATURAL JOIN u")


def test_view_unfolded_to_subquery(db):
    db.execute("CREATE VIEW v AS SELECT a, b FROM t")
    query = analyze(db, "SELECT a FROM v")
    rte = query.range_table[0]
    assert rte.kind is RTEKind.SUBQUERY
    assert rte.column_names == ["a", "b"]
