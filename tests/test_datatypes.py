"""Value-domain unit tests: types, intervals, date arithmetic, coercion."""

from __future__ import annotations

import datetime

import pytest

from repro.datatypes import (
    Interval,
    SQLType,
    add_months,
    coerce_types,
    date_add,
    format_value,
    is_distinct,
    parse_date,
    sort_key,
    sql_eq,
    type_from_name,
    type_of_value,
)


# -- type names -------------------------------------------------------------


@pytest.mark.parametrize(
    "name,expected",
    [
        ("integer", SQLType.INTEGER),
        ("INT", SQLType.INTEGER),
        ("bigint", SQLType.INTEGER),
        ("decimal(15,2)", SQLType.FLOAT),
        ("varchar(25)", SQLType.TEXT),
        ("character varying(44)", SQLType.TEXT),
        ("double precision", SQLType.FLOAT),
        ("date", SQLType.DATE),
        ("boolean", SQLType.BOOLEAN),
    ],
)
def test_type_from_name(name, expected):
    assert type_from_name(name) is expected


def test_type_from_name_unknown():
    with pytest.raises(ValueError):
        type_from_name("geometry")


def test_type_of_value():
    assert type_of_value(None) is SQLType.NULL
    assert type_of_value(True) is SQLType.BOOLEAN  # bool before int
    assert type_of_value(3) is SQLType.INTEGER
    assert type_of_value(3.5) is SQLType.FLOAT
    assert type_of_value("x") is SQLType.TEXT
    assert type_of_value(datetime.date(2020, 1, 1)) is SQLType.DATE
    assert type_of_value(Interval(days=1)) is SQLType.INTERVAL


# -- intervals and dates ---------------------------------------------------------


def test_interval_parse_units():
    assert Interval.parse("3", "day") == Interval(days=3)
    assert Interval.parse("2", "months") == Interval(months=2)
    assert Interval.parse("1", "YEAR") == Interval(months=12)


def test_interval_parse_bad_unit():
    with pytest.raises(ValueError):
        Interval.parse("1", "fortnight")


def test_interval_negation_and_addition():
    assert -Interval(days=3, months=1) == Interval(days=-3, months=-1)
    assert Interval(days=1) + Interval(months=2) == Interval(days=1, months=2)


def test_add_months_simple():
    assert add_months(datetime.date(1995, 1, 15), 3) == datetime.date(1995, 4, 15)


def test_add_months_clamps_day():
    # Jan 31 + 1 month -> Feb 28 (PostgreSQL clamping).
    assert add_months(datetime.date(1995, 1, 31), 1) == datetime.date(1995, 2, 28)


def test_add_months_year_rollover():
    assert add_months(datetime.date(1995, 11, 1), 3) == datetime.date(1996, 2, 1)


def test_date_add_interval():
    base = datetime.date(1995, 1, 1)
    assert date_add(base, Interval(days=90)) == datetime.date(1995, 4, 1)
    assert date_add(base, Interval(months=1)) == datetime.date(1995, 2, 1)
    assert date_add(base, -Interval(months=12)) == datetime.date(1994, 1, 1)


def test_parse_date():
    assert parse_date(" 1998-12-01 ") == datetime.date(1998, 12, 1)
    with pytest.raises(ValueError):
        parse_date("1998-13-01")


# -- null-aware comparison ----------------------------------------------------------


def test_sql_eq_three_valued():
    assert sql_eq(1, 1) is True
    assert sql_eq(1, 2) is False
    assert sql_eq(None, 1) is None
    assert sql_eq(None, None) is None


def test_is_distinct():
    assert is_distinct(None, None) is False
    assert is_distinct(None, 1) is True
    assert is_distinct(1, 1) is False
    assert is_distinct(1, 2) is True


def test_sort_key_puts_nulls_last():
    values = [3, None, 1, None, 2]
    assert sorted(values, key=sort_key) == [1, 2, 3, None, None]


# -- coercion -----------------------------------------------------------------------


def test_numeric_promotion():
    assert coerce_types(SQLType.INTEGER, SQLType.FLOAT) is SQLType.FLOAT
    assert coerce_types(SQLType.INTEGER, SQLType.INTEGER) is SQLType.INTEGER


def test_null_coerces_to_other():
    assert coerce_types(SQLType.NULL, SQLType.TEXT) is SQLType.TEXT
    assert coerce_types(SQLType.DATE, SQLType.NULL) is SQLType.DATE


def test_incompatible_types_raise():
    with pytest.raises(ValueError):
        coerce_types(SQLType.TEXT, SQLType.INTEGER)


# -- formatting ------------------------------------------------------------------------


def test_format_value():
    assert format_value(None) == "NULL"
    assert format_value(True) == "t"
    assert format_value(False) == "f"
    assert format_value(1.5) == "1.5"
    assert format_value(datetime.date(1995, 6, 17)) == "1995-06-17"
    assert format_value("x") == "x"
