"""Partitioner unit tests: hashing, shard-key schemes, mirror sync."""

from __future__ import annotations

import datetime

import pytest

import repro
from repro.errors import ExecutionError, PermError
from repro.sharding.partition import Partitioner, shard_of


# ---------------------------------------------------------------------------
# shard_of


def test_integers_hash_by_residue():
    assert [shard_of(i, 4) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]
    assert shard_of(-5, 4) == -5 % 4


def test_int_valued_floats_colocate_with_ints():
    # 3 and 3.0 compare equal in SQL, so they must land on one shard.
    assert shard_of(3.0, 4) == shard_of(3, 4)


def test_dates_hash_like_their_ordinal():
    day = datetime.date(2024, 5, 17)
    assert shard_of(day, 4) == day.toordinal() % 4


def test_none_lands_on_shard_zero():
    assert shard_of(None, 8) == 0


def test_strings_are_deterministic_and_in_range():
    for n in (1, 2, 5):
        for value in ("", "a", "Merdies", "x" * 100):
            first = shard_of(value, n)
            assert 0 <= first < n
            assert shard_of(value, n) == first


def test_bool_hashes_as_int():
    assert shard_of(True, 4) == shard_of(1, 4)
    assert shard_of(False, 4) == shard_of(0, 4)


# ---------------------------------------------------------------------------
# shard-key scheme


def _catalog(*ddl: str):
    db = repro.connect()
    for statement in ddl:
        db.execute(statement)
    return db.catalog


def test_primary_key_first_column_is_default_shard_key():
    catalog = _catalog("CREATE TABLE t (a integer, b text, PRIMARY KEY (a, b))")
    part = Partitioner(catalog, 2)
    assert part.key_column("t") == "a"


def test_tables_without_primary_key_are_replicated():
    catalog = _catalog("CREATE TABLE t (a integer, b text)")
    part = Partitioner(catalog, 3)
    assert part.key_column("t") is None
    part.sync()
    # no rows yet, but every shard still holds the table definition
    assert all(c.table("t") is not None for c in part.shard_catalogs)


def test_shard_key_override_beats_primary_key():
    catalog = _catalog("CREATE TABLE t (a integer, b text, PRIMARY KEY (a))")
    part = Partitioner(catalog, 2, shard_keys={"T": "B"})
    assert part.key_column("t") == "b"


def test_explicit_none_replicates_despite_primary_key():
    catalog = _catalog("CREATE TABLE t (a integer, PRIMARY KEY (a))")
    part = Partitioner(catalog, 2, shard_keys={"t": None})
    assert part.key_column("t") is None


def test_unknown_shard_key_column_is_rejected():
    catalog = _catalog("CREATE TABLE t (a integer)")
    part = Partitioner(catalog, 2, shard_keys={"t": "nope"})
    with pytest.raises(PermError):
        part.sync()


def test_shard_count_must_be_positive():
    with pytest.raises(PermError):
        Partitioner(_catalog(), 0)


# ---------------------------------------------------------------------------
# mirror sync (through the sharded backend, as production drives it)


def _sharded(n: int = 2, **kwargs) -> repro.PermDatabase:
    db = repro.connect(shards=n, **kwargs)
    db.execute("CREATE TABLE t (a integer, b text, PRIMARY KEY (a))")
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z'), (4, 'w')")
    return db


def _shard_rows(part: Partitioner, name: str) -> list[int]:
    return [
        c.table(name).row_count() if c.table(name) is not None else 0
        for c in part.shard_catalogs
    ]


def test_rows_route_by_shard_key_hash():
    db = _sharded(2)
    db.execute("SELECT count(*) FROM t")
    part = db.backend.partitioner
    assert _shard_rows(part, "t") == [2, 2]  # keys 1..4 split by parity
    for shard_id, catalog in enumerate(part.shard_catalogs):
        for row in catalog.table("t").raw_rows():
            assert shard_of(row[0], 2) == shard_id


def test_append_syncs_as_suffix_not_full_reload():
    db = _sharded(2)
    db.execute("SELECT count(*) FROM t")
    part = db.backend.partitioner
    loads = part.full_loads
    db.execute("INSERT INTO t VALUES (5, 'v'), (6, 'u')")
    assert db.execute("SELECT count(*) FROM t").rows == [(6,)]
    assert part.full_loads == loads  # appended, not reloaded
    assert part.appended_rows >= 2
    assert sum(_shard_rows(part, "t")) == 6


def test_delete_syncs_through_deltas():
    db = _sharded(2)
    db.execute("SELECT count(*) FROM t")
    part = db.backend.partitioner
    loads = part.full_loads
    db.execute("DELETE FROM t WHERE a = 2")
    assert db.execute("SELECT count(*) FROM t").rows == [(3,)]
    assert part.delta_syncs >= 1
    assert part.full_loads == loads
    assert sum(_shard_rows(part, "t")) == 3


def test_update_moves_rows_consistently():
    db = _sharded(2)
    db.execute("UPDATE t SET b = 'changed' WHERE a = 3")
    assert db.execute("SELECT b FROM t WHERE a = 3").rows == [("changed",)]
    part = db.backend.partitioner
    assert sum(_shard_rows(part, "t")) == 4


def test_drop_and_recreate_full_reloads():
    db = _sharded(2)
    db.execute("SELECT count(*) FROM t")
    part = db.backend.partitioner
    loads = part.full_loads
    db.execute("DROP TABLE t")
    db.execute("CREATE TABLE t (a integer, PRIMARY KEY (a))")
    db.execute("INSERT INTO t VALUES (10), (11)")
    assert db.execute("SELECT count(*) FROM t").rows == [(2,)]
    assert part.full_loads > loads


def test_recreate_with_narrower_schema_recomputes_shard_key():
    # the old shard-key attno (1) is out of range for the new schema; a
    # stale cache entry would crash insert routing with an IndexError
    db = repro.connect(shards=2)
    db.execute("CREATE TABLE u (x text, k integer, PRIMARY KEY (k))")
    db.execute("INSERT INTO u VALUES ('a', 1), ('b', 2)")
    db.execute("SELECT count(*) FROM u")  # sync caches the key attno
    db.execute("DROP TABLE u")
    db.execute("CREATE TABLE u (z text, PRIMARY KEY (z))")
    db.execute("INSERT INTO u VALUES ('hello'), ('world')")
    assert db.execute("SELECT count(*) FROM u").rows == [(2,)]
    part = db.backend.partitioner
    assert part.key_column("u") == "z"
    assert sum(_shard_rows(part, "u")) == 2


def test_recreate_with_reordered_schema_routes_by_the_named_key():
    # same column names, different order: a stale attno would silently
    # shard by whatever column sits at the old index
    db = repro.connect(shards=2)
    db.execute("CREATE TABLE v (k integer, x text, PRIMARY KEY (k))")
    db.execute("INSERT INTO v VALUES (1, 'a'), (2, 'b')")
    db.execute("SELECT count(*) FROM v")
    db.execute("DROP TABLE v")
    db.execute("CREATE TABLE v (x text, k integer, PRIMARY KEY (k))")
    db.execute("INSERT INTO v VALUES ('a', 1), ('b', 2), ('c', 3), ('d', 4)")
    assert db.execute("SELECT count(*) FROM v").rows == [(4,)]
    part = db.backend.partitioner
    assert part.key_column("v") == "k"
    for shard_id, catalog in enumerate(part.shard_catalogs):
        for row in catalog.table("v").raw_rows():
            assert shard_of(row[1], 2) == shard_id


def test_replicated_table_is_copied_to_every_shard():
    db = repro.connect(shards=3)
    db.execute("CREATE TABLE r (a integer)")  # no PK: replicated
    db.execute("INSERT INTO r VALUES (1), (2), (3)")
    assert db.execute("SELECT count(*) FROM r").rows == [(3,)]
    part = db.backend.partitioner
    assert _shard_rows(part, "r") == [3, 3, 3]
    (entry,) = part.describe_tables()
    assert entry["replicated"] is True
    assert entry["rows"] == 3


def test_describe_tables_reports_partitioning():
    db = _sharded(4)
    db.execute("SELECT count(*) FROM t")
    (entry,) = db.backend.partitioner.describe_tables()
    assert entry["table"] == "t"
    assert entry["shard_key"] == "a"
    assert entry["replicated"] is False
    assert entry["rows"] == 4
    assert sum(entry["shard_rows"]) == 4


def test_snapshot_token_translates_per_shard():
    db = _sharded(2)
    part = db.backend.partitioner
    token = part.snapshot_token()
    table = db.catalog.table("t")
    assert token[table.uid] == (table.epoch, 4)
    shard_snaps = part.translate_snapshot(["t"], token)
    assert len(shard_snaps) == 2
    assert sum(rows for _, rows in shard_snaps[0].values()) + sum(
        rows for _, rows in shard_snaps[1].values()
    ) == 4


def test_evicted_snapshot_translation_raises_typed_error():
    db = _sharded(2)
    part = db.backend.partitioner
    token = part.snapshot_token()
    part._translations.clear()  # simulate eviction from the bounded map
    with pytest.raises(ExecutionError, match="snapshot too old"):
        part.translate_snapshot(["t"], token)


def test_dropped_table_snapshot_raises_typed_error():
    db = _sharded(2)
    part = db.backend.partitioner
    token = part.snapshot_token()
    db.execute("DROP TABLE t")
    db.execute("CREATE TABLE t (a integer, PRIMARY KEY (a))")
    part.sync()
    with pytest.raises(ExecutionError, match="snapshot too old"):
        part.translate_snapshot(["t"], token)
