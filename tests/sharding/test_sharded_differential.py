"""Differential suite: sharded(N) ≡ unsharded, for every N and child.

The contract the sharded backend stands on: partitioning is
semantically invisible.  For any supported query — plain, witness
provenance, polynomial provenance — the scatter-gather result equals
the unsharded engine's as a multiset, whether the query scattered or
fell back.  Checked over the paper's shop/sales/items example and the
TPC-H SF-tiny workload, across shard counts, both child backend types,
with DML interleaved through the shard partitioning, and as a
Hypothesis property over shard counts and shard-key choices.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from tests.backends.support import assert_same_result

_EXAMPLE_SETUP = (
    "CREATE TABLE shop (name text, numempl integer, PRIMARY KEY (name))",
    "CREATE TABLE sales (sname text, itemid integer)",
    "CREATE TABLE items (id integer, price integer, PRIMARY KEY (id))",
    "INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14)",
    "INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), "
    "('Merdies', 2), ('Joba', 3), ('Joba', 3)",
    "INSERT INTO items VALUES (1, 100), (2, 10), (3, 25)",
)

# sales has no primary key → replicated; shop/items partition by key.
EXAMPLE_QUERIES = (
    "SELECT name, numempl FROM shop",
    "SELECT name FROM shop WHERE name = 'Joba'",
    "SELECT sname, price FROM sales, items WHERE itemid = id",
    "SELECT name, numempl FROM shop WHERE numempl > 5 ORDER BY name",
    "SELECT id, price FROM items ORDER BY price DESC LIMIT 2",
    "SELECT id, price FROM items ORDER BY id OFFSET 1",
    "SELECT id, price FROM items ORDER BY id LIMIT 1 OFFSET 1",
    "SELECT DISTINCT numempl FROM shop ORDER BY numempl OFFSET 1",
    "SELECT count(*), sum(price) FROM items",
    "SELECT id, count(*) FROM items GROUP BY id",
    "SELECT DISTINCT sname FROM sales",
    "SELECT name FROM shop UNION ALL SELECT sname FROM sales",
    "SELECT sname, sum(price) FROM sales, items WHERE itemid = id "
    "GROUP BY sname",
)


def _example(backend_kwargs: dict) -> repro.PermDatabase:
    db = repro.connect(**backend_kwargs)
    for statement in _EXAMPLE_SETUP:
        db.execute(statement)
    return db


@pytest.fixture(scope="module")
def reference() -> repro.PermDatabase:
    return _example({})


@pytest.mark.parametrize("shards", (1, 2, 4))
@pytest.mark.parametrize("child", ("python", "sqlite"))
def test_example_queries_match(reference, shards, child):
    sharded = _example({"shards": shards, "backend": child})
    for sql in EXAMPLE_QUERIES:
        assert_same_result(
            reference.execute(sql), sharded.execute(sql), context=f"for {sql!r}"
        )


@pytest.mark.parametrize("shards", (1, 2, 4))
@pytest.mark.parametrize("child", ("python", "sqlite"))
def test_example_witness_provenance_matches(reference, shards, child):
    sharded = _example({"shards": shards, "backend": child})
    for sql in EXAMPLE_QUERIES:
        assert_same_result(
            reference.provenance(sql),
            sharded.provenance(sql),
            context=f"for witness {sql!r}",
        )


@pytest.mark.parametrize("shards", (2, 4))
@pytest.mark.parametrize("child", ("python", "sqlite"))
def test_example_polynomial_provenance_matches(reference, shards, child):
    sharded = _example({"shards": shards, "backend": child})
    for sql in EXAMPLE_QUERIES:
        assert_same_result(
            reference.provenance(sql, semantics="polynomial"),
            sharded.provenance(sql, semantics="polynomial"),
            context=f"for polynomial {sql!r}",
        )


@pytest.mark.parametrize("child", ("python", "sqlite"))
def test_interleaved_dml_routes_through_partitioning(child):
    plain = _example({})
    sharded = _example({"shards": 3, "backend": child})
    script = (
        "INSERT INTO items VALUES (4, 75), (5, 80)",
        "SELECT count(*), sum(price) FROM items",
        "DELETE FROM items WHERE price < 50",
        "SELECT id FROM items",
        "UPDATE shop SET numempl = numempl + 1 WHERE name = 'Joba'",
        "SELECT name, numempl FROM shop",
        "INSERT INTO sales VALUES ('Joba', 4)",
        "SELECT sname, price FROM sales, items WHERE itemid = id",
    )
    for sql in script:
        assert_same_result(
            plain.execute(sql), sharded.execute(sql), context=f"for {sql!r}"
        )
    # the DML must have flowed through the partitioner, not around it
    part = sharded.backend.partitioner
    assert part.appended_rows > 0 or part.delta_syncs > 0


# ---------------------------------------------------------------------------
# TPC-H SF-tiny


TPCH_QUERIES = (
    "SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderkey = 7",
    "SELECT count(*), sum(l_quantity) FROM lineitem",
    "SELECT l_orderkey, count(*) FROM lineitem GROUP BY l_orderkey",
    "SELECT o_orderkey, l_extendedprice FROM orders, lineitem "
    "WHERE o_orderkey = l_orderkey AND o_orderkey = 7",
    "SELECT c_custkey, c_name FROM customer WHERE c_custkey IN (1, 5, 9)",
    "SELECT o_orderkey, o_orderdate FROM orders "
    "ORDER BY o_totalprice DESC, o_orderkey LIMIT 5",
)

TPCH_PROVENANCE_QUERIES = (
    "SELECT o_orderkey, o_totalprice FROM orders WHERE o_orderkey = 7",
    "SELECT o_orderkey, l_extendedprice FROM orders, lineitem "
    "WHERE o_orderkey = l_orderkey AND o_orderkey = 7",
)


@pytest.fixture(scope="module")
def tpch_pair():
    from repro.tpch.dbgen import tpch_database

    reference = tpch_database(scale_factor=0.001, seed=42)
    sharded = tpch_database(scale_factor=0.001, seed=42)
    sharded.set_backend(
        lambda catalog: __import__(
            "repro.sharding.backend", fromlist=["ShardedBackend"]
        ).ShardedBackend(catalog, shards=4)
    )
    return reference, sharded


def test_tpch_queries_match(tpch_pair):
    reference, sharded = tpch_pair
    for sql in TPCH_QUERIES:
        assert_same_result(
            reference.execute(sql), sharded.execute(sql), context=f"for {sql!r}"
        )
    assert sharded.backend.scattered >= 1
    assert sharded.backend.pruned_queries >= 1


def test_tpch_provenance_matches(tpch_pair):
    reference, sharded = tpch_pair
    for sql in TPCH_PROVENANCE_QUERIES:
        assert_same_result(
            reference.provenance(sql),
            sharded.provenance(sql),
            context=f"for witness {sql!r}",
        )
        assert_same_result(
            reference.provenance(sql, semantics="polynomial"),
            sharded.provenance(sql, semantics="polynomial"),
            context=f"for polynomial {sql!r}",
        )


# ---------------------------------------------------------------------------
# process-based scatter


def test_process_scatter_matches_thread_and_serial():
    results = []
    for executor in ("serial", "thread", "process"):
        db = _example({"shards": 4, "parallel_executor": executor})
        rows = [
            db.execute(sql)
            for sql in (
                "SELECT count(*), sum(price) FROM items",
                "SELECT name, numempl FROM shop ORDER BY name",
            )
        ]
        prov = db.provenance(
            "SELECT id, price FROM items WHERE price > 20",
            semantics="polynomial",
        )
        results.append((rows, prov))
    for rows, prov in results[1:]:
        for expected, actual in zip(results[0][0], rows):
            assert_same_result(expected, actual)
        assert_same_result(results[0][1], prov)


# ---------------------------------------------------------------------------
# Hypothesis property: any shard count, any shard-key choice


_value = st.integers(min_value=0, max_value=4)
_rows = st.lists(
    st.tuples(_value, st.one_of(st.none(), _value), _value),
    min_size=0,
    max_size=8,
)

PROPERTY_QUERIES = (
    "SELECT k, v FROM r",
    "SELECT k, v, w FROM r WHERE k = 2",
    "SELECT k, count(*), sum(w) FROM r GROUP BY k",
    "SELECT count(*) FROM r",
    "SELECT DISTINCT v FROM r",
    "SELECT k, w FROM r ORDER BY w, k LIMIT 3",
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    rows=_rows,
    shards=st.integers(min_value=1, max_value=5),
    key=st.sampled_from(["k", "v", "w", None]),
)
def test_sharding_is_invisible(rows, shards, key):
    plain = repro.connect()
    sharded = repro.connect(shards=shards, shard_keys={"r": key})
    for db in (plain, sharded):
        db.execute("CREATE TABLE r (k integer, v integer, w integer)")
        db.load_table("r", rows)
    for sql in PROPERTY_QUERIES:
        assert_same_result(
            plain.execute(sql),
            sharded.execute(sql),
            context=f"for {sql!r} shards={shards} key={key}",
        )
        assert_same_result(
            plain.provenance(sql),
            sharded.provenance(sql),
            context=f"for witness {sql!r} shards={shards} key={key}",
        )
