"""Serving a sharded database: correctness, snapshots, and \\stats."""

from __future__ import annotations

import pytest

import repro
from repro.server import PermClient, start_in_thread

from tests.backends.support import assert_same_result


@pytest.fixture
def served_pair():
    plain = repro.connect()
    sharded = repro.connect(shards=3)
    for db in (plain, sharded):
        db.execute("CREATE TABLE t (a integer, b text, PRIMARY KEY (a))")
        db.execute(
            "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z'), (4, 'w')"
        )
    handle = start_in_thread(sharded, request_timeout=30.0)
    yield plain, sharded, handle
    handle.stop()


def test_served_queries_match_unsharded(served_pair):
    plain, _, handle = served_pair
    host, port = handle.address
    with PermClient(host, port) as client:
        for sql in (
            "SELECT a, b FROM t WHERE a = 2",
            "SELECT count(*), sum(a) FROM t",
            "SELECT a, b FROM t ORDER BY a DESC LIMIT 2",
        ):
            assert_same_result(
                plain.execute(sql), client.query(sql), context=f"for {sql!r}"
            )
        served = client.provenance("SELECT a FROM t WHERE a = 3")
        embedded = plain.provenance("SELECT a FROM t WHERE a = 3")
        assert served.rows == embedded.rows


def test_stats_op_reports_sharding(served_pair):
    _, _, handle = served_pair
    host, port = handle.address
    with PermClient(host, port) as client:
        client.query("SELECT a FROM t WHERE a = 1")
        client.query("SELECT avg(a) FROM t")  # typed fallback
        stats = client.stats()
        sharding = stats["sharding"]
        assert sharding["shards"] == 3
        assert sharding["scattered"] >= 1
        assert sharding["pruned_queries"] >= 1
        assert sharding["fallback_reasons"].get("composite-aggregate", 0) >= 1
        assert len(sharding["per_shard"]) == 3


def test_snapshot_isolation_on_sharded_backend(served_pair):
    # The server snapshots before dispatch; the sharded backend must
    # honour the parent-shaped token through per-shard translation.
    _, sharded, handle = served_pair
    host, port = handle.address
    with PermClient(host, port) as client:
        before = client.query("SELECT count(*) FROM t").scalar()
        sharded.execute("INSERT INTO t VALUES (5, 'v')")
        after = client.query("SELECT count(*) FROM t").scalar()
        assert (before, after) == (4, 5)


def test_unsharded_stats_omit_sharding_section():
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer)")
    handle = start_in_thread(db)
    try:
        host, port = handle.address
        with PermClient(host, port) as client:
            assert "sharding" not in client.stats()
    finally:
        handle.stop()
