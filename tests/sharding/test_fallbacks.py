"""Non-mergeable shapes: loud, typed fallback — never silently wrong.

Every query shape the gather merge cannot reproduce semiring-natively
must (a) still return exactly the unsharded backend's result and (b)
count a typed reason in ``ShardedBackend.fallback_reasons``, so a
deployment can see *why* scatter-gather is not engaging.
"""

from __future__ import annotations

import pytest

import repro
from tests.backends.support import assert_same_result

_SETUP = (
    "CREATE TABLE t (a integer, b text, PRIMARY KEY (a))",
    "CREATE TABLE s (a integer, c integer, PRIMARY KEY (a))",
    "INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z'), (4, 'x'), (5, 'y')",
    # (2, 5): s row on shard_of(2) whose c matches t.a = 5 on shard_of(5)
    "INSERT INTO s VALUES (1, 10), (2, 5), (3, 30), (5, 50), (6, 60)",
)


def _pair() -> tuple[repro.PermDatabase, repro.PermDatabase]:
    plain, sharded = repro.connect(), repro.connect(shards=2)
    for db in (plain, sharded):
        for statement in _SETUP:
            db.execute(statement)
    return plain, sharded


# (sql, provenance semantics or None, expected fallback kind)
FALLBACK_SHAPES = (
    # AVG needs sum+count transport; the final is not mergeable.
    ("SELECT avg(a) FROM t", None, "composite-aggregate"),
    # DISTINCT-qualified aggregate args would double-count across shards.
    ("SELECT count(DISTINCT b) FROM t", None, "distinct-aggregate"),
    # Grouping on a non-shard-key column splits groups across shards and
    # the provenance rewrite nests the aggregate under a join.
    ("SELECT b, count(*) FROM t GROUP BY b", "polynomial", "unaligned-aggregate"),
    # Join keys on different shards: rows that must meet never do.
    ("SELECT t.a, s.c FROM t, s WHERE t.b = 'x'", None, "cross-shard-join"),
    # Equality against a NON-key column of a partitioned side: the class
    # touches s, but says nothing about where matching s rows live.
    ("SELECT t.a, s.c FROM t, s WHERE t.a = s.c", None, "cross-shard-join"),
    # A sublink over a partitioned table sees only its shard's slice.
    (
        "SELECT a FROM t WHERE a IN (SELECT c FROM s)",
        None,
        "sublink-over-partitioned",
    ),
    # EXCEPT (monus) on a non-aligned column is not distributable.
    (
        "SELECT b FROM t EXCEPT SELECT b FROM t WHERE a = 1",
        None,
        "setop-except",
    ),
    ("SELECT b FROM t INTERSECT SELECT b FROM t", None, "setop-intersect"),
    # UNION (dedupe) across arms whose outputs are not co-partitioned.
    ("SELECT a FROM t UNION SELECT c FROM s", None, "setop-union"),
    # Inner LIMIT must bind per-table, not per-shard-slice.
    (
        "SELECT a FROM (SELECT a FROM t ORDER BY a LIMIT 2) sub",
        None,
        "nested-limit",
    ),
    # ORDER BY on a column the select list hides: the gatherer cannot
    # re-sort what it cannot see.
    ("SELECT a FROM t ORDER BY b", None, "order-by-hidden"),
    # Global HAVING over a grand aggregate filters on the merged value.
    ("SELECT sum(a) FROM t HAVING sum(a) > 1", None, "unaligned-having"),
)


@pytest.mark.parametrize("sql,semantics,kind", FALLBACK_SHAPES)
def test_shape_falls_back_loudly_and_correctly(sql, semantics, kind):
    plain, sharded = _pair()
    if semantics is not None:
        expected = plain.provenance(sql, semantics=semantics)
        actual = sharded.provenance(sql, semantics=semantics)
    else:
        expected = plain.execute(sql)
        actual = sharded.execute(sql)
    assert_same_result(expected, actual, context=f"for {sql!r}")
    backend = sharded.backend
    assert backend.fallback_reasons[kind] >= 1, (
        f"expected fallback kind {kind!r} for {sql!r}, "
        f"got {dict(backend.fallback_reasons)}"
    )
    assert backend.local_fallbacks >= 1


# Shapes that look dangerous but DO merge natively — they must scatter.
MERGEABLE_SHAPES = (
    "SELECT DISTINCT b FROM t",  # dedupe at the gatherer
    "SELECT count(*), sum(a) FROM t",  # grand aggregate, mergeable aggs
    "SELECT a, count(*) FROM t GROUP BY a",  # groups aligned on shard key
    "SELECT t.a, s.c FROM t, s WHERE t.a = s.a",  # co-partitioned join
    "SELECT a FROM t UNION ALL SELECT a FROM s",  # concat union
    "SELECT a FROM t UNION SELECT a FROM s",  # aligned dedupe union
    "SELECT a, b FROM t ORDER BY b LIMIT 3",  # visible sort re-applied
    "SELECT a FROM t ORDER BY a OFFSET 2",  # gatherer-only offset
    "SELECT DISTINCT b FROM t ORDER BY b OFFSET 1",  # dedupe then offset
)


@pytest.mark.parametrize("sql", MERGEABLE_SHAPES)
def test_mergeable_shape_scatters(sql):
    plain, sharded = _pair()
    assert_same_result(
        plain.execute(sql), sharded.execute(sql), context=f"for {sql!r}"
    )
    assert sharded.backend.scattered >= 1
    assert sharded.backend.local_fallbacks == 0


def test_explain_names_the_fallback():
    _, sharded = _pair()
    text = sharded.explain("SELECT avg(a) FROM t")
    assert "composite-aggregate" in text
    assert "fallback" in text


def test_explain_shows_pruning():
    _, sharded = _pair()
    text = sharded.explain("SELECT b FROM t WHERE a = 3")
    assert "shards=1/2" in text
    assert "pruned" in text
