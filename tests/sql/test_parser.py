"""Parser unit tests: statement structure, precedence, SQL-PLE extensions."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse_expression, parse_sql, parse_statement


# -- basic select structure ---------------------------------------------------


def test_minimal_select():
    stmt = parse_statement("SELECT 1")
    assert isinstance(stmt, ast.SelectStmt)
    assert len(stmt.target_list) == 1
    assert stmt.target_list[0].expr == ast.NumberLit(1)


def test_select_with_alias():
    stmt = parse_statement("SELECT a AS x, b y FROM t")
    assert stmt.target_list[0].name == "x"
    assert stmt.target_list[1].name == "y"


def test_select_star_and_qualified_star():
    stmt = parse_statement("SELECT *, t.* FROM t")
    assert stmt.target_list[0].expr == ast.Star()
    assert stmt.target_list[1].expr == ast.Star(relation="t")


def test_from_where_group_having_order_limit():
    stmt = parse_statement(
        "SELECT a, sum(b) FROM t WHERE a > 1 GROUP BY a HAVING sum(b) > 2 "
        "ORDER BY a DESC LIMIT 5 OFFSET 2"
    )
    assert stmt.where is not None
    assert len(stmt.group_by) == 1
    assert stmt.having is not None
    assert stmt.order_by[0].descending is True
    assert stmt.limit == ast.NumberLit(5)
    assert stmt.offset == ast.NumberLit(2)


def test_order_by_nulls_first_last():
    stmt = parse_statement("SELECT a FROM t ORDER BY a NULLS FIRST, a ASC NULLS LAST")
    assert stmt.order_by[0].nulls_first is True
    assert stmt.order_by[1].nulls_first is False


def test_distinct():
    assert parse_statement("SELECT DISTINCT a FROM t").distinct is True
    assert parse_statement("SELECT ALL a FROM t").distinct is False


def test_multiple_statements():
    statements = parse_sql("SELECT 1; SELECT 2;")
    assert len(statements) == 2


def test_parse_statement_rejects_multiple():
    with pytest.raises(ParseError):
        parse_statement("SELECT 1; SELECT 2")


# -- FROM clause ------------------------------------------------------------------


def test_comma_join():
    stmt = parse_statement("SELECT 1 FROM a, b, c")
    assert len(stmt.from_clause) == 3
    assert all(isinstance(f, ast.RangeVar) for f in stmt.from_clause)


def test_explicit_joins():
    stmt = parse_statement(
        "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
    )
    join = stmt.from_clause[0]
    assert isinstance(join, ast.JoinExpr)
    assert join.join_type == "left"
    assert isinstance(join.left, ast.JoinExpr)
    assert join.left.join_type == "inner"


def test_outer_keyword_is_optional():
    stmt = parse_statement("SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.x")
    assert stmt.from_clause[0].join_type == "left"


def test_cross_join():
    stmt = parse_statement("SELECT 1 FROM a CROSS JOIN b")
    assert stmt.from_clause[0].join_type == "cross"
    assert stmt.from_clause[0].condition is None


def test_join_using():
    stmt = parse_statement("SELECT 1 FROM a JOIN b USING (x, y)")
    assert stmt.from_clause[0].using == ("x", "y")


def test_natural_join():
    stmt = parse_statement("SELECT 1 FROM a NATURAL JOIN b")
    assert stmt.from_clause[0].natural is True


def test_join_without_condition_is_an_error():
    with pytest.raises(ParseError):
        parse_statement("SELECT 1 FROM a JOIN b")


def test_subquery_in_from_requires_alias():
    with pytest.raises(ParseError):
        parse_statement("SELECT 1 FROM (SELECT 1)")


def test_subquery_with_alias_and_column_aliases():
    stmt = parse_statement("SELECT 1 FROM (SELECT 1, 2) AS s (a, b)")
    sub = stmt.from_clause[0]
    assert isinstance(sub, ast.RangeSubselect)
    assert sub.alias == "s"
    assert sub.column_aliases == ("a", "b")


def test_table_alias_without_as():
    stmt = parse_statement("SELECT 1 FROM nation n1")
    assert stmt.from_clause[0].alias == "n1"


# -- SQL-PLE extensions -----------------------------------------------------------


def test_select_provenance_flag():
    assert parse_statement("SELECT PROVENANCE a FROM t").provenance is True
    assert parse_statement("SELECT a FROM t").provenance is False


def test_from_item_provenance_annotation():
    stmt = parse_statement("SELECT 1 FROM v PROVENANCE (p_a, p_b)")
    assert stmt.from_clause[0].provenance_attrs == ("p_a", "p_b")


def test_from_item_provenance_after_alias():
    stmt = parse_statement("SELECT 1 FROM v AS x PROVENANCE (p_a)")
    item = stmt.from_clause[0]
    assert item.alias == "x"
    assert item.provenance_attrs == ("p_a",)


def test_baserelation_on_table():
    stmt = parse_statement("SELECT 1 FROM t BASERELATION AS s")
    assert stmt.from_clause[0].base_relation is True


def test_baserelation_on_subquery():
    stmt = parse_statement("SELECT 1 FROM (SELECT 1) BASERELATION AS s")
    assert stmt.from_clause[0].base_relation is True
    assert stmt.from_clause[0].alias == "s"


def test_provenance_lifts_to_setop_root():
    stmt = parse_statement("SELECT PROVENANCE a FROM t UNION SELECT a FROM s")
    assert isinstance(stmt, ast.SetOpSelect)
    assert stmt.provenance is True
    assert stmt.left.provenance is False


def test_select_into():
    stmt = parse_statement("SELECT a INTO saved FROM t")
    assert stmt.into == "saved"


# -- set operations ------------------------------------------------------------------


def test_union_intersect_precedence():
    # INTERSECT binds tighter than UNION.
    stmt = parse_statement("SELECT 1 UNION SELECT 2 INTERSECT SELECT 3")
    assert isinstance(stmt, ast.SetOpSelect)
    assert stmt.op == "union"
    assert isinstance(stmt.right, ast.SetOpSelect)
    assert stmt.right.op == "intersect"


def test_union_is_left_associative():
    stmt = parse_statement("SELECT 1 UNION SELECT 2 EXCEPT SELECT 3")
    assert stmt.op == "except"
    assert isinstance(stmt.left, ast.SetOpSelect)
    assert stmt.left.op == "union"


def test_union_all():
    stmt = parse_statement("SELECT 1 UNION ALL SELECT 2")
    assert stmt.all is True


def test_parenthesized_setop():
    stmt = parse_statement("(SELECT 1 UNION SELECT 2) INTERSECT SELECT 3")
    assert stmt.op == "intersect"
    assert isinstance(stmt.left, ast.SetOpSelect)


def test_order_by_attaches_to_setop_root():
    stmt = parse_statement("SELECT a FROM t UNION SELECT a FROM s ORDER BY a")
    assert isinstance(stmt, ast.SetOpSelect)
    assert len(stmt.order_by) == 1


# -- expressions -----------------------------------------------------------------------


def test_arithmetic_precedence():
    expr = parse_expression("1 + 2 * 3")
    assert isinstance(expr, ast.BinaryOp)
    assert expr.op == "+"
    assert isinstance(expr.right, ast.BinaryOp)
    assert expr.right.op == "*"


def test_unary_minus_folds_into_literal():
    assert parse_expression("-5") == ast.NumberLit(-5)


def test_unary_minus_on_expression():
    expr = parse_expression("-(a + b)")
    assert isinstance(expr, ast.UnaryOp)


def test_boolean_precedence():
    expr = parse_expression("a = 1 OR b = 2 AND c = 3")
    assert isinstance(expr, ast.BoolOp)
    assert expr.op == "or"
    assert isinstance(expr.args[1], ast.BoolOp)
    assert expr.args[1].op == "and"


def test_not_precedence():
    expr = parse_expression("NOT a = 1 AND b = 2")
    assert expr.op == "and"
    assert expr.args[0].op == "not"


def test_between():
    expr = parse_expression("a BETWEEN 1 AND 5")
    assert isinstance(expr, ast.BetweenExpr)
    assert not expr.negated


def test_not_between():
    expr = parse_expression("a NOT BETWEEN 1 AND 5")
    assert expr.negated


def test_in_list():
    expr = parse_expression("a IN (1, 2, 3)")
    assert isinstance(expr, ast.InListExpr)
    assert len(expr.items) == 3


def test_not_in_subquery_becomes_all_sublink():
    expr = parse_expression("a NOT IN (SELECT b FROM t)")
    assert isinstance(expr, ast.SubLinkExpr)
    assert expr.kind == "all"
    assert expr.operator == "<>"


def test_in_subquery_becomes_any_sublink():
    expr = parse_expression("a IN (SELECT b FROM t)")
    assert expr.kind == "any"
    assert expr.operator == "="


def test_exists():
    expr = parse_expression("EXISTS (SELECT 1 FROM t)")
    assert isinstance(expr, ast.SubLinkExpr)
    assert expr.kind == "exists"


def test_scalar_subquery():
    expr = parse_expression("(SELECT max(a) FROM t)")
    assert isinstance(expr, ast.SubLinkExpr)
    assert expr.kind == "scalar"


def test_quantified_comparison():
    expr = parse_expression("a > ALL (SELECT b FROM t)")
    assert expr.kind == "all"
    assert expr.operator == ">"


def test_like_and_not_like():
    assert parse_expression("a LIKE 'x%'").negated is False
    assert parse_expression("a NOT LIKE 'x%'").negated is True


def test_is_null_and_is_not_null():
    assert parse_expression("a IS NULL").negated is False
    assert parse_expression("a IS NOT NULL").negated is True


def test_case_searched():
    expr = parse_expression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
    assert isinstance(expr, ast.CaseExpr)
    assert expr.operand is None
    assert expr.default == ast.StringLit("y")


def test_case_simple():
    expr = parse_expression("CASE a WHEN 1 THEN 'x' END")
    assert expr.operand == ast.ColumnRef("a")
    assert expr.default is None


def test_case_requires_when():
    with pytest.raises(ParseError):
        parse_expression("CASE ELSE 1 END")


def test_date_and_interval_literals():
    assert parse_expression("DATE '1995-01-01'") == ast.DateLit("1995-01-01")
    interval = parse_expression("INTERVAL '3' MONTH")
    assert interval == ast.IntervalLit("3", "month")


def test_extract():
    expr = parse_expression("EXTRACT(YEAR FROM o_orderdate)")
    assert isinstance(expr, ast.ExtractExpr)
    assert expr.fieldname == "year"


def test_substring_from_for():
    expr = parse_expression("SUBSTRING(a FROM 1 FOR 2)")
    assert isinstance(expr, ast.SubstringExpr)
    assert expr.length == ast.NumberLit(2)


def test_substring_comma_form():
    expr = parse_expression("SUBSTRING(a, 1, 2)")
    assert expr.length == ast.NumberLit(2)


def test_cast():
    expr = parse_expression("CAST(a AS integer)")
    assert isinstance(expr, ast.CastExpr)
    assert expr.type_name == "integer"


def test_count_star_and_distinct():
    assert parse_expression("count(*)").star is True
    assert parse_expression("count(DISTINCT a)").distinct is True


def test_string_concatenation():
    expr = parse_expression("a || b || c")
    assert expr.op == "||"
    assert expr.left.op == "||"


def test_qualified_column():
    expr = parse_expression("t.a")
    assert expr == ast.ColumnRef("a", relation="t")


# -- other statements --------------------------------------------------------------------


def test_create_table():
    stmt = parse_statement(
        "CREATE TABLE t (a integer, b varchar(10), c double precision, "
        "PRIMARY KEY (a))"
    )
    assert isinstance(stmt, ast.CreateTableStmt)
    assert [c.name for c in stmt.columns] == ["a", "b", "c"]
    assert stmt.columns[1].type_name == "varchar(10)"
    assert stmt.columns[2].type_name == "double precision"
    assert stmt.primary_key == ("a",)


def test_create_view():
    stmt = parse_statement("CREATE VIEW v AS SELECT 1 AS x")
    assert isinstance(stmt, ast.CreateViewStmt)
    assert stmt.name == "v"


def test_create_view_with_provenance_attrs():
    stmt = parse_statement("CREATE VIEW v PROVENANCE (p_a) AS SELECT 1 AS p_a")
    assert stmt.provenance_attrs == ("p_a",)


def test_insert_values():
    stmt = parse_statement("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
    assert isinstance(stmt, ast.InsertStmt)
    assert len(stmt.values) == 2


def test_insert_with_columns():
    stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)")
    assert stmt.columns == ("a", "b")


def test_insert_select():
    stmt = parse_statement("INSERT INTO t SELECT a FROM s")
    assert stmt.query is not None


def test_drop_table_if_exists():
    stmt = parse_statement("DROP TABLE IF EXISTS t")
    assert stmt.kind == "table"
    assert stmt.if_exists is True


def test_drop_view():
    stmt = parse_statement("DROP VIEW v")
    assert stmt.kind == "view"


def test_explain():
    stmt = parse_statement("EXPLAIN SELECT 1")
    assert isinstance(stmt, ast.ExplainStmt)


def test_trailing_garbage_is_an_error():
    with pytest.raises(ParseError):
        parse_statement("SELECT 1 2")
    with pytest.raises(ParseError):
        parse_statement("SELECT a FROM t WHERE")


def test_error_positions_reported():
    with pytest.raises(ParseError) as excinfo:
        parse_statement("SELECT FROM")
    assert excinfo.value.position >= 0
