"""Printer round-trip stability for the PROVENANCE select syntax.

``parse -> format_select -> parse`` must be a fixpoint for the provenance
markers: the bare ``SELECT PROVENANCE``, the named-semantics form
``SELECT PROVENANCE (polynomial)`` and markers lifted to set-operation
roots (which the printer pushes back into the first select-clause).
"""

from __future__ import annotations

import pytest

from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.sql.printer import format_select

ROUNDTRIP_QUERIES = [
    "SELECT PROVENANCE a FROM t",
    "SELECT PROVENANCE (polynomial) a FROM t",
    "SELECT PROVENANCE (witness) a, b FROM t WHERE a < 3",
    "SELECT PROVENANCE (polynomial) DISTINCT a FROM t ORDER BY a LIMIT 2",
    "SELECT PROVENANCE (polynomial) a FROM t UNION SELECT b FROM s",
    "SELECT PROVENANCE a FROM t UNION ALL SELECT b FROM s",
    "SELECT PROVENANCE (polynomial) a FROM t INTERSECT SELECT b FROM s ORDER BY a",
    "SELECT PROVENANCE (polynomial) a FROM t PROVENANCE (pa, pb)",
    "SELECT PROVENANCE (polynomial) a FROM (SELECT PROVENANCE b FROM s) AS sub",
]


def _marks(node: ast.SelectNode) -> tuple[bool, str | None]:
    return node.provenance, node.provenance_type


@pytest.mark.parametrize("sql", ROUNDTRIP_QUERIES)
def test_parse_print_parse_is_stable(sql):
    first = parse_statement(sql)
    printed = format_select(first)
    second = parse_statement(printed)
    assert _marks(second) == _marks(first), printed
    # The fixpoint: printing the re-parsed tree reproduces the same text.
    assert format_select(second) == printed


def test_semantics_name_is_lowercased():
    stmt = parse_statement("SELECT PROVENANCE (POLYNOMIAL) a FROM t")
    assert stmt.provenance and stmt.provenance_type == "polynomial"


def test_setop_root_keeps_marker_through_print():
    stmt = parse_statement(
        "SELECT PROVENANCE (polynomial) a FROM t EXCEPT SELECT b FROM s"
    )
    assert isinstance(stmt, ast.SetOpSelect)
    assert stmt.provenance and stmt.provenance_type == "polynomial"
    printed = format_select(stmt)
    reparsed = parse_statement(printed)
    assert isinstance(reparsed, ast.SetOpSelect)
    assert reparsed.provenance and reparsed.provenance_type == "polynomial"
    # The leaf must not carry a duplicate marker after the lift.
    assert not reparsed.left.provenance


def test_bare_provenance_has_no_semantics():
    stmt = parse_statement("SELECT PROVENANCE a FROM t")
    assert stmt.provenance and stmt.provenance_type is None


def test_parenthesized_expression_targets_still_parse():
    # Only a single parenthesized identifier is a semantics marker; an
    # expression in parentheses stays a select-list target.
    stmt = parse_statement("SELECT PROVENANCE (a + 1) FROM t")
    assert stmt.provenance and stmt.provenance_type is None
    assert len(stmt.target_list) == 1


def test_statement_formatter_roundtrips_analyze_and_explain():
    from repro.sql import ast
    from repro.sql.printer import format_statement

    for text in ("ANALYZE", "ANALYZE lineitem", "EXPLAIN SELECT 1"):
        stmt = parse_statement(text)
        printed = format_statement(stmt)
        again = parse_statement(printed)
        assert format_statement(again) == printed
    assert format_statement(ast.AnalyzeStmt(table="t")) == "ANALYZE t"
    assert format_statement(ast.AnalyzeStmt()) == "ANALYZE"
