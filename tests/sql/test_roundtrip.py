"""Parse→deparse→parse round-trips for rewritten query trees.

The rewrites emit ``IS NOT DISTINCT FROM`` joins and parenthesized
compound subselects; both now re-parse, so every rewritten tree must

1. deparse to SQL the repro parser accepts,
2. re-analyze and deparse to *identical* text (deparse is a fixpoint),
3. re-execute as ordinary SQL to the same multiset of rows as the
   direct ``SELECT PROVENANCE`` execution.
"""

from __future__ import annotations

from collections import Counter

import pytest

import repro
from repro.analyzer.analyzer import Analyzer
from repro.sql import ast
from repro.sql.deparse import deparse_query
from repro.sql.parser import parse_expression, parse_sql


@pytest.fixture
def db(example_db):
    return example_db


# Witness + polynomial rewrites across the three node classes.
ROUNDTRIP_QUERIES = [
    # SPJ
    "SELECT PROVENANCE name FROM shop WHERE numempl < 10",
    "SELECT PROVENANCE name, price FROM shop, sales, items "
    "WHERE name = sname AND itemid = id",
    "SELECT PROVENANCE (polynomial) name FROM shop WHERE numempl < 10",
    "SELECT PROVENANCE (polynomial) name FROM shop ORDER BY numempl",
    # ASPJ (null-safe group joins)
    "SELECT PROVENANCE name, count(*) AS c FROM shop, sales "
    "WHERE name = sname GROUP BY name",
    "SELECT PROVENANCE (polynomial) sname, count(*) AS c "
    "FROM sales GROUP BY sname ORDER BY c DESC",
    # Set operations (parenthesized compound subselects)
    "SELECT PROVENANCE name FROM shop UNION ALL SELECT sname FROM sales",
    "SELECT PROVENANCE name FROM shop INTERSECT SELECT sname FROM sales",
    "SELECT PROVENANCE sname FROM sales EXCEPT ALL SELECT name FROM shop",
    "SELECT PROVENANCE (polynomial) name FROM shop UNION SELECT sname FROM sales",
    # Sublinks (left-join attachment + IN filter)
    "SELECT PROVENANCE name FROM shop WHERE name IN (SELECT sname FROM sales)",
]


@pytest.mark.parametrize("sql", ROUNDTRIP_QUERIES)
def test_rewritten_tree_roundtrips(db, sql):
    rewritten = db.rewritten_sql(sql)

    statements = parse_sql(rewritten)  # 1. re-parses
    assert len(statements) == 1

    query = Analyzer(db.catalog).analyze(statements[0])
    assert deparse_query(query) == rewritten  # 2. deparse fixpoint

    direct = db.execute(sql)  # 3. same result as ordinary SQL
    replayed = db.execute(rewritten)
    assert replayed.columns == direct.columns
    assert Counter(map(repr, replayed.rows)) == Counter(map(repr, direct.rows))


def test_is_not_distinct_from_parses():
    expr = parse_expression("a IS NOT DISTINCT FROM b")
    assert isinstance(expr, ast.DistinctExpr)
    assert expr.negated is True
    expr = parse_expression("a IS DISTINCT FROM 3")
    assert isinstance(expr, ast.DistinctExpr)
    assert expr.negated is False


def test_is_null_still_parses():
    assert isinstance(parse_expression("a IS NULL"), ast.IsNullExpr)
    parsed = parse_expression("a IS NOT NULL")
    assert isinstance(parsed, ast.IsNullExpr) and parsed.negated


def test_null_safe_semantics_of_reparsed_form(db):
    db.execute("CREATE TABLE n (x integer)")
    db.execute("INSERT INTO n VALUES (1), (NULL)")
    rows = db.execute(
        "SELECT a.x, b.x FROM n AS a, n AS b WHERE a.x IS NOT DISTINCT FROM b.x"
    ).rows
    assert Counter(rows) == Counter([(1, 1), (None, None)])
    rows = db.execute(
        "SELECT a.x, b.x FROM n AS a, n AS b WHERE a.x IS DISTINCT FROM b.x"
    ).rows
    assert Counter(rows) == Counter([(1, None), (None, 1)])


def test_distinct_expr_printer_roundtrip():
    expr = parse_expression("a IS NOT DISTINCT FROM b")
    assert isinstance(parse_expression(str(expr)), ast.DistinctExpr)
