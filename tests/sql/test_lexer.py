"""Lexer unit tests."""

from __future__ import annotations

import pytest

from repro.errors import LexError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


def test_empty_input_yields_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].kind is TokenKind.EOF


def test_keywords_are_uppercased():
    assert values("select from where") == ["SELECT", "FROM", "WHERE"]
    assert kinds("select") == [TokenKind.KEYWORD]


def test_identifiers_are_lowercased():
    assert values("Foo BAR_baz qux1") == ["foo", "bar_baz", "qux1"]
    assert kinds("foo") == [TokenKind.IDENT]


def test_quoted_identifiers_preserve_case():
    tokens = tokenize('"MixedCase"')
    assert tokens[0].kind is TokenKind.IDENT
    assert tokens[0].value == "MixedCase"


def test_quoted_identifier_with_escaped_quote():
    tokens = tokenize('"a""b"')
    assert tokens[0].value == 'a"b'


def test_unterminated_quoted_identifier():
    with pytest.raises(LexError):
        tokenize('"oops')


def test_integer_and_decimal_numbers():
    assert values("1 23 4.5 0.001 1e3 2.5E-2") == ["1", "23", "4.5", "0.001", "1e3", "2.5E-2"]
    assert all(k is TokenKind.NUMBER for k in kinds("1 4.5 1e3"))


def test_number_starting_with_dot():
    tokens = tokenize(".5")
    assert tokens[0].kind is TokenKind.NUMBER
    assert tokens[0].value == ".5"


def test_string_literal_with_escape():
    tokens = tokenize("'it''s'")
    assert tokens[0].kind is TokenKind.STRING
    assert tokens[0].value == "it's"


def test_unterminated_string():
    with pytest.raises(LexError) as excinfo:
        tokenize("'oops")
    assert excinfo.value.position == 0


def test_operators_longest_match():
    assert values("a <= b <> c || d") == ["a", "<=", "b", "<>", "c", "||", "d"]


def test_not_equals_alias():
    assert values("a != b") == ["a", "!=", "b"]


def test_punctuation():
    assert values("(a, b);") == ["(", "a", ",", "b", ")", ";"]


def test_line_comment_is_skipped():
    assert values("a -- comment here\n b") == ["a", "b"]


def test_line_comment_at_end_without_newline():
    assert values("a -- trailing") == ["a"]


def test_block_comment_is_skipped():
    assert values("a /* multi\nline */ b") == ["a", "b"]


def test_unterminated_block_comment():
    with pytest.raises(LexError):
        tokenize("a /* oops")


def test_minus_is_operator_not_comment():
    assert values("a - b") == ["a", "-", "b"]


def test_positions_are_character_offsets():
    tokens = tokenize("ab  cd")
    assert tokens[0].position == 0
    assert tokens[1].position == 4


def test_unexpected_character():
    with pytest.raises(LexError):
        tokenize("a ? b")


def test_provenance_keywords_are_reserved():
    assert values("provenance baserelation") == ["PROVENANCE", "BASERELATION"]
    assert kinds("provenance") == [TokenKind.KEYWORD]


def test_dollar_in_identifier_tail():
    assert values("a$1") == ["a$1"]
