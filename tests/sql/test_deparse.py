"""Deparser tests: rewritten query trees rendered as SQL."""

from __future__ import annotations

from collections import Counter

import pytest

import repro


@pytest.fixture
def db(example_db):
    return example_db


def test_spj_rewrite_deparses_and_reexecutes(db):
    sql = "SELECT PROVENANCE name FROM shop WHERE numempl < 10"
    rewritten = db.rewritten_sql(sql)
    assert "prov_shop_name" in rewritten
    assert "prov_shop_numempl" in rewritten
    # The deparsed SPJ rewrite is plain SQL: re-executing it must produce
    # the same rows as the original PROVENANCE query.
    direct = db.execute(sql)
    roundtrip = db.execute(rewritten)
    assert Counter(direct.rows) == Counter(roundtrip.rows)


def test_plain_query_roundtrip(db):
    sql = (
        "SELECT name, numempl * 2 AS doubled FROM shop "
        "WHERE numempl BETWEEN 1 AND 20 ORDER BY doubled DESC LIMIT 1"
    )
    rewritten = db.rewritten_sql(sql)
    assert db.execute(rewritten).rows == db.execute(sql).rows


def test_aggregation_rewrite_structure(db):
    # optimized=False: this test pins the *rewriter's* R5 shape; the
    # optimizer legitimately collapses perm_prov into the top-level join.
    rewritten = db.rewritten_sql(
        "SELECT PROVENANCE name, sum(price) FROM shop, sales, items "
        "WHERE name = sname AND itemid = id GROUP BY name",
        optimized=False,
    )
    # R5 structure: the original aggregation and the stripped duplicate
    # joined on the (null-safe) grouping attributes.
    assert "IS NOT DISTINCT FROM" in rewritten
    assert "perm_agg" in rewritten and "perm_prov" in rewritten
    assert "sum(" in rewritten


def test_setop_rewrite_structure(db):
    db.execute("CREATE TABLE r2 (a integer)")
    db.execute("CREATE TABLE s2 (a integer)")
    rewritten = db.rewritten_sql(
        "SELECT PROVENANCE a FROM r2 UNION SELECT a FROM s2"
    )
    assert "UNION" in rewritten
    assert "LEFT JOIN" in rewritten
    assert "prov_r2_a" in rewritten and "prov_s2_a" in rewritten


def test_sublink_rewrite_shows_left_join(db):
    # optimized=False: pins the rewriter's sublink join shape (the
    # optimizer pulls the perm_sublink wrapper up into the join tree).
    rewritten = db.rewritten_sql(
        "SELECT PROVENANCE name FROM shop WHERE name IN (SELECT sname FROM sales)",
        optimized=False,
    )
    assert "LEFT JOIN" in rewritten
    assert "perm_sublink_0" in rewritten
    assert "= ANY" in rewritten  # the original filtering sublink remains


def test_deparse_scalar_functions(db):
    # optimized=False: constant folding would evaluate the EXTRACT.
    rewritten = db.rewritten_sql(
        "SELECT SUBSTRING(name FROM 1 FOR 2), CAST(numempl AS text), "
        "EXTRACT(YEAR FROM DATE '1995-06-17') FROM shop",
        optimized=False,
    )
    assert "SUBSTRING(shop.name FROM 1 FOR 2)" in rewritten
    assert "CAST(shop.numempl AS text)" in rewritten
    assert "EXTRACT(YEAR FROM DATE '1995-06-17')" in rewritten
    assert db.execute(rewritten).columns[0] == "substr"


def test_deparse_case_and_like(db):
    sql = (
        "SELECT CASE WHEN name LIKE 'M%' THEN 'm' ELSE 'other' END AS tag "
        "FROM shop"
    )
    rewritten = db.rewritten_sql(sql)
    assert "CASE WHEN" in rewritten and "LIKE 'M%'" in rewritten
    assert sorted(db.execute(rewritten).rows) == sorted(db.execute(sql).rows)


def test_deparse_string_escaping(db):
    rewritten = db.rewritten_sql("SELECT 'it''s' FROM shop")
    assert "'it''s'" in rewritten
    assert db.execute(rewritten).rows[0][0] == "it's"


def test_deparse_interval_literals(db):
    # optimized=False: constant folding collapses date ± interval.
    rewritten = db.rewritten_sql(
        "SELECT DATE '1995-01-01' + INTERVAL '3' MONTH, "
        "DATE '1995-01-01' + INTERVAL '1' YEAR, "
        "DATE '1995-01-01' + INTERVAL '7' DAY FROM shop",
        optimized=False,
    )
    assert "INTERVAL '3' MONTH" in rewritten
    assert "INTERVAL '1' YEAR" in rewritten
    assert "INTERVAL '7' DAY" in rewritten


def test_deparse_nested_subquery(db):
    sql = "SELECT v FROM (SELECT numempl AS v FROM shop) AS sub WHERE v > 5"
    # optimized=False: subquery pull-up would inline ``sub``.
    rewritten = db.rewritten_sql(sql, optimized=False)
    assert "AS sub" in rewritten
    assert db.execute(rewritten).rows == db.execute(sql).rows


def test_deparse_order_and_nulls(db):
    rewritten = db.rewritten_sql(
        "SELECT name FROM shop ORDER BY name DESC NULLS LAST"
    )
    assert "ORDER BY shop.name DESC NULLS LAST" in rewritten
