"""Bag-semantics relation and heap table unit tests."""

from __future__ import annotations

import pytest

from repro.catalog.schema import Column, TableSchema
from repro.datatypes import SQLType
from repro.errors import ExecutionError
from repro.storage.relation import Relation
from repro.storage.table import Table


def test_from_rows_counts_duplicates():
    rel = Relation.from_rows(["a"], [(1,), (1,), (2,)])
    assert rel.multiplicity((1,)) == 2
    assert rel.multiplicity((2,)) == 1
    assert rel.multiplicity((3,)) == 0
    assert len(rel) == 3
    assert rel.distinct_count() == 2


def test_from_rows_checks_width():
    with pytest.raises(ValueError):
        Relation.from_rows(["a", "b"], [(1,)])


def test_from_counted_merges():
    rel = Relation.from_counted(["a"], [((1,), 2), ((1,), 3)])
    assert rel.multiplicity((1,)) == 5


def test_non_positive_multiplicities_dropped():
    from collections import Counter

    rel = Relation(["a"], Counter({(1,): 0, (2,): -3, (3,): 1}))
    assert rel.to_set() == {(3,)}


def test_rows_repeats_by_multiplicity():
    rel = Relation.from_counted(["a"], [((1,), 3)])
    assert list(rel.rows()) == [(1,), (1,), (1,)]


def test_bag_equality():
    left = Relation.from_rows(["a"], [(1,), (1,), (2,)])
    right = Relation.from_rows(["a"], [(2,), (1,), (1,)])
    assert left == right
    assert left != Relation.from_rows(["a"], [(1,), (2,)])


def test_bag_equality_requires_same_columns():
    left = Relation.from_rows(["a"], [(1,)])
    right = Relation.from_rows(["b"], [(1,)])
    assert left != right
    assert left.bag_equal(right)  # name-insensitive variant


def test_set_equal_ignores_multiplicities():
    left = Relation.from_rows(["a"], [(1,), (1,)])
    right = Relation.from_rows(["a"], [(1,)])
    assert left.set_equal(right)
    assert not left == right


def test_project_columns():
    rel = Relation.from_rows(["a", "b"], [(1, "x"), (1, "y"), (1, "x")])
    projected = rel.project_columns(["a"])
    assert projected.multiplicity((1,)) == 3
    assert projected.columns == ("a",)


def test_project_unknown_column():
    rel = Relation.from_rows(["a"], [(1,)])
    with pytest.raises(KeyError):
        rel.project_columns(["zzz"])


def test_rename():
    rel = Relation.from_rows(["a"], [(1,)])
    renamed = rel.rename(["x"])
    assert renamed.columns == ("x",)
    with pytest.raises(ValueError):
        rel.rename(["x", "y"])


def test_empty_relation_is_falsy():
    assert not Relation.empty(["a"])
    assert Relation.from_rows(["a"], [(1,)])


def test_pretty_renders_header_and_rows():
    rel = Relation.from_rows(["a", "b"], [(1, None)])
    text = rel.pretty()
    assert "a" in text and "b" in text and "NULL" in text


def test_pretty_truncates():
    rel = Relation.from_rows(["a"], [(i,) for i in range(30)])
    assert "more rows" in rel.pretty(limit=5)


# -- tables -----------------------------------------------------------------------------


def _schema() -> TableSchema:
    return TableSchema(
        "t", [Column("a", SQLType.INTEGER), Column("b", SQLType.TEXT)]
    )


def test_table_insert_and_scan():
    table = Table(_schema())
    table.insert((1, "x"))
    table.insert_many([(2, "y"), (3, "z")])
    assert table.row_count() == 3
    assert list(table.scan())[0] == (1, "x")


def test_table_insert_wrong_width():
    table = Table(_schema())
    with pytest.raises(ExecutionError):
        table.insert((1,))


def test_table_truncate():
    table = Table(_schema(), rows=[(1, "x")])
    table.truncate()
    assert len(table) == 0


def test_table_to_relation():
    table = Table(_schema(), rows=[(1, "x"), (1, "x")])
    rel = table.to_relation()
    assert rel.multiplicity((1, "x")) == 2


def test_schema_rejects_duplicate_columns():
    with pytest.raises(ValueError):
        TableSchema("t", [Column("a", SQLType.INTEGER), Column("A", SQLType.TEXT)])


def test_schema_rejects_unknown_pk_column():
    with pytest.raises(ValueError):
        TableSchema("t", [Column("a", SQLType.INTEGER)], primary_key=("b",))


def test_schema_column_lookup_case_insensitive():
    schema = _schema()
    assert schema.column_index("A") == 0
    assert schema.has_column("B")
    assert schema.column("b").type is SQLType.TEXT
