"""Catalog unit tests: tables, views, name collisions."""

from __future__ import annotations

import pytest

from repro.catalog.catalog import Catalog, ViewDefinition
from repro.catalog.schema import TableSchema
from repro.datatypes import SQLType
from repro.errors import CatalogError
from repro.sql.parser import parse_statement


def _schema(name: str = "t") -> TableSchema:
    return TableSchema.of(name, [("a", SQLType.INTEGER)])


def _view(name: str = "v") -> ViewDefinition:
    return ViewDefinition(name=name, sql="SELECT 1 AS x", statement=parse_statement("SELECT 1 AS x"))


def test_create_and_lookup_table():
    catalog = Catalog()
    table = catalog.create_table(_schema())
    assert catalog.table("t") is table
    assert catalog.table("T") is table  # case-insensitive
    assert catalog.has_table("t")
    assert catalog.has_relation("t")


def test_duplicate_table_rejected():
    catalog = Catalog()
    catalog.create_table(_schema())
    with pytest.raises(CatalogError):
        catalog.create_table(_schema())


def test_table_name_cannot_collide_with_view():
    catalog = Catalog()
    catalog.create_view(_view("x"))
    with pytest.raises(CatalogError):
        catalog.create_table(_schema("x"))


def test_drop_table():
    catalog = Catalog()
    catalog.create_table(_schema())
    catalog.drop_table("t")
    assert not catalog.has_table("t")
    with pytest.raises(CatalogError):
        catalog.drop_table("t")
    catalog.drop_table("t", missing_ok=True)


def test_missing_table_lookup():
    with pytest.raises(CatalogError):
        Catalog().table("nope")


def test_create_and_lookup_view():
    catalog = Catalog()
    catalog.create_view(_view())
    assert catalog.view("v").sql == "SELECT 1 AS x"
    assert catalog.has_view("V")
    assert catalog.has_relation("v")


def test_duplicate_view_rejected():
    catalog = Catalog()
    catalog.create_view(_view())
    with pytest.raises(CatalogError):
        catalog.create_view(_view())


def test_drop_view():
    catalog = Catalog()
    catalog.create_view(_view())
    catalog.drop_view("v")
    assert not catalog.has_view("v")
    with pytest.raises(CatalogError):
        catalog.drop_view("v")
    catalog.drop_view("v", missing_ok=True)


def test_tables_listing():
    catalog = Catalog()
    catalog.create_table(_schema("a"))
    catalog.create_table(_schema("b"))
    assert {t.name for t in catalog.tables()} == {"a", "b"}
