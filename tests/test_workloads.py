"""Workload generators: valid SQL, deterministic, correct shapes."""

from __future__ import annotations

import pytest

from repro.sql.parser import parse_statement
from repro.sql import ast
from repro.tpch.dbgen import tpch_database
from repro.workloads import (
    aggregation_chain,
    selection_queries,
    setop_queries,
    spj_queries,
)


@pytest.fixture(scope="module")
def db():
    return tpch_database(scale_factor=0.001)


def test_setop_queries_parse_and_run(db):
    for sql in setop_queries(3, count=4, max_partkey=200, seed=1):
        parse_statement(sql)
        db.execute(sql)


def test_setop_single_leaf_is_plain_select():
    (sql,) = setop_queries(1, count=1, max_partkey=100, seed=0)
    assert "UNION" not in sql and "INTERSECT" not in sql


def test_setop_leaf_count():
    (sql,) = setop_queries(4, count=1, max_partkey=100, seed=0)
    assert sql.count("SELECT") == 4


def test_setop_fixed_operator():
    (sql,) = setop_queries(4, count=1, max_partkey=100, seed=0, operator="UNION")
    assert "INTERSECT" not in sql


def test_setop_provenance_flag():
    (sql,) = setop_queries(2, count=1, max_partkey=100, seed=0, provenance=True)
    assert sql.count("PROVENANCE") == 1
    stmt = parse_statement(sql)
    assert isinstance(stmt, ast.SetOpSelect)
    assert stmt.provenance


def test_spj_queries_run_and_provenance(db):
    for sql in spj_queries(3, count=3, max_partkey=200, seed=2):
        db.execute(sql)
    for sql in spj_queries(3, count=2, max_partkey=200, seed=2, provenance=True):
        result = db.execute(sql)
        assert any(c.startswith("prov_") for c in result.columns)


def test_spj_leaf_count():
    (sql,) = spj_queries(5, count=1, max_partkey=100, seed=0)
    assert sql.count("FROM part") == 5


def test_aggregation_chain_depth(db):
    sql = aggregation_chain(3, part_count=200)
    assert sql.count("GROUP BY") == 3
    result = db.execute(sql)
    assert len(result) >= 1


def test_aggregation_chain_provenance_reaches_base(db):
    sql = aggregation_chain(2, part_count=200, provenance=True)
    result = db.execute(sql)
    assert "prov_part_p_partkey" in result.columns
    # Deep chains keep exactly one provenance block (a single base access).
    assert len([c for c in result.columns if c.startswith("prov_")]) == 9


def test_aggregation_chain_group_sizes():
    sql = aggregation_chain(4, part_count=10000)
    # numGrp = 4th root of 10000 = 10.
    assert "/ 10" in sql


def test_selection_queries(db):
    max_key = db.catalog.table("supplier").row_count()
    queries = selection_queries(5, max_key, seed=3)
    assert len(queries) == 5
    for sql in queries:
        db.execute(sql)
    prov = selection_queries(2, max_key, seed=3, provenance=True)
    for sql in prov:
        result = db.execute(sql)
        assert "prov_supplier_s_suppkey" in result.columns


def test_generators_are_deterministic():
    assert setop_queries(3, 2, 100, seed=5) == setop_queries(3, 2, 100, seed=5)
    assert spj_queries(3, 2, 100, seed=5) == spj_queries(3, 2, 100, seed=5)
    assert selection_queries(3, 100, seed=5) == selection_queries(3, 100, seed=5)
