"""Expression evaluation through the full pipeline (SQL -> result).

These tests exercise compiled expressions with SQL three-valued logic,
PostgreSQL-compatible arithmetic, string/date functions and CASE.
"""

from __future__ import annotations

import datetime

import pytest

import repro
from repro.errors import ExecutionError


@pytest.fixture
def db():
    return repro.connect()


def scalar(db, expression):
    return db.execute(f"SELECT {expression}").scalar()


# -- literals and arithmetic ------------------------------------------------------


def test_integer_arithmetic(db):
    assert scalar(db, "1 + 2 * 3") == 7
    assert scalar(db, "(1 + 2) * 3") == 9
    assert scalar(db, "10 - 4 - 3") == 3


def test_integer_division_truncates_like_postgres(db):
    assert scalar(db, "7 / 2") == 3
    assert scalar(db, "-7 / 2") == -3  # truncation toward zero
    assert scalar(db, "1 / 2") == 0


def test_float_division(db):
    assert scalar(db, "7.0 / 2") == 3.5


def test_division_by_zero(db):
    with pytest.raises(ExecutionError, match="division by zero"):
        scalar(db, "1 / 0")


def test_modulo_sign_follows_dividend(db):
    assert scalar(db, "7 % 3") == 1
    assert scalar(db, "-7 % 3") == -1
    assert scalar(db, "7 % -3") == 1


def test_unary_minus(db):
    assert scalar(db, "-(2 + 3)") == -5


def test_null_propagates_through_arithmetic(db):
    assert scalar(db, "1 + NULL") is None
    assert scalar(db, "NULL * 3") is None


# -- three-valued logic --------------------------------------------------------------


def test_comparison_with_null_is_null(db):
    assert scalar(db, "1 = NULL") is None
    assert scalar(db, "NULL <> NULL") is None


def test_and_or_three_valued(db):
    assert scalar(db, "FALSE AND NULL") is False
    assert scalar(db, "TRUE AND NULL") is None
    assert scalar(db, "TRUE OR NULL") is True
    assert scalar(db, "FALSE OR NULL") is None


def test_not_three_valued(db):
    assert scalar(db, "NOT TRUE") is False
    assert scalar(db, "NOT NULL") is None


def test_is_null(db):
    assert scalar(db, "NULL IS NULL") is True
    assert scalar(db, "1 IS NULL") is False
    assert scalar(db, "1 IS NOT NULL") is True


def test_in_list_three_valued(db):
    assert scalar(db, "1 IN (1, 2)") is True
    assert scalar(db, "3 IN (1, 2)") is False
    assert scalar(db, "3 IN (1, NULL)") is None
    assert scalar(db, "3 NOT IN (1, NULL)") is None
    assert scalar(db, "1 NOT IN (2, 3)") is True


def test_between(db):
    assert scalar(db, "2 BETWEEN 1 AND 3") is True
    assert scalar(db, "0 NOT BETWEEN 1 AND 3") is True


# -- strings ------------------------------------------------------------------------------


def test_concatenation(db):
    assert scalar(db, "'a' || 'b' || 'c'") == "abc"
    assert scalar(db, "'n=' || 5") == "n=5"
    assert scalar(db, "'x' || NULL") is None


def test_like_patterns(db):
    assert scalar(db, "'hello' LIKE 'h%'") is True
    assert scalar(db, "'hello' LIKE 'h_llo'") is True
    assert scalar(db, "'hello' LIKE 'H%'") is False  # case sensitive
    assert scalar(db, "'hello' NOT LIKE '%z%'") is True
    assert scalar(db, "'50%' LIKE '50\\%'") is True  # escaped wildcard


def test_like_with_null(db):
    assert scalar(db, "NULL LIKE 'x'") is None


def test_like_regex_metacharacters_escaped(db):
    assert scalar(db, "'a.b' LIKE 'a.b'") is True
    assert scalar(db, "'axb' LIKE 'a.b'") is False


def test_string_functions(db):
    assert scalar(db, "upper('abc')") == "ABC"
    assert scalar(db, "lower('ABC')") == "abc"
    assert scalar(db, "length('abcd')") == 4
    assert scalar(db, "trim('  x  ')") == "x"
    assert scalar(db, "strpos('hello', 'll')") == 3
    assert scalar(db, "SUBSTRING('hello' FROM 2 FOR 3)") == "ell"
    assert scalar(db, "SUBSTRING('hello', 4)") == "lo"


def test_substring_clamps(db):
    assert scalar(db, "SUBSTRING('abc' FROM 0 FOR 2)") == "a"


# -- numeric functions -------------------------------------------------------------------------


def test_numeric_functions(db):
    assert scalar(db, "abs(-3)") == 3
    assert scalar(db, "round(2.567, 2)") == 2.57
    assert scalar(db, "floor(2.7)") == 2.0
    assert scalar(db, "ceil(2.1)") == 3.0
    assert scalar(db, "sqrt(9)") == 3.0
    assert scalar(db, "power(2, 10)") == 1024.0
    assert scalar(db, "mod(7, 3)") == 1


def test_conditional_functions(db):
    assert scalar(db, "coalesce(NULL, NULL, 3)") == 3
    assert scalar(db, "coalesce(NULL, NULL)") is None
    assert scalar(db, "nullif(1, 1)") is None
    assert scalar(db, "nullif(1, 2)") == 1
    assert scalar(db, "greatest(1, NULL, 3)") == 3
    assert scalar(db, "least(5, 2, NULL)") == 2


# -- dates ------------------------------------------------------------------------------------------


def test_date_literals_and_arithmetic(db):
    assert scalar(db, "DATE '1995-06-17'") == datetime.date(1995, 6, 17)
    assert scalar(db, "DATE '1995-01-01' + INTERVAL '90' DAY") == datetime.date(1995, 4, 1)
    assert scalar(db, "DATE '1995-01-01' + INTERVAL '3' MONTH") == datetime.date(1995, 4, 1)
    assert scalar(db, "DATE '1995-01-01' + INTERVAL '1' YEAR") == datetime.date(1996, 1, 1)
    assert scalar(db, "DATE '1995-01-31' - INTERVAL '1' MONTH") == datetime.date(1994, 12, 31)
    assert scalar(db, "DATE '1995-03-01' - DATE '1995-02-01'") == 28


def test_extract(db):
    assert scalar(db, "EXTRACT(YEAR FROM DATE '1995-06-17')") == 1995
    assert scalar(db, "EXTRACT(MONTH FROM DATE '1995-06-17')") == 6
    assert scalar(db, "EXTRACT(DAY FROM DATE '1995-06-17')") == 17


def test_date_comparison(db):
    assert scalar(db, "DATE '1995-01-01' < DATE '1995-01-02'") is True


# -- CASE -----------------------------------------------------------------------------------------------


def test_case_searched(db):
    assert scalar(db, "CASE WHEN 1 = 1 THEN 'yes' ELSE 'no' END") == "yes"
    assert scalar(db, "CASE WHEN 1 = 2 THEN 'yes' END") is None


def test_case_first_match_wins(db):
    assert scalar(db, "CASE WHEN TRUE THEN 1 WHEN TRUE THEN 2 END") == 1


def test_case_null_condition_is_not_a_match(db):
    assert scalar(db, "CASE WHEN NULL THEN 1 ELSE 2 END") == 2


def test_case_simple(db):
    assert scalar(db, "CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END") == "two"


# -- casts ------------------------------------------------------------------------------------------------


def test_casts(db):
    assert scalar(db, "CAST('42' AS integer)") == 42
    assert scalar(db, "CAST(3 AS float)") == 3.0
    assert scalar(db, "CAST(3.9 AS integer)") == 3
    assert scalar(db, "CAST(17 AS text)") == "17"
    assert scalar(db, "CAST('1995-06-17' AS date)") == datetime.date(1995, 6, 17)
    assert scalar(db, "CAST(NULL AS integer)") is None
