"""Unit tests for the vectorized batch engine.

Covers the Chunk representation (selection vectors, dual backing),
batch expression kernels (3VL, short-circuit fidelity), node-level
batch behaviors, the per-execution state reset that makes prepared
plans re-runnable, and ``explain(analyze=True)``.
"""

from __future__ import annotations

import pytest

import repro
from repro.catalog.schema import Column, TableSchema
from repro.datatypes import SQLType
from repro.errors import ExecutionError
from repro.executor.context import ExecContext
from repro.storage.chunk import Chunk, chunk_rows
from repro.storage.table import Table


# ---------------------------------------------------------------------------
# Chunk representation
# ---------------------------------------------------------------------------


def test_chunk_column_and_rows_roundtrip():
    chunk = Chunk.from_columns([[1, 2, 3], ["a", "b", "c"]], 3)
    assert len(chunk) == 3
    assert chunk.column(1) == ["a", "b", "c"]
    assert chunk.rows() == [(1, "a"), (2, "b"), (3, "c")]


def test_chunk_selection_vector_gathers_lazily():
    chunk = Chunk.from_columns([[1, 2, 3, 4], [10, 20, 30, 40]], 4)
    filtered = chunk.with_sel([0, 2])
    assert len(filtered) == 2
    assert filtered.column(1) == [10, 30]
    assert filtered.rows() == [(1, 10), (3, 30)]
    # The underlying columns are untouched (shared, not copied).
    assert filtered.physical_columns()[0] is chunk.physical_columns()[0]


def test_chunk_select_composes_selections():
    chunk = Chunk.from_columns([[0, 1, 2, 3, 4]], 5)
    first = chunk.with_sel([1, 2, 4])
    second = first.select([0, 2])  # logical positions into first
    assert second.rows() == [(1,), (4,)]


def test_chunk_row_backed_extracts_single_column():
    chunk = Chunk.from_rows([(1, "x"), (2, "y")], 2)
    assert chunk.is_row_backed()
    assert chunk.column(0) == [1, 2]
    assert chunk.column(1) == ["x", "y"]


def test_chunk_project_zero_copy_on_columns():
    chunk = Chunk.from_columns([[1], [2], [3]], 1)
    projected = chunk.project([2, 0])
    assert projected.rows() == [(3, 1)]
    assert projected.physical_columns()[0] is chunk.physical_columns()[2]


def test_chunk_phys_rows_shared_through_selection():
    heap_rows = [(1, "a"), (2, "b"), (3, "c")]
    chunk = Chunk(
        columns=[[1, 2, 3], ["a", "b", "c"]], nrows=3, phys_rows=heap_rows
    )
    filtered = chunk.with_sel([2, 0])
    rows = filtered.rows()
    assert rows == [(3, "c"), (1, "a")]
    assert rows[0] is heap_rows[2]  # original tuples, not rebuilt ones


def test_chunk_slice_and_compact():
    chunk = Chunk.from_columns([[0, 1, 2, 3]], 4).with_sel([1, 2, 3])
    assert chunk.slice(1, 3).rows() == [(2,), (3,)]
    compacted = chunk.compact()
    assert compacted.sel is None
    assert compacted.rows() == [(1,), (2,), (3,)]


def test_chunk_rows_rechunks_by_batch_size():
    chunks = list(chunk_rows(iter([(i,) for i in range(10)]), 1, batch_size=4))
    assert [len(c) for c in chunks] == [4, 4, 2]
    assert chunks[2].rows() == [(8,), (9,)]


def test_table_scan_chunks_narrow_and_batched():
    schema = TableSchema(
        "t", [Column("a", SQLType.INTEGER), Column("b", SQLType.TEXT)]
    )
    table = Table(schema, [(i, f"r{i}") for i in range(5)])
    chunks = list(table.scan_chunks(batch_size=2, columns=[1]))
    assert [len(c) for c in chunks] == [2, 2, 1]
    assert chunks[0].rows() == [("r0",), ("r1",)]
    # Single-batch scans hand out the cached columns without copying.
    (whole,) = table.scan_chunks(batch_size=100)
    assert whole.physical_columns()[0] is table.columnar()[0]


def test_table_columnar_cache_invalidated_by_insert():
    schema = TableSchema("t", [Column("a", SQLType.INTEGER)])
    table = Table(schema, [(1,)])
    assert table.columnar() == [[1]]
    table.insert((2,))
    assert table.columnar() == [[1, 2]]
    table.truncate()
    assert table.columnar() == [[]]


def test_table_columnar_cache_invalidated_by_truncate_same_count():
    # Regression: truncate() + reinserting the SAME number of rows must
    # not serve the pre-truncate columns (row count alone cannot tell;
    # the epoch can).
    schema = TableSchema("t", [Column("a", SQLType.INTEGER)])
    table = Table(schema, [(1,), (2,)])
    assert table.columnar() == [[1, 2]]
    table.truncate()
    table.insert_many([(10,), (20,)])
    assert table.columnar() == [[10, 20]]


def test_vectorized_scan_sees_truncate_and_reload():
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    assert sorted(db.execute("SELECT a FROM t").rows) == [(1,), (2,)]
    db.catalog.table("t").truncate()
    db.execute("INSERT INTO t VALUES (10), (20)")
    assert sorted(db.execute("SELECT a FROM t").rows) == [(10,), (20,)]


# ---------------------------------------------------------------------------
# Batch kernels: 3VL and short-circuit fidelity
# ---------------------------------------------------------------------------


def _db(vectorize=True):
    db = repro.connect(vectorize=vectorize)
    db.execute("CREATE TABLE t (a integer, b integer)")
    db.execute("INSERT INTO t VALUES (1, 10), (2, 0), (NULL, 5), (4, NULL)")
    return db


def test_batch_three_valued_comparison():
    rows = _db().execute("SELECT a > 1 FROM t").rows
    assert rows == [(False,), (True,), (None,), (True,)]


def test_batch_and_short_circuits_division():
    # Row semantics: b <> 0 fails first, so a / b never runs on b = 0.
    # The batch AND must preserve that via sub-selection evaluation.
    rows = _db().execute("SELECT a FROM t WHERE b <> 0 AND a / b >= 0").rows
    assert rows == [(1,)]


def test_batch_case_evaluates_only_matching_arms():
    rows = _db().execute(
        "SELECT CASE WHEN b = 0 THEN -1 ELSE a / b END FROM t WHERE a = 2"
    ).rows
    assert rows == [(-1,)]


def test_batch_division_by_zero_still_raises():
    with pytest.raises(ExecutionError):
        _db().execute("SELECT a / b FROM t")


def test_batch_in_list_with_null_semantics():
    rows = _db().execute("SELECT a IN (1, NULL) FROM t WHERE b = 5").rows
    assert rows == [(None,)]
    rows = _db().execute("SELECT a NOT IN (1, 2) FROM t").rows
    assert rows == [(False,), (False,), (None,), (True,)]


def test_batch_sort_null_ordering_matches_row_engine():
    for vectorize in (True, False):
        rows = _db(vectorize).execute(
            "SELECT b FROM t ORDER BY b DESC NULLS LAST"
        ).rows
        assert rows == [(10,), (5,), (0,), (None,)]


def test_batch_limit_offset_spanning_chunks():
    db = repro.connect()
    db.execute("CREATE TABLE n (v integer)")
    db.load_table("n", [(i,) for i in range(100)])
    rows = db.execute("SELECT v FROM n ORDER BY v LIMIT 5 OFFSET 97").rows
    assert rows == [(97,), (98,), (99,)]


def test_batch_grand_aggregate_on_empty_input():
    db = repro.connect()
    db.execute("CREATE TABLE e (v integer)")
    rows = db.execute("SELECT count(*), sum(v), avg(v) FROM e").rows
    assert rows == [(0, None, None)]


# ---------------------------------------------------------------------------
# Satellite: prepared statements re-execute against live data
# ---------------------------------------------------------------------------


def test_prepared_query_sees_mutations_after_prepare():
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    prepared = db.prepare("SELECT a FROM t ORDER BY a")
    assert prepared.run().rows == [(1,), (2,)]
    db.execute("INSERT INTO t VALUES (3)")
    # PR-3 known limit (now fixed): per-plan caches made a re-run
    # return stale rows after table mutation.
    assert prepared.run().rows == [(1,), (2,), (3,)]


def test_prepared_query_refreshes_materialized_shared_subplans():
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    # The two identical subqueries share one materialized subplan.
    sql = (
        "SELECT x.a, y.a FROM (SELECT a FROM t) AS x, (SELECT a FROM t) AS y "
        "WHERE x.a = y.a ORDER BY x.a"
    )
    prepared = db.prepare(sql)
    assert prepared.run().rows == [(1, 1), (2, 2)]
    db.execute("INSERT INTO t VALUES (5)")
    assert prepared.run().rows == [(1, 1), (2, 2), (5, 5)]


def test_prepared_query_refreshes_sublink_caches():
    for vectorize in (True, False):
        db = repro.connect(vectorize=vectorize)
        db.execute("CREATE TABLE t (a integer)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        prepared = db.prepare("SELECT a FROM t WHERE a = (SELECT max(a) FROM t)")
        assert prepared.run().rows == [(2,)]
        db.execute("INSERT INTO t VALUES (7)")
        assert prepared.run().rows == [(7,)]


def test_backend_plan_cache_invalidated_by_ddl():
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer)")
    db.execute("INSERT INTO t VALUES (1)")
    assert db.execute("SELECT a FROM t").rows == [(1,)]
    db.execute("DROP TABLE t")
    db.execute("CREATE TABLE t (a integer, b integer)")
    db.execute("INSERT INTO t VALUES (4, 5)")
    assert db.execute("SELECT * FROM t").rows == [(4, 5)]


# ---------------------------------------------------------------------------
# Satellite: explain(analyze=True)
# ---------------------------------------------------------------------------


def test_explain_analyze_reports_rows_batches_and_time():
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer)")
    db.load_table("t", [(i,) for i in range(50)])
    text = db.explain("SELECT a FROM t WHERE a < 10", analyze=True)
    assert "physical plan (analyzed, vectorized)" in text
    assert "actual rows=10" in text
    assert "batches=" in text
    assert "time=" in text
    assert "-- execution: 10 rows" in text


def test_explain_analyze_row_mode():
    db = repro.connect(vectorize=False)
    db.execute("CREATE TABLE t (a integer)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    text = db.explain("SELECT a FROM t", analyze=True)
    assert "physical plan (analyzed, row-at-a-time)" in text
    assert "actual rows=2" in text
    assert "batches=" not in text


def test_explain_without_analyze_does_not_execute():
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer)")
    text = db.explain("SELECT a FROM t")
    assert "actual rows" not in text


# ---------------------------------------------------------------------------
# The vectorize toggle
# ---------------------------------------------------------------------------


def test_vectorize_toggle_switches_execution_mode():
    db = repro.connect()
    assert db.vectorize_enabled
    assert "vectorized" in db.backend.describe()
    db.vectorize_enabled = False
    assert "row-at-a-time" in db.backend.describe()
    db.execute("CREATE TABLE t (a integer)")
    db.execute("INSERT INTO t VALUES (1)")
    assert db.execute("SELECT a FROM t").rows == [(1,)]


def test_row_bridge_composes_with_batch_parents():
    # A plan whose node lacks batch kernels must still stream through
    # run_batches via the base-class bridge.
    from repro.executor.nodes import ValuesNode, FilterNode

    values = ValuesNode([(1,), (2,), (3,)], ["v"])
    filtered = FilterNode(values, lambda row, ctx: row[0] > 1)  # row-only
    ctx = ExecContext(batch_size=2)
    rows = [row for chunk in filtered.run_batches(ctx) for row in chunk.rows()]
    assert rows == [(2,), (3,)]
