"""Execution semantics: joins, aggregation, distinct, sort, limit, set ops."""

from __future__ import annotations

from collections import Counter

import pytest

import repro


@pytest.fixture
def db():
    database = repro.connect()
    database.execute("CREATE TABLE l (id integer, v text)")
    database.execute("CREATE TABLE r (id integer, w text)")
    database.execute(
        "INSERT INTO l VALUES (1, 'a'), (2, 'b'), (3, 'c'), (NULL, 'n')"
    )
    database.execute("INSERT INTO r VALUES (2, 'x'), (3, 'y'), (4, 'z'), (NULL, 'm')")
    return database


def rows(db, sql):
    return sorted(db.execute(sql).rows, key=repr)


# -- joins -----------------------------------------------------------------------


def test_inner_join(db):
    result = rows(db, "SELECT l.id, w FROM l JOIN r ON l.id = r.id")
    assert result == [(2, "x"), (3, "y")]


def test_comma_join_with_where_equals_inner_join(db):
    explicit = rows(db, "SELECT l.id, w FROM l JOIN r ON l.id = r.id")
    implicit = rows(db, "SELECT l.id, w FROM l, r WHERE l.id = r.id")
    assert explicit == implicit


def test_null_keys_never_match(db):
    result = rows(db, "SELECT l.v, r.w FROM l JOIN r ON l.id = r.id")
    assert ("n", "m") not in result


def test_left_join_null_extends(db):
    result = rows(db, "SELECT l.id, w FROM l LEFT JOIN r ON l.id = r.id")
    assert (1, None) in result
    assert (None, None) in result  # the NULL-key row survives null-extended
    assert len(result) == 4


def test_right_join(db):
    result = rows(db, "SELECT v, r.id FROM l RIGHT JOIN r ON l.id = r.id")
    assert (None, 4) in result
    assert (None, None) in result
    assert len(result) == 4


def test_full_join(db):
    result = rows(db, "SELECT v, w FROM l FULL JOIN r ON l.id = r.id")
    assert len(result) == 6  # 2 matches + 2 left-only + 2 right-only


def test_cross_join(db):
    result = db.execute("SELECT 1 FROM l CROSS JOIN r")
    assert len(result) == 16


def test_join_on_complex_condition(db):
    # Non-equi condition exercises the nested-loop path.
    result = rows(db, "SELECT l.id, r.id FROM l JOIN r ON l.id < r.id")
    assert (1, 2) in result and (3, 4) in result and (3, 2) not in result


def test_left_join_with_residual_condition(db):
    # ON with equi + extra predicate: the residual must be part of the join,
    # not a post-filter (unmatched rows survive).
    result = rows(
        db,
        "SELECT l.id, w FROM l LEFT JOIN r ON l.id = r.id AND r.w = 'x'",
    )
    assert (2, "x") in result
    assert (3, None) in result  # 3 matched the key but failed the residual


# -- aggregation ----------------------------------------------------------------------


def test_grand_aggregate_over_empty_input(db):
    result = db.execute("SELECT count(*), sum(id), min(id) FROM l WHERE id > 100")
    assert result.rows == [(0, None, None)]


def test_group_by_empty_input_yields_no_rows(db):
    result = db.execute("SELECT v, count(*) FROM l WHERE id > 100 GROUP BY v")
    assert result.rows == []


def test_aggregates_skip_nulls(db):
    result = db.execute("SELECT count(id), count(*), avg(id) FROM l")
    assert result.rows == [(3, 4, 2.0)]


def test_group_by_null_forms_its_own_group(db):
    result = rows(db, "SELECT id, count(*) FROM l GROUP BY id")
    assert (None, 1) in result
    assert len(result) == 4


def test_sum_min_max(db):
    result = db.execute("SELECT sum(id), min(id), max(id) FROM l")
    assert result.rows == [(6, 1, 3)]


def test_count_distinct(db):
    db.execute("INSERT INTO l VALUES (1, 'dup')")
    result = db.execute("SELECT count(DISTINCT id) FROM l")
    assert result.rows == [(3,)]


def test_sum_distinct(db):
    db.execute("INSERT INTO l VALUES (1, 'dup')")
    assert db.execute("SELECT sum(DISTINCT id) FROM l").scalar() == 6
    assert db.execute("SELECT sum(id) FROM l").scalar() == 7


def test_having_filters_groups(db):
    db.execute("INSERT INTO l VALUES (2, 'bb')")
    result = rows(db, "SELECT id, count(*) FROM l GROUP BY id HAVING count(*) > 1")
    assert result == [(2, 2)]


def test_aggregate_of_expression(db):
    assert db.execute("SELECT sum(id * 2) FROM l").scalar() == 12


def test_group_by_expression(db):
    result = rows(db, "SELECT id % 2, count(*) FROM l WHERE id IS NOT NULL GROUP BY id % 2")
    assert result == [(0, 1), (1, 2)]


# -- distinct ---------------------------------------------------------------------------------


def test_select_distinct(db):
    db.execute("INSERT INTO l VALUES (1, 'a')")
    result = db.execute("SELECT DISTINCT id, v FROM l")
    assert len(result) == 4


def test_distinct_treats_nulls_as_equal(db):
    db.execute("INSERT INTO l VALUES (NULL, 'n')")
    result = db.execute("SELECT DISTINCT id, v FROM l")
    assert len(result) == 4


# -- sorting and limits ---------------------------------------------------------------------------


def test_order_by_asc_nulls_last(db):
    result = db.execute("SELECT id FROM l ORDER BY id").rows
    assert result == [(1,), (2,), (3,), (None,)]


def test_order_by_desc_nulls_first(db):
    result = db.execute("SELECT id FROM l ORDER BY id DESC").rows
    assert result == [(None,), (3,), (2,), (1,)]


def test_order_by_explicit_nulls(db):
    asc_first = db.execute("SELECT id FROM l ORDER BY id NULLS FIRST").rows
    assert asc_first[0] == (None,)
    desc_last = db.execute("SELECT id FROM l ORDER BY id DESC NULLS LAST").rows
    assert desc_last[-1] == (None,)


def test_multi_key_sort(db):
    db.execute("CREATE TABLE m (a integer, b integer)")
    db.execute("INSERT INTO m VALUES (1, 2), (1, 1), (2, 1), (2, 3)")
    result = db.execute("SELECT a, b FROM m ORDER BY a, b DESC").rows
    assert result == [(1, 2), (1, 1), (2, 3), (2, 1)]


def test_order_by_hidden_expression(db):
    result = db.execute(
        "SELECT v FROM l WHERE id IS NOT NULL ORDER BY id * -1"
    ).rows
    assert result == [("c",), ("b",), ("a",)]


def test_limit_offset(db):
    result = db.execute("SELECT id FROM l ORDER BY id LIMIT 2 OFFSET 1").rows
    assert result == [(2,), (3,)]


def test_limit_zero(db):
    assert db.execute("SELECT id FROM l LIMIT 0").rows == []


# -- set operations ---------------------------------------------------------------------------------


@pytest.fixture
def setdb():
    database = repro.connect()
    database.execute("CREATE TABLE a (x integer)")
    database.execute("CREATE TABLE b (x integer)")
    database.execute("INSERT INTO a VALUES (1), (2), (2), (3)")
    database.execute("INSERT INTO b VALUES (2), (3), (3), (4)")
    return database


def bag(result):
    return Counter(result.rows)


def test_union_distinct(setdb):
    result = setdb.execute("SELECT x FROM a UNION SELECT x FROM b")
    assert bag(result) == Counter({(1,): 1, (2,): 1, (3,): 1, (4,): 1})


def test_union_all(setdb):
    result = setdb.execute("SELECT x FROM a UNION ALL SELECT x FROM b")
    assert bag(result) == Counter({(1,): 1, (2,): 3, (3,): 3, (4,): 1})


def test_intersect_distinct(setdb):
    result = setdb.execute("SELECT x FROM a INTERSECT SELECT x FROM b")
    assert bag(result) == Counter({(2,): 1, (3,): 1})


def test_intersect_all_uses_min_multiplicity(setdb):
    result = setdb.execute("SELECT x FROM a INTERSECT ALL SELECT x FROM b")
    assert bag(result) == Counter({(2,): 1, (3,): 1})


def test_except_distinct(setdb):
    result = setdb.execute("SELECT x FROM a EXCEPT SELECT x FROM b")
    assert bag(result) == Counter({(1,): 1})


def test_except_all_subtracts_multiplicities(setdb):
    result = setdb.execute("SELECT x FROM a EXCEPT ALL SELECT x FROM b")
    assert bag(result) == Counter({(1,): 1, (2,): 1})


def test_three_way_setop(setdb):
    setdb.execute("CREATE TABLE c (x integer)")
    setdb.execute("INSERT INTO c VALUES (1)")
    result = setdb.execute(
        "SELECT x FROM a UNION SELECT x FROM b EXCEPT SELECT x FROM c"
    )
    assert bag(result) == Counter({(2,): 1, (3,): 1, (4,): 1})


def test_setop_null_handling(setdb):
    setdb.execute("INSERT INTO a VALUES (NULL)")
    setdb.execute("INSERT INTO b VALUES (NULL)")
    result = setdb.execute("SELECT x FROM a INTERSECT SELECT x FROM b")
    assert (None,) in result.rows  # set ops treat NULLs as equal


def test_setop_order_by_and_limit(setdb):
    result = setdb.execute(
        "SELECT x FROM a UNION SELECT x FROM b ORDER BY x DESC LIMIT 2"
    )
    assert result.rows == [(4,), (3,)]
