"""Differential suite: fused pipelines ≡ per-operator batch pipelines.

Pipeline fusion (:mod:`repro.executor.fusion`) collapses each
scan→filter→project chain of a vectorized plan into one generated
kernel.  It must be semantically invisible: every query returns the same
result multiset with ``fuse_pipelines=True`` and ``False``.  Checked
over the paper's shop/sales/items examples, the TPC-H SF-tiny workload
(normal, provenance and polynomial forms, on both the cost-based and
heuristic planners), and hypothesis-generated scan→filter→project
pipelines sweeping the expression shapes the kernel emitter inlines.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.tpch.dbgen import tpch_database
from repro.tpch.qgen import generate_query
from repro.tpch.queries import SUPPORTED_QUERIES

from tests.backends.support import assert_same_result
from tests.executor.test_vectorized_differential import (
    _EXAMPLE_QUERIES,
    _EXAMPLE_SETUP,
)


def _example_db(fuse: bool) -> repro.PermDatabase:
    db = repro.connect(fuse_pipelines=fuse)
    for statement in _EXAMPLE_SETUP:
        db.execute(statement)
    return db


@pytest.mark.parametrize("sql", _EXAMPLE_QUERIES)
def test_paper_examples_match(sql):
    reference = _example_db(fuse=False).execute(sql)
    candidate = _example_db(fuse=True).execute(sql)
    assert_same_result(reference, candidate, context=f"fused: {sql!r}")


# ---------------------------------------------------------------------------
# TPC-H SF-tiny: both planners, normal / provenance / polynomial forms
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module", params=[True, False], ids=["cost", "heuristic"])
def tpch_dbs(request):
    databases = {}
    for fuse in (False, True):
        db = tpch_database(scale_factor=0.001, seed=42)
        db.cost_based_enabled = request.param
        db.fuse_pipelines_enabled = fuse
        if request.param:
            db.execute("ANALYZE")
        databases[fuse] = db
    return databases


def _compare(tpch_dbs, sql, tag):
    reference = tpch_dbs[False].execute(sql)
    candidate = tpch_dbs[True].execute(sql)
    assert_same_result(reference, candidate, context=tag)
    return reference, candidate


@pytest.mark.parametrize("number", SUPPORTED_QUERIES)
def test_tpch_normal_match(tpch_dbs, number):
    sql = generate_query(number, seed=7)
    _compare(tpch_dbs, sql, f"Q{number} normal")


@pytest.mark.parametrize("number", SUPPORTED_QUERIES)
def test_tpch_provenance_match(tpch_dbs, number):
    sql = generate_query(number, seed=7, provenance=True)
    _compare(tpch_dbs, sql, f"Q{number} provenance")


@pytest.mark.parametrize("number", (1, 3, 6, 12))
def test_tpch_polynomial_match(tpch_dbs, number):
    sql = generate_query(number, seed=7, provenance=True).replace(
        "SELECT PROVENANCE", "SELECT PROVENANCE (polynomial)", 1
    )
    reference, candidate = _compare(tpch_dbs, sql, f"Q{number} polynomial")
    # Annotations are canonical N[X] polynomials: exact equality holds.
    assert sorted(map(str, reference.annotations())) == sorted(
        map(str, candidate.annotations())
    )


# ---------------------------------------------------------------------------
# Hypothesis: random SPJ pipelines over random small tables
# ---------------------------------------------------------------------------

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_value = st.one_of(st.none(), st.integers(min_value=-2, max_value=3))
_text = st.one_of(st.none(), st.sampled_from(["ab", "ba", "abc", "", "a%b"]))
_rows = st.lists(st.tuples(_value, _value, _text), max_size=8)

# Predicate fragments sweeping every construct the fused-kernel emitter
# inlines: 3VL comparisons, AND/OR/NOT nesting, IS NULL, LIKE, IN lists,
# CASE, null-safe comparison, arithmetic, and scalar function calls.
_PREDICATES = (
    "a {cmp} {k}",
    "a {cmp} b",
    "NOT (a {cmp} {k})",
    "a {cmp} {k} AND b IS NOT NULL",
    "a {cmp} {k} OR NOT (b {cmp} 1)",
    "NOT (a {cmp} {k} AND b {cmp} 0)",
    "a IS NULL OR b {cmp} {k}",
    "t LIKE 'a%'",
    "t LIKE '%b' AND a {cmp} {k}",
    "a IN (0, 1, {k})",
    "a NOT IN (1, {k})",
    "a + b {cmp} {k}",
    "a * 2 - b {cmp} {k}",
    "abs(a) {cmp} {k}",
    "CASE WHEN a {cmp} {k} THEN b ELSE a END = 1",
    "a IS NOT DISTINCT FROM b",
    "coalesce(a, b, 0) {cmp} {k}",
)

_TARGETS = (
    "a, b, t",
    "a + b, t",
    "a, -b",
    "CASE WHEN a IS NULL THEN 0 ELSE a END, b",
    "abs(b), length(t)",
    "a IS DISTINCT FROM b, coalesce(t, 'x')",
    "t || '!', b",
)


@st.composite
def _pipelines(draw) -> str:
    predicate = draw(st.sampled_from(_PREDICATES)).format(
        cmp=draw(st.sampled_from(["=", "<", ">", "<=", ">=", "<>"])),
        k=draw(st.integers(min_value=-1, max_value=2)),
    )
    targets = draw(st.sampled_from(_TARGETS))
    provenance = draw(st.sampled_from(["", "PROVENANCE "]))
    return f"SELECT {provenance}{targets} FROM r WHERE {predicate}"


@given(rows=_rows, sql=_pipelines())
@_SETTINGS
def test_hypothesis_fused_equivalence(rows, sql):
    results = []
    for fuse in (False, True):
        db = repro.connect(fuse_pipelines=fuse)
        db.execute("CREATE TABLE r (a integer, b integer, t text)")
        db.load_table("r", rows)
        results.append(db.execute(sql))
    assert_same_result(results[0], results[1], context=sql)


# ---------------------------------------------------------------------------
# Residual outer joins: two-phase kernel (fused) ≡ per-pair closure (unfused)
# ---------------------------------------------------------------------------
#
# ``fuse_pipelines`` also selects the outer-join residual strategy in
# ``HashJoin.run_batches`` — the batch-kernel two-phase filter-then-
# reconcile when on, the per-pair row closure when off — so both-side
# residuals on every outer join type are differentially covered here.
# NULL join keys and NULL residual operands exercise 3VL verdicts
# (a NULL verdict must not match, but must still null-extend).


def _residual_db(fuse: bool) -> repro.PermDatabase:
    db = repro.connect(fuse_pipelines=fuse)
    db.execute("CREATE TABLE l (lk integer, lv integer, lt text)")
    db.execute("CREATE TABLE r (rk integer, rv integer, rt text)")
    db.load_table(
        "l",
        [(1, 10, "ab"), (1, None, "ba"), (2, 5, None), (None, 7, "x"), (3, 0, "y")],
    )
    db.load_table(
        "r",
        [(1, 8, "ab"), (1, 12, None), (2, None, "z"), (None, 1, "w"), (4, 2, "q")],
    )
    return db


_RESIDUAL_JOINS = [
    "l LEFT JOIN r ON lk = rk AND lv < rv",
    "l LEFT JOIN r ON lk = rk AND lv + rv > 12",
    "l LEFT JOIN r ON lk = rk AND (lt = rt OR rv IS NULL)",
    "l RIGHT JOIN r ON lk = rk AND lv < rv",
    "l FULL JOIN r ON lk = rk AND lv * 2 <> rv",
    "l FULL JOIN r ON lk = rk AND coalesce(lv, 0) <= coalesce(rv, 0)",
]


@pytest.mark.parametrize("join", _RESIDUAL_JOINS)
@pytest.mark.parametrize("provenance", ("", "PROVENANCE "), ids=["plain", "prov"])
def test_residual_outer_join_match(join, provenance):
    sql = f"SELECT {provenance}* FROM {join}"
    reference = _residual_db(fuse=False).execute(sql)
    candidate = _residual_db(fuse=True).execute(sql)
    assert_same_result(reference, candidate, context=sql)
