"""The hashed-probe batch kernels for uncorrelated ANY/ALL sublinks.

Every 3VL edge case is pinned against the row engine: NULL test values,
NULLs among the subquery values, empty subqueries, and all six
operators in both quantifiers.  (The former per-row fallback made these
the largest remaining scalar loops inside batch plans.)
"""

from __future__ import annotations

import pytest

import repro


def _db(vectorize: bool, values) -> repro.PermDatabase:
    db = repro.connect(vectorize=vectorize)
    db.execute("CREATE TABLE t (x integer)")
    db.execute("CREATE TABLE sub (y integer)")
    db.load_table("t", [(0,), (1,), (2,), (3,), (None,)])
    db.load_table("sub", [(v,) for v in values])
    return db


_SUBQUERY_VALUES = (
    (),
    (1,),
    (1, 2),
    (1, None),
    (None,),
    (1, 1, 3),
)

_PREDICATES = tuple(
    f"x {op} {quantifier} (SELECT y FROM sub)"
    for op in ("=", "<>", "<", "<=", ">", ">=")
    for quantifier in ("ANY", "ALL")
) + (
    "x IN (SELECT y FROM sub)",
    "x NOT IN (SELECT y FROM sub)",
)


@pytest.mark.parametrize("values", _SUBQUERY_VALUES, ids=repr)
@pytest.mark.parametrize("predicate", _PREDICATES)
def test_batch_matches_row_engine(values, predicate):
    sql = f"SELECT x FROM t WHERE {predicate}"
    row = sorted(map(repr, _db(False, values).execute(sql).rows))
    batch = sorted(map(repr, _db(True, values).execute(sql).rows))
    assert batch == row, f"{predicate} over {values}"


@pytest.mark.parametrize("values", _SUBQUERY_VALUES, ids=repr)
def test_negated_quantifier_matches(values):
    # NOT over the kernel's None results must keep 3VL (None stays None).
    sql = "SELECT x FROM t WHERE NOT (x = ANY (SELECT y FROM sub))"
    row = sorted(map(repr, _db(False, values).execute(sql).rows))
    batch = sorted(map(repr, _db(True, values).execute(sql).rows))
    assert batch == row


def test_projection_position_sees_null_verdicts():
    # In the select list the 3VL verdict itself is visible (not just its
    # filtering effect), so None/True/False must match exactly.
    for values in _SUBQUERY_VALUES:
        sql = "SELECT x, x > ALL (SELECT y FROM sub) FROM t"
        row = sorted(map(repr, _db(False, values).execute(sql).rows))
        batch = sorted(map(repr, _db(True, values).execute(sql).rows))
        assert batch == row, f"values={values}"


def test_subquery_evaluates_once_per_execution():
    db = _db(True, (1, 2))
    result = db.execute("SELECT count(*) FROM t WHERE x = ANY (SELECT y FROM sub)")
    assert result.scalar() == 2
    # Mutating the subquery table between executions is visible (the
    # digest lives in the per-execution context, not the plan).
    db.execute("INSERT INTO sub VALUES (3)")
    result = db.execute("SELECT count(*) FROM t WHERE x = ANY (SELECT y FROM sub)")
    assert result.scalar() == 3
