"""Sublink execution: scalar, EXISTS, ANY/ALL, correlated re-execution."""

from __future__ import annotations

import pytest

import repro
from repro.errors import ExecutionError


@pytest.fixture
def db():
    database = repro.connect()
    database.execute("CREATE TABLE emp (name text, dept integer, salary integer)")
    database.execute("CREATE TABLE dept (id integer, budget integer)")
    database.execute(
        "INSERT INTO emp VALUES ('ann', 1, 100), ('bob', 1, 200), "
        "('cat', 2, 150), ('dan', NULL, 50)"
    )
    database.execute("INSERT INTO dept VALUES (1, 1000), (2, 500)")
    return database


# -- scalar sublinks ----------------------------------------------------------


def test_scalar_sublink_in_where(db):
    result = db.execute(
        "SELECT name FROM emp WHERE salary > (SELECT avg(salary) FROM emp)"
    )
    assert sorted(result.rows) == [("bob",), ("cat",)]


def test_scalar_sublink_in_select_list(db):
    result = db.execute("SELECT name, (SELECT max(salary) FROM emp) FROM emp")
    assert all(row[1] == 200 for row in result.rows)


def test_scalar_sublink_empty_is_null(db):
    value = db.execute("SELECT (SELECT salary FROM emp WHERE salary > 999)").scalar()
    assert value is None


def test_scalar_sublink_multiple_rows_error(db):
    with pytest.raises(ExecutionError, match="more than one row"):
        db.execute("SELECT (SELECT salary FROM emp)")


# -- EXISTS -------------------------------------------------------------------------


def test_exists_uncorrelated(db):
    assert len(db.execute("SELECT 1 FROM emp WHERE EXISTS (SELECT 1 FROM dept)")) == 4
    assert (
        len(
            db.execute(
                "SELECT 1 FROM emp WHERE EXISTS (SELECT 1 FROM dept WHERE id > 99)"
            )
        )
        == 0
    )


def test_not_exists(db):
    result = db.execute(
        "SELECT 1 FROM emp WHERE NOT EXISTS (SELECT 1 FROM dept WHERE id > 99)"
    )
    assert len(result) == 4


def test_exists_correlated(db):
    result = db.execute(
        "SELECT name FROM emp WHERE EXISTS "
        "(SELECT 1 FROM dept WHERE dept.id = emp.dept AND budget > 600)"
    )
    assert sorted(result.rows) == [("ann",), ("bob",)]


# -- IN / ANY / ALL -------------------------------------------------------------------


def test_in_subquery(db):
    result = db.execute("SELECT name FROM emp WHERE dept IN (SELECT id FROM dept)")
    assert len(result) == 3  # dan's NULL dept does not match


def test_not_in_subquery(db):
    db.execute("CREATE TABLE small (id integer)")
    db.execute("INSERT INTO small VALUES (2)")
    result = db.execute("SELECT name FROM emp WHERE dept NOT IN (SELECT id FROM small)")
    assert sorted(result.rows) == [("ann",), ("bob",)]


def test_not_in_with_null_in_subquery_filters_all(db):
    db.execute("CREATE TABLE withnull (id integer)")
    db.execute("INSERT INTO withnull VALUES (99), (NULL)")
    result = db.execute(
        "SELECT name FROM emp WHERE dept NOT IN (SELECT id FROM withnull)"
    )
    assert result.rows == []  # NULL makes NOT IN unknown for every row


def test_any_with_operator(db):
    result = db.execute(
        "SELECT name FROM emp WHERE salary > ANY (SELECT budget / 5 FROM dept)"
    )
    assert sorted(result.rows) == [("bob",), ("cat",)]


def test_all_with_operator(db):
    result = db.execute(
        "SELECT name FROM emp WHERE salary <= ALL (SELECT salary FROM emp)"
    )
    assert result.rows == [("dan",)]


def test_any_over_empty_subquery_is_false(db):
    result = db.execute(
        "SELECT 1 FROM emp WHERE salary = ANY (SELECT salary FROM emp WHERE salary > 999)"
    )
    assert result.rows == []


def test_all_over_empty_subquery_is_true(db):
    result = db.execute(
        "SELECT 1 FROM emp WHERE salary > ALL (SELECT salary FROM emp WHERE salary > 999)"
    )
    assert len(result) == 4


# -- correlated scalar sublinks -----------------------------------------------------------


def test_correlated_scalar_in_select(db):
    result = db.execute(
        "SELECT name, (SELECT budget FROM dept WHERE id = emp.dept) FROM emp"
    )
    as_dict = dict(result.rows)
    assert as_dict == {"ann": 1000, "bob": 1000, "cat": 500, "dan": None}


def test_correlated_comparison_with_group(db):
    # Employees earning more than their department's average.
    result = db.execute(
        "SELECT name FROM emp WHERE salary > "
        "(SELECT avg(salary) FROM emp AS inner_emp WHERE inner_emp.dept = emp.dept)"
    )
    assert sorted(result.rows) == [("bob",)]


def test_doubly_nested_correlation(db):
    result = db.execute(
        "SELECT name FROM emp WHERE EXISTS ("
        "  SELECT 1 FROM dept WHERE dept.id = emp.dept AND EXISTS ("
        "    SELECT 1 FROM emp AS e2 WHERE e2.dept = dept.id AND e2.salary > 150))"
    )
    assert sorted(result.rows) == [("ann",), ("bob",)]


def test_sublink_in_having(db):
    result = db.execute(
        "SELECT dept, sum(salary) FROM emp GROUP BY dept "
        "HAVING sum(salary) > (SELECT avg(salary) FROM emp)"
    )
    assert sorted(result.rows, key=repr) == [(1, 300), (2, 150)]
