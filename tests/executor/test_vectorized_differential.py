"""Differential suite: vectorized engine ≡ row engine.

The batch executor must be semantically invisible: every query returns
the same result multiset (float summation tolerance aside — partial
sums regroup across chunks) with ``vectorize=True`` and
``vectorize=False``.  Checked over the paper's shop/sales/items
examples, the TPC-H SF-tiny workload (normal, provenance and
polynomial-provenance forms), and hypothesis-generated queries covering
every operator shape.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.tpch.dbgen import tpch_database
from repro.tpch.qgen import generate_query
from repro.tpch.queries import SUPPORTED_QUERIES

from tests.backends.support import assert_same_result

_EXAMPLE_SETUP = (
    "CREATE TABLE shop (name text, numempl integer)",
    "CREATE TABLE sales (sname text, itemid integer)",
    "CREATE TABLE items (id integer, price integer)",
    "INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14)",
    "INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), "
    "('Merdies', 2), ('Joba', 3), ('Joba', 3)",
    "INSERT INTO items VALUES (1, 100), (2, 10), (3, 25)",
)

# The paper's running examples plus shapes exercising every batch node:
# filtered scans, joins (hash + nested loop, outer), aggregation (grand
# and grouped, HAVING), DISTINCT, set operations, sorting with NULLs,
# LIMIT/OFFSET, sublinks (scalar/EXISTS/IN, correlated), CASE and LIKE.
_EXAMPLE_QUERIES = (
    "SELECT PROVENANCE name FROM shop WHERE numempl < 10",
    "SELECT PROVENANCE name, sum(price) FROM shop, sales, items "
    "WHERE name = sname AND itemid = id GROUP BY name",
    "SELECT PROVENANCE name FROM shop WHERE name IN (SELECT sname FROM sales)",
    "SELECT PROVENANCE sname FROM sales UNION SELECT name FROM shop",
    "SELECT PROVENANCE * FROM (SELECT sname AS n, itemid FROM sales "
    "WHERE itemid > 1) AS sub",
    "SELECT PROVENANCE name, (SELECT max(price) FROM items) FROM shop",
    "SELECT PROVENANCE (polynomial) name FROM shop WHERE numempl < 10",
    "SELECT PROVENANCE (polynomial) sname, count(*) FROM sales GROUP BY sname",
    "SELECT name, total FROM shop, (SELECT sname, count(*) AS total "
    "FROM sales GROUP BY sname) AS agg WHERE name = sname AND total > 1",
    "SELECT DISTINCT sname FROM sales ORDER BY itemid",
    "SELECT name FROM shop LEFT JOIN sales ON name = sname AND itemid > 2",
    "SELECT sname FROM sales INTERSECT SELECT name FROM shop",
    "SELECT sname FROM sales EXCEPT ALL SELECT sname FROM sales WHERE itemid = 2",
    "SELECT CASE WHEN numempl < 10 THEN 'small' ELSE 'big' END FROM shop",
    "SELECT name FROM shop WHERE name LIKE 'M%'",
    "SELECT name FROM shop WHERE EXISTS "
    "(SELECT 1 FROM sales WHERE sname = name AND itemid = 2)",
    "SELECT sname, itemid FROM sales ORDER BY itemid DESC LIMIT 2 OFFSET 1",
    "SELECT count(*), sum(itemid), min(sname), max(itemid), avg(itemid) FROM sales",
    "SELECT sum(itemid) FROM sales WHERE itemid > 99",
    "SELECT name, (SELECT count(*) FROM sales WHERE sname = name) FROM shop",
)


def _example_db(vectorize: bool) -> repro.PermDatabase:
    db = repro.connect(vectorize=vectorize)
    for statement in _EXAMPLE_SETUP:
        db.execute(statement)
    return db


@pytest.mark.parametrize("sql", _EXAMPLE_QUERIES)
def test_paper_examples_match(sql):
    reference = _example_db(vectorize=False).execute(sql)
    candidate = _example_db(vectorize=True).execute(sql)
    assert_same_result(reference, candidate, context=f"vectorized: {sql!r}")


# ---------------------------------------------------------------------------
# TPC-H SF-tiny: normal, provenance, and polynomial forms
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tpch_dbs():
    databases = {}
    for vectorize in (False, True):
        db = tpch_database(scale_factor=0.001, seed=42)
        db.vectorize_enabled = vectorize
        databases[vectorize] = db
    return databases


def _compare(tpch_dbs, sql, tag):
    reference = tpch_dbs[False].execute(sql)
    candidate = tpch_dbs[True].execute(sql)
    assert_same_result(reference, candidate, context=tag)
    return reference, candidate


@pytest.mark.parametrize("number", SUPPORTED_QUERIES)
def test_tpch_normal_match(tpch_dbs, number):
    sql = generate_query(number, seed=7)
    _compare(tpch_dbs, sql, f"Q{number} normal")


@pytest.mark.parametrize("number", SUPPORTED_QUERIES)
def test_tpch_provenance_match(tpch_dbs, number):
    sql = generate_query(number, seed=7, provenance=True)
    _compare(tpch_dbs, sql, f"Q{number} provenance")


@pytest.mark.parametrize("number", (1, 3, 6, 12))
def test_tpch_polynomial_match(tpch_dbs, number):
    sql = generate_query(number, seed=7, provenance=True).replace(
        "SELECT PROVENANCE", "SELECT PROVENANCE (polynomial)", 1
    )
    reference, candidate = _compare(tpch_dbs, sql, f"Q{number} polynomial")
    # Annotations are canonical N[X] polynomials: exact equality holds.
    assert sorted(map(str, reference.annotations())) == sorted(
        map(str, candidate.annotations())
    )


# ---------------------------------------------------------------------------
# Hypothesis: random small databases × random query shapes
# ---------------------------------------------------------------------------

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_value = st.integers(min_value=0, max_value=3)
_rows_r = st.lists(st.tuples(_value, st.one_of(st.none(), _value)), max_size=6)
_rows_s = st.lists(st.tuples(_value, _value), max_size=5)


@st.composite
def _queries(draw) -> str:
    shape = draw(
        st.sampled_from(
            ["spj", "subquery", "agg", "setop", "sublink", "outer", "scalar"]
        )
    )
    comparison = draw(st.sampled_from(["=", "<", ">", "<=", ">=", "<>"]))
    constant = draw(_value)
    provenance = draw(st.sampled_from(["", "PROVENANCE "]))
    if shape == "spj":
        return f"SELECT {provenance}k, v FROM r WHERE k {comparison} {constant}"
    if shape == "subquery":
        return (
            f"SELECT {provenance}a, b FROM "
            f"(SELECT k AS a, v AS b FROM r WHERE k {comparison} {constant}) "
            "AS sub WHERE a IS NOT NULL"
        )
    if shape == "agg":
        having = draw(st.sampled_from(["", " HAVING count(*) > 1"]))
        return (
            f"SELECT {provenance}k, sum(v), count(*) FROM r "
            f"WHERE k {comparison} {constant} GROUP BY k{having}"
        )
    if shape == "setop":
        op = draw(st.sampled_from(["UNION", "UNION ALL", "INTERSECT", "EXCEPT"]))
        return (
            f"SELECT {provenance}a FROM (SELECT k AS a FROM r {op} "
            f"SELECT k2 FROM s) AS u WHERE a {comparison} {constant}"
        )
    if shape == "sublink":
        negated = draw(st.sampled_from(["", "NOT "]))
        return (
            f"SELECT {provenance}k FROM r WHERE v IS NOT NULL AND "
            f"k {negated}IN (SELECT k2 FROM s)"
        )
    if shape == "outer":
        return (
            f"SELECT {provenance}k, w FROM r LEFT JOIN "
            f"(SELECT k2 AS j, w FROM s WHERE w {comparison} {constant}) "
            "AS sub ON k = j"
        )
    return (
        f"SELECT {provenance}k FROM r "
        f"WHERE v {comparison} (SELECT max(w) FROM s)"
    )


@given(rows_r=_rows_r, rows_s=_rows_s, sql=_queries())
@_SETTINGS
def test_hypothesis_vectorized_equivalence(rows_r, rows_s, sql):
    results = []
    for vectorize in (False, True):
        db = repro.connect(vectorize=vectorize)
        db.execute("CREATE TABLE r (k integer, v integer)")
        db.execute("CREATE TABLE s (k2 integer, w integer)")
        db.load_table("r", rows_r)
        db.load_table("s", rows_s)
        results.append(db.execute(sql))
    assert_same_result(results[0], results[1], context=sql)
