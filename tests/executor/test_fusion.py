"""Unit tests for pipeline-fused kernel codegen (repro.executor.fusion).

The differential guarantees live in test_fused_differential.py; these
tests pin the mechanics: which chains fuse, which fall back, how the
toggle threads through connect()/the shell, and that the fused node
composes with EXPLAIN instrumentation and morsel parallelism.
"""

from __future__ import annotations

import pytest

import repro
from repro.executor.fusion import FusedPipelineNode, fuse_pipelines
from repro.executor.nodes import SeqScan


@pytest.fixture()
def db():
    database = repro.connect()
    database.execute("CREATE TABLE t (a integer, b integer, s text)")
    database.execute(
        "INSERT INTO t VALUES (1, 2, 'ab'), (3, 4, 'ba'), "
        "(NULL, 5, NULL), (7, 0, 'abc')"
    )
    return database


def test_explain_shows_fused_boundary(db):
    plan = db.explain("SELECT a + b FROM t WHERE a > 1 AND b < 5")
    assert "FusedPipeline [2 preds -> 1 cols]" in plan
    assert "SeqScan on t" in plan


def test_fused_results_correct(db):
    result = db.execute("SELECT a + b FROM t WHERE a > 1 AND b < 5")
    assert sorted(result.rows) == [(7,), (7,)]


def test_explain_analyze_instruments_fused_node(db):
    plan = db.explain("SELECT a FROM t WHERE a > 1", analyze=True)
    assert "FusedPipeline" in plan
    assert "actual rows=2" in plan


def test_toggle_disables_fusion(db):
    db.fuse_pipelines_enabled = False
    assert "FusedPipeline" not in db.explain("SELECT a FROM t WHERE a > 1")
    db.fuse_pipelines_enabled = True
    assert "FusedPipeline" in db.explain("SELECT a FROM t WHERE a > 1")


def test_connect_flag_disables_fusion():
    db = repro.connect(fuse_pipelines=False)
    db.execute("CREATE TABLE t (a integer)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    assert "FusedPipeline" not in db.explain("SELECT a FROM t WHERE a > 1")
    assert db.execute("SELECT a FROM t WHERE a > 1").rows == [(2,)]


def test_row_engine_never_fuses(db):
    db.vectorize_enabled = False
    assert "FusedPipeline" not in db.explain("SELECT a FROM t WHERE a > 1")


def test_projection_only_chain_not_fused(db):
    # No predicate: nothing to fuse — the zero-copy column paths of the
    # per-operator pipeline are already optimal.
    assert "FusedPipeline" not in db.explain("SELECT a FROM t")


def test_row_only_predicate_falls_back(db):
    # A sublink in WHERE has no batch form: the conjunct poisons the
    # fusion metadata and the plan keeps per-operator execution.
    sql = "SELECT a FROM t WHERE a = (SELECT min(b) FROM t)"
    assert "FusedPipeline" not in db.explain(sql)
    assert db.execute(sql).rows == []


def test_fused_node_row_protocol_matches_batches(db):
    # The fused node's run() delegates to the unfused fallback chain, so
    # row-protocol consumers (e.g. conditional nested loops) still work.
    from repro.executor.context import ExecContext
    from repro.sql.parser import parse_sql

    (stmt,) = parse_sql("SELECT a + b FROM t WHERE a > 1 AND b < 5")
    query, _ = db._analyze_and_rewrite(stmt)
    plan = db._backend._plan(query)
    assert isinstance(plan, FusedPipelineNode)
    rows = list(plan.run(ExecContext(vectorized=True)))
    batch_rows = [
        row
        for chunk in plan.run_batches(ExecContext(vectorized=True))
        for row in chunk.rows()
    ]
    assert sorted(rows) == sorted(batch_rows) == [(7,), (7,)]


def test_fuse_pass_leaves_unfusible_plans_alone(db):
    scan = SeqScan(db.catalog.table("t"), ["a", "b", "s"])
    assert fuse_pipelines(scan) is scan


def test_fusion_composes_with_morsel_parallelism():
    db = repro.connect(parallel_workers=2)
    db.execute("CREATE TABLE big (a integer, b integer)")
    db.load_table("big", [(i, i % 7) for i in range(20000)])
    db.execute("ANALYZE")
    sql = "SELECT a + b FROM big WHERE b = 3 AND a < 15000"
    plan = db.explain(sql)
    assert "Exchange" in plan and "FusedPipeline" in plan
    expected = sorted((a + a % 7,) for a in range(15000) if a % 7 == 3)
    assert sorted(db.execute(sql).rows) == expected


def test_shell_fuse_meta_command(capsys):
    from repro.__main__ import _handle_meta

    db = repro.connect()
    _handle_meta(db, "\\fuse off")
    assert db.fuse_pipelines_enabled is False
    _handle_meta(db, "\\fuse on")
    assert db.fuse_pipelines_enabled is True
    _handle_meta(db, "\\fuse bogus")
    out = capsys.readouterr().out
    assert "pipeline fusion: off" in out
    assert "pipeline fusion: on" in out
    assert "usage" in out
