"""Dynamic-pattern LIKE: batch kernel instead of per-row fallback.

PR-4 left non-constant LIKE patterns on the row-closure fallback; the
batch compiler now evaluates the pattern column batch-wise and memoizes
one compiled regex per distinct pattern string.
"""

from __future__ import annotations

import repro
from repro.analyzer import expressions as ex
from repro.datatypes import SQLType
from repro.executor.context import ExecContext
from repro.executor.expr_eval import ExprCompiler
from repro.storage.chunk import Chunk


def _like_expr(negated: bool = False) -> ex.LikeTest:
    return ex.LikeTest(
        arg=ex.Var(varno=0, varattno=0, type=SQLType.TEXT, name="s"),
        pattern=ex.Var(varno=0, varattno=1, type=SQLType.TEXT, name="p"),
        negated=negated,
    )


def test_dynamic_pattern_gets_dedicated_batch_kernel():
    compiler = ExprCompiler({(0, 0): 0, (0, 1): 1})
    kernel = compiler._batch_LikeTest(_like_expr())
    assert kernel is not None  # previously: None -> per-row fallback

    chunk = Chunk(
        columns=[
            ["hello", "world", "hat", None, "x"],
            ["h%", "h%", "_a_", "x", None],
        ],
        nrows=5,
    )
    ctx = ExecContext(vectorized=True)
    assert kernel(chunk, ctx) == [True, False, True, None, None]

    negated = compiler._batch_LikeTest(_like_expr(negated=True))
    assert negated(chunk, ctx) == [False, True, False, None, None]


def test_batch_matches_row_engine_on_sql():
    vec = repro.connect()
    row = repro.connect(vectorize=False)
    for db in (vec, row):
        db.execute("CREATE TABLE t (s text, p text)")
        db.execute(
            "INSERT INTO t VALUES "
            "('hello', 'h%'), ('world', 'h%'), ('hat', '_a_'), "
            "('100%', '100\\%'), (NULL, '%'), ('x', NULL)"
        )
    for sql in (
        "SELECT s, p, s LIKE p FROM t",
        "SELECT s FROM t WHERE s NOT LIKE p",
        "SELECT s FROM t WHERE s LIKE 'h' || '%'",
    ):
        assert vec.execute(sql).rows == row.execute(sql).rows, sql


def test_repeated_patterns_share_compiled_regex():
    # The chunk-local memo must key on the pattern string: 10k rows with
    # 3 distinct patterns compile at most 3 regexes (observable only as
    # speed, so assert correctness at scale instead of timing).
    db = repro.connect()
    db.execute("CREATE TABLE t (s text, p text)")
    patterns = ["tag%", "%7", "_ag42"]
    rows = [(f"tag{i}", patterns[i % 3]) for i in range(10000)]
    db.catalog.table("t").insert_many(rows)
    got = db.execute("SELECT count(*) FROM t WHERE s LIKE p").scalar()
    expected = sum(
        1
        for s, p in rows
        if (p == "tag%" and s.startswith("tag"))
        or (p == "%7" and s.endswith("7"))
        or (p == "_ag42" and len(s) == 5 and s[1:] == "ag42")
    )
    assert got == expected
