"""Cross-checks: the SQL engine and the formal algebra interpreter must
agree on identical queries (same data, same semantics)."""

from __future__ import annotations

from collections import Counter

import pytest

import repro
from repro.algebra import (
    Aggregate,
    AggSpec,
    Attr,
    BagProject,
    BagUnion,
    BaseRelation,
    Cross,
    Join,
    Select,
    SetDifference,
    SetUnion,
    evaluate,
)
from repro.algebra.expr import BinOp, BoolAnd, Cmp, Lit, attr_equal
from repro.storage.relation import Relation

ROWS_R = [(1, 10), (2, 20), (2, 20), (3, None)]
ROWS_S = [(2, "x"), (3, "y"), (4, "z")]


@pytest.fixture
def sql_db():
    db = repro.connect()
    db.execute("CREATE TABLE r (k integer, v integer)")
    db.execute("CREATE TABLE s (k2 integer, t text)")
    db.load_table("r", ROWS_R)
    db.load_table("s", ROWS_S)
    return db


@pytest.fixture
def algebra_db():
    return {
        "r": Relation.from_rows(["k", "v"], ROWS_R),
        "s": Relation.from_rows(["k2", "t"], ROWS_S),
    }


def engine_bag(db, sql) -> Counter:
    return Counter(db.execute(sql).rows)


def algebra_bag(op, db) -> Counter:
    return Counter(evaluate(op, db).rows())


R = lambda: BaseRelation("r", ["k", "v"])  # noqa: E731
S = lambda: BaseRelation("s", ["k2", "t"])  # noqa: E731


def test_selection_agreement(sql_db, algebra_db):
    op = Select(R(), Cmp(">", Attr("k"), Lit(1)))
    assert engine_bag(sql_db, "SELECT k, v FROM r WHERE k > 1") == algebra_bag(
        op, algebra_db
    )


def test_projection_agreement(sql_db, algebra_db):
    op = BagProject(R(), [(BinOp("+", Attr("k"), Lit(1)), "k1")])
    assert engine_bag(sql_db, "SELECT k + 1 FROM r") == algebra_bag(op, algebra_db)


def test_null_comparison_agreement(sql_db, algebra_db):
    op = Select(R(), Cmp("=", Attr("v"), Lit(10)))
    # The NULL v row matches in neither system.
    assert engine_bag(sql_db, "SELECT k, v FROM r WHERE v = 10") == algebra_bag(
        op, algebra_db
    )


def test_inner_join_agreement(sql_db, algebra_db):
    op = Join(R(), S(), attr_equal("k", "k2"), "inner")
    assert engine_bag(
        sql_db, "SELECT k, v, k2, t FROM r JOIN s ON k = k2"
    ) == algebra_bag(op, algebra_db)


def test_outer_join_agreement(sql_db, algebra_db):
    for kind, sql_kind in (("left", "LEFT"), ("right", "RIGHT"), ("full", "FULL")):
        op = Join(R(), S(), attr_equal("k", "k2"), kind)
        assert engine_bag(
            sql_db, f"SELECT k, v, k2, t FROM r {sql_kind} JOIN s ON k = k2"
        ) == algebra_bag(op, algebra_db), kind


def test_cross_product_agreement(sql_db, algebra_db):
    op = Cross(R(), S())
    assert engine_bag(sql_db, "SELECT * FROM r, s") == algebra_bag(op, algebra_db)


def test_aggregation_agreement(sql_db, algebra_db):
    op = Aggregate(
        R(),
        ["k"],
        [AggSpec("sum", Attr("v"), "s"), AggSpec("count", None, "n")],
    )
    assert engine_bag(
        sql_db, "SELECT k, sum(v), count(*) FROM r GROUP BY k"
    ) == algebra_bag(op, algebra_db)


def test_grand_aggregate_agreement(sql_db, algebra_db):
    op = Aggregate(R(), [], [AggSpec("avg", Attr("v"), "a"), AggSpec("min", Attr("v"), "m")])
    assert engine_bag(sql_db, "SELECT avg(v), min(v) FROM r") == algebra_bag(
        op, algebra_db
    )


def test_union_agreement(sql_db, algebra_db):
    proj_r = BagProject(R(), [(Attr("k"), "k")])
    proj_s = BagProject(S(), [(Attr("k2"), "k")])
    assert engine_bag(
        sql_db, "SELECT k FROM r UNION SELECT k2 FROM s"
    ) == algebra_bag(SetUnion(proj_r, proj_s), algebra_db)
    assert engine_bag(
        sql_db, "SELECT k FROM r UNION ALL SELECT k2 FROM s"
    ) == algebra_bag(BagUnion(proj_r, proj_s), algebra_db)


def test_difference_agreement(sql_db, algebra_db):
    proj_r = BagProject(R(), [(Attr("k"), "k")])
    proj_s = BagProject(S(), [(Attr("k2"), "k")])
    assert engine_bag(
        sql_db, "SELECT k FROM r EXCEPT SELECT k2 FROM s"
    ) == algebra_bag(SetDifference(proj_r, proj_s), algebra_db)


def test_provenance_agreement_spj(sql_db, algebra_db):
    """The SQL rewriter and the formal algebra rules must attach identical
    provenance for an SPJ query (modulo column order, compared by name)."""
    from repro.core.algebra_rules import rewrite_algebra

    op = Select(
        Join(R(), S(), attr_equal("k", "k2"), "inner"),
        Cmp(">", Attr("v"), Lit(5)),
    )
    rewritten, _ = rewrite_algebra(op)
    algebra_result = evaluate(rewritten, algebra_db)

    sql_result = sql_db.execute(
        "SELECT PROVENANCE k, v, k2, t FROM r JOIN s ON k = k2 WHERE v > 5"
    )
    reordered = algebra_result.project_columns(
        ["k", "v", "k2", "t", "prov_r_k", "prov_r_v", "prov_s_k2", "prov_s_t"]
    )
    assert Counter(sql_result.rows) == Counter(reordered.rows())


def test_provenance_agreement_aggregation(sql_db, algebra_db):
    from repro.core.algebra_rules import rewrite_algebra

    op = Aggregate(R(), ["k"], [AggSpec("sum", Attr("v"), "s")])
    rewritten, _ = rewrite_algebra(op)
    algebra_result = evaluate(rewritten, algebra_db)
    sql_result = sql_db.execute("SELECT PROVENANCE k, sum(v) FROM r GROUP BY k")
    assert Counter(sql_result.rows) == Counter(algebra_result.rows())


def test_provenance_agreement_setop(sql_db, algebra_db):
    from repro.core.algebra_rules import rewrite_algebra

    op = SetUnion(
        BagProject(R(), [(Attr("k"), "k")]),
        BagProject(S(), [(Attr("k2"), "k")]),
    )
    rewritten, _ = rewrite_algebra(op)
    algebra_result = evaluate(rewritten, algebra_db)
    sql_result = sql_db.execute(
        "SELECT PROVENANCE k FROM r UNION SELECT k2 FROM s"
    )
    reordered = algebra_result.project_columns(
        ["k", "prov_r_k", "prov_r_v", "prov_s_k2", "prov_s_t"]
    )
    assert Counter(sql_result.rows) == Counter(reordered.rows())
