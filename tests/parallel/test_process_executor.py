"""Differential: fork-based process workers ≡ serial execution.

Mirrors the thread-pool differential suite under
``parallel_executor="process"``: morsels dispatch to forked worker
processes (results shipped back pickled over pipes), and the merged
stream must stay indistinguishable from the serial engine.  On
platforms without ``fork`` the strategy degrades to threads, so these
tests remain valid everywhere.
"""

from __future__ import annotations

import pytest

import repro
from repro.errors import PermError
from repro.parallel.dispatch import get_strategy

from tests.backends.support import assert_same_result
from tests.parallel.test_parallel_differential import (
    AGGREGATE_QUERIES,
    STREAMING_QUERIES,
    _database,
)


@pytest.fixture(scope="module")
def serial_db() -> repro.PermDatabase:
    return _database()


@pytest.fixture(scope="module")
def process_db() -> repro.PermDatabase:
    db = _database(parallel_workers=4)
    db.parallel_executor = "process"
    return db


def test_streaming_matches_serial_ordered(serial_db, process_db):
    for sql in STREAMING_QUERIES:
        expected = serial_db.execute(sql)
        actual = process_db.execute(sql)
        assert expected.columns == actual.columns, sql
        assert expected.rows == actual.rows, sql


def test_aggregates_match_serial(serial_db, process_db):
    for sql in AGGREGATE_QUERIES:
        assert_same_result(
            serial_db.execute(sql),
            process_db.execute(sql),
            context=f"for {sql!r}",
        )


def test_witness_provenance_matches_serial(serial_db, process_db):
    sql = "SELECT id, tag FROM events WHERE val > 990"
    assert_same_result(
        serial_db.provenance(sql),
        process_db.provenance(sql),
        context=f"for provenance {sql!r}",
    )


def test_polynomial_provenance_matches_serial(serial_db, process_db):
    sql = "SELECT grp, count(*) FROM events WHERE grp < 4 GROUP BY grp"
    expected = serial_db.provenance(sql, semantics="polynomial")
    actual = process_db.provenance(sql, semantics="polynomial")
    assert expected.columns == actual.columns
    assert_same_result(expected, actual, context="polynomial")


def test_worker_errors_propagate_with_message():
    strategy = get_strategy("process", 2)

    def boom():
        raise ValueError("exploded in the child")

    with pytest.raises(Exception, match="exploded in the child"):
        strategy.map_ordered([lambda: 1, boom, lambda: 3])


def test_executor_name_is_validated():
    db = repro.connect()
    with pytest.raises(PermError):
        db.parallel_executor = "fibers"


def test_executor_selectable_at_connect():
    db = repro.connect(parallel_workers=2, parallel_executor="process")
    assert db.parallel_executor == "process"
    db.execute("CREATE TABLE t (a integer)")
    db.execute("INSERT INTO t VALUES (1), (2), (3)")
    assert db.execute("SELECT sum(a) FROM t").rows == [(6,)]
