"""Unit tests for the parallel package: planning pass, dispatch
strategies, exchange morsels, and aggregate-state merging."""

from __future__ import annotations

import pytest

import repro
from repro.errors import ExecutionError
from repro.executor.aggregates import (
    AvgState,
    CountStarState,
    DistinctWrapper,
    MaxState,
    MinState,
    SumState,
)
from repro.executor.context import ExecContext
from repro.parallel import resolve_worker_count
from repro.parallel.dispatch import (
    SerialStrategy,
    ThreadPoolStrategy,
    get_strategy,
    register_strategy,
)
from repro.parallel.exchange import ExchangeNode
from repro.parallel.planning import insert_exchanges


def _db_with_rows(n: int, workers: int = 1) -> repro.PermDatabase:
    db = repro.connect(parallel_workers=workers)
    db.execute("CREATE TABLE t (a integer, b integer)")
    db.catalog.table("t").insert_many([(i, i % 7) for i in range(n)])
    return db


def _plan(db, sql):
    return db.backend._plan(db.compile_select(sql))


# -- planning pass -----------------------------------------------------------


def test_exchange_inserted_above_large_scan():
    db = _db_with_rows(10000, workers=4)
    plan = _plan(db, "SELECT a FROM t WHERE b = 1")
    assert "Exchange" in plan.explain()


def test_no_exchange_below_row_threshold():
    db = _db_with_rows(100, workers=4)
    plan = _plan(db, "SELECT a FROM t WHERE b = 1")
    assert "Exchange" not in plan.explain()


def test_no_exchange_when_serial():
    db = _db_with_rows(10000, workers=1)
    plan = _plan(db, "SELECT a FROM t WHERE b = 1")
    assert "Exchange" not in plan.explain()


def test_no_exchange_for_sublink_predicate():
    # Sublinks execute subplans against per-row outer contexts the
    # exchange cannot fork: the planner must mark them unsafe.
    db = _db_with_rows(10000, workers=4)
    plan = _plan(db, "SELECT a FROM t WHERE b IN (SELECT b FROM t WHERE a < 5)")
    assert "Exchange" not in plan.explain()


def test_exchange_covers_aggregate_pipeline():
    db = _db_with_rows(10000, workers=4)
    plan = _plan(db, "SELECT b, count(*) FROM t GROUP BY b")
    text = plan.explain()
    assert "Exchange (partial-agg" in text
    # The exchange sits above the aggregate (accumulation in workers).
    assert text.index("Exchange") < text.index("HashAggregate")


def test_db_explain_shows_exchange():
    # db.explain() builds its own planner: it must pass the database's
    # parallel configuration through, or the displayed plan diverges
    # from the one the backend actually executes.
    db = _db_with_rows(10000, workers=4)
    assert "Exchange" in db.explain("SELECT a FROM t WHERE b = 1")
    db.parallel_workers = 1
    assert "Exchange" not in db.explain("SELECT a FROM t WHERE b = 1")


def test_insert_exchanges_respects_min_rows_override():
    db = _db_with_rows(64, workers=4)
    plan = _plan(db, "SELECT a FROM t")
    wrapped = insert_exchanges(plan, workers=4, morsel_size=16, min_rows=10)
    assert isinstance(wrapped, ExchangeNode) or "Exchange" in wrapped.explain()


# -- dispatch strategies -----------------------------------------------------


def test_strategies_preserve_task_order():
    tasks = [lambda i=i: i * i for i in range(20)]
    assert SerialStrategy().map_ordered(tasks) == [i * i for i in range(20)]
    assert ThreadPoolStrategy(4).map_ordered(tasks) == [i * i for i in range(20)]


def test_worker_exceptions_propagate():
    def boom():
        raise ExecutionError("boom")

    with pytest.raises(ExecutionError):
        ThreadPoolStrategy(2).map_ordered([lambda: 1, boom, lambda: 3])


def test_strategy_registry():
    with pytest.raises(ValueError):
        get_strategy("nosuch", 2)
    register_strategy("test-serial", lambda workers: SerialStrategy())
    assert isinstance(get_strategy("test-serial", 2), SerialStrategy)


def test_resolve_worker_count():
    assert resolve_worker_count(4) == 4
    assert resolve_worker_count(0) == 1
    assert resolve_worker_count(None) >= 1


# -- exchange morsels --------------------------------------------------------


def test_morsels_respect_snapshot_bounds():
    db = _db_with_rows(10000, workers=4)
    plan = _plan(db, "SELECT a FROM t")
    exchange = plan
    while not isinstance(exchange, ExchangeNode):
        exchange = exchange.child
    snapshot = {db.catalog.table("t").uid: (db.catalog.table("t").epoch, 1000)}
    ctx = ExecContext(vectorized=True, snapshot=snapshot)
    morsels = exchange._morsels(ctx)
    assert morsels[0][0] == 0
    assert morsels[-1][1] == 1000
    assert all(stop - start <= exchange.morsel_size for start, stop in morsels)


def test_row_protocol_stays_serial():
    db = _db_with_rows(10000, workers=4)
    plan = _plan(db, "SELECT a FROM t WHERE b = 2")
    exchange = plan
    while not isinstance(exchange, ExchangeNode):
        exchange = exchange.child
    rows = list(exchange.run(ExecContext(vectorized=False)))
    assert len(rows) == sum(1 for i in range(10000) if i % 7 == 2)


# -- aggregate-state merging -------------------------------------------------


def test_sum_state_merge_null_handling():
    a, b, c = SumState(), SumState(), SumState()
    a.add(3)
    b.add(4)
    a.merge(b)
    assert a.result() == 7
    a.merge(c)  # all-NULL partial: no contribution
    assert a.result() == 7
    c.merge(a)  # merging into an all-NULL state adopts the total
    assert c.result() == 7


def test_min_max_avg_count_merge():
    lo, hi = MinState(), MaxState()
    for state, values in ((lo, (5, 2)), (hi, (5, 2))):
        for v in values:
            state.add(v)
    other_lo, other_hi = MinState(), MaxState()
    other_lo.add(1)
    other_hi.add(9)
    lo.merge(other_lo)
    hi.merge(other_hi)
    assert (lo.result(), hi.result()) == (1, 9)

    avg_a, avg_b = AvgState(), AvgState()
    avg_a.add(2)
    avg_a.add(4)
    avg_b.add(6)
    avg_a.merge(avg_b)
    assert avg_a.result() == 4

    n_a, n_b = CountStarState(), CountStarState()
    n_a.add(None)
    n_b.add(None)
    n_b.add(None)
    n_a.merge(n_b)
    assert n_a.result() == 3


def test_distinct_merge_deduplicates():
    a = DistinctWrapper(CountStarState())
    b = DistinctWrapper(CountStarState())
    for v in (1, 2, 2):
        a.add(v)
    for v in (2, 3):
        b.add(v)
    a.merge(b)
    assert a.result() == 3  # {1, 2, 3}


def test_polynomial_sum_merge_is_polynomial_addition():
    from repro.executor.aggregates import PolySumState
    from repro.semiring.polynomial import Polynomial

    x, y = Polynomial.variable("x"), Polynomial.variable("y")
    a, b = PolySumState(), PolySumState()
    a.add(x)
    b.add(y)
    b.add(x)
    a.merge(b)
    assert a.result() == x + x + y
