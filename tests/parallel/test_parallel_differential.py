"""Differential suite: morsel-parallel execution ≡ serial execution.

Parallelism must be semantically invisible.  Streaming pipelines merge
worker chunks in morsel order, so those results must match the serial
engine *in row order*, exactly; partial aggregation regroups float
summation per morsel, so aggregate results match as multisets with the
usual float tolerance.  Checked over a synthetic table large enough to
clear the fan-out threshold, the paper's examples, and the TPC-H
SF-tiny workload — plain, witness-provenance, and polynomial forms,
across worker counts and morsel sizes.
"""

from __future__ import annotations

import random

import pytest

import repro
from repro.parallel import MIN_PARALLEL_ROWS

from tests.backends.support import assert_same_result

ROWS = MIN_PARALLEL_ROWS + 4000  # comfortably above the fan-out gate

_SETUP = (
    "CREATE TABLE events (id integer, grp integer, val double precision, "
    "tag text)",
)


def _fill(db: repro.PermDatabase) -> None:
    rng = random.Random(20260807)
    rows = [
        (i, i % 17, round(rng.random() * 1000.0, 6), f"tag{i % 41}")
        for i in range(ROWS)
    ]
    db.catalog.table("events").insert_many(rows)
    db.execute("ANALYZE")


def _database(parallel_workers: int = 1) -> repro.PermDatabase:
    db = repro.connect(parallel_workers=parallel_workers)
    for statement in _SETUP:
        db.execute(statement)
    _fill(db)
    return db


@pytest.fixture(scope="module")
def serial_db() -> repro.PermDatabase:
    return _database()


# Streaming pipelines (scan -> filter -> project): exact ordered match.
STREAMING_QUERIES = (
    "SELECT id, val FROM events WHERE grp = 3",
    "SELECT id, tag, val * 2 FROM events WHERE val > 900 AND grp < 8",
    "SELECT id FROM events WHERE tag LIKE 'tag1%'",
    "SELECT id, tag FROM events WHERE tag LIKE tag",  # dynamic pattern
)

# Aggregation pipelines: multiset match with float tolerance.
AGGREGATE_QUERIES = (
    "SELECT count(*) FROM events",
    "SELECT grp, count(*), sum(val) FROM events GROUP BY grp",
    "SELECT grp, min(val), max(val), avg(val) FROM events GROUP BY grp",
    "SELECT grp, count(DISTINCT tag) FROM events GROUP BY grp",
    "SELECT tag, sum(val) FROM events WHERE grp < 9 GROUP BY tag",
)


@pytest.mark.parametrize("workers", (2, 4))
@pytest.mark.parametrize("morsel_size", (None, 1500))
def test_streaming_matches_serial_ordered(serial_db, workers, morsel_size):
    par = _database(parallel_workers=workers)
    par.backend.morsel_size = morsel_size
    for sql in STREAMING_QUERIES:
        expected = serial_db.execute(sql)
        actual = par.execute(sql)
        # Ordered, exact: the exchange merges chunks in morsel order,
        # which is the serial scan order.
        assert expected.columns == actual.columns, sql
        assert expected.rows == actual.rows, sql


@pytest.mark.parametrize("workers", (2, 4))
@pytest.mark.parametrize("morsel_size", (None, 1500))
def test_aggregates_match_serial(serial_db, workers, morsel_size):
    par = _database(parallel_workers=workers)
    par.backend.morsel_size = morsel_size
    for sql in AGGREGATE_QUERIES:
        assert_same_result(
            serial_db.execute(sql), par.execute(sql), context=f"for {sql!r}"
        )


def test_group_order_matches_serial(serial_db):
    # Group output order is first-encounter order over the scan; the
    # partial-aggregate merge must preserve it, not just the multiset.
    par = _database(parallel_workers=4)
    sql = "SELECT grp, count(*) FROM events GROUP BY grp"
    assert serial_db.execute(sql).rows == par.execute(sql).rows


def test_witness_provenance_matches_serial(serial_db):
    par = _database(parallel_workers=4)
    for sql in (
        "SELECT id, tag FROM events WHERE val > 990",
        "SELECT grp, count(*) FROM events GROUP BY grp",
    ):
        expected = serial_db.provenance(sql)
        actual = par.provenance(sql)
        assert_same_result(expected, actual, context=f"for provenance {sql!r}")


def test_polynomial_provenance_matches_serial(serial_db):
    # Polynomial aggregation states merge by polynomial addition in the
    # exchange; annotations must match the serial engine term-for-term.
    par = _database(parallel_workers=4)
    sql = "SELECT grp, count(*) FROM events WHERE grp < 4 GROUP BY grp"
    expected = serial_db.provenance(sql, semantics="polynomial")
    actual = par.provenance(sql, semantics="polynomial")
    assert expected.columns == actual.columns
    assert expected.rows == actual.rows
    assert all(
        a.to_wire() == b.to_wire()
        for a, b in zip(expected.annotations(), actual.annotations())
    )


def test_paper_example_unaffected_by_parallel_setting():
    # The shop/sales/items tables are far below the fan-out threshold:
    # plans stay serial, results stay byte-identical.
    def build(workers):
        db = repro.connect(parallel_workers=workers)
        db.execute("CREATE TABLE shop (name text, numempl integer)")
        db.execute("CREATE TABLE sales (sname text, itemid integer)")
        db.execute("CREATE TABLE items (id integer, price integer)")
        db.execute("INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14)")
        db.execute(
            "INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), "
            "('Merdies', 2), ('Joba', 3), ('Joba', 3)"
        )
        db.execute("INSERT INTO items VALUES (1, 100), (2, 10), (3, 25)")
        return db

    serial, par = build(1), build(4)
    for sql in (
        "SELECT PROVENANCE name, sum(price) FROM shop, sales, items "
        "WHERE name = sname AND itemid = id GROUP BY name",
        "SELECT PROVENANCE (polynomial) sname, count(*) FROM sales "
        "GROUP BY sname",
    ):
        assert serial.execute(sql).rows == par.execute(sql).rows


@pytest.mark.parametrize("query_no", (1, 3, 6))
def test_tpch_matches_serial(query_no):
    from repro.tpch.dbgen import tpch_database
    from repro.tpch.qgen import generate_query

    serial = tpch_database(scale_factor=0.002, seed=11)
    par = tpch_database(scale_factor=0.002, seed=11)
    par.parallel_workers = 4
    for db in (serial, par):
        db.execute("ANALYZE")
    sql = generate_query(query_no, seed=5)
    assert_same_result(
        serial.execute(sql), par.execute(sql), context=f"TPC-H Q{query_no}"
    )
    assert_same_result(
        serial.provenance(sql),
        par.provenance(sql),
        context=f"TPC-H Q{query_no} provenance",
    )
