"""Trio-style eager lineage system tests."""

from __future__ import annotations

from collections import Counter

import pytest

import repro
from repro.baselines.trio import TrioSystem, TrioUnsupportedError


@pytest.fixture
def db():
    database = repro.connect()
    database.execute("CREATE TABLE t (a integer, b text)")
    database.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    database.execute("CREATE TABLE s (c integer)")
    database.execute("INSERT INTO s VALUES (2), (3), (4)")
    return database


@pytest.fixture
def trio(db):
    return TrioSystem(db)


def test_selection_result_matches_engine(db, trio):
    result = trio.execute("SELECT a, b FROM t WHERE a > 1")
    engine = db.execute("SELECT a, b FROM t WHERE a > 1")
    assert Counter(result.rows) == Counter(engine.rows)


def test_selection_lineage_points_to_base(db, trio):
    result = trio.execute("SELECT a, b FROM t WHERE a = 2")
    traced = trio.provenance(result)
    assert len(traced) == 1
    row, base = traced[0]
    assert row == (2, "y")
    assert base == {"t": [1]}  # row index of (2, 'y')


def test_provenance_rows_match_perm(db, trio):
    sql = "SELECT a, b FROM t WHERE a >= 2"
    result = trio.execute(sql)
    trio_rows = sorted(trio.provenance_rows(result), key=repr)
    perm_rows = sorted(
        db.execute(sql.replace("SELECT", "SELECT PROVENANCE", 1)).rows, key=repr
    )
    assert trio_rows == perm_rows


def test_stored_provenance_query_matches_dict_based(db, trio):
    result = trio.execute("SELECT a, b FROM t WHERE a >= 2")
    via_sql = sorted(trio.query_stored_provenance(result), key=repr)
    via_dict = sorted(trio.provenance_rows(result), key=repr)
    assert via_sql == via_dict


def test_join_provenance_matches_perm(db, trio):
    sql = "SELECT a, c FROM t, s WHERE a = c"
    result = trio.execute(sql)
    trio_rows = sorted(trio.provenance_rows(result), key=repr)
    # Trio groups provenance by base table name (alphabetical: s before t);
    # reorder Perm's columns accordingly before comparing.
    perm = db.execute(sql.replace("SELECT", "SELECT PROVENANCE", 1))
    order = [
        perm.columns.index("a"),
        perm.columns.index("c"),
        perm.columns.index("prov_s_c"),
        perm.columns.index("prov_t_a"),
        perm.columns.index("prov_t_b"),
    ]
    perm_rows = sorted(
        (tuple(row[i] for i in order) for row in perm.rows), key=repr
    )
    assert trio_rows == perm_rows


def test_union_lineage(db, trio):
    result = trio.execute("SELECT a FROM t UNION SELECT c FROM s")
    assert Counter(result.rows) == Counter(
        db.execute("SELECT a FROM t UNION SELECT c FROM s").rows
    )
    traced = dict(trio.provenance(result))
    # 2 is in both inputs: lineage from both base tables.
    assert set(traced[(2,)].keys()) == {"t", "s"}
    # 1 only from t.
    assert set(traced[(1,)].keys()) == {"t"}


def test_except_lineage_includes_right_side(db, trio):
    result = trio.execute("SELECT a FROM t EXCEPT SELECT c FROM s")
    traced = dict(trio.provenance(result))
    assert set(traced) == {(1,)}
    assert len(traced[(1,)]["s"]) == 3  # all right-side tuples


def test_projection_with_distinct(db, trio):
    db.execute("INSERT INTO t VALUES (4, 'x')")
    result = trio.execute("SELECT DISTINCT b FROM t")
    traced = dict(trio.provenance(result))
    assert len(traced[("x",)]["t"]) == 2  # both 'x' rows contribute


def test_lineage_relations_stored_in_catalog(db, trio):
    result = trio.execute("SELECT a FROM t WHERE a = 1")
    lineage_tables = [
        t.name for t in db.catalog.tables() if t.name.endswith("_lineage")
    ]
    assert lineage_tables  # eager storage happened
    assert db.catalog.has_table(f"{result.table.name}_lineage")


def test_aggregation_unsupported(trio):
    with pytest.raises(TrioUnsupportedError, match="aggregation"):
        trio.execute("SELECT count(*) FROM t")


def test_subqueries_unsupported(trio):
    with pytest.raises(TrioUnsupportedError, match="subqueries"):
        trio.execute("SELECT a FROM t WHERE a IN (SELECT c FROM s)")


def test_outer_join_unsupported(trio):
    with pytest.raises(TrioUnsupportedError, match="outer"):
        trio.execute("SELECT a FROM t LEFT JOIN s ON a = c")


def test_multi_level_setops_unsupported(trio):
    with pytest.raises(TrioUnsupportedError, match="single set operations"):
        trio.execute(
            "SELECT a FROM t UNION SELECT c FROM s UNION SELECT a FROM t"
        )


def test_non_select_rejected(trio):
    with pytest.raises(TrioUnsupportedError):
        trio.execute("CREATE TABLE zzz (a integer)")
