"""Cui-Widom lineage tracing: per-operator contribution semantics."""

from __future__ import annotations

import pytest

from repro.algebra import (
    Aggregate,
    AggSpec,
    Attr,
    BagProject,
    BagUnion,
    BaseRelation,
    Cross,
    Join,
    Select,
    SetDifference,
    SetUnion,
    evaluate,
)
from repro.algebra.evaluate import AlgebraError
from repro.algebra.expr import Cmp, Lit, attr_equal
from repro.baselines.cui_widom import format_lineage, lineage, lineage_of
from repro.storage.relation import Relation


def rel(columns, rows):
    return Relation.from_rows(columns, rows)


@pytest.fixture
def db():
    return {
        "r": rel(["a", "b"], [(1, "x"), (2, "y"), (3, "y")]),
        "s": rel(["c"], [(1,), (3,)]),
    }


R = lambda: BaseRelation("r", ["a", "b"])  # noqa: E731
S = lambda: BaseRelation("s", ["c"])  # noqa: E731


def test_base_relation_lineage_is_the_tuple(db):
    op = R()
    result = lineage_of(op, db, (1, "x"))
    assert result[op.ref_id] == frozenset([(1, "x")])


def test_missing_tuple_raises(db):
    with pytest.raises(AlgebraError):
        lineage_of(R(), db, (99, "zzz"))


def test_selection_lineage(db):
    op = Select(R(), Cmp(">", Attr("a"), Lit(1)))
    result = lineage_of(op, db, (2, "y"))
    ref = op.base_references()[0]
    assert result[ref.ref_id] == frozenset([(2, "y")])


def test_projection_lineage_collects_all_preimages(db):
    op = BagProject(R(), [(Attr("b"), "b")])
    result = lineage_of(op, db, ("y",))
    ref = op.base_references()[0]
    assert result[ref.ref_id] == frozenset([(2, "y"), (3, "y")])


def test_join_lineage_splits_tuple(db):
    op = Join(R(), S(), attr_equal("a", "c"), "inner")
    refs = op.base_references()
    result = lineage_of(op, db, (1, "x", 1))
    assert result[refs[0].ref_id] == frozenset([(1, "x")])
    assert result[refs[1].ref_id] == frozenset([(1,)])


def test_left_join_null_extended_tuple(db):
    op = Join(R(), S(), attr_equal("a", "c"), "left")
    refs = op.base_references()
    result = lineage_of(op, db, (2, "y", None))
    assert result[refs[0].ref_id] == frozenset([(2, "y")])
    assert result[refs[1].ref_id] == frozenset()


def test_aggregate_lineage_is_the_group(db):
    op = Aggregate(R(), ["b"], [AggSpec("count", None, "n")])
    ref = op.base_references()[0]
    result = lineage_of(op, db, ("y", 2))
    assert result[ref.ref_id] == frozenset([(2, "y"), (3, "y")])


def test_grand_aggregate_lineage_is_everything(db):
    op = Aggregate(R(), [], [AggSpec("sum", Attr("a"), "s")])
    ref = op.base_references()[0]
    result = lineage_of(op, db, (6,))
    assert result[ref.ref_id] == frozenset([(1, "x"), (2, "y"), (3, "y")])


def test_union_lineage_from_both_sides():
    db = {"x": rel(["v"], [(1,), (2,)]), "y": rel(["v"], [(2,), (3,)])}
    op = SetUnion(BaseRelation("x", ["v"]), BaseRelation("y", ["v"]))
    refs = op.base_references()
    both = lineage_of(op, db, (2,))
    assert both[refs[0].ref_id] == frozenset([(2,)])
    assert both[refs[1].ref_id] == frozenset([(2,)])
    only_left = lineage_of(op, db, (1,))
    assert only_left[refs[1].ref_id] == frozenset()


def test_set_difference_lineage_includes_all_of_t2():
    db = {"x": rel(["v"], [(1,), (2,)]), "y": rel(["v"], [(2,), (3,)])}
    op = SetDifference(BaseRelation("x", ["v"]), BaseRelation("y", ["v"]))
    refs = op.base_references()
    result = lineage_of(op, db, (1,))
    assert result[refs[0].ref_id] == frozenset([(1,)])
    assert result[refs[1].ref_id] == frozenset([(2,), (3,)])


def test_lineage_of_all_result_tuples(db):
    op = Cross(R(), S())
    per_tuple = lineage(op, db)
    assert len(per_tuple) == 6
    for tuple_, lin in per_tuple.items():
        refs = op.base_references()
        assert lin[refs[0].ref_id] == frozenset([tuple_[:2]])
        assert lin[refs[1].ref_id] == frozenset([tuple_[2:]])


def test_self_join_references_tracked_separately(db):
    left = BaseRelation("r", ["a", "b"])
    right = BaseRelation("r", ["a2", "b2"])
    op = Join(left, right, Cmp("=", Attr("a"), Attr("a2")), "inner")
    result = lineage_of(op, db, (1, "x", 1, "x"))
    assert result[left.ref_id] == frozenset([(1, "x")])
    assert result[right.ref_id] == frozenset([(1, "x")])


def test_format_lineage_is_list_of_relations(db):
    op = Cross(R(), S())
    text = format_lineage(op, lineage_of(op, db, (1, "x", 1)))
    assert text.startswith("(r: {")
    assert "; s: {" in text


def test_bag_union_lineage():
    db = {"x": rel(["v"], [(1,), (1,)]), "y": rel(["v"], [(1,)])}
    op = BagUnion(BaseRelation("x", ["v"]), BaseRelation("y", ["v"]))
    refs = op.base_references()
    result = lineage_of(op, db, (1,))
    assert result[refs[0].ref_id] == frozenset([(1,)])
    assert result[refs[1].ref_id] == frozenset([(1,)])
