"""TPC-H differential: PythonBackend vs. SqliteBackend (acceptance gate).

Every tier-1 workload query the SQLite dialect supports must return
row-for-row identical results (as multisets, float summation tolerance
aside) on both backends — normal *and* ``SELECT PROVENANCE`` forms.
Constructs the dialect cannot translate must raise
``BackendUnsupportedError``; at the current SQLite version the whole
supported workload translates.
"""

from __future__ import annotations

import pytest

from repro.errors import BackendUnsupportedError
from repro.tpch.dbgen import tpch_database
from repro.tpch.qgen import generate_query
from repro.tpch.queries import ALL_QUERIES, SUPPORTED_QUERIES

from tests.backends.support import assert_same_result


@pytest.fixture(scope="module")
def python_db():
    return tpch_database(scale_factor=0.001, seed=42)


@pytest.fixture(scope="module")
def sqlite_db():
    db = tpch_database(scale_factor=0.001, seed=42)
    db.set_backend("sqlite")
    return db


def _compare(python_db, sqlite_db, sql: str, tag: str) -> None:
    reference = python_db.execute(sql)
    try:
        candidate = sqlite_db.execute(sql)
    except BackendUnsupportedError as exc:
        # Allowed outcome: loud rejection naming the feature — but it must
        # really name one, and (at SQLite >= 3.39) the supported workload
        # translates fully, so rejections here mean a dialect regression.
        pytest.fail(f"{tag} unexpectedly unsupported: {exc}")
    assert_same_result(reference, candidate, context=tag)


@pytest.mark.parametrize("number", ALL_QUERIES)
def test_normal_queries_match(python_db, sqlite_db, number):
    sql = generate_query(number, seed=2)
    _compare(python_db, sqlite_db, sql, f"Q{number}")


@pytest.mark.parametrize("number", SUPPORTED_QUERIES)
def test_provenance_queries_match(python_db, sqlite_db, number):
    sql = generate_query(number, seed=2, provenance=True)
    _compare(python_db, sqlite_db, sql, f"Q{number} PROVENANCE")


@pytest.mark.parametrize("number", (1, 3, 6, 12))
def test_polynomial_queries_match(python_db, sqlite_db, number):
    sql = generate_query(number, seed=2, provenance=True).replace(
        "SELECT PROVENANCE", "SELECT PROVENANCE (polynomial)", 1
    )
    reference = python_db.execute(sql)
    candidate = sqlite_db.execute(sql)
    assert_same_result(reference, candidate, context=f"Q{number} polynomial")
    assert sorted(map(str, reference.annotations())) == sorted(
        map(str, candidate.annotations())
    )
