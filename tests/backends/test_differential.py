"""Hypothesis differential: random SPJ(+provenance) queries, both backends.

The property the backend subsystem stands on: for any supported query,
``PythonBackend`` and ``SqliteBackend`` return identical multisets of
rows — including witness-list provenance blocks and polynomial
annotation columns.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro

_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_value = st.integers(min_value=0, max_value=3)
_rows_r = st.lists(st.tuples(_value, st.one_of(st.none(), _value)), max_size=6)
_rows_s = st.lists(st.tuples(_value, _value), max_size=6)


def _make_db(backend: str, rows_r, rows_s) -> repro.PermDatabase:
    db = repro.connect(backend=backend)
    db.execute("CREATE TABLE r (k integer, v integer)")
    db.execute("CREATE TABLE s (k2 integer, w integer)")
    db.load_table("r", rows_r)
    db.load_table("s", rows_s)
    return db


@st.composite
def sql_queries(draw) -> str:
    """Random single-block SQL over r and s (integer domain → exact)."""
    shape = draw(st.sampled_from(["spj", "agg", "setop", "sublink", "distinct"]))
    comparison = draw(st.sampled_from(["=", "<", ">", "<=", ">=", "<>"]))
    constant = draw(_value)
    if shape == "spj":
        join = draw(st.sampled_from(["", f", s WHERE k {comparison} k2"]))
        if join:
            return f"SELECT k, w FROM r{join}"
        return f"SELECT k, v FROM r WHERE k {comparison} {constant}"
    if shape == "agg":
        having = draw(st.sampled_from(["", " HAVING count(*) > 1"]))
        return f"SELECT k, sum(v) AS sv, count(*) AS c FROM r GROUP BY k{having}"
    if shape == "setop":
        op = draw(st.sampled_from(["UNION", "UNION ALL", "INTERSECT", "EXCEPT"]))
        return f"SELECT k FROM r {op} SELECT k2 FROM s"
    if shape == "distinct":
        return f"SELECT DISTINCT v FROM r ORDER BY v NULLS LAST"
    negated = draw(st.sampled_from(["", "NOT "]))
    return (
        f"SELECT k FROM r WHERE v IS NOT NULL AND "
        f"k {negated}IN (SELECT k2 FROM s)"
    )


def _marker(draw_provenance: str) -> str:
    return {
        "plain": "SELECT",
        "witness": "SELECT PROVENANCE",
        "polynomial": "SELECT PROVENANCE (polynomial)",
    }[draw_provenance]


@given(
    rows_r=_rows_r,
    rows_s=_rows_s,
    sql=sql_queries(),
    semantics=st.sampled_from(["plain", "witness", "polynomial"]),
)
@_SETTINGS
def test_backends_agree_on_random_queries(rows_r, rows_s, sql, semantics):
    statement = sql.replace("SELECT", _marker(semantics), 1)
    if semantics == "polynomial":
        try:
            reference = _make_db("python", rows_r, rows_s).execute(statement)
        except repro.RewriteError:
            # Constructs the polynomial strategy rejects (e.g. sublinks)
            # are out of scope for the differential property.
            return
    else:
        reference = _make_db("python", rows_r, rows_s).execute(statement)
    candidate = _make_db("sqlite", rows_r, rows_s).execute(statement)

    assert reference.columns == candidate.columns
    # Integer/NULL domain and canonical polynomials → exact comparison.
    assert Counter(reference.rows) == Counter(candidate.rows), statement
