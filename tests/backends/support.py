"""Shared helpers for backend differential tests."""

from __future__ import annotations

import math
from typing import Sequence

import repro

#: Tolerance for float columns: independent summation orders (Python
#: executor vs. SQLite) legitimately differ in the last few bits.
_REL_TOL = 1e-6
_ABS_TOL = 1e-9


def _sort_key(row: tuple) -> tuple:
    # Pair rows across backends: floats are blurred to 5 significant
    # digits for ordering so near-equal values land next to each other.
    return tuple(
        f"{value:.5g}" if isinstance(value, float) else repr(value)
        for value in row
    )


def _values_match(a, b) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        if a is None or b is None:
            return a is b
        return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)
    return a == b


def assert_same_result(
    reference: repro.QueryResult, candidate: repro.QueryResult, context: str = ""
) -> None:
    """Row-for-row multiset equality, with float summation tolerance."""
    assert reference.columns == candidate.columns, (
        f"column mismatch {context}: {reference.columns} != {candidate.columns}"
    )
    assert len(reference.rows) == len(candidate.rows), (
        f"row count mismatch {context}: "
        f"{len(reference.rows)} != {len(candidate.rows)}"
    )
    left = sorted(reference.rows, key=_sort_key)
    right = sorted(candidate.rows, key=_sort_key)
    for row_a, row_b in zip(left, right):
        assert len(row_a) == len(row_b) and all(
            _values_match(a, b) for a, b in zip(row_a, row_b)
        ), f"row mismatch {context}: {row_a!r} != {row_b!r}"


def run_on_both(sql: str, setup: Sequence[str]) -> None:
    """Execute ``setup`` + ``sql`` on both backends and compare results."""
    results = []
    for backend in ("python", "sqlite"):
        db = repro.connect(backend=backend)
        for statement in setup:
            db.execute(statement)
        results.append(db.execute(sql))
    assert_same_result(results[0], results[1], context=f"for {sql!r}")
