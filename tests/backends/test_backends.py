"""Execution-backend unit tests: registry, sync, dialect rejections."""

from __future__ import annotations

import pytest

import repro
from repro.backends import (
    ExecutionBackend,
    backend_names,
    create_backend,
    register_backend,
)
from repro.backends.base import collect_base_relations
from repro.errors import BackendUnsupportedError, PermError
from repro.semiring import Polynomial

from tests.backends.support import assert_same_result

EXAMPLE_SETUP = [
    "CREATE TABLE shop (name text, numempl integer)",
    "CREATE TABLE sales (sname text, itemid integer)",
    "CREATE TABLE items (id integer, price integer)",
    "INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14)",
    "INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), "
    "('Merdies', 2), ('Joba', 3), ('Joba', 3)",
    "INSERT INTO items VALUES (1, 100), (2, 10), (3, 25)",
]


def example_db(backend: str) -> repro.PermDatabase:
    db = repro.connect(backend=backend)
    for statement in EXAMPLE_SETUP:
        db.execute(statement)
    return db


# -- registry / selection ----------------------------------------------------


def test_registered_backends():
    assert "python" in backend_names()
    assert "sqlite" in backend_names()


def test_backend_selection_and_switch():
    db = repro.connect(backend="sqlite")
    assert db.backend_name == "sqlite"
    db.set_backend("python")
    assert db.backend_name == "python"
    with pytest.raises(PermError, match="unknown backend"):
        db.set_backend("oracle")


def test_unknown_backend_at_construction():
    with pytest.raises(PermError, match="unknown backend"):
        repro.connect(backend="db2")


def test_custom_backend_registration():
    class EchoBackend(ExecutionBackend):
        name = "echo-test"

        def run_select(self, query):
            from repro.database import QueryResult

            return QueryResult(columns=query.output_columns(), rows=[])

    register_backend(EchoBackend)
    assert "echo-test" in backend_names()
    db = repro.connect(backend="echo-test")
    db.execute("CREATE TABLE t (a integer)")
    assert db.execute("SELECT a FROM t").columns == ["a"]
    # Factories are also accepted directly.
    backend = create_backend(EchoBackend, db.catalog)
    assert backend.name == "echo-test"


# -- paper example parity ----------------------------------------------------

PARITY_QUERIES = [
    "SELECT name FROM shop WHERE numempl < 10",
    "SELECT PROVENANCE name FROM shop WHERE numempl < 10",
    "SELECT PROVENANCE name, sum(price) AS total FROM shop, sales, items "
    "WHERE name = sname AND itemid = id GROUP BY name",
    "SELECT PROVENANCE sname FROM sales UNION SELECT name FROM shop",
    "SELECT PROVENANCE sname FROM sales INTERSECT SELECT name FROM shop",
    "SELECT PROVENANCE name FROM shop WHERE name IN (SELECT sname FROM sales)",
    "SELECT DISTINCT sname FROM sales ORDER BY sname DESC",
    "SELECT s.sname, i.price FROM sales AS s LEFT JOIN items AS i "
    "ON s.itemid = i.id ORDER BY s.sname, i.price NULLS FIRST",
    "SELECT PROVENANCE (polynomial) name FROM shop, sales WHERE name = sname",
    "SELECT PROVENANCE (polynomial) sname, count(*) AS c FROM sales GROUP BY sname",
    "SELECT PROVENANCE (polynomial) name FROM shop ORDER BY numempl DESC",
    "SELECT CASE WHEN numempl > 10 THEN 'big' ELSE 'small' END AS size_tag "
    "FROM shop ORDER BY size_tag",
    "SELECT upper(name) AS u, numempl / 4 AS q, numempl % 4 AS r FROM shop",
]


@pytest.mark.parametrize("sql", PARITY_QUERIES)
def test_example_queries_identical_across_backends(sql):
    assert_same_result(
        example_db("python").execute(sql),
        example_db("sqlite").execute(sql),
        context=f"for {sql!r}",
    )


def test_polynomial_annotations_cross_backend():
    sql = "SELECT PROVENANCE (polynomial) name FROM shop, sales WHERE name = sname"
    py = example_db("python").execute(sql)
    sq = example_db("sqlite").execute(sql)
    assert py.annotation_column == sq.annotation_column == "prov_polynomial"
    assert sorted(py.annotations()) == sorted(sq.annotations())
    assert all(isinstance(p, Polynomial) for p in sq.annotations())
    assert sorted(sq.evaluate_provenance("counting")) == sorted(
        py.evaluate_provenance("counting")
    )


# -- incremental sync --------------------------------------------------------


def test_incremental_sync_ships_only_new_rows():
    db = example_db("sqlite")
    backend = db.backend
    db.execute("SELECT name FROM shop")
    shipped = backend._rows_shipped
    assert shipped == 2  # only shop was needed
    # A clean mirror ships nothing on re-query.
    db.execute("SELECT name FROM shop")
    assert backend._rows_shipped == shipped
    # DML ships exactly the appended suffix.
    db.execute("INSERT INTO shop VALUES ('New', 1)")
    rows = db.execute("SELECT name FROM shop ORDER BY name").rows
    assert ("New",) in rows
    assert backend._rows_shipped == shipped + 1


def test_drop_and_recreate_reloads_table():
    db = example_db("sqlite")
    assert len(db.execute("SELECT name FROM shop").rows) == 2
    db.execute("DROP TABLE shop")
    db.execute("CREATE TABLE shop (name text, numempl integer)")
    db.execute("INSERT INTO shop VALUES ('Only', 9)")
    assert db.execute("SELECT name FROM shop").rows == [("Only",)]


def test_select_into_and_requery_on_sqlite():
    db = example_db("sqlite")
    db.execute("SELECT PROVENANCE name INTO stored FROM shop WHERE numempl < 10")
    result = db.execute("SELECT name, prov_shop_name FROM stored")
    assert result.rows == [("Merdies", "Merdies")]


def test_collect_base_relations_descends_sublinks():
    from repro.sql.parser import parse_statement

    db = example_db("python")
    query, _ = db._analyze_and_rewrite(
        parse_statement("SELECT name FROM shop WHERE name IN (SELECT sname FROM sales)")
    )
    assert collect_base_relations(query) == {"shop", "sales"}


# -- unsupported constructs raise, never mis-execute -------------------------


def test_intersect_all_rejected_by_sqlite():
    db = example_db("sqlite")
    with pytest.raises(BackendUnsupportedError, match="INTERSECT ALL"):
        db.execute("SELECT name FROM shop INTERSECT ALL SELECT sname FROM sales")


def test_bare_interval_rejected_by_sqlite():
    db = example_db("sqlite")
    with pytest.raises(BackendUnsupportedError, match="INTERVAL"):
        db.execute("SELECT INTERVAL '3' MONTH FROM shop")


def test_date_arithmetic_supported_on_sqlite():
    setup = ["CREATE TABLE d (day date)", "INSERT INTO d VALUES (DATE '1995-03-31')"]
    for sql in [
        "SELECT day + INTERVAL '7' DAY AS later FROM d",
        "SELECT day FROM d WHERE day < DATE '1995-01-01' + INTERVAL '1' YEAR",
        "SELECT DATE '1995-03-31' + INTERVAL '3' MONTH AS clamped FROM d",
        "SELECT EXTRACT(YEAR FROM day) AS y, EXTRACT(MONTH FROM day) AS m FROM d",
    ]:
        results = []
        for backend in ("python", "sqlite"):
            db = repro.connect(backend=backend)
            for statement in setup:
                db.execute(statement)
            results.append(db.execute(sql))
        assert_same_result(results[0], results[1], context=f"for {sql!r}")


def test_month_arithmetic_on_column_rejected_by_sqlite():
    # SQLite's date() rolls month ends over; the engine clamps.  Rather
    # than silently diverging on e.g. Jan 31 + 1 month, the dialect rejects.
    db = repro.connect(backend="sqlite")
    db.execute("CREATE TABLE d (day date)")
    with pytest.raises(BackendUnsupportedError, match="month"):
        db.execute("SELECT day + INTERVAL '1' MONTH AS next_month FROM d")


def test_boolean_argument_to_engine_udf_rejected():
    # Booleans live as 0/1 in SQLite; shipping one into an engine UDF
    # (concat, greatest, ...) would silently change semantics.
    db = repro.connect(backend="sqlite")
    db.execute("CREATE TABLE bt (b boolean)")
    db.execute("INSERT INTO bt VALUES (TRUE)")
    with pytest.raises(BackendUnsupportedError, match="boolean argument"):
        db.execute("SELECT concat('x', b) AS c FROM bt")


def test_text_casts_keep_engine_strictness():
    # SQLite's native CAST('abc' AS INTEGER) is 0; the engine raises.
    # The dialect must route casts through the engine's conversion rules.
    for backend in ("python", "sqlite"):
        db = repro.connect(backend=backend)
        db.execute("CREATE TABLE tx (a text)")
        db.execute("INSERT INTO tx VALUES ('abc')")
        with pytest.raises(Exception):
            db.execute("SELECT CAST(a AS integer) AS i FROM tx")


def test_integer_minus_date_rejected_by_sqlite():
    db = example_db("sqlite")
    with pytest.raises(BackendUnsupportedError, match="date on the right"):
        db.execute("SELECT 5 - DATE '2020-01-10' AS d FROM shop")


def test_offset_without_limit():
    assert_same_result(
        example_db("python").execute("SELECT name FROM shop ORDER BY name OFFSET 1"),
        example_db("sqlite").execute("SELECT name FROM shop ORDER BY name OFFSET 1"),
    )


def test_correlated_setop_sublink_matches():
    # The sublink body is a set operation whose leaves reference the
    # outer query; both backends must bind t.x to the outer scope.
    setup = [
        "CREATE TABLE t (x integer)",
        "CREATE TABLE s (a integer)",
        "CREATE TABLE u (b integer, x integer)",
        "INSERT INTO t VALUES (1), (2)",
        "INSERT INTO s VALUES (99), (2)",
        "INSERT INTO u VALUES (5, 5)",
    ]
    sql = (
        "SELECT x FROM t WHERE EXISTS ("
        "(SELECT a FROM s WHERE s.a = t.x) UNION "
        "(SELECT b FROM u WHERE u.b = t.x))"
    )
    results = []
    for backend in ("python", "sqlite"):
        db = repro.connect(backend=backend)
        for statement in setup:
            db.execute(statement)
        results.append(db.execute(sql))
    assert results[0].rows == [(2,)]
    assert_same_result(results[0], results[1], context=f"for {sql!r}")


def test_unsupported_error_names_the_feature():
    try:
        example_db("sqlite").execute(
            "SELECT name FROM shop EXCEPT ALL SELECT sname FROM sales"
        )
    except BackendUnsupportedError as exc:
        assert exc.feature.startswith("EXCEPT ALL")
        assert exc.backend == "sqlite"
    else:  # pragma: no cover
        pytest.fail("EXCEPT ALL must be rejected by the SQLite dialect")


# -- CLI ---------------------------------------------------------------------


def test_cli_backend_flag_and_meta(capsys):
    from repro.__main__ import _handle_meta, main

    assert main(["--backend", "sqlite", "-c", "SELECT 1 + 1 AS two"]) == 0
    assert "2" in capsys.readouterr().out

    db = example_db("python")
    assert _handle_meta(db, "\\backend sqlite")
    assert db.backend_name == "sqlite"
    out = capsys.readouterr().out
    assert "sqlite" in out
    assert _handle_meta(db, "\\backend")
    listing = capsys.readouterr().out
    assert "python" in listing and "* sqlite" in listing
