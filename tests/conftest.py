"""Shared fixtures: the paper's example database and small helpers."""

from __future__ import annotations

import pytest

import repro


@pytest.fixture
def db() -> repro.PermDatabase:
    """A fresh empty database."""
    return repro.connect()


@pytest.fixture
def example_db() -> repro.PermDatabase:
    """The shop/sales/items database of paper Fig. 2."""
    database = repro.connect()
    database.execute("CREATE TABLE shop (name text, numempl integer)")
    database.execute("CREATE TABLE sales (sname text, itemid integer)")
    database.execute("CREATE TABLE items (id integer, price integer)")
    database.execute("INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14)")
    database.execute(
        "INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), "
        "('Merdies', 2), ('Joba', 3), ('Joba', 3)"
    )
    database.execute("INSERT INTO items VALUES (1, 100), (2, 10), (3, 25)")
    return database


def bag(rows) -> dict:
    """Rows -> multiset dict, for order-insensitive comparisons."""
    from collections import Counter

    return dict(Counter(tuple(r) for r in rows))
