"""The fault-injection harness itself: rule matching, determinism, and
the install/clear lifecycle."""

from __future__ import annotations

import time

import pytest

from repro import faultinject
from repro.errors import PermError
from repro.faultinject import (
    FaultInjector,
    InjectedFault,
    SimulatedCrash,
    fault_point,
)


class TestRuleMatching:
    def test_uninstalled_hook_is_a_noop(self):
        assert faultinject.active() is None
        assert fault_point("anything.at.all") is None

    def test_nth_hit_fires_exactly_once(self):
        inj = FaultInjector()
        inj.on("p", "crash", nth=3)
        with inj.installed():
            fault_point("p")
            fault_point("p")
            with pytest.raises(SimulatedCrash) as exc:
                fault_point("p")
            assert exc.value.point == "p"
            fault_point("p")  # times=1 by default: spent
        assert inj.hits["p"] == 4
        assert inj.fired == [("p", "crash")]

    def test_hits_are_counted_per_point(self):
        inj = FaultInjector()
        inj.on("a", "crash", nth=2)
        with inj.installed():
            fault_point("a")
            fault_point("b")  # does not advance point "a"
            with pytest.raises(SimulatedCrash):
                fault_point("a")

    def test_unconditional_rule_with_times(self):
        inj = FaultInjector()
        inj.on("p", "error", times=2, error_type="overloaded")
        with inj.installed():
            for _ in range(2):
                with pytest.raises(InjectedFault) as exc:
                    fault_point("p")
                assert exc.value.error_type == "overloaded"
            assert fault_point("p") is None  # budget spent

    def test_probability_schedule_is_seed_deterministic(self):
        def schedule(seed):
            inj = FaultInjector(seed=seed)
            inj.on("p", "error", probability=0.3, times=None)
            outcomes = []
            with inj.installed():
                for _ in range(40):
                    try:
                        fault_point("p")
                        outcomes.append(False)
                    except InjectedFault:
                        outcomes.append(True)
            return outcomes

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)
        assert any(schedule(7))
        assert not all(schedule(7))

    def test_torn_action_is_returned_not_raised(self):
        inj = FaultInjector()
        inj.on("p", "torn", nth=1, keep=5)
        with inj.installed():
            action = fault_point("p")
        assert action is not None
        assert action.kind == "torn"
        assert action.keep == 5

    def test_sleep_action_blocks(self):
        inj = FaultInjector()
        inj.on("p", "sleep", nth=1, seconds=0.05)
        with inj.installed():
            start = time.monotonic()
            assert fault_point("p") is None
            assert time.monotonic() - start >= 0.05

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector().on("p", "explode")


class TestLifecycle:
    def test_installed_clears_on_exit(self):
        inj = FaultInjector()
        with inj.installed() as got:
            assert got is inj
            assert faultinject.active() is inj
        assert faultinject.active() is None

    def test_installed_clears_on_crash(self):
        inj = FaultInjector()
        inj.on("p", "crash", nth=1)
        with pytest.raises(SimulatedCrash):
            with inj.installed():
                fault_point("p")
        assert faultinject.active() is None

    def test_simulated_crash_is_not_a_perm_error(self):
        # Engine code catches PermError/Exception in places; a simulated
        # crash must sail through all of them to the test harness.
        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(InjectedFault, PermError)

    def test_rules_chain(self):
        inj = FaultInjector().on("a", "crash", nth=1).on("b", "error", nth=1)
        assert len(inj.rules) == 2
