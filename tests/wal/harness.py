"""Shared helpers for durability tests: catalog fingerprints and the
differential twin.

The durability contract under test: a database recovered from a WAL
directory is *equivalent* to a fresh database that executed the durable
statement prefix — same heaps, table epochs, delta logs, statistics,
views, matview contents, and same answers to witness and polynomial
provenance reads.  ``fingerprint()`` reifies that equivalence as a
comparable structure; ``replay_twin()`` builds the reference database.
"""

from __future__ import annotations

from collections import Counter

import repro
from repro.semiring.polynomial import Polynomial


def canon_value(value):
    """Hashable, comparison-stable form of one engine value."""
    if isinstance(value, Polynomial):
        return ("$poly", value.to_wire())
    return value


def canon_rows(rows) -> Counter:
    """Rows -> multiset (matview merge order is not part of the contract)."""
    return Counter(tuple(canon_value(v) for v in row) for row in rows)


def fingerprint(db: repro.PermDatabase) -> dict:
    """Everything the durability contract promises to preserve."""
    state = {
        "catalog_epoch": db.catalog.epoch,
        "stats_epoch": db.catalog.stats_epoch,
        "views": sorted(v.name for v in db.catalog.views()),
    }
    tables = {}
    for table in db.catalog.tables():
        floor, deltas = table.delta_log_state()
        tables[table.name] = {
            "rows": canon_rows(table.raw_rows()),
            "epoch": table.epoch,
            "delta_seq": table.delta_seq,
            "delta_floor": floor,
            "deltas": tuple(deltas),
        }
    state["tables"] = tables
    # Matviews are maintain-on-read: bring both sides of a comparison to
    # the current epoch before looking at their rows, otherwise a
    # checkpoint-time refresh would differ from a creation-time one.
    from repro.matview.maintenance import ensure_fresh

    matviews = {}
    for view in db.catalog.matviews():
        ensure_fresh(db, view)
        matviews[view.name] = canon_rows(view.rows)
    state["matviews"] = matviews
    stats = {}
    for name, entry in db.catalog.stats_entries().items():
        table = db.catalog.table(name) if db.catalog.has_table(name) else None
        stats[name] = {
            "row_count": entry.row_count,
            "table_epoch": entry.table_epoch,
            "bound_to_heap": table is not None
            and entry.table_uid == table.uid,
            "columns": {
                col: (c.ndv, c.null_frac, c.min_value, c.max_value)
                for col, c in entry.columns.items()
            },
        }
    state["stats"] = stats
    return state


def provenance_reads(db: repro.PermDatabase) -> dict:
    """Witness + polynomial provenance answers over every base table."""
    reads = {}
    for table in db.catalog.tables():
        name = table.name
        reads[name, "witness"] = canon_rows(
            db.execute(f"SELECT PROVENANCE * FROM {name}").rows
        )
        reads[name, "polynomial"] = canon_rows(
            db.execute(f"SELECT PROVENANCE (polynomial) * FROM {name}").rows
        )
    return reads


def replay_twin(statements) -> repro.PermDatabase:
    """The reference database: the statement prefix replayed from empty,
    one ``execute()`` per statement (exactly how recovery replays)."""
    twin = repro.connect()
    for sql in statements:
        twin.execute(sql)
    return twin


def assert_equivalent(recovered: repro.PermDatabase, twin: repro.PermDatabase):
    assert fingerprint(recovered) == fingerprint(twin)
    assert provenance_reads(recovered) == provenance_reads(twin)
