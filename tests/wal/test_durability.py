"""End-to-end durability: log, close, recover, and compare against a
twin database that executed the same durable statement prefix."""

from __future__ import annotations

import pytest

import repro
from repro.errors import ExecutionError, PermError
from repro.wal.wal import list_checkpoints, list_segments

from tests.wal.harness import assert_equivalent, fingerprint, replay_twin

WORKLOAD = [
    "CREATE TABLE shop (name text, numempl integer)",
    "INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14), ('Edeka', 7)",
    "CREATE TABLE sales (name text, amount integer)",
    "INSERT INTO sales VALUES ('Merdies', 100), ('Joba', 40), ('Joba', 9)",
    "UPDATE shop SET numempl = numempl + 1 WHERE name = 'Joba'",
    "DELETE FROM sales WHERE amount < 10",
    "CREATE VIEW small AS SELECT name FROM shop WHERE numempl < 10",
    (
        "CREATE MATERIALIZED PROVENANCE VIEW mv AS SELECT PROVENANCE "
        "s.name, amount FROM shop s, sales WHERE s.name = sales.name"
    ),
    "ANALYZE shop",
    "SELECT name INTO topsellers FROM sales WHERE amount > 50",
]


def run_workload(db, statements=WORKLOAD):
    for sql in statements:
        db.execute(sql)


def reopen(tmp_path, **kwargs):
    return repro.connect(wal_dir=tmp_path / "wal", **kwargs)


class TestRecovery:
    def test_fresh_directory_is_a_noop(self, tmp_path):
        db = reopen(tmp_path)
        report = db.last_recovery
        assert report.statements_replayed == 0
        assert report.checkpoint_segment is None
        assert db.catalog.tables() == []
        db.close()

    def test_round_trip_equals_replay_twin(self, tmp_path):
        db = reopen(tmp_path)
        run_workload(db)
        db.close()

        recovered = reopen(tmp_path)
        assert recovered.last_recovery.statements_replayed == len(WORKLOAD)
        assert_equivalent(recovered, replay_twin(WORKLOAD))
        recovered.close()

    def test_recovery_is_idempotent(self, tmp_path):
        db = reopen(tmp_path)
        run_workload(db)
        db.close()
        first = reopen(tmp_path)
        fp = fingerprint(first)
        first.close()
        second = reopen(tmp_path)
        assert fingerprint(second) == fp
        second.close()

    def test_writes_after_recovery_are_durable_too(self, tmp_path):
        db = reopen(tmp_path)
        run_workload(db)
        db.close()
        db = reopen(tmp_path)
        extra = "INSERT INTO shop VALUES ('Spar', 5)"
        db.execute(extra)
        db.close()
        recovered = reopen(tmp_path)
        assert_equivalent(recovered, replay_twin(WORKLOAD + [extra]))
        recovered.close()

    def test_selects_are_not_logged(self, tmp_path):
        db = reopen(tmp_path)
        run_workload(db)
        before = db.wal_status()["appended_records"]
        db.execute("SELECT * FROM shop")
        db.execute("SELECT PROVENANCE (polynomial) name FROM small")
        assert db.wal_status()["appended_records"] == before
        db.close()

    def test_failed_statements_are_not_logged(self, tmp_path):
        db = reopen(tmp_path)
        run_workload(db)
        with pytest.raises(PermError):
            db.execute("INSERT INTO missing VALUES (1)")
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO shop VALUES ('x', 1, 2, 3)")
        db.close()
        recovered = reopen(tmp_path)
        assert recovered.last_recovery.statements_replayed == len(WORKLOAD)
        assert_equivalent(recovered, replay_twin(WORKLOAD))
        recovered.close()


class TestCheckpoints:
    def test_checkpoint_truncates_replay(self, tmp_path):
        db = reopen(tmp_path)
        run_workload(db)
        new_segment = db.checkpoint()
        assert new_segment == 2
        extra = "INSERT INTO sales VALUES ('Edeka', 77)"
        db.execute(extra)
        db.close()

        recovered = reopen(tmp_path)
        report = recovered.last_recovery
        assert report.checkpoint_segment == 2
        assert report.statements_replayed == 1
        assert_equivalent(recovered, replay_twin(WORKLOAD + [extra]))
        recovered.close()

    def test_checkpoint_prunes_old_files(self, tmp_path):
        db = reopen(tmp_path)
        run_workload(db)
        db.checkpoint()
        db.execute("INSERT INTO shop VALUES ('Spar', 5)")
        db.checkpoint()
        wal_dir = tmp_path / "wal"
        assert [seg for seg, _ in list_segments(wal_dir)] == [3]
        assert [seg for seg, _ in list_checkpoints(wal_dir)] == [3]
        db.close()

    def test_auto_checkpoint_interval(self, tmp_path):
        db = reopen(tmp_path, wal_checkpoint_interval=4)
        run_workload(db)
        assert db.wal_status()["checkpoints_taken"] >= 2
        db.close()
        recovered = reopen(tmp_path, wal_checkpoint_interval=4)
        assert_equivalent(recovered, replay_twin(WORKLOAD))
        recovered.close()

    def test_checkpoint_requires_durability(self):
        db = repro.connect()
        with pytest.raises(PermError):
            db.checkpoint()

    def test_programmatic_load_needs_a_checkpoint(self, tmp_path):
        # create_table/load_table bypass SQL execution and therefore the
        # WAL; a checkpoint is the documented way to persist a bulk load.
        from repro.catalog.schema import Column, TableSchema
        from repro.datatypes import SQLType

        schema = TableSchema(
            "bulk", [Column("a", SQLType.INTEGER), Column("b", SQLType.TEXT)]
        )
        db = reopen(tmp_path)
        db.create_table(schema)
        db.load_table("bulk", [(1, "x"), (2, "y")])
        db.close()
        lost = reopen(tmp_path)
        assert not lost.catalog.has_table("bulk")
        lost.close()

        db = reopen(tmp_path)
        db.create_table(schema)
        db.load_table("bulk", [(1, "x"), (2, "y")])
        db.checkpoint()
        db.close()
        kept = reopen(tmp_path)
        assert kept.catalog.table("bulk").row_count() == 2
        kept.close()


class TestSyncModesAndStatus:
    @pytest.mark.parametrize("sync", ["always", "batch", "never"])
    def test_clean_close_recovers_under_every_sync_mode(self, tmp_path, sync):
        db = reopen(tmp_path, wal_sync=sync)
        run_workload(db)
        db.close()
        recovered = reopen(tmp_path, wal_sync=sync)
        assert_equivalent(recovered, replay_twin(WORKLOAD))
        recovered.close()

    def test_always_syncs_every_record(self, tmp_path):
        db = reopen(tmp_path)
        run_workload(db)
        status = db.wal_status()
        assert status["sync"] == "always"
        assert status["fsync_count"] >= status["appended_records"]
        db.close()

    def test_batch_syncs_less(self, tmp_path):
        db = reopen(tmp_path, wal_sync="batch")
        run_workload(db)
        assert db.wal_status()["fsync_count"] < len(WORKLOAD)
        db.close()

    def test_unknown_sync_mode_rejected(self, tmp_path):
        with pytest.raises(PermError):
            reopen(tmp_path, wal_sync="sometimes")

    def test_status_shape(self, tmp_path):
        db = reopen(tmp_path)
        run_workload(db)
        status = db.wal_status()
        assert status["appended_records"] == len(WORKLOAD)
        assert status["lsn"] == len(WORKLOAD)
        assert status["segment"] == 1
        assert status["last_recovery"]["statements_replayed"] == 0
        db.close()

    def test_non_durable_database_has_no_wal(self):
        db = repro.connect()
        assert not db.durable
        assert db.wal_status() is None
        assert db.last_recovery is None


class TestTPCHIntegration:
    def test_tpch_database_checkpoints_its_bulk_load(self, tmp_path):
        from repro.tpch.dbgen import tpch_database

        db = tpch_database(
            scale_factor=0.0001, seed=7, wal_dir=tmp_path / "wal"
        )
        counts = {
            t.name: t.row_count() for t in db.catalog.tables()
        }
        db.close()
        recovered = reopen(tmp_path)
        assert {
            t.name: t.row_count() for t in recovered.catalog.tables()
        } == counts
        recovered.close()
