"""The crash matrix: simulated crashes at every WAL byte boundary and at
every named fault point, each followed by recovery and a differential
comparison against a twin that executed the durable statement prefix."""

from __future__ import annotations

import pytest

import repro
from repro.errors import WalError
from repro.faultinject import FaultInjector, SimulatedCrash
from repro.wal import format as walfmt
from repro.wal.wal import segment_path

from tests.wal.harness import (
    assert_equivalent,
    fingerprint,
    provenance_reads,
    replay_twin,
)

# Small on purpose: the byte matrix recovers once per byte of this log.
COMPACT = [
    "CREATE TABLE t (a integer, b text)",
    "INSERT INTO t VALUES (1, 'x'), (2, 'y')",
    "INSERT INTO t VALUES (3, 'z')",
    "UPDATE t SET b = 'w' WHERE a = 2",
    "DELETE FROM t WHERE a = 1",
    "ANALYZE t",
]


def run_durable(tmp_path, statements, name="wal", **kwargs):
    db = repro.connect(wal_dir=tmp_path / name, **kwargs)
    for sql in statements:
        db.execute(sql)
    return db


class TwinCache:
    """Reference states per durable-prefix length, built lazily."""

    def __init__(self, statements):
        self.statements = statements
        self._cache = {}

    def state(self, prefix_len):
        if prefix_len not in self._cache:
            twin = replay_twin(self.statements[:prefix_len])
            self._cache[prefix_len] = (
                fingerprint(twin),
                provenance_reads(twin),
            )
        return self._cache[prefix_len]


def test_crash_at_every_byte_boundary(tmp_path):
    db = run_durable(tmp_path, COMPACT)
    log_bytes = segment_path(tmp_path / "wal", 1).read_bytes()
    db.close()
    twins = TwinCache(COMPACT)

    frame_boundaries = {walfmt.SEGMENT_HEADER_SIZE}
    offset = walfmt.SEGMENT_HEADER_SIZE
    for scan_record in walfmt.scan_segment(log_bytes).records:
        offset += len(walfmt.encode_record(scan_record))
        frame_boundaries.add(offset)

    for cut in range(len(log_bytes) + 1):
        wal_dir = tmp_path / f"cut{cut}"
        wal_dir.mkdir()
        segment_path(wal_dir, 1).write_bytes(log_bytes[:cut])
        recovered = repro.connect(wal_dir=wal_dir)

        durable_prefix = len(
            walfmt.scan_segment(log_bytes[:cut]).records
        )
        assert recovered.last_recovery.statements_replayed == durable_prefix
        want_fp, want_reads = twins.state(durable_prefix)
        assert fingerprint(recovered) == want_fp
        if cut in frame_boundaries:
            assert provenance_reads(recovered) == want_reads
        recovered.close()


@pytest.mark.parametrize("keep", [0, 1, 4, 20])
def test_torn_append_loses_only_the_unacknowledged_statement(tmp_path, keep):
    db = run_durable(tmp_path, COMPACT[:-1])
    inj = FaultInjector()
    inj.on("wal.append", "torn", nth=1, keep=keep)
    with inj.installed():
        with pytest.raises(SimulatedCrash):
            db.execute(COMPACT[-1])
    # The crashed process is gone; whatever reached the disk, recovery
    # must land exactly on the acknowledged prefix.
    recovered = repro.connect(wal_dir=tmp_path / "wal")
    report = recovered.last_recovery
    assert report.statements_replayed == len(COMPACT) - 1
    assert report.torn_bytes_dropped == (keep if keep else 0)
    assert_equivalent(recovered, replay_twin(COMPACT[:-1]))
    recovered.close()


@pytest.mark.parametrize("point", ["wal.fsync.before", "wal.fsync.after"])
def test_crash_around_the_fsync_boundary(tmp_path, point):
    # The frame is fully written before the fsync; a crash on either
    # side leaves an intact record, so recovery includes the statement
    # (before the fsync that is permitted, after it it is required).
    db = run_durable(tmp_path, COMPACT[:-1])
    inj = FaultInjector()
    inj.on(point, "crash", nth=1)
    with inj.installed():
        with pytest.raises(SimulatedCrash):
            db.execute(COMPACT[-1])
    recovered = repro.connect(wal_dir=tmp_path / "wal")
    assert recovered.last_recovery.statements_replayed == len(COMPACT)
    assert_equivalent(recovered, replay_twin(COMPACT))
    recovered.close()


CHECKPOINT_POINTS = [
    ("wal.checkpoint.begin", 1),
    ("wal.checkpoint.write", 1),
    ("wal.checkpoint.written", 1),
    ("wal.checkpoint.renamed", 1),
    # The injector is installed after attach, so the first counted hit
    # of wal.segment.open is the roll to the post-checkpoint segment.
    ("wal.segment.open", 1),
    ("wal.checkpoint.cleaned", 1),
    ("wal.checkpoint.done", 1),
]


@pytest.mark.parametrize("point,nth", CHECKPOINT_POINTS)
def test_crash_inside_the_checkpoint_protocol(tmp_path, point, nth):
    db = run_durable(tmp_path, COMPACT)
    inj = FaultInjector()
    inj.on(point, "crash", nth=nth)
    with inj.installed():
        with pytest.raises(SimulatedCrash):
            db.checkpoint()
    # No committed statement may be lost or double-applied, whichever
    # side of the atomic rename the crash fell on.
    recovered = repro.connect(wal_dir=tmp_path / "wal")
    assert_equivalent(recovered, replay_twin(COMPACT))

    # And the recovered database must keep working durably.
    extra = "INSERT INTO t VALUES (9, 'post-crash')"
    recovered.execute(extra)
    recovered.close()
    final = repro.connect(wal_dir=tmp_path / "wal")
    assert_equivalent(final, replay_twin(COMPACT + [extra]))
    final.close()


class TestRefusedStates:
    def test_segment_gap_is_refused(self, tmp_path):
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        rec = {"lsn": 1, "kind": "statement", "sql": "CREATE TABLE g (a integer)"}
        segment_path(wal_dir, 1).write_bytes(
            walfmt.segment_header(1) + walfmt.encode_record(rec)
        )
        segment_path(wal_dir, 3).write_bytes(walfmt.segment_header(3))
        with pytest.raises(WalError, match="gap"):
            repro.connect(wal_dir=wal_dir)

    def test_interior_corruption_is_refused(self, tmp_path):
        # A torn frame is only repairable at the very tail of the log; a
        # corrupt non-final segment means later records may depend on a
        # lost one, so recovery must refuse rather than skip.
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        rec = {"lsn": 1, "kind": "statement", "sql": "CREATE TABLE g (a integer)"}
        frame = walfmt.encode_record(rec)
        segment_path(wal_dir, 1).write_bytes(
            walfmt.segment_header(1) + frame[: len(frame) - 2]
        )
        segment_path(wal_dir, 2).write_bytes(walfmt.segment_header(2))
        with pytest.raises(WalError, match="interior"):
            repro.connect(wal_dir=wal_dir)

    def test_mislabeled_segment_is_refused(self, tmp_path):
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        segment_path(wal_dir, 1).write_bytes(walfmt.segment_header(5))
        with pytest.raises(WalError, match="claims"):
            repro.connect(wal_dir=wal_dir)

    def test_corrupt_checkpoint_falls_back_to_full_replay(self, tmp_path):
        db = run_durable(tmp_path, COMPACT)
        db.checkpoint()
        db.close()
        wal_dir = tmp_path / "wal"
        (ckpt,) = wal_dir.glob("checkpoint-*.ckpt")
        blob = bytearray(ckpt.read_bytes())
        blob[-1] ^= 0xFF
        ckpt.write_bytes(bytes(blob))
        # The checkpoint is unreadable and its WAL suffix (segment 2)
        # is empty: recovery has nothing durable to rebuild from.  It
        # must still come up — with an empty catalog — rather than trust
        # a corrupt snapshot.
        recovered = repro.connect(wal_dir=wal_dir)
        assert recovered.last_recovery.checkpoint_segment is None
        recovered.close()
