"""Unit tests for the WAL on-disk format: frame codec, segment headers,
torn-tail scanning, and checkpoint file round trips."""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.wal import format as walfmt
from repro.wal.checkpoint import read_checkpoint, write_checkpoint


def make_segment(records, segment=1) -> bytes:
    data = walfmt.segment_header(segment)
    for record in records:
        data += walfmt.encode_record(record)
    return data


def records(n):
    return [
        {"lsn": i + 1, "kind": "statement", "sql": f"INSERT INTO t VALUES ({i})"}
        for i in range(n)
    ]


class TestFrameCodec:
    def test_round_trip(self):
        payloads = records(3)
        scan = walfmt.scan_segment(make_segment(payloads))
        assert scan.segment == 1
        assert scan.records == payloads
        assert not scan.torn

    def test_empty_segment(self):
        scan = walfmt.scan_segment(walfmt.segment_header(7))
        assert scan.segment == 7
        assert scan.records == []
        assert scan.good_offset == walfmt.SEGMENT_HEADER_SIZE
        assert not scan.torn

    def test_record_too_large_refused_on_encode(self):
        huge = {"lsn": 1, "kind": "statement", "sql": "x" * walfmt.MAX_RECORD}
        with pytest.raises(ValueError):
            walfmt.encode_record(huge)

    def test_segment_header_round_trip(self):
        header = walfmt.segment_header(42)
        assert len(header) == walfmt.SEGMENT_HEADER_SIZE
        assert walfmt.parse_segment_header(header) == 42

    def test_bad_magic_rejected(self):
        header = b"NOTAWAL1" + walfmt.segment_header(1)[8:]
        assert walfmt.parse_segment_header(header) is None

    def test_corrupt_header_crc_rejected(self):
        header = bytearray(walfmt.segment_header(1))
        header[-1] ^= 0xFF
        assert walfmt.parse_segment_header(bytes(header)) is None


class TestTornTailScan:
    def test_truncation_at_every_byte_yields_a_prefix(self):
        payloads = records(4)
        data = make_segment(payloads)
        boundaries = [walfmt.SEGMENT_HEADER_SIZE]
        offset = walfmt.SEGMENT_HEADER_SIZE
        for record in payloads:
            offset += len(walfmt.encode_record(record))
            boundaries.append(offset)
        for cut in range(walfmt.SEGMENT_HEADER_SIZE, len(data) + 1):
            scan = walfmt.scan_segment(data[:cut])
            # The scan keeps exactly the records whose frames fit entirely
            # inside the cut, and reports the boundary it stopped at.
            want = sum(1 for b in boundaries[1:] if b <= cut)
            assert scan.records == payloads[:want]
            assert scan.good_offset == boundaries[want]
            assert bool(scan.torn) == (cut != boundaries[want])

    def test_corrupt_payload_stops_scan(self):
        payloads = records(3)
        data = bytearray(make_segment(payloads))
        # Flip one byte inside the second record's payload.
        first_end = walfmt.SEGMENT_HEADER_SIZE + len(
            walfmt.encode_record(payloads[0])
        )
        data[first_end + 8 + 2] ^= 0xFF
        scan = walfmt.scan_segment(bytes(data))
        assert scan.records == payloads[:1]
        assert scan.torn
        assert scan.good_offset == first_end

    def test_implausible_length_stops_scan(self):
        data = walfmt.segment_header(1) + struct.pack(
            ">II", walfmt.MAX_RECORD + 1, 0
        )
        scan = walfmt.scan_segment(data)
        assert scan.records == []
        assert scan.torn

    def test_undecodable_payload_stops_scan(self):
        garbage = b"\x00\xff not json"
        frame = struct.pack(">II", len(garbage), zlib.crc32(garbage)) + garbage
        scan = walfmt.scan_segment(walfmt.segment_header(1) + frame)
        assert scan.records == []
        assert scan.torn

    def test_torn_segment_header(self):
        scan = walfmt.scan_segment(walfmt.segment_header(1)[:-3])
        assert scan.segment is None


class TestCheckpointFile:
    def test_round_trip(self, tmp_path):
        payload = {"tables": [], "views": [], "catalog_epoch": 9}
        path = write_checkpoint(tmp_path, segment=3, data=payload, lsn=17)
        read = read_checkpoint(path)
        assert read is not None
        assert read["segment"] == 3
        assert read["lsn"] == 17
        for key, value in payload.items():
            assert read[key] == value
        assert not list(tmp_path.glob("*.tmp"))

    def test_corruption_returns_none(self, tmp_path):
        path = write_checkpoint(tmp_path, segment=1, data={"x": 1}, lsn=2)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert read_checkpoint(path) is None

    def test_truncation_returns_none(self, tmp_path):
        path = write_checkpoint(tmp_path, segment=1, data={"x": 1}, lsn=2)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        assert read_checkpoint(path) is None
