"""Direct interpreter tests against the Fig. 1 operator definitions."""

from __future__ import annotations

import pytest

from repro.algebra import (
    Aggregate,
    AggSpec,
    Attr,
    BagDifference,
    BagIntersection,
    BagProject,
    BagUnion,
    BaseRelation,
    Cmp,
    Cross,
    Join,
    Lit,
    Select,
    SetDifference,
    SetIntersection,
    SetProject,
    SetUnion,
    evaluate,
)
from repro.algebra.evaluate import AlgebraError
from repro.algebra.expr import attr_equal
from repro.storage.relation import Relation


def rel(columns, counted):
    return Relation.from_counted(columns, counted)


R = BaseRelation("r", ["a", "b"])
S = BaseRelation("s", ["c"])


@pytest.fixture
def db():
    return {
        "r": rel(["a", "b"], [((1, "x"), 2), ((2, "y"), 1)]),
        "s": rel(["c"], [((1,), 1), ((3,), 2)]),
    }


def test_base_relation_renames_to_reference_schema(db):
    result = evaluate(BaseRelation("r", ["p", "q"]), db)
    assert result.columns == ("p", "q")
    assert result.multiplicity((1, "x")) == 2


def test_base_relation_arity_mismatch(db):
    with pytest.raises(AlgebraError):
        evaluate(BaseRelation("r", ["only_one"]), db)


def test_missing_relation(db):
    with pytest.raises(AlgebraError):
        evaluate(BaseRelation("zzz", ["a"]), db)


def test_selection_keeps_multiplicities(db):
    result = evaluate(Select(R, Cmp("=", Attr("a"), Lit(1))), db)
    assert result.multiplicity((1, "x")) == 2
    assert len(result) == 2


def test_selection_null_condition_filters(db):
    db["r"] = rel(["a", "b"], [((None, "n"), 1), ((1, "x"), 1)])
    result = evaluate(Select(R, Cmp("=", Attr("a"), Lit(1))), db)
    assert result.to_set() == {(1, "x")}


def test_bag_projection_sums_multiplicities(db):
    result = evaluate(BagProject(R, [(Attr("b"), "b")]), db)
    assert result.multiplicity(("x",)) == 2
    assert result.multiplicity(("y",)) == 1


def test_set_projection_deduplicates(db):
    result = evaluate(SetProject(R, [(Attr("b"), "b")]), db)
    assert result.multiplicity(("x",)) == 1


def test_projection_computes_expressions(db):
    from repro.algebra.expr import BinOp

    result = evaluate(BagProject(R, [(BinOp("*", Attr("a"), Lit(10)), "a10")]), db)
    assert result.multiplicity((10,)) == 2


def test_cross_multiplies_multiplicities(db):
    result = evaluate(Cross(R, S), db)
    assert result.multiplicity((1, "x", 3)) == 4  # 2 * 2
    assert len(result) == 9


def test_cross_schema_overlap_rejected(db):
    with pytest.raises(AlgebraError, match="overlap"):
        evaluate(Cross(R, BaseRelation("r", ["a", "b"])), db)


def test_inner_join(db):
    result = evaluate(Join(R, S, attr_equal("a", "c"), "inner"), db)
    assert result.to_set() == {(1, "x", 1)}
    assert result.multiplicity((1, "x", 1)) == 2


def test_left_join_null_extends_with_multiplicity(db):
    result = evaluate(Join(R, S, attr_equal("a", "c"), "left"), db)
    assert result.multiplicity((2, "y", None)) == 1
    assert result.multiplicity((1, "x", 1)) == 2


def test_right_and_full_joins(db):
    right = evaluate(Join(R, S, attr_equal("a", "c"), "right"), db)
    assert right.multiplicity((None, None, 3)) == 2
    full = evaluate(Join(R, S, attr_equal("a", "c"), "full"), db)
    assert full.multiplicity((2, "y", None)) == 1
    assert full.multiplicity((None, None, 3)) == 2


def test_aggregation_groups_and_multiplicity_aware_sums(db):
    agg = Aggregate(R, ["b"], [AggSpec("sum", Attr("a"), "s"), AggSpec("count", None, "n")])
    result = evaluate(agg, db)
    # (1,'x') has multiplicity 2: sum = 2, count = 2.
    assert result.multiplicity(("x", 2, 2)) == 1
    assert result.multiplicity(("y", 2, 1)) == 1


def test_grand_aggregate_empty_input(db):
    empty = Select(R, Lit(False))
    result = evaluate(Aggregate(empty, [], [AggSpec("sum", Attr("a"), "s")]), db)
    assert list(result.rows()) == [(None,)]


def test_grouped_aggregate_empty_input(db):
    empty = Select(R, Lit(False))
    result = evaluate(Aggregate(empty, ["b"], [AggSpec("count", None, "n")]), db)
    assert len(result) == 0


def test_aggregate_min_max_avg(db):
    agg = Aggregate(
        R,
        [],
        [
            AggSpec("min", Attr("a"), "lo"),
            AggSpec("max", Attr("a"), "hi"),
            AggSpec("avg", Attr("a"), "mean"),
        ],
    )
    result = evaluate(agg, db)
    # values: 1 (x2), 2 (x1) -> avg = 4/3.
    assert list(result.rows()) == [(1, 2, pytest.approx(4 / 3))]


def test_set_union(db):
    two = {"x": rel(["a"], [((1,), 2), ((2,), 1)]), "y": rel(["a"], [((2,), 3)])}
    result = evaluate(SetUnion(BaseRelation("x", ["a"]), BaseRelation("y", ["a"])), two)
    assert result == rel(["a"], [((1,), 1), ((2,), 1)])


def test_bag_union_adds(db):
    two = {"x": rel(["a"], [((1,), 2)]), "y": rel(["a"], [((1,), 3)])}
    result = evaluate(BagUnion(BaseRelation("x", ["a"]), BaseRelation("y", ["a"])), two)
    assert result.multiplicity((1,)) == 5


def test_bag_intersection_min(db):
    two = {"x": rel(["a"], [((1,), 2), ((2,), 1)]), "y": rel(["a"], [((1,), 1)])}
    result = evaluate(
        BagIntersection(BaseRelation("x", ["a"]), BaseRelation("y", ["a"])), two
    )
    assert result == rel(["a"], [((1,), 1)])


def test_set_intersection(db):
    two = {"x": rel(["a"], [((1,), 2), ((2,), 1)]), "y": rel(["a"], [((1,), 5)])}
    result = evaluate(
        SetIntersection(BaseRelation("x", ["a"]), BaseRelation("y", ["a"])), two
    )
    assert result == rel(["a"], [((1,), 1)])


def test_bag_difference_subtracts(db):
    two = {"x": rel(["a"], [((1,), 3), ((2,), 1)]), "y": rel(["a"], [((1,), 1), ((2,), 5)])}
    result = evaluate(
        BagDifference(BaseRelation("x", ["a"]), BaseRelation("y", ["a"])), two
    )
    assert result == rel(["a"], [((1,), 2)])


def test_set_difference(db):
    two = {"x": rel(["a"], [((1,), 3), ((2,), 1)]), "y": rel(["a"], [((2,), 1)])}
    result = evaluate(
        SetDifference(BaseRelation("x", ["a"]), BaseRelation("y", ["a"])), two
    )
    assert result == rel(["a"], [((1,), 1)])


def test_setop_incompatible_width(db):
    with pytest.raises(AlgebraError):
        evaluate(SetUnion(R, S), db)


def test_base_references_are_ordered(db):
    op = Cross(R, Cross(S, BaseRelation("r", ["a2", "b2"])))
    refs = op.base_references()
    assert [r.name for r in refs] == ["r", "s", "r"]
    assert refs[0].ref_id != refs[2].ref_id
