"""Formal rewrite rules R1-R9 (paper Fig. 3) on concrete examples."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.algebra import (
    Aggregate,
    AggSpec,
    Attr,
    BagDifference,
    BagProject,
    BagUnion,
    BaseRelation,
    Cross,
    Join,
    Select,
    SetDifference,
    SetIntersection,
    SetProject,
    SetUnion,
    evaluate,
)
from repro.algebra.expr import Cmp, Lit, attr_equal
from repro.core.algebra_rules import rewrite_algebra
from repro.storage.relation import Relation


def rel(columns, counted):
    return Relation.from_counted(columns, counted)


@pytest.fixture
def db():
    return {
        "r": rel(["a", "b"], [((1, "x"), 2), ((2, "y"), 1)]),
        "s": rel(["a2"], [((1,), 1), ((3,), 1)]),
    }


R = lambda: BaseRelation("r", ["a", "b"])  # noqa: E731 - test brevity
S = lambda: BaseRelation("s", ["a2"])  # noqa: E731


def plus(op, db):
    rewritten, plist = rewrite_algebra(op)
    return evaluate(rewritten, db), plist


def test_r1_base_relation(db):
    result, plist = plus(R(), db)
    assert result.columns == ("a", "b", "prov_r_a", "prov_r_b")
    assert result.multiplicity((1, "x", 1, "x")) == 2
    assert [p.name for p in plist] == ["prov_r_a", "prov_r_b"]


def test_r2_bag_projection(db):
    result, _ = plus(BagProject(R(), [(Attr("b"), "b")]), db)
    assert result.multiplicity(("x", 1, "x")) == 2


def test_r2_set_projection(db):
    result, _ = plus(SetProject(R(), [(Attr("b"), "b")]), db)
    # Set projection over extended tuples: multiplicity collapses to 1.
    assert result.multiplicity(("x", 1, "x")) == 1


def test_r3_selection(db):
    result, _ = plus(Select(R(), Cmp(">", Attr("a"), Lit(1))), db)
    assert result.to_set() == {(2, "y", 2, "y")}


def test_r4_cross(db):
    # R4 composes the rewritten inputs directly, so provenance columns sit
    # next to their relation (the paper's rules track the P-list by name,
    # not position; only the final projection rewrite appends them).
    result, plist = plus(Cross(R(), S()), db)
    assert [p.name for p in plist] == [
        "prov_r_a", "prov_r_b", "prov_s_a2",
    ]
    assert result.columns == ("a", "b", "prov_r_a", "prov_r_b", "a2", "prov_s_a2")
    assert result.multiplicity((1, "x", 1, "x", 1, 1)) == 2


def test_r4_join(db):
    result, _ = plus(Join(R(), S(), attr_equal("a", "a2"), "left"), db)
    assert result.columns == ("a", "b", "prov_r_a", "prov_r_b", "a2", "prov_s_a2")
    assert result.multiplicity((2, "y", 2, "y", None, None)) == 1


def test_r5_aggregation(db):
    agg = Aggregate(R(), ["b"], [AggSpec("sum", Attr("a"), "s")])
    result, plist = plus(agg, db)
    assert result.columns == ("b", "s", "prov_r_a", "prov_r_b")
    # group 'x': sum = 2 (multiplicity-aware), 2 provenance duplicates.
    assert result.multiplicity(("x", 2, 1, "x")) == 2


def test_r5_grand_aggregate_empty_input(db):
    agg = Aggregate(Select(R(), Lit(False)), [], [AggSpec("count", None, "n")])
    original = evaluate(agg, db)
    assert len(original) == 1
    result, _ = plus(agg, db)
    assert len(result) == 0  # footnote 4 behaviour


def test_r6_set_union(db):
    two = {"x": rel(["v"], [((1,), 1)]), "y": rel(["v"], [((1,), 1), ((2,), 1)])}
    op = SetUnion(BaseRelation("x", ["v"]), BaseRelation("y", ["v"]))
    result, _ = plus(op, two)
    assert result.to_set() == {
        (1, 1, 1), (2, None, 2),
    }


def test_r6_bag_union(db):
    two = {"x": rel(["v"], [((1,), 2)]), "y": rel(["v"], [((1,), 1)])}
    op = BagUnion(BaseRelation("x", ["v"]), BaseRelation("y", ["v"]))
    result, _ = plus(op, two)
    # 3 original rows, each joined to 2 x-witnesses and 1 y-witness.
    assert result.multiplicity((1, 1, 1)) == 6


def test_r7_set_intersection(db):
    two = {"x": rel(["v"], [((1,), 1), ((2,), 1)]), "y": rel(["v"], [((1,), 1)])}
    op = SetIntersection(BaseRelation("x", ["v"]), BaseRelation("y", ["v"]))
    result, _ = plus(op, two)
    assert result.to_set() == {(1, 1, 1)}


def test_r8_set_difference(db):
    two = {"x": rel(["v"], [((1,), 1), ((2,), 1)]), "y": rel(["v"], [((2,), 1), ((3,), 1)])}
    op = SetDifference(BaseRelation("x", ["v"]), BaseRelation("y", ["v"]))
    result, _ = plus(op, two)
    # {1}: provenance = the tuple itself plus EVERY y tuple.
    assert result.to_set() == {(1, 1, 2), (1, 1, 3)}


def test_r9_bag_difference(db):
    two = {"x": rel(["v"], [((1,), 2), ((2,), 1)]), "y": rel(["v"], [((1,), 1), ((3,), 1)])}
    op = BagDifference(BaseRelation("x", ["v"]), BaseRelation("y", ["v"]))
    result, _ = plus(op, two)
    originals = {row[0] for row in result.distinct_rows()}
    assert originals == {1, 2}
    # y-side witnesses must differ from the result tuple.
    for row in result.distinct_rows():
        assert row[2] is None or row[2] != row[0]


def test_multiple_references_numbered(db):
    op = Cross(R(), BagProject(BaseRelation("r", ["a2", "b2"]), [(Attr("a2"), "a2")]))
    _, plist = rewrite_algebra(op)
    names = [p.name for p in plist]
    # R2 keeps the *complete* source tuples (both columns of the second
    # reference), with numbered names for the repeated relation.
    assert names == ["prov_r_a", "prov_r_b", "prov_r_1_a2", "prov_r_1_b2"]


def test_nested_rewrite_composes(db):
    # σ over Π over ⋈: provenance flows through all layers.
    op = Select(
        BagProject(
            Join(R(), S(), attr_equal("a", "a2"), "inner"),
            [(Attr("b"), "b")],
        ),
        Cmp("=", Attr("b"), Lit("x")),
    )
    result, plist = plus(op, db)
    assert result.columns == ("b", "prov_r_a", "prov_r_b", "prov_s_a2")
    assert result.multiplicity(("x", 1, "x", 1)) == 2


def test_result_preservation_example(db):
    """ΠS_T(T+) = ΠS_T(T): the first half of the paper's proof."""
    ops = [
        R(),
        Select(R(), Cmp(">", Attr("a"), Lit(0))),
        BagProject(R(), [(Attr("a"), "a")]),
        Aggregate(R(), ["b"], [AggSpec("count", None, "n")]),
        Join(R(), S(), attr_equal("a", "a2"), "left"),
    ]
    for op in ops:
        original = evaluate(op, db)
        rewritten, _ = rewrite_algebra(op)
        result = evaluate(rewritten, db)
        # Project back onto the original attributes *by name* (provenance
        # columns may be interleaved for cross/join rewrites).
        original_part = result.project_columns(list(original.columns))
        assert original_part.set_equal(original), op
