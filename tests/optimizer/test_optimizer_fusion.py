"""Aggregation-join fusion and subplan-sharing unit tests."""

from __future__ import annotations

import pytest

import repro
from repro.analyzer.analyzer import Analyzer
from repro.core.rewriter import traverse_query_tree
from repro.optimizer import optimize_query_tree
from repro.sql.parser import parse_statement


@pytest.fixture
def db():
    database = repro.connect(optimize=False)
    database.execute("CREATE TABLE t (a integer, b integer)")
    database.execute("CREATE TABLE u (k integer, v integer)")
    database.load_table("t", [(1, 10), (1, 15), (2, 20), (None, 5)])
    database.load_table("u", [(1, 1), (2, 2), (3, 3)])
    return database


def rewritten(db, sql):
    return traverse_query_tree(Analyzer(db.catalog).analyze(parse_statement(sql)))


def run_query(db, query):
    from repro.executor.context import ExecContext
    from repro.planner.planner import Planner

    plan = Planner(db.catalog).plan(query)
    return sorted(map(repr, plan.run(ExecContext())))


def test_fusion_marks_aggregation_rewrite(db):
    query = rewritten(db, "SELECT PROVENANCE a, sum(b) FROM t GROUP BY a")
    baseline = run_query(db, query)
    optimize_query_tree(query)
    assert len(query.agg_shares) == 1
    agg_index, prov_index, positions = query.agg_shares[0]
    assert query.range_table[agg_index].subquery.has_aggs
    assert len(positions) == 1
    assert run_query(db, query) == baseline


def test_fusion_handles_null_group_keys(db):
    # The NULL group must still pair with its provenance rows (null-safe
    # join keys), fused or not.
    sql = "SELECT PROVENANCE a, count(*) FROM t GROUP BY a"
    result_off = _execute_fresh(db, sql, optimize=False)
    result_on = _execute_fresh(db, sql, optimize=True)
    assert result_on == result_off
    assert any("None" in row for row in result_on)


def _execute_fresh(db, sql, optimize):
    query = rewritten(db, sql)
    if optimize:
        optimize_query_tree(query)
    return run_query(db, query)


def test_fusion_grand_aggregate_empty_input(db):
    db.execute("CREATE TABLE empty (e integer)")
    sql = "SELECT PROVENANCE sum(e) FROM empty"
    # Footnote 4: the empty grand aggregate's row drops out of the
    # provenance result entirely — fused plans must preserve that.
    assert _execute_fresh(db, sql, True) == _execute_fresh(db, sql, False) == []


def test_fusion_rejected_when_cores_differ(db):
    # A sublink in the duplicate's WHERE restructures its join tree: the
    # cores are no longer bag-equivalent and must not fuse.
    sql = (
        "SELECT PROVENANCE a, count(*) FROM t "
        "WHERE a IN (SELECT k FROM u) GROUP BY a"
    )
    query = rewritten(db, sql)
    baseline = run_query(db, query)
    optimize_query_tree(query)
    assert query.agg_shares == []
    assert run_query(db, query) == baseline


def test_fusion_with_having(db):
    sql = (
        "SELECT PROVENANCE a, sum(b) FROM t GROUP BY a "
        "HAVING count(*) > 1"
    )
    assert _execute_fresh(db, sql, True) == _execute_fresh(db, sql, False)


def test_fusion_with_order_and_limit(db):
    sql = (
        "SELECT PROVENANCE a, sum(b) AS s FROM t "
        "GROUP BY a ORDER BY s DESC LIMIT 1"
    )
    on = _execute_fresh(db, sql, True)
    off = _execute_fresh(db, sql, False)
    assert on == off
    # LIMIT applies to the aggregate before provenance expansion: only
    # the top group survives, expanded to one row per witness.
    assert len(on) == 2
    assert all(row.startswith("(1, 25") for row in on)


def test_shared_subplan_marking(db):
    # The same closed subquery appears twice (FROM and sublink): both
    # copies are flagged and the planner shares one materialization.
    # (The FROM copy's output must be referenced, or pruning would
    # specialize it before the post-fixpoint marking pass.)
    sql = (
        "SELECT a, m FROM t, (SELECT max(v) AS m FROM u) AS mx "
        "WHERE b >= (SELECT max(v) AS m FROM u)"
    )
    query = Analyzer(db.catalog).analyze(parse_statement(sql))
    optimize_query_tree(query)
    marked = [
        rte.subquery.share_candidate
        for rte in query.range_table
        if rte.subquery is not None
    ]
    assert any(marked)
    assert _execute_fresh(db, sql, True) == _execute_fresh(db, sql, False)


def test_share_candidate_not_marked_for_singletons(db):
    query = Analyzer(db.catalog).analyze(
        parse_statement("SELECT m FROM (SELECT max(v) AS m FROM u) AS mx")
    )
    optimize_query_tree(query)
    for rte in query.range_table:
        if rte.subquery is not None:
            assert rte.subquery.share_candidate is False
