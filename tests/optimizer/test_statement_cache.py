"""Prepared-statement cache tests (LRU keyed on text/backend/epoch)."""

from __future__ import annotations

import pytest

import repro


@pytest.fixture
def db():
    database = repro.connect()
    database.execute("CREATE TABLE t (a integer, b integer)")
    database.load_table("t", [(1, 10), (2, 20)])
    return database


def test_repeated_select_hits_cache(db):
    first = db.execute("SELECT a FROM t WHERE b > 5")
    stats = db.cache_stats()
    assert stats["hits"] == 0 and stats["entries"] == 1
    second = db.execute("SELECT a FROM t WHERE b > 5")
    assert db.cache_stats()["hits"] == 1
    assert first.rows == second.rows


def test_cached_plan_sees_new_rows(db):
    assert len(db.execute("SELECT a FROM t")) == 2
    db.execute("INSERT INTO t VALUES (3, 30)")
    # DML does not invalidate (plans are data-independent); the cached
    # tree re-executes against the live heap.
    assert len(db.execute("SELECT a FROM t")) == 3
    assert db.cache_stats()["hits"] >= 1


def test_ddl_bumps_epoch_and_misses(db):
    db.execute("SELECT a FROM t")
    db.execute("SELECT a FROM t")
    hits = db.cache_stats()["hits"]
    db.execute("CREATE TABLE other (x integer)")
    db.execute("SELECT a FROM t")  # new catalog epoch -> fresh compile
    assert db.cache_stats()["hits"] == hits


def test_drop_and_recreate_changes_schema(db):
    assert db.execute("SELECT a, b FROM t").columns == ["a", "b"]
    db.execute("DROP TABLE t")
    db.execute("CREATE TABLE t (a text)")
    db.execute("INSERT INTO t VALUES ('x')")
    result = db.execute("SELECT a FROM t")
    assert result.rows == [("x",)]


def test_provenance_cached_separately(db):
    plain = db.provenance("SELECT a FROM t")
    again = db.provenance("SELECT a FROM t")
    assert plain.columns == again.columns
    assert db.cache_stats()["hits"] == 1
    poly = db.provenance("SELECT a FROM t", semantics="polynomial")
    assert poly.columns != plain.columns  # different key, no false hit


def test_backend_switch_changes_key(db):
    db.execute("SELECT a FROM t")
    db.set_backend("sqlite")
    result = db.execute("SELECT a FROM t")  # must not reuse python tree
    assert sorted(result.rows) == [(1,), (2,)]
    db.set_backend("python")


def test_optimizer_toggle_changes_key(db):
    db.execute("SELECT a FROM t")
    db.optimizer_enabled = False
    assert sorted(db.execute("SELECT a FROM t").rows) == [(1,), (2,)]


def test_cache_disabled(db):
    nocache = repro.PermDatabase(statement_cache_size=0)
    nocache.execute("CREATE TABLE t (a integer)")
    nocache.execute("INSERT INTO t VALUES (1)")
    nocache.execute("SELECT a FROM t")
    nocache.execute("SELECT a FROM t")
    stats = nocache.cache_stats()
    assert stats["hits"] == 0 and stats["entries"] == 0


def test_lru_eviction():
    db = repro.PermDatabase(statement_cache_size=2)
    db.execute("CREATE TABLE t (a integer)")
    db.execute("INSERT INTO t VALUES (1)")
    db.execute("SELECT a FROM t")            # entry 1
    db.execute("SELECT a + 1 FROM t")        # entry 2
    db.execute("SELECT a + 2 FROM t")        # evicts entry 1
    assert db.cache_stats()["entries"] == 2
    db.execute("SELECT a FROM t")            # miss again
    assert db.cache_stats()["hits"] == 0


def test_select_into_not_cached(db):
    db.execute("SELECT a INTO copy1 FROM t")
    assert db.cache_stats()["entries"] == 0
    # Re-running must fail on the existing table, not replay a cache hit.
    from repro.errors import CatalogError

    with pytest.raises(CatalogError):
        db.execute("SELECT a INTO copy1 FROM t")
