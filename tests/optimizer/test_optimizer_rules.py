"""Per-rule unit tests: golden before/after logical trees.

Each rule is applied in isolation (via ``optimize_query_tree(disable=...)``
or by calling the rule directly) against hand-picked query shapes, and
both the tree structure and the query results are checked.
"""

from __future__ import annotations

import pytest

import repro
from repro.analyzer import expressions as ex
from repro.analyzer.analyzer import Analyzer
from repro.analyzer.query_tree import RTEKind
from repro.core.rewriter import traverse_query_tree
from repro.optimizer import (
    RULE_NAMES,
    fold_node,
    normalize_jointree,
    optimize_query_tree,
    prune_query_tree,
    pull_up_node,
    push_down_node,
)
from repro.sql.parser import parse_statement


@pytest.fixture
def db():
    database = repro.connect(optimize=False)
    database.execute("CREATE TABLE t (a integer, b integer, c text)")
    database.execute("CREATE TABLE s (x integer, y integer)")
    database.load_table("t", [(1, 10, "p"), (2, 20, "q"), (2, 25, "q"), (3, 30, "r")])
    database.load_table("s", [(1, 100), (2, 200), (9, 900)])
    return database


def analyze(db, sql):
    return Analyzer(db.catalog).analyze(parse_statement(sql))


def run_query(db, query):
    from repro.executor.context import ExecContext
    from repro.planner.planner import Planner

    plan = Planner(db.catalog).plan(query)
    return sorted(plan.run(ExecContext()))


# ---------------------------------------------------------------------------
# Subquery pull-up
# ---------------------------------------------------------------------------


def test_pullup_inlines_simple_subquery(db):
    query = analyze(db, "SELECT v FROM (SELECT a AS v FROM t WHERE b > 10) AS sub")
    baseline = run_query(db, query)
    assert query.range_table[0].kind is RTEKind.SUBQUERY
    assert pull_up_node(query) is True
    # Golden after-tree: the wrapper is gone, t is scanned directly and
    # the subquery's WHERE merged into the parent's.
    assert [r.kind for r in query.range_table] == [RTEKind.RELATION]
    assert query.range_table[0].relation_name == "t"
    assert query.jointree.quals is not None
    assert run_query(db, query) == baseline


def test_pullup_remaps_target_expressions(db):
    query = analyze(
        db, "SELECT d + 1 FROM (SELECT a * 2 AS d FROM t) AS sub"
    )
    baseline = run_query(db, query)
    assert pull_up_node(query)
    # (a * 2) substituted into the parent's d + 1.
    target = query.target_list[0].expr
    assert isinstance(target, ex.OpExpr) and target.op == "+"
    inner = target.args[0]
    assert isinstance(inner, ex.OpExpr) and inner.op == "*"
    assert run_query(db, query) == baseline


def test_pullup_refuses_aggregating_subquery(db):
    query = analyze(
        db, "SELECT m FROM (SELECT max(b) AS m FROM t) AS sub"
    )
    assert pull_up_node(query) is False
    assert query.range_table[0].kind is RTEKind.SUBQUERY


def test_pullup_refuses_limit_subquery(db):
    query = analyze(
        db, "SELECT a2 FROM (SELECT a AS a2 FROM t LIMIT 2) AS sub"
    )
    assert pull_up_node(query) is False


def test_pullup_nullable_side_requires_var_targets(db):
    # The subquery exports a constant; under the null-producing side of
    # a LEFT JOIN a pulled-up constant would survive null extension.
    sql = (
        "SELECT a, flag FROM t LEFT JOIN "
        "(SELECT x, 1 AS flag FROM s) AS marked ON a = x"
    )
    query = analyze(db, sql)
    baseline = run_query(db, query)
    changed = pull_up_node(query)
    assert changed is False  # constant target blocks the pull-up
    assert run_query(db, query) == baseline
    # Rows without a join partner must keep flag NULL.
    assert (3, None) in baseline


def test_pullup_nullable_side_var_targets_ok(db):
    sql = (
        "SELECT a, y2 FROM t LEFT JOIN "
        "(SELECT x AS x2, y AS y2 FROM s WHERE y > 100) AS sub ON a = x2"
    )
    query = analyze(db, sql)
    baseline = run_query(db, query)
    assert pull_up_node(query) is True
    kinds = [r.kind for r in query.range_table]
    assert kinds == [RTEKind.RELATION, RTEKind.RELATION]
    assert run_query(db, query) == baseline


def test_normalize_flattens_inner_joins(db):
    query = analyze(db, "SELECT a, x FROM t JOIN s ON a = x WHERE b > 0")
    baseline = run_query(db, query)
    assert normalize_jointree(query) is True
    assert len(query.jointree.items) == 2
    assert query.jointree.quals is not None  # ON folded into WHERE
    assert run_query(db, query) == baseline


# ---------------------------------------------------------------------------
# Projection pruning
# ---------------------------------------------------------------------------


def test_prune_drops_unused_subquery_outputs(db):
    query = analyze(
        db,
        "SELECT keep FROM "
        "(SELECT a AS keep, b AS dead1, c AS dead2, max(b) AS dead3 "
        " FROM t GROUP BY a, b, c) AS sub",
    )
    baseline = run_query(db, query)
    sub = query.range_table[0].subquery
    assert len(sub.visible_targets) == 4
    assert prune_query_tree(query) is True
    assert [t.name for t in sub.visible_targets] == ["keep"]
    assert query.range_table[0].column_names == ["keep"]
    assert run_query(db, query) == baseline


def test_prune_sets_relation_column_hints(db):
    query = analyze(db, "SELECT a FROM t WHERE b > 10")
    prune_query_tree(query)
    assert query.range_table[0].used_attnos == frozenset({0, 1})  # a, b


def test_prune_keeps_all_columns_without_hint(db):
    query = analyze(db, "SELECT a, b, c FROM t")
    prune_query_tree(query)
    assert query.range_table[0].used_attnos is None


def test_prune_never_shrinks_distinct_subqueries(db):
    query = analyze(
        db,
        "SELECT k FROM (SELECT DISTINCT a AS k, b AS v FROM t) AS sub",
    )
    baseline = run_query(db, query)
    prune_query_tree(query)
    sub = query.range_table[0].subquery
    assert len(sub.visible_targets) == 2  # dropping v would change dedup
    assert run_query(db, query) == baseline


def test_prune_grand_aggregate_placeholder_keeps_cardinality(db):
    # Parent uses no column of the aggregating subquery: the kept
    # placeholder must still aggregate (1 row), not scan (N rows).
    query = analyze(
        db, "SELECT 7 FROM (SELECT max(b) AS m FROM t) AS sub"
    )
    prune_query_tree(query)
    sub = query.range_table[0].subquery
    assert len(sub.visible_targets) == 1
    assert isinstance(sub.visible_targets[0].expr, ex.Aggref)
    assert run_query(db, query) == [(7,)]


# ---------------------------------------------------------------------------
# Predicate pushdown
# ---------------------------------------------------------------------------


def test_pushdown_into_union_operands(db):
    query = analyze(
        db,
        "SELECT v FROM (SELECT a AS v FROM t UNION ALL SELECT x AS v FROM s) "
        "AS u WHERE v <= 2",
    )
    baseline = run_query(db, query)
    assert push_down_node(query) is True
    assert query.jointree.quals is None  # fully absorbed
    setop = query.range_table[0].subquery
    for rte in setop.range_table:
        assert rte.subquery.jointree.quals is not None
    assert run_query(db, query) == baseline == [(1,), (1,), (2,), (2,), (2,)]


def test_pushdown_group_key_through_aggregation(db):
    query = analyze(
        db,
        "SELECT k, m FROM (SELECT a AS k, sum(b) AS m FROM t GROUP BY a) "
        "AS agg WHERE k = 2",
    )
    baseline = run_query(db, query)
    assert push_down_node(query) is True
    sub = query.range_table[0].subquery
    assert sub.jointree.quals is not None  # filter below the aggregation
    assert run_query(db, query) == baseline == [(2, 45)]


def test_pushdown_refuses_aggregate_output_filters(db):
    query = analyze(
        db,
        "SELECT k, m FROM (SELECT a AS k, sum(b) AS m FROM t GROUP BY a) "
        "AS agg WHERE m > 20",
    )
    baseline = run_query(db, query)
    assert push_down_node(query) is False
    assert run_query(db, query) == baseline


def test_pushdown_refuses_limit_subqueries(db):
    query = analyze(
        db,
        "SELECT v FROM (SELECT b AS v FROM t ORDER BY b LIMIT 2) AS sub "
        "WHERE v > 10",
    )
    baseline = run_query(db, query)
    assert push_down_node(query) is False
    assert run_query(db, query) == baseline


# ---------------------------------------------------------------------------
# Constant folding & cleanup
# ---------------------------------------------------------------------------


def test_fold_constant_arithmetic(db):
    query = analyze(db, "SELECT a FROM t WHERE b > 10 + 5")
    assert fold_node(query) is True
    conjunct = query.jointree.quals
    assert isinstance(conjunct, ex.OpExpr)
    assert conjunct.args[1] == ex.Const(15, conjunct.args[1].type)


def test_fold_date_interval_arithmetic(db):
    db.execute("CREATE TABLE ev (d date)")
    db.execute("INSERT INTO ev VALUES (DATE '1995-03-15')")
    query = analyze(
        db, "SELECT d FROM ev WHERE d < DATE '1995-01-01' + INTERVAL '1' YEAR"
    )
    fold_node(query)
    import datetime

    bound = query.jointree.quals.args[1]
    assert bound == ex.Const(datetime.date(1996, 1, 1), bound.type)


def test_fold_drops_where_true(db):
    query = analyze(db, "SELECT a FROM t WHERE 1 = 1")
    assert fold_node(query) is True
    assert query.jointree.quals is None


def test_fold_keeps_where_false(db):
    query = analyze(db, "SELECT a FROM t WHERE 1 = 2")
    fold_node(query)
    assert query.jointree.quals is not None
    assert run_query(db, query) == []


def test_cleanup_drops_subquery_order_by(db):
    query = analyze(
        db, "SELECT v FROM (SELECT a AS v FROM t ORDER BY b DESC) AS sub"
    )
    optimize_query_tree(query)
    # The subquery was pulled up entirely; no ORDER BY survives anywhere.
    assert not query.sort_clause
    assert all(r.kind is RTEKind.RELATION for r in query.range_table)


def test_cleanup_keeps_order_by_with_limit(db):
    query = analyze(
        db, "SELECT v FROM (SELECT b AS v FROM t ORDER BY b DESC LIMIT 2) AS s2"
    )
    baseline = run_query(db, query)
    optimize_query_tree(query)
    sub = query.range_table[0].subquery
    assert sub.sort_clause and sub.limit_count is not None
    assert run_query(db, query) == baseline == [(25,), (30,)]


def test_redundant_distinct_under_set_semantics_union(db):
    query = analyze(
        db, "SELECT DISTINCT a FROM t UNION SELECT x FROM s"
    )
    baseline = run_query(db, query)
    optimize_query_tree(query)
    for rte in query.range_table:
        if rte.subquery is not None:
            assert rte.subquery.distinct is False
    assert run_query(db, query) == baseline


def test_distinct_kept_under_union_all(db):
    query = analyze(
        db, "SELECT DISTINCT a FROM t UNION ALL SELECT x FROM s"
    )
    baseline = run_query(db, query)
    optimize_query_tree(query)
    assert query.range_table[0].subquery.distinct is True
    assert run_query(db, query) == baseline


# ---------------------------------------------------------------------------
# Driver / rule toggles
# ---------------------------------------------------------------------------


def test_disable_rules_individually(db):
    sql = "SELECT v FROM (SELECT a AS v FROM t WHERE b > 10) AS sub"
    for rule in RULE_NAMES:
        query = analyze(db, sql)
        optimize_query_tree(query, disable={rule})
        # Every partial configuration must stay correct.
        assert run_query(db, query) == [(2,), (2,), (3,)]
    query = analyze(db, sql)
    optimize_query_tree(query, disable=set(RULE_NAMES))
    assert query.range_table[0].kind is RTEKind.SUBQUERY  # untouched


def test_optimizer_reaches_fixpoint_on_rewritten_trees(db):
    query = traverse_query_tree(
        analyze(db, "SELECT PROVENANCE a, count(*) FROM t GROUP BY a")
    )
    optimize_query_tree(query)
    before = repr(query.range_table) + repr(query.target_list)
    optimize_query_tree(query)  # second run must be a no-op
    assert repr(query.range_table) + repr(query.target_list) == before
