"""Estimate-quality regression tests for sampled ANALYZE.

Auto-ANALYZE switches to a seeded reservoir sample above
``AUTO_ANALYZE_SAMPLE_THRESHOLD`` rows.  These tests pin the estimator
contract: sampled statistics must stay close enough to full-scan truth
that cost-model decisions don't flap, and repeated collections over
unchanged data must be bit-identical (the seed derives from the heap's
identity).
"""

from __future__ import annotations

import random

import repro
from repro.catalog.schema import Column, SQLType, TableSchema
from repro.planner.stats import collect_table_stats
from repro.storage.table import Table

ROWS = 60_000
SAMPLE = 15_000


def _table() -> Table:
    rng = random.Random(20260807)
    schema = TableSchema(
        "t",
        [
            Column("unique_key", SQLType.INTEGER),
            Column("low_card", SQLType.TEXT),
            Column("skewed", SQLType.TEXT),
            Column("mid_card", SQLType.INTEGER),
            Column("with_nulls", SQLType.INTEGER),
        ],
    )
    table = Table(schema)
    table.insert_many(
        [
            (
                i,
                f"v{i % 40}",
                # heavy skew: "hot" on ~half the rows, a thin tail after
                "hot" if i % 2 else f"cold{i % 7}",
                rng.randrange(2000),
                rng.randrange(500) if i % 5 else None,
            )
            for i in range(ROWS)
        ]
    )
    return table


def test_sampled_rows_recorded():
    table = _table()
    full = collect_table_stats(table)
    sampled = collect_table_stats(table, sample_rows=SAMPLE)
    assert full.sampled_rows is None
    assert sampled.sampled_rows == SAMPLE
    assert sampled.row_count == ROWS  # live count stays exact


def test_small_tables_never_sample():
    table = _table()
    stats = collect_table_stats(table, sample_rows=ROWS + 1)
    assert stats.sampled_rows is None


def test_sampling_is_deterministic():
    table = _table()
    first = collect_table_stats(table, sample_rows=SAMPLE)
    second = collect_table_stats(table, sample_rows=SAMPLE)
    assert first.columns == second.columns


def test_ndv_estimates_track_full_scan():
    table = _table()
    full = collect_table_stats(table)
    sampled = collect_table_stats(table, sample_rows=SAMPLE)
    for name, tolerance in (
        ("unique_key", 0.05),  # every row distinct: clamp to population
        ("low_card", 0.0),  # 40 values: all seen in any large sample
        ("mid_card", 0.25),  # Chao1 territory
    ):
        truth = full.column(name).ndv
        estimate = sampled.column(name).ndv
        assert abs(estimate - truth) <= truth * tolerance, (
            f"{name}: sampled ndv {estimate} vs full {truth}"
        )


def test_null_fraction_tracks_full_scan():
    table = _table()
    full = collect_table_stats(table)
    sampled = collect_table_stats(table, sample_rows=SAMPLE)
    truth = full.column("with_nulls").null_frac
    estimate = sampled.column("with_nulls").null_frac
    assert abs(estimate - truth) < 0.02


def test_mcv_fractions_track_full_scan():
    table = _table()
    full = collect_table_stats(table)
    sampled = collect_table_stats(table, sample_rows=SAMPLE)
    full_mcv = dict(full.column("skewed").mcv)
    sampled_mcv = dict(sampled.column("skewed").mcv)
    shared = set(full_mcv) & set(sampled_mcv)
    assert shared, "sampled MCV list lost every common value"
    for value in shared:
        assert abs(full_mcv[value] - sampled_mcv[value]) < 0.01


def test_auto_analyze_samples_above_threshold(monkeypatch):
    from repro.catalog.catalog import Catalog

    monkeypatch.setattr(Catalog, "AUTO_ANALYZE_SAMPLE_THRESHOLD", 2_000)
    monkeypatch.setattr(Catalog, "AUTO_ANALYZE_SAMPLE_ROWS", 500)
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer)")
    db.catalog.table("t").insert_many([(i,) for i in range(1_000)])
    db.execute("ANALYZE")
    assert db.catalog.stats_for("t").sampled_rows is None

    db.catalog.table("t").insert_many([(i,) for i in range(2_500)])
    db.execute("SELECT count(*) FROM t")  # trips auto-ANALYZE
    stats = db.catalog.stats_for("t")
    assert stats.row_count == 3_500
    assert stats.sampled_rows == 500


def test_explicit_analyze_stays_full_scan(monkeypatch):
    from repro.catalog.catalog import Catalog

    monkeypatch.setattr(Catalog, "AUTO_ANALYZE_SAMPLE_THRESHOLD", 100)
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer)")
    db.catalog.table("t").insert_many([(i,) for i in range(1_000)])
    db.execute("ANALYZE")
    assert db.catalog.stats_for("t").sampled_rows is None
