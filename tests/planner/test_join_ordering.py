"""DP-over-subsets join ordering: correctness and plan equivalence.

:class:`CostBasedPlanner` orders free inner-join sets of up to
``DP_MAX_RELATIONS`` operands by exact dynamic programming over subsets
and falls back to greedy operator ordering (GOO) above the cutoff.  The
two orderings must be semantically interchangeable — same result
multiset on every query — and the DP tree can never cost more than the
greedy one under the planner's own cost model.
"""

from __future__ import annotations

import pytest

import repro
from repro.planner.physical import CostBasedPlanner
from repro.tpch.dbgen import tpch_database
from repro.tpch.qgen import generate_query
from repro.tpch.queries import SUPPORTED_QUERIES

from tests.backends.support import assert_same_result


@pytest.fixture()
def goo_only(monkeypatch):
    """Force the GOO fallback regardless of operand count."""
    monkeypatch.setattr(CostBasedPlanner, "DP_MAX_RELATIONS", 1)


# ---------------------------------------------------------------------------
# TPC-H: DP-planned results ≡ GOO-planned results (plan equivalence)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tpch_db():
    db = tpch_database(scale_factor=0.001, seed=42)
    db.execute("ANALYZE")
    return db


@pytest.mark.parametrize("number", SUPPORTED_QUERIES)
@pytest.mark.parametrize("provenance", (False, True), ids=["normal", "prov"])
def test_tpch_dp_matches_goo(tpch_db, monkeypatch, number, provenance):
    sql = generate_query(number, seed=7, provenance=provenance)
    dp = tpch_db.execute(sql)
    monkeypatch.setattr(CostBasedPlanner, "DP_MAX_RELATIONS", 1)
    tpch_db._backend._plan_cache.clear()  # force a re-plan under GOO
    goo = tpch_db.execute(sql)
    tag = f"Q{number} {'provenance' if provenance else 'normal'} DP vs GOO"
    assert_same_result(goo, dp, context=tag)


def test_dp_cutoff_uses_goo_above_limit(tpch_db, monkeypatch):
    calls = []
    original = CostBasedPlanner._order_joins_goo

    def spy(self, units, pool):
        calls.append(len(units))
        return original(self, units, pool)

    monkeypatch.setattr(CostBasedPlanner, "_order_joins_goo", spy)
    monkeypatch.setattr(CostBasedPlanner, "DP_MAX_RELATIONS", 3)
    tpch_db._backend._plan_cache.clear()
    # Q9 joins six relations: above a cutoff of 3, GOO must take over.
    tpch_db.execute(generate_query(9, seed=7))
    assert any(n > 3 for n in calls)


# ---------------------------------------------------------------------------
# DP beats (or ties) greedy under the planner's own cost model
# ---------------------------------------------------------------------------


def _chain_db() -> repro.PermDatabase:
    """A 4-relation chain a—b—c—d where greedy ordering is suboptimal.

    Statistics are shaped so the greedy first merge (the locally
    cheapest pair) commits to a tree whose later joins explode, while
    the DP order pays slightly more up front for a cheaper total.
    """
    db = repro.connect()
    db.execute("CREATE TABLE ta (x integer)")
    db.execute("CREATE TABLE tb (x integer, y integer)")
    db.execute("CREATE TABLE tc (y integer, z integer)")
    db.execute("CREATE TABLE td (z integer)")
    db.load_table("ta", [(i % 40,) for i in range(400)])
    db.load_table("tb", [(i % 40, i % 5) for i in range(200)])
    db.load_table("tc", [(i % 5, i % 50) for i in range(200)])
    db.load_table("td", [(i % 50,) for i in range(400)])
    db.execute("ANALYZE")
    return db


_CHAIN_SQL = (
    "SELECT count(*) FROM ta, tb, tc, td "
    "WHERE ta.x = tb.x AND tb.y = tc.y AND tc.z = td.z"
)


def test_dp_matches_goo_on_chain_query(goo_only):
    goo = _chain_db().execute(_CHAIN_SQL)
    assert _chain_db().execute(_CHAIN_SQL).rows == goo.rows


def test_dp_never_costs_more_than_goo(monkeypatch):
    """Summed pair scores of the DP tree ≤ the greedy tree's.

    Every join this chain query can form is connected, so the DP's
    lexicographic (cartesian count, score) objective reduces to pure
    score minimization and the greedy tree is one of its candidates.
    """

    def tree_cost(dp: bool) -> float:
        tracked: list[float] = []
        original_join = CostBasedPlanner._join_units

        def join_spy(self, left, right, join_type, conjuncts, **kwargs):
            tracked.append(self._cost.pair_score(left, right, conjuncts))
            return original_join(self, left, right, join_type, conjuncts, **kwargs)

        monkeypatch.setattr(CostBasedPlanner, "_join_units", join_spy)
        monkeypatch.setattr(
            CostBasedPlanner, "DP_MAX_RELATIONS", 12 if dp else 1
        )
        _chain_db().explain(_CHAIN_SQL)
        return sum(tracked)

    assert tree_cost(dp=True) <= tree_cost(dp=False) + 1e-9
