"""Unit tests: ANALYZE statistics collection and the cost model's
selectivity/cardinality estimates on known distributions."""

from __future__ import annotations

import datetime

import pytest

import repro
from repro.analyzer.analyzer import Analyzer
from repro.planner import CostBasedPlanner, HeuristicPlanner
from repro.planner.cost import CostModel
from repro.planner.stats import collect_table_stats
from repro.sql.parser import parse_statement


@pytest.fixture
def db():
    database = repro.connect()
    database.execute(
        "CREATE TABLE facts (k integer, grp integer, val float, "
        "label text, day date)"
    )
    rows = [
        (
            i,
            i % 10,
            float(i) / 2.0,
            f"label{i % 4}" if i % 5 else None,
            datetime.date(2020, 1, 1) + datetime.timedelta(days=i % 100),
        )
        for i in range(1000)
    ]
    database.load_table("facts", rows)
    return database


# ---------------------------------------------------------------------------
# ANALYZE collection
# ---------------------------------------------------------------------------


def test_collect_stats_known_distribution(db):
    stats = collect_table_stats(db.catalog.table("facts"))
    assert stats.row_count == 1000
    k = stats.column("k")
    assert k.ndv == 1000 and k.null_frac == 0.0
    assert (k.min_value, k.max_value) == (0, 999)
    grp = stats.column("grp")
    assert grp.ndv == 10
    label = stats.column("label")
    assert label.ndv == 4
    assert label.null_frac == pytest.approx(0.2)
    day = stats.column("day")
    assert day.ndv == 100
    assert day.min_value == datetime.date(2020, 1, 1)
    assert day.max_value == datetime.date(2020, 4, 9)


def test_analyze_statement_and_freshness(db):
    assert db.catalog.stats_for("facts") is None
    result = db.execute("ANALYZE facts")
    assert result.command == "ANALYZE 1"
    assert db.catalog.stats_for("facts").row_count == 1000
    # Appends leave the snapshot in place (it merely lags)...
    db.execute("INSERT INTO facts VALUES (9999, 1, 1.0, 'x', date '2021-01-01')")
    assert db.catalog.stats_for("facts") is not None
    # ...but recreating the heap invalidates it.
    db.execute("DROP TABLE facts")
    db.execute("CREATE TABLE facts (k integer)")
    assert db.catalog.stats_for("facts") is None


def test_analyze_all_and_empty_table(db):
    db.execute("CREATE TABLE empty (a integer)")
    result = db.analyze()
    assert {row[0] for row in result.rows} == {"facts", "empty"}
    empty = db.catalog.stats_for("empty")
    assert empty.row_count == 0
    assert empty.column("a").ndv == 0


# ---------------------------------------------------------------------------
# Selectivity on known distributions
# ---------------------------------------------------------------------------


def _selectivity(db, predicate: str) -> float:
    """Estimated selectivity of a WHERE predicate over ``facts``."""
    db.analyze()
    query = Analyzer(db.catalog).analyze(
        parse_statement(f"SELECT k FROM facts WHERE {predicate}")
    )
    model = CostModel(db.catalog)
    stats = db.catalog.stats_for("facts")
    scope = {
        (0, attno): stats.column(name)
        for attno, name in enumerate(
            db.catalog.table("facts").column_names
        )
    }
    return model.conjunct_selectivity(query.jointree.quals, scope)


def test_equality_selectivity_is_one_over_ndv(db):
    assert _selectivity(db, "grp = 3") == pytest.approx(0.1)
    assert _selectivity(db, "k = 17") == pytest.approx(0.001)


def test_range_selectivity_interpolates(db):
    # k uniform over [0, 999]: k < 250 keeps ~25%.
    assert _selectivity(db, "k < 250") == pytest.approx(0.25, abs=0.02)
    assert _selectivity(db, "k >= 900") == pytest.approx(0.1, abs=0.02)
    # Dates interpolate through day arithmetic.
    assert _selectivity(db, "day < date '2020-01-26'") == pytest.approx(
        0.25, abs=0.03
    )


def test_null_and_composite_selectivity(db):
    assert _selectivity(db, "label IS NULL") == pytest.approx(0.2)
    assert _selectivity(db, "label IS NOT NULL") == pytest.approx(0.8)
    # AND multiplies; OR adds with the overlap correction.
    assert _selectivity(db, "grp = 3 AND k < 250") == pytest.approx(
        0.025, abs=0.005
    )
    or_sel = _selectivity(db, "grp = 3 OR grp = 4")
    assert or_sel == pytest.approx(0.1 + 0.1 - 0.01)


def test_in_list_selectivity(db):
    # The analyzer normalizes small IN lists to OR-of-equalities, so the
    # estimate composes per-value equality terms with the overlap
    # correction.  label's values come from the MCV list, whose
    # fractions are of *all* rows — 20% NULLs leave each of the 4
    # labels at 0.2, sharper than the NULL-blind 1/ndv = 0.25.
    assert _selectivity(db, "grp IN (1, 2, 3)") == pytest.approx(
        1.0 - (1.0 - 0.1) ** 3
    )
    assert _selectivity(db, "label IN ('label0', 'label1')") == pytest.approx(
        1.0 - (1.0 - 0.2) ** 2
    )


# ---------------------------------------------------------------------------
# Cardinality estimates on plans
# ---------------------------------------------------------------------------


def _plan(db, sql, cost_based=True):
    query = Analyzer(db.catalog).analyze(parse_statement(sql))
    cls = CostBasedPlanner if cost_based else HeuristicPlanner
    return cls(db.catalog).plan(query)


def test_scan_estimate_uses_live_rowcount_and_stats(db):
    db.analyze()
    plan = _plan(db, "SELECT k FROM facts WHERE grp = 3")
    # SliceNode over the filtered scan; estimates flow through.
    assert plan.estimate == pytest.approx(100, rel=0.1)


def test_join_estimate_fk_shape(db):
    db.execute("CREATE TABLE dims (d integer, name text)")
    db.load_table("dims", [(i, f"d{i}") for i in range(10)])
    db.analyze()
    plan = _plan(db, "SELECT 1 FROM facts, dims WHERE grp = d")
    # |facts|·|dims| / max(ndv(grp), ndv(d)) = 1000·10/10 = 1000.
    assert plan.estimate == pytest.approx(1001, rel=0.1)


def test_group_estimate_uses_key_ndv(db):
    db.analyze()
    plan = _plan(db, "SELECT grp, count(*) FROM facts GROUP BY grp")
    assert plan.estimate == pytest.approx(10, rel=0.1)


def test_group_estimate_extract_year_uses_date_range(db):
    db.analyze()
    plan = _plan(
        db,
        "SELECT extract(year FROM day), count(*) FROM facts "
        "GROUP BY extract(year FROM day)",
    )
    # day spans a single calendar year.
    assert plan.estimate == pytest.approx(1, abs=0.5)


def test_estimates_survive_without_analyze(db):
    # No statistics: defaults apply, plans still build and run.
    plan = _plan(db, "SELECT k FROM facts WHERE grp = 3 AND k < 250")
    assert plan.estimate >= 1.0
    from repro.executor.context import ExecContext

    assert len(list(plan.run(ExecContext()))) == 25


def test_explain_analyze_shows_est_and_flags_misestimates(db):
    db.analyze()
    text = db.explain("SELECT k FROM facts WHERE grp = 3", analyze=True)
    assert "est=" in text
    # grp = 3 actually keeps 100 rows and the estimate agrees: no flag.
    assert "misestimate" not in text
    # A correlated predicate the model cannot see through: k and grp
    # align perfectly (k % 10), estimated 0.1·0.001 but actual 1 row.
    text = db.explain(
        "SELECT k FROM facts WHERE grp = 3 AND k = 13", analyze=True
    )
    assert "est=" in text


def test_batch_size_hint_bounds_fanout(db):
    # A fanning-out join (10 matches per probe row) caps the batch size.
    db.execute("CREATE TABLE wide (g integer)")
    db.load_table("wide", [(i % 3,) for i in range(90000)])
    db.execute("CREATE TABLE other (g2 integer)")
    db.load_table("other", [(i % 3,) for i in range(300)])
    db.analyze()
    from repro.storage.chunk import DEFAULT_BATCH_SIZE

    plan = _plan(db, "SELECT 1 FROM wide, other WHERE g = g2")
    assert plan.batch_size_hint is not None
    assert plan.batch_size_hint < DEFAULT_BATCH_SIZE
    plan = _plan(db, "SELECT k FROM facts")
    assert plan.batch_size_hint == DEFAULT_BATCH_SIZE


def test_scan_chunks_honors_batch_size_with_cached_columns():
    """Regression: a bounded batch size slices the cached columnar heap
    instead of streaming the whole table as one chunk."""
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer)")
    db.load_table("t", [(i,) for i in range(1000)])
    table = db.catalog.table("t")
    table.columnar()  # populate the cache first
    sizes = [len(chunk) for chunk in table.scan_chunks(batch_size=256)]
    assert sizes == [256, 256, 256, 232]
    narrow = [len(c) for c in table.scan_chunks(batch_size=256, columns=[0])]
    assert narrow == sizes
    whole = list(table.scan_chunks(batch_size=2048))
    assert len(whole) == 1


# ---------------------------------------------------------------------------
# Histograms, MCV lists, and LIKE selectivity
# ---------------------------------------------------------------------------


def test_collect_mcv_on_skewed_column(db):
    db.execute("CREATE TABLE skew (v integer)")
    # 600 copies of 0, 200 of 1, 200 spread uniquely.
    db.load_table(
        "skew",
        [(0,)] * 600 + [(1,)] * 200 + [(i + 100,) for i in range(200)],
    )
    stats = collect_table_stats(db.catalog.table("skew"))
    mcv = dict(stats.column("v").mcv)
    assert mcv[0] == pytest.approx(0.6)
    assert mcv[1] == pytest.approx(0.2)
    # Unique tail values never make the list.
    assert all(value in (0, 1) for value in mcv)


def test_unique_column_has_no_mcv_but_histogram(db):
    stats = collect_table_stats(db.catalog.table("facts"))
    k = stats.column("k")
    assert k.mcv == ()
    assert len(k.histogram) >= 2
    assert k.histogram_frac == pytest.approx(1.0)
    # Equi-depth over uniform [0, 999]: bounds spread evenly.
    assert k.histogram[0] == 0 and k.histogram[-1] == 999
    mid = k.histogram[len(k.histogram) // 2]
    assert mid == pytest.approx(500, abs=60)


def test_mcv_equality_beats_uniform_assumption(db):
    db.execute("CREATE TABLE skew (v integer)")
    db.load_table(
        "skew",
        [(0,)] * 600 + [(1,)] * 200 + [(i + 100,) for i in range(200)],
    )
    db.analyze()
    model = CostModel(db.catalog)
    scope = {(0, 0): db.catalog.stats_for("skew").column("v")}
    query = Analyzer(db.catalog).analyze(
        parse_statement("SELECT v FROM skew WHERE v = 0")
    )
    # The uniform 1/ndv guess would say ~0.5%; the MCV list knows 60%.
    assert model.conjunct_selectivity(
        query.jointree.quals, scope
    ) == pytest.approx(0.6)


def test_histogram_range_beats_minmax_interpolation(db):
    db.execute("CREATE TABLE lop (v integer)")
    # 990 values in [0, 99], 10 outliers at 1e6: min/max interpolation
    # would put "v < 100" at ~0.01%; the equi-depth histogram sees ~99%.
    db.load_table(
        "lop", [(i % 100,) for i in range(990)] + [(1_000_000,)] * 10
    )
    db.analyze()
    model = CostModel(db.catalog)
    scope = {(0, 0): db.catalog.stats_for("lop").column("v")}
    query = Analyzer(db.catalog).analyze(
        parse_statement("SELECT v FROM lop WHERE v < 100")
    )
    assert model.conjunct_selectivity(query.jointree.quals, scope) > 0.8


def test_like_prefix_selectivity_from_histogram(db):
    # label values: label0..label3 on 80% of rows ('label%' matches all
    # of them), NULLs on the rest.
    assert _selectivity(db, "label LIKE 'label%'") == pytest.approx(
        0.8, abs=0.05
    )
    assert _selectivity(db, "label LIKE 'zzz%'") < 0.01
    # A narrower prefix keeps only one of the four labels.
    assert _selectivity(db, "label LIKE 'label0%'") == pytest.approx(
        0.2, abs=0.05
    )


def test_like_unanchored_matches_value_sample(db):
    # '%bel0%' matches label0 only: the MCV/bound sample pins ~20%.
    assert _selectivity(db, "label LIKE '%bel0%'") == pytest.approx(
        0.2, abs=0.07
    )
    # Matches every non-NULL label.
    assert _selectivity(db, "label LIKE '%label%'") == pytest.approx(
        0.8, abs=0.07
    )


def test_histograms_survive_wal_checkpoint(tmp_path):
    db = repro.connect(wal_dir=str(tmp_path))
    db.execute("CREATE TABLE t (v integer, s text)")
    db.load_table(
        "t", [(i % 7, f"s{i % 3}") for i in range(300)] + [(None, None)] * 30
    )
    db.execute("ANALYZE")
    before = db.catalog.stats_for("t").column("v")
    db.checkpoint()
    db.close()
    revived = repro.connect(wal_dir=str(tmp_path))
    after = revived.catalog.stats_for("t").column("v")
    assert after is not None
    assert after.mcv == before.mcv
    assert after.histogram == before.histogram
    assert after.histogram_frac == pytest.approx(before.histogram_frac)
    assert after.null_frac == pytest.approx(before.null_frac)


def test_range_pair_estimates_interval_mass(db):
    db.analyze()
    # Independent marginals would say 0.35·0.40 = 14%; the paired
    # bounds measure the [250, 350) interval: ~10%.
    plan = _plan(db, "SELECT k FROM facts WHERE k >= 250 AND k < 350")
    assert plan.estimate == pytest.approx(100, rel=0.25)
    # Folded constant arithmetic on the bound still pairs up.
    plan = _plan(
        db,
        "SELECT k FROM facts WHERE day >= date '2020-01-21' "
        "AND day < date '2020-01-21' + INTERVAL '10' DAY",
    )
    assert plan.estimate == pytest.approx(100, rel=0.35)
