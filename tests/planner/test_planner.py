"""Planner tests: join strategy, pushdown, OR factorization, explain."""

from __future__ import annotations

import pytest

import repro
from repro.analyzer.analyzer import Analyzer
from repro.analyzer import expressions as ex
from repro.datatypes import SQLType
from repro.planner.planner import Planner, conjoin, split_conjuncts
from repro.sql.parser import parse_statement


@pytest.fixture
def db():
    database = repro.connect()
    database.execute("CREATE TABLE big (id integer, v integer)")
    database.execute("CREATE TABLE small (id integer, w integer)")
    database.load_table("big", [(i, i * 2) for i in range(500)])
    database.load_table("small", [(i, i * 3) for i in range(10)])
    return database


def plan_of(db, sql):
    query = Analyzer(db.catalog).analyze(parse_statement(sql))
    return Planner(db.catalog).plan(query)


def test_equi_join_uses_hash_join(db):
    text = plan_of(db, "SELECT 1 FROM big, small WHERE big.id = small.id").explain()
    assert "HashJoin" in text
    assert "NestedLoopJoin" not in text


def test_non_equi_join_uses_nested_loop(db):
    text = plan_of(db, "SELECT 1 FROM big, small WHERE big.id < small.id").explain()
    assert "NestedLoopJoin" in text


def test_single_table_filter_pushed_into_scan(db):
    text = plan_of(db, "SELECT 1 FROM big, small WHERE big.id = small.id AND big.v > 10").explain()
    assert "SeqScan on big (filtered)" in text


def test_or_factorization_recovers_join_key(db):
    # Q19 pattern: the equi-join predicate repeated inside every OR arm.
    text = plan_of(
        db,
        "SELECT 1 FROM big, small WHERE "
        "(big.id = small.id AND big.v > 5) OR (big.id = small.id AND small.w > 7)",
    ).explain()
    assert "HashJoin" in text


def test_split_and_conjoin_roundtrip():
    a = ex.Const(True, SQLType.BOOLEAN)
    b = ex.Const(False, SQLType.BOOLEAN)
    both = ex.BoolOpExpr("and", (a, ex.BoolOpExpr("and", (b, a))))
    parts = split_conjuncts(both)
    assert len(parts) == 3
    rebuilt = conjoin(parts)
    assert isinstance(rebuilt, ex.BoolOpExpr)
    assert split_conjuncts(rebuilt) == parts


def test_heuristic_greedy_join_starts_from_smallest(db):
    from repro.planner.heuristic import HeuristicPlanner

    db.execute("CREATE TABLE medium (id integer)")
    db.load_table("medium", [(i,) for i in range(100)])
    query = Analyzer(db.catalog).analyze(parse_statement(
        "SELECT 1 FROM big, medium, small "
        "WHERE big.id = medium.id AND medium.id = small.id",
    ))
    plan = HeuristicPlanner(db.catalog).plan(query)
    # The first (deepest-left) scan should be the smallest relation.
    text = plan.explain()
    first_scan = [line for line in text.splitlines() if "SeqScan" in line]
    assert "small" in first_scan[0] or "small" in text.splitlines()[2]


def test_cost_based_join_builds_on_smaller_input(db):
    db.execute("CREATE TABLE medium (id integer)")
    db.load_table("medium", [(i,) for i in range(100)])
    db.analyze()
    plan = plan_of(
        db,
        "SELECT 1 FROM big, medium, small "
        "WHERE big.id = medium.id AND medium.id = small.id",
    )
    # The probe (streamed, left) side of every hash join is the larger
    # input: ``big`` is never a build side.
    from repro.executor.nodes import HashJoin

    def joins(node):
        found = [node] if isinstance(node, HashJoin) else []
        for child in node.children():
            found += joins(child)
        return found

    top = joins(plan)
    assert top, plan.explain()
    for join in top:
        assert "big" not in join.right.explain()


def test_projection_slot_resolution(db):
    from repro.executor.context import ExecContext

    plan = plan_of(db, "SELECT v + 1 AS x FROM big WHERE id = 3")
    assert list(plan.run(ExecContext())) == [(7,)]


def test_explain_via_database(db):
    text = db.explain("SELECT v FROM big ORDER BY v LIMIT 1")
    assert "Sort" in text or "SortNode" in text
    assert "Limit" in text


def test_explain_statement(db):
    result = db.execute("EXPLAIN SELECT 1 FROM big, small WHERE big.id = small.id")
    assert result.columns == ["query plan"]
    assert any("HashJoin" in row[0] for row in result.rows)


def test_cross_join_without_condition(db):
    result = db.execute("SELECT count(*) FROM small AS a, small AS b")
    assert result.scalar() == 100


def test_constant_false_where(db):
    assert db.execute("SELECT 1 FROM big WHERE 1 = 2").rows == []


def test_where_true_keeps_all(db):
    assert len(db.execute("SELECT 1 FROM small WHERE TRUE")) == 10


def test_join_on_expression_keys(db):
    result = db.execute(
        "SELECT count(*) FROM big, small WHERE big.id = small.id + 490"
    )
    assert result.scalar() == 10
    text = plan_of(
        db, "SELECT count(*) FROM big, small WHERE big.id = small.id + 490"
    ).explain()
    assert "HashJoin" in text


def test_null_safe_join_operator_via_rewriter(db):
    # The aggregation rewrite emits <=> joins; they must use hash joins.
    db.execute("CREATE TABLE g (k integer, v integer)")
    db.execute("INSERT INTO g VALUES (NULL, 1), (NULL, 2), (1, 3)")
    result = db.execute("SELECT PROVENANCE k, sum(v) FROM g GROUP BY k")
    null_group = [r for r in result.rows if r[0] is None]
    assert len(null_group) == 2  # both NULL-key tuples attached


def test_distinct_with_hidden_sort_column(db):
    """SELECT DISTINCT with an ORDER BY expression outside the select
    list: sort the junk-extended projection, slice, then deduplicate —
    each distinct value appears once, ordered by its first occurrence."""
    from repro.executor.context import ExecContext

    plan = plan_of(db, "SELECT DISTINCT v FROM big ORDER BY id DESC")
    rows = list(plan.run(ExecContext()))
    assert plan.output_names == ["v"]
    assert rows == [(v,) for v in range(998, -2, -2)]


def test_distinct_with_hidden_sort_column_and_limit(db):
    db.execute("CREATE TABLE dd (a integer, b integer)")
    db.load_table("dd", [(1, 9), (1, 1), (2, 5), (3, 7)])
    result = db.execute("SELECT DISTINCT a FROM dd ORDER BY b LIMIT 2")
    # Sorted by b: (1,1),(2,5),(3,7),(1,9) -> distinct a keeps first
    # occurrences 1, 2 -> LIMIT 2 applies after deduplication.
    assert result.rows == [(1,), (2,)]
