"""Regression tests: TPC-H estimate quality with histogram/MCV stats.

Q9 (``p_name LIKE '%pink%'``) and Q14 (``p_type LIKE 'PROMO%'``) were
the canonical ``\\explain+`` misestimates before ANALYZE collected
histograms and MCV lists: constant-LIKE selectivity fell back to a
magic 10% and the provenance join trees inherited the error.  With the
statistics-backed LIKE estimator every node of both plans must now
estimate within the instrument's 10× misestimate threshold.
"""

from __future__ import annotations

import re

import pytest

from repro.tpch.dbgen import tpch_database
from repro.tpch.qgen import generate_query


@pytest.fixture(scope="module")
def db():
    database = tpch_database(scale_factor=0.001, seed=42)
    database.execute("ANALYZE")
    return database


@pytest.mark.parametrize("number", (9, 14))
def test_like_queries_estimate_within_threshold(db, number):
    sql = generate_query(number, seed=7, provenance=True)
    text = db.explain(sql, analyze=True)
    flagged = [line for line in text.splitlines() if "misestimate" in line]
    assert not flagged, "\n".join(flagged)


def test_q9_part_scan_estimate_tracks_like_selectivity(db):
    """The filtered part scan's estimate comes from the pattern's MCV/
    histogram sample, not the 10% default (200 rows at this scale)."""
    sql = generate_query(9, seed=7, provenance=True)
    text = db.explain(sql, analyze=True)
    scans = [
        line
        for line in text.splitlines()
        if "SeqScan on part (filtered)" in line
    ]
    assert scans
    est, actual = map(
        int, re.search(r"est=(\d+) actual rows=(\d+)", scans[0]).groups()
    )
    assert actual <= est * 10 and est <= max(actual, 1) * 10


def test_fused_boundaries_and_estimates_coexist(db):
    """Acceptance shape: \\explain+ shows fused pipeline boundaries and
    histogram-backed est= annotations in the same plan."""
    text = db.explain(
        "SELECT l_orderkey, l_extendedprice * (1 - l_discount) "
        "FROM lineitem WHERE l_shipdate > date '1995-01-01' "
        "AND l_discount < 0.05",
        analyze=True,
    )
    assert "FusedPipeline" in text
    assert "est=" in text
    assert "misestimate" not in text
