"""Differential suite: cost-based planner ≡ heuristic planner.

The statistics-driven planner must be semantically invisible: every
query returns the same result multiset (float summation tolerance aside
— different join orders regroup partial sums) with ``cost_based=True``
and ``cost_based=False``.  Checked over the paper's shop/sales/items
examples (analyzed and un-analyzed), the TPC-H SF-tiny workload
(normal, provenance and polynomial forms) on both execution backends,
and hypothesis-generated databases × query shapes.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.tpch.dbgen import tpch_database
from repro.tpch.qgen import generate_query
from repro.tpch.queries import SUPPORTED_QUERIES

from tests.backends.support import assert_same_result

_EXAMPLE_SETUP = (
    "CREATE TABLE shop (name text, numempl integer)",
    "CREATE TABLE sales (sname text, itemid integer)",
    "CREATE TABLE items (id integer, price integer)",
    "INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14)",
    "INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), "
    "('Merdies', 2), ('Joba', 3), ('Joba', 3)",
    "INSERT INTO items VALUES (1, 100), (2, 10), (3, 25)",
)

# Shapes exercising every ordering/strategy decision: multi-way joins,
# outer joins with pushable filters, cross-unit OR conditions (the Q7
# pattern), sublinks, aggregation + fusion, set operations, DISTINCT
# with hidden sort columns.
_EXAMPLE_QUERIES = (
    "SELECT PROVENANCE name FROM shop WHERE numempl < 10",
    "SELECT PROVENANCE name, sum(price) FROM shop, sales, items "
    "WHERE name = sname AND itemid = id GROUP BY name",
    "SELECT name, price FROM shop, sales, items "
    "WHERE name = sname AND itemid = id AND price > 20",
    "SELECT a.name, b.name FROM shop AS a, shop AS b "
    "WHERE (a.name = 'Merdies' AND b.name = 'Joba') "
    "OR (a.name = 'Joba' AND b.name = 'Merdies')",
    "SELECT PROVENANCE name FROM shop WHERE name IN (SELECT sname FROM sales)",
    "SELECT name FROM shop WHERE numempl < ANY (SELECT itemid FROM sales)",
    "SELECT name FROM shop WHERE numempl > ALL "
    "(SELECT itemid FROM sales WHERE sname = 'Joba')",
    "SELECT PROVENANCE sname FROM sales UNION SELECT name FROM shop",
    "SELECT PROVENANCE name, (SELECT max(price) FROM items) FROM shop",
    "SELECT PROVENANCE (polynomial) sname, count(*) FROM sales GROUP BY sname",
    "SELECT name, total FROM shop, (SELECT sname, count(*) AS total "
    "FROM sales GROUP BY sname) AS agg WHERE name = sname AND total > 1",
    "SELECT DISTINCT sname FROM sales ORDER BY itemid",
    "SELECT name FROM shop LEFT JOIN sales ON name = sname AND itemid > 2",
    "SELECT name, id FROM shop LEFT JOIN sales ON name = sname "
    "LEFT JOIN items ON itemid = id WHERE numempl < 10",
    "SELECT sname FROM sales EXCEPT ALL SELECT sname FROM sales WHERE itemid = 2",
    "SELECT sname, itemid FROM sales ORDER BY itemid DESC LIMIT 2 OFFSET 1",
    "SELECT name, (SELECT count(*) FROM sales WHERE sname = name) FROM shop",
)


def _example_db(cost_based: bool, analyze: bool) -> repro.PermDatabase:
    db = repro.connect(cost_based=cost_based)
    for statement in _EXAMPLE_SETUP:
        db.execute(statement)
    if analyze:
        db.analyze()
    return db


@pytest.mark.parametrize("analyze", (False, True), ids=("raw", "analyzed"))
@pytest.mark.parametrize("sql", _EXAMPLE_QUERIES)
def test_paper_examples_match(sql, analyze):
    reference = _example_db(cost_based=False, analyze=False).execute(sql)
    candidate = _example_db(cost_based=True, analyze=analyze).execute(sql)
    assert_same_result(reference, candidate, context=f"cost-based: {sql!r}")


# ---------------------------------------------------------------------------
# TPC-H SF-tiny: normal, provenance, and polynomial forms, both backends
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def tpch_dbs():
    databases = {}
    for backend in ("python", "sqlite"):
        for cost_based in (False, True):
            db = tpch_database(scale_factor=0.001, seed=42)
            db.cost_based_enabled = cost_based
            if backend != "python":
                db.set_backend(backend)
            if cost_based:
                db.analyze()
            databases[(backend, cost_based)] = db
    return databases


def _compare(tpch_dbs, backend, sql, tag):
    reference = tpch_dbs[(backend, False)].execute(sql)
    candidate = tpch_dbs[(backend, True)].execute(sql)
    assert_same_result(reference, candidate, context=f"{tag} [{backend}]")
    return reference, candidate


@pytest.mark.parametrize("backend", ("python", "sqlite"))
@pytest.mark.parametrize("number", SUPPORTED_QUERIES)
def test_tpch_normal_match(tpch_dbs, backend, number):
    sql = generate_query(number, seed=7)
    _compare(tpch_dbs, backend, sql, f"Q{number} normal")


@pytest.mark.parametrize("backend", ("python", "sqlite"))
@pytest.mark.parametrize("number", SUPPORTED_QUERIES)
def test_tpch_provenance_match(tpch_dbs, backend, number):
    sql = generate_query(number, seed=7, provenance=True)
    _compare(tpch_dbs, backend, sql, f"Q{number} provenance")


@pytest.mark.parametrize("backend", ("python", "sqlite"))
@pytest.mark.parametrize("number", (1, 3, 6, 12))
def test_tpch_polynomial_match(tpch_dbs, backend, number):
    sql = generate_query(number, seed=7, provenance=True).replace(
        "SELECT PROVENANCE", "SELECT PROVENANCE (polynomial)", 1
    )
    reference, candidate = _compare(tpch_dbs, backend, sql, f"Q{number} polynomial")
    # Annotations are canonical N[X] polynomials: exact equality holds.
    assert sorted(map(str, reference.annotations())) == sorted(
        map(str, candidate.annotations())
    )


def test_analyze_does_not_change_results(tpch_dbs):
    """Fresh statistics may change the plan, never the result."""
    db = tpch_dbs[("python", True)]
    sql = generate_query(9, seed=7, provenance=True)
    before = db.execute(sql)
    db.analyze()
    after = db.execute(sql)
    assert_same_result(before, after, context="re-ANALYZE Q9")


# ---------------------------------------------------------------------------
# Hypothesis: random small databases × random query shapes
# ---------------------------------------------------------------------------

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_value = st.integers(min_value=0, max_value=3)
_rows_r = st.lists(st.tuples(_value, st.one_of(st.none(), _value)), max_size=6)
_rows_s = st.lists(st.tuples(_value, _value), max_size=5)


@st.composite
def _queries(draw) -> str:
    shape = draw(
        st.sampled_from(
            ["join3", "subquery", "agg", "setop", "sublink", "outer", "any_all"]
        )
    )
    comparison = draw(st.sampled_from(["=", "<", ">", "<=", ">=", "<>"]))
    constant = draw(_value)
    provenance = draw(st.sampled_from(["", "PROVENANCE "]))
    if shape == "join3":
        return (
            f"SELECT {provenance}a.k, b.k2, c.k FROM r AS a, s AS b, r AS c "
            f"WHERE a.k = b.k2 AND b.k2 = c.k AND a.v {comparison} {constant}"
        )
    if shape == "subquery":
        return (
            f"SELECT {provenance}a, b FROM "
            f"(SELECT k AS a, v AS b FROM r WHERE k {comparison} {constant}) "
            "AS sub WHERE a IS NOT NULL"
        )
    if shape == "agg":
        having = draw(st.sampled_from(["", " HAVING count(*) > 1"]))
        return (
            f"SELECT {provenance}k, sum(v), count(*) FROM r "
            f"WHERE k {comparison} {constant} GROUP BY k{having}"
        )
    if shape == "setop":
        op = draw(st.sampled_from(["UNION", "UNION ALL", "INTERSECT", "EXCEPT"]))
        return (
            f"SELECT {provenance}a FROM (SELECT k AS a FROM r {op} "
            f"SELECT k2 FROM s) AS u WHERE a {comparison} {constant}"
        )
    if shape == "sublink":
        negated = draw(st.sampled_from(["", "NOT "]))
        return (
            f"SELECT {provenance}k FROM r WHERE v IS NOT NULL AND "
            f"k {negated}IN (SELECT k2 FROM s)"
        )
    if shape == "outer":
        return (
            f"SELECT {provenance}k, w FROM r LEFT JOIN "
            f"(SELECT k2 AS j, w FROM s WHERE w {comparison} {constant}) "
            "AS sub ON k = j"
        )
    quantifier = draw(st.sampled_from(["ANY", "ALL"]))
    return (
        f"SELECT {provenance}k FROM r "
        f"WHERE v {comparison} {quantifier} (SELECT w FROM s)"
    )


@given(rows_r=_rows_r, rows_s=_rows_s, sql=_queries(), analyze=st.booleans())
@_SETTINGS
def test_hypothesis_cost_based_equivalence(rows_r, rows_s, sql, analyze):
    results = []
    for cost_based in (False, True):
        db = repro.connect(cost_based=cost_based)
        db.execute("CREATE TABLE r (k integer, v integer)")
        db.execute("CREATE TABLE s (k2 integer, w integer)")
        db.load_table("r", rows_r)
        db.load_table("s", rows_s)
        if cost_based and analyze:
            db.analyze()
        results.append(db.execute(sql))
    assert_same_result(results[0], results[1], context=sql)
