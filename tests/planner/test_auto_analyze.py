"""Auto-ANALYZE regression tests.

PR-5 left "statistics lag appends until re-ANALYZE" as a known limit;
the catalog now refreshes previously-collected statistics once a heap
grows past a base + fraction threshold, triggered from the database's
statement entry points before cache keys are computed.
"""

from __future__ import annotations

import repro
from repro.catalog.catalog import Catalog


def _grown(db, name, rows):
    db.catalog.table(name).insert_many(rows)


def test_growth_past_threshold_refreshes_stats():
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer)")
    _grown(db, "t", [(i,) for i in range(1000)])
    db.execute("ANALYZE")
    epoch = db.catalog.stats_epoch
    assert db.catalog.stats_for("t").row_count == 1000

    # 128 + 0.2 * 1000 = 328 new rows due; insert 500.
    _grown(db, "t", [(i,) for i in range(500)])
    db.execute("SELECT count(*) FROM t")
    assert db.catalog.stats_epoch > epoch
    assert db.catalog.stats_for("t").row_count == 1500


def test_growth_below_threshold_keeps_stats():
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer)")
    _grown(db, "t", [(i,) for i in range(1000)])
    db.execute("ANALYZE")
    epoch = db.catalog.stats_epoch

    _grown(db, "t", [(i,) for i in range(100)])  # below 328
    db.execute("SELECT count(*) FROM t")
    assert db.catalog.stats_epoch == epoch
    assert db.catalog.stats_for("t").row_count == 1000


def test_never_analyzed_tables_stay_stats_free():
    # Conservative contract: auto-ANALYZE repairs staleness, it does not
    # opt tables into statistics.
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer)")
    _grown(db, "t", [(i,) for i in range(5000)])
    db.execute("SELECT count(*) FROM t")
    assert db.catalog.stats_for("t") is None


def test_auto_analyze_can_be_disabled():
    db = repro.connect(auto_analyze=False)
    db.execute("CREATE TABLE t (a integer)")
    _grown(db, "t", [(i,) for i in range(1000)])
    db.execute("ANALYZE")
    epoch = db.catalog.stats_epoch
    _grown(db, "t", [(i,) for i in range(5000)])
    db.execute("SELECT count(*) FROM t")
    assert db.catalog.stats_epoch == epoch


def test_refresh_invalidates_cached_statements():
    # The refresh bumps stats_epoch before the cache key is computed, so
    # a cached plan built on stale numbers cannot be reused afterwards.
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer)")
    _grown(db, "t", [(i,) for i in range(1000)])
    db.execute("ANALYZE")
    sql = "SELECT count(*) FROM t"
    db.execute(sql)
    db.execute(sql)
    hits_before = db.cache_stats()["hits"]
    assert hits_before >= 1
    _grown(db, "t", [(i,) for i in range(500)])
    assert db.execute(sql).scalar() == 1500  # fresh key, fresh plan, right answer
    assert db.cache_stats()["hits"] == hits_before


def test_catalog_maybe_auto_analyze_direct():
    catalog = Catalog()
    refreshed = catalog.maybe_auto_analyze()
    assert refreshed == []  # nothing collected: nothing refreshed
