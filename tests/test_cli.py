"""CLI smoke tests (python -m repro)."""

from __future__ import annotations

import subprocess
import sys

import pytest


def run_cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=120,
    )


def test_single_command_mode():
    result = run_cli("--example", "-c", "SELECT name FROM shop ORDER BY name")
    assert result.returncode == 0
    assert "Joba" in result.stdout
    assert "Merdies" in result.stdout


def test_provenance_command():
    result = run_cli(
        "--example",
        "-c",
        "SELECT PROVENANCE name FROM shop WHERE numempl < 10",
    )
    assert result.returncode == 0
    assert "prov_shop_name" in result.stdout


def test_error_exit_code():
    result = run_cli("--example", "-c", "SELECT zzz FROM shop")
    assert result.returncode == 1
    assert "error" in result.stderr


def test_ddl_command_tag():
    result = run_cli("-c", "CREATE TABLE t (a integer)")
    assert result.returncode == 0
    assert "CREATE TABLE" in result.stdout


def test_no_optimize_flag():
    result = run_cli(
        "--example", "--no-optimize",
        "-c", "SELECT PROVENANCE name FROM shop WHERE numempl < 10",
    )
    assert result.returncode == 0
    assert "prov_shop_name" in result.stdout


def test_interactive_optimize_and_stats():
    script = (
        "\\optimize off\n"
        "SELECT name FROM shop;\n"
        "\\optimize on\n"
        "\\stats\n"
        "\\explain SELECT PROVENANCE name FROM shop\n"
        "\\q\n"
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--example"],
        input=script,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0
    assert "logical optimizer: off" in result.stdout
    assert "logical optimizer: on" in result.stdout
    assert "prepared-statement cache:" in result.stdout
    assert "after optimization" in result.stdout


@pytest.mark.parametrize("meta", ["\\d", "\\q"])
def test_interactive_meta_commands(meta):
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--example"],
        input=f"{meta}\n\\q\n",
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0


def test_interactive_query_and_rewrite():
    script = (
        "SELECT name FROM shop;\n"
        "\\rewrite SELECT PROVENANCE name FROM shop\n"
        "\\q\n"
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--example"],
        input=script,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0
    assert "Merdies" in result.stdout
    assert "prov_shop_name" in result.stdout


def test_polynomial_provenance_command():
    result = run_cli(
        "--example",
        "-c",
        "SELECT PROVENANCE (polynomial) name FROM shop WHERE numempl < 10",
    )
    assert result.returncode == 0
    assert "prov_polynomial" in result.stdout
    assert "shop(Merdies,3)" in result.stdout


def test_no_vectorize_flag():
    result = run_cli(
        "--example", "--no-vectorize",
        "-c", "SELECT PROVENANCE name FROM shop WHERE numempl < 10",
    )
    assert result.returncode == 0
    assert "prov_shop_name" in result.stdout


def test_interactive_vectorize_toggle_and_explain_analyze():
    script = (
        "\\vectorize off\n"
        "SELECT name FROM shop;\n"
        "\\vectorize on\n"
        "\\explain+ SELECT PROVENANCE name FROM shop\n"
        "\\q\n"
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--example"],
        input=script,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0
    assert "vectorized execution: off" in result.stdout
    assert "vectorized execution: on" in result.stdout
    assert "physical plan (analyzed, vectorized)" in result.stdout
    assert "actual rows=" in result.stdout


def test_no_cost_based_flag():
    result = run_cli(
        "--example", "--no-cost-based",
        "-c", "SELECT PROVENANCE name FROM shop WHERE numempl < 10",
    )
    assert result.returncode == 0
    assert "prov_shop_name" in result.stdout


def test_analyze_statement_command():
    result = run_cli("--example", "-c", "ANALYZE shop")
    assert result.returncode == 0
    assert "shop" in result.stdout


def test_interactive_costbased_analyze_and_stats():
    script = (
        "\\costbased off\n"
        "SELECT name FROM shop;\n"
        "\\costbased on\n"
        "\\analyze\n"
        "\\stats\n"
        "\\explain+ SELECT PROVENANCE name, sum(itemid) FROM shop, sales "
        "WHERE name = sname GROUP BY name\n"
        "\\q\n"
    )
    result = subprocess.run(
        [sys.executable, "-m", "repro", "--example"],
        input=script,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0
    assert "cost-based planning: off" in result.stdout
    assert "cost-based planning: on" in result.stdout
    assert "analyzed shop" in result.stdout
    assert "table statistics:" in result.stdout
    assert "est=" in result.stdout
    assert "actual rows=" in result.stdout
