"""ASPJ rewrite tests: rule R5 / Fig. 6.2 (aggregation provenance)."""

from __future__ import annotations

from collections import Counter

import pytest

import repro


@pytest.fixture
def db():
    database = repro.connect()
    database.execute("CREATE TABLE t (g integer, v integer)")
    database.execute(
        "INSERT INTO t VALUES (1, 10), (1, 20), (2, 30), (NULL, 5), (NULL, 7)"
    )
    return database


def test_group_provenance_contains_all_group_members(db):
    result = db.execute("SELECT PROVENANCE g, sum(v) FROM t GROUP BY g")
    assert result.columns == ["g", "sum", "prov_t_g", "prov_t_v"]
    by_group = Counter(row[:2] for row in result.rows)
    # Each original group row is duplicated once per contributing tuple.
    assert by_group[(1, 30)] == 2
    assert by_group[(2, 30)] == 1


def test_null_group_key_matches_its_own_group(db):
    """GROUP BY collects NULL keys into one group; the R5 join must be
    null-safe so that group's provenance is attached (not lost)."""
    result = db.execute("SELECT PROVENANCE g, sum(v) FROM t GROUP BY g")
    null_rows = [row for row in result.rows if row[0] is None]
    assert Counter(null_rows) == Counter(
        {(None, 12, None, 5): 1, (None, 12, None, 7): 1}
    )


def test_grand_aggregate_provenance_is_whole_input(db):
    result = db.execute("SELECT PROVENANCE sum(v) FROM t")
    assert len(result) == 5  # every input tuple contributed
    assert {row[0] for row in result.rows} == {72}


def test_grand_aggregate_over_empty_input_footnote4(db):
    """Paper Fig. 11 footnote 4: 1 normal row, 0 provenance rows."""
    normal = db.execute("SELECT sum(v) FROM t WHERE v > 999")
    assert normal.rows == [(None,)]
    prov = db.execute("SELECT PROVENANCE sum(v) FROM t WHERE v > 999")
    assert prov.rows == []


def test_group_not_in_output_still_joins_correctly(db):
    # The grouping attribute is not selected; the rewrite must still join
    # q_agg with the rewritten duplicate on it.
    result = db.execute("SELECT PROVENANCE sum(v) FROM t GROUP BY g")
    assert len(result) == 5
    sums = Counter(row[0] for row in result.rows)
    assert sums == Counter({30: 3, 12: 2})


def test_group_by_expression(db):
    result = db.execute(
        "SELECT PROVENANCE g * 10, count(*) FROM t WHERE g IS NOT NULL GROUP BY g * 10"
    )
    assert Counter(row[:2] for row in result.rows) == Counter(
        {(10, 2): 2, (20, 1): 1}
    )


def test_having_preserved(db):
    result = db.execute(
        "SELECT PROVENANCE g, count(*) FROM t GROUP BY g HAVING count(*) > 1"
    )
    groups = {row[0] for row in result.rows}
    assert groups == {1, None}


def test_multiple_aggregates(db):
    result = db.execute(
        "SELECT PROVENANCE g, sum(v), min(v), max(v), avg(v), count(*) "
        "FROM t WHERE g = 1 GROUP BY g"
    )
    assert len(result) == 2
    assert result.rows[0][:6] == (1, 30, 10, 20, 15.0, 2)


def test_aggregation_over_join(db):
    db.execute("CREATE TABLE names (id integer, label text)")
    db.execute("INSERT INTO names VALUES (1, 'one'), (2, 'two')")
    result = db.execute(
        "SELECT PROVENANCE label, sum(v) FROM t, names WHERE g = id GROUP BY label"
    )
    assert result.columns == [
        "label", "sum", "prov_t_g", "prov_t_v", "prov_names_id", "prov_names_label",
    ]
    one_rows = [r for r in result.rows if r[0] == "one"]
    assert len(one_rows) == 2


def test_nested_aggregation(db):
    result = db.execute(
        "SELECT PROVENANCE sum(s) FROM "
        "(SELECT g, sum(v) AS s FROM t GROUP BY g) AS inner_agg"
    )
    # Provenance reaches through both aggregation levels to all 5 tuples.
    assert result.columns == ["sum", "prov_t_g", "prov_t_v"]
    assert len(result) == 5


def test_aggregate_with_distinct(db):
    db.execute("INSERT INTO t VALUES (1, 10)")
    result = db.execute(
        "SELECT PROVENANCE count(DISTINCT v) FROM t WHERE g = 1"
    )
    assert {row[0] for row in result.rows} == {2}
    assert len(result) == 3  # three contributing tuples


def test_order_by_on_aggregation(db):
    result = db.execute(
        "SELECT PROVENANCE g, sum(v) AS s FROM t WHERE g IS NOT NULL "
        "GROUP BY g ORDER BY s DESC"
    )
    # ORDER BY applies inside q_agg; the top join may reorder duplicated
    # rows but every row must still be present.
    assert Counter(row[:2] for row in result.rows) == Counter(
        {(1, 30): 2, (2, 30): 1}
    )


def test_original_aggregate_values_unchanged(db):
    normal = db.execute("SELECT g, sum(v) FROM t GROUP BY g")
    prov = db.execute("SELECT PROVENANCE g, sum(v) FROM t GROUP BY g")
    assert {r[:2] for r in prov.rows} == set(normal.rows)
