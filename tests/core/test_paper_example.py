"""The running example of the paper (Figs. 2 and 4), checked exactly.

These tests pin the headline behaviour: the rewritten aggregation query
``qex+`` must produce precisely the result relation printed in Fig. 4,
including duplicated original tuples and the provenance attribute naming
scheme of section IV-A.1.
"""

from __future__ import annotations

from collections import Counter

QEX = (
    "SELECT name, sum(price) AS sum FROM shop, sales, items "
    "WHERE name = sname AND itemid = id GROUP BY name"
)
QEX_PROV = (
    "SELECT PROVENANCE name, sum(price) AS sum FROM shop, sales, items "
    "WHERE name = sname AND itemid = id GROUP BY name"
)


def test_original_query_result(example_db):
    result = example_db.execute(QEX)
    assert result.columns == ["name", "sum"]
    assert sorted(result.rows) == [("Joba", 50), ("Merdies", 120)]


def test_provenance_schema_matches_paper(example_db):
    result = example_db.execute(QEX_PROV)
    assert result.columns == [
        "name",
        "sum",
        "prov_shop_name",
        "prov_shop_numempl",
        "prov_sales_sname",
        "prov_sales_itemid",
        "prov_items_id",
        "prov_items_price",
    ]


def test_provenance_result_matches_figure_4(example_db):
    result = example_db.execute(QEX_PROV)
    expected = Counter(
        {
            ("Merdies", 120, "Merdies", 3, "Merdies", 1, 1, 100): 1,
            ("Merdies", 120, "Merdies", 3, "Merdies", 2, 2, 10): 2,
            ("Joba", 50, "Joba", 14, "Joba", 3, 3, 25): 2,
        }
    )
    assert Counter(result.rows) == expected


def test_provenance_preserves_original_tuples(example_db):
    """Step 1 of the paper's correctness proof: ΠT(T+) = ΠT(T)."""
    original = example_db.execute(QEX)
    prov = example_db.execute(QEX_PROV)
    original_part = {row[:2] for row in prov.rows}
    assert original_part == set(original.rows)


def test_query_over_provenance_result(example_db):
    """The paper's q1: items sold by shops with total sales > 100."""
    result = example_db.execute(
        "SELECT DISTINCT prov_items_id FROM "
        f"({QEX_PROV}) AS prov WHERE sum > 100"
    )
    assert sorted(result.rows) == [(1,), (2,)]


def test_provenance_method_equivalent_to_keyword(example_db):
    via_keyword = example_db.execute(QEX_PROV)
    via_method = example_db.provenance(QEX)
    assert via_keyword.columns == via_method.columns
    assert Counter(via_keyword.rows) == Counter(via_method.rows)


def test_disjunctive_sublink_example(example_db):
    """Section IV-E: C true independent of the sublink -> all sales tuples."""
    result = example_db.execute(
        "SELECT PROVENANCE name FROM shop "
        "WHERE numempl < 10 OR name IN (SELECT sname FROM sales)"
    )
    merdies = Counter(r for r in result.rows if r[0] == "Merdies")
    joba = Counter(r for r in result.rows if r[0] == "Joba")
    # Merdies satisfies numempl < 10: all five sales tuples contribute.
    assert sum(merdies.values()) == 5
    # Joba only via the IN sublink: exactly its two witnesses.
    assert sum(joba.values()) == 2
    assert set(joba) == {("Joba", "Joba", 14, "Joba", 3)}


def test_baserelation_keyword(example_db):
    """Section IV-A.4: BASERELATION stops provenance at the subquery."""
    result = example_db.execute(
        "SELECT PROVENANCE total * 10 FROM "
        "(SELECT sum(price) AS total FROM items) BASERELATION AS sub"
    )
    assert result.columns == ["?column?", "prov_sub_total"]
    assert result.rows == [(1350, 135)]


def test_incremental_provenance_via_view(example_db):
    """Section IV-A.3: stored provenance is reused, not recomputed."""
    example_db.execute(
        "CREATE VIEW totalitemprice AS "
        "SELECT PROVENANCE sum(price) AS total FROM items"
    )
    result = example_db.execute(
        "SELECT PROVENANCE total * 10 FROM totalitemprice "
        "PROVENANCE (prov_items_id, prov_items_price)"
    )
    assert result.columns == ["?column?", "prov_items_id", "prov_items_price"]
    assert sorted(result.rows) == [(1350, 1, 100), (1350, 2, 10), (1350, 3, 25)]
