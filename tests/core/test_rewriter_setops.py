"""Set-operation rewrite tests: rules R6-R9 / Fig. 6.3."""

from __future__ import annotations

from collections import Counter

import pytest

import repro
from repro.analyzer.analyzer import Analyzer
from repro.core.rewriter import traverse_query_tree
from repro.executor.context import ExecContext
from repro.planner.planner import Planner
from repro.sql.parser import parse_statement


@pytest.fixture
def db():
    database = repro.connect()
    database.execute("CREATE TABLE r (a integer)")
    database.execute("CREATE TABLE s (a integer)")
    database.execute("INSERT INTO r VALUES (1), (2), (2), (3)")
    database.execute("INSERT INTO s VALUES (2), (3), (4)")
    return database


def prov(db, sql):
    return Counter(db.execute(sql).rows)


def test_r6_union_left_joins_both_sides(db):
    result = prov(db, "SELECT PROVENANCE a FROM r UNION SELECT a FROM s")
    # 1 only in r, 4 only in s: the other side is null-padded.
    assert result[(1, 1, None)] == 1
    assert result[(4, None, 4)] == 1
    # 2 is in both: r contributes multiplicity 2, s multiplicity 1.
    assert result[(2, 2, 2)] == 2


def test_r6_union_all_bag_semantics(db):
    result = prov(db, "SELECT PROVENANCE a FROM r UNION ALL SELECT a FROM s")
    # UNION ALL result has (2) x3; each joins its witnesses.
    total_for_2 = sum(n for row, n in result.items() if row[0] == 2)
    assert total_for_2 == 6  # 3 result rows x 2 join partners on r side x1


def test_r7_intersection_inner_joins(db):
    result = prov(db, "SELECT PROVENANCE a FROM r INTERSECT SELECT a FROM s")
    assert set(result) == {(2, 2, 2), (3, 3, 3)}
    # No null-padded rows for intersection.
    assert all(None not in row for row in result)


def test_r8_set_difference_attaches_all_of_t2(db):
    result = prov(db, "SELECT PROVENANCE a FROM r EXCEPT SELECT a FROM s")
    # Result {1}; provenance: the tuple itself from r, ALL tuples from s.
    assert set(result) == {(1, 1, 2), (1, 1, 3), (1, 1, 4)}


def test_r8_set_difference_empty_right(db):
    db.execute("CREATE TABLE empty_s (a integer)")
    result = prov(db, "SELECT PROVENANCE a FROM r EXCEPT SELECT a FROM empty_s")
    # Left join against empty T2+ null-pads.
    assert set(result) == {
        (1, 1, None), (2, 2, None), (3, 3, None),
    }


def test_r9_bag_difference_uses_inequality(db):
    result = prov(db, "SELECT PROVENANCE a FROM r EXCEPT ALL SELECT a FROM s")
    # EXCEPT ALL keeps 1 (x1) and 2 (x1): provenance from s = tuples != t.
    rows_for_1 = {row for row in result if row[0] == 1}
    assert rows_for_1 == {(1, 1, 2), (1, 1, 3), (1, 1, 4)}
    rows_for_2 = {row for row in result if row[0] == 2}
    assert rows_for_2 == {(2, 2, 3), (2, 2, 4)}


def test_nested_setop_tree(db):
    db.execute("CREATE TABLE u (a integer)")
    db.execute("INSERT INTO u VALUES (3), (5)")
    result = prov(
        db,
        "SELECT PROVENANCE a FROM r UNION (SELECT a FROM s INTERSECT SELECT a FROM u)",
    )
    cols = db.execute(
        "SELECT PROVENANCE a FROM r UNION (SELECT a FROM s INTERSECT SELECT a FROM u)"
    ).columns
    assert cols == ["a", "prov_r_a", "prov_s_a", "prov_u_a"]
    # 3 comes from r and from s∩u.
    assert result[(3, 3, 3, 3)] >= 1
    # 1 comes only from r.
    assert result[(1, 1, None, None)] == 1


def test_setop_of_projections(db):
    result = prov(
        db,
        "SELECT PROVENANCE a * 2 FROM r UNION SELECT a + 10 FROM s",
    )
    assert (4, 2, None) in result  # 2*2 from r
    assert (12, None, 2) in result  # 2+10 from s


def test_original_setop_result_preserved(db):
    for op in ("UNION", "UNION ALL", "INTERSECT", "EXCEPT", "EXCEPT ALL"):
        normal = db.execute(f"SELECT a FROM r {op} SELECT a FROM s")
        prov_result = db.execute(f"SELECT PROVENANCE a FROM r {op} SELECT a FROM s")
        assert {row[:1] for row in prov_result.rows} == set(normal.rows), op


def test_flat_strategy_matches_split_for_homogeneous_trees(db):
    db.execute("CREATE TABLE u (a integer)")
    db.execute("INSERT INTO u VALUES (2), (9)")
    sql = (
        "SELECT PROVENANCE a FROM r UNION SELECT a FROM s UNION SELECT a FROM u"
    )
    results = {}
    for strategy in ("split", "flat"):
        query = Analyzer(db.catalog).analyze(parse_statement(sql))
        rewritten = traverse_query_tree(query, setop_strategy=strategy)
        plan = Planner(db.catalog).plan(rewritten)
        results[strategy] = Counter(plan.run(ExecContext()))
    assert results["split"] == results["flat"]


def test_flat_strategy_falls_back_on_mixed_trees(db):
    db.execute("CREATE TABLE u (a integer)")
    db.execute("INSERT INTO u VALUES (2)")
    sql = (
        "SELECT PROVENANCE a FROM r UNION "
        "(SELECT a FROM s INTERSECT SELECT a FROM u)"
    )
    for strategy in ("split", "flat"):
        query = Analyzer(db.catalog).analyze(parse_statement(sql))
        rewritten = traverse_query_tree(query, setop_strategy=strategy)
        plan = Planner(db.catalog).plan(rewritten)
        assert Counter(plan.run(ExecContext()))  # both execute and agree below
    split_q = Analyzer(db.catalog).analyze(parse_statement(sql))
    flat_q = Analyzer(db.catalog).analyze(parse_statement(sql))
    split_rows = Counter(
        Planner(db.catalog).plan(traverse_query_tree(split_q, "split")).run(ExecContext())
    )
    flat_rows = Counter(
        Planner(db.catalog).plan(traverse_query_tree(flat_q, "flat")).run(ExecContext())
    )
    assert split_rows == flat_rows


def test_setop_with_limit_applies_before_provenance_expansion(db):
    result = db.execute(
        "SELECT PROVENANCE a FROM r UNION SELECT a FROM s ORDER BY a LIMIT 2"
    )
    originals = {row[0] for row in result.rows}
    assert originals == {1, 2}
