"""Sublink rewrite tests (paper section IV-E)."""

from __future__ import annotations

from collections import Counter

import pytest

import repro
from repro.errors import RewriteError


@pytest.fixture
def db():
    database = repro.connect()
    database.execute("CREATE TABLE t (a integer, b text)")
    database.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (5, 'z')")
    database.execute("CREATE TABLE s (c integer)")
    database.execute("INSERT INTO s VALUES (1), (2), (9)")
    return database


def test_in_sublink_witnesses(db):
    result = db.execute("SELECT PROVENANCE a FROM t WHERE a IN (SELECT c FROM s)")
    assert result.columns == ["a", "prov_t_a", "prov_t_b", "prov_s_c"]
    assert Counter(result.rows) == Counter(
        {(1, 1, "x", 1): 1, (2, 2, "y", 2): 1}
    )


def test_not_in_sublink_attaches_non_fulfilling_tuples(db):
    """Paper's Q16 discussion: every tuple that did NOT fulfill the
    sublink condition contributes."""
    result = db.execute(
        "SELECT PROVENANCE a FROM t WHERE a NOT IN (SELECT c FROM s)"
    )
    # Only a=5 passes NOT IN; its provenance includes all s tuples (each <> 5).
    assert Counter(result.rows) == Counter(
        {(5, 5, "z", 1): 1, (5, 5, "z", 2): 1, (5, 5, "z", 9): 1}
    )


def test_disjunction_makes_condition_independent(db):
    """Paper's exact example: C true independent of the sublink value ->
    all tuples accessed by the sublink contribute."""
    result = db.execute(
        "SELECT PROVENANCE a FROM t WHERE a > 4 OR a IN (SELECT c FROM s)"
    )
    rows_for_5 = [row for row in result.rows if row[0] == 5]
    assert len(rows_for_5) == 3  # all of s
    rows_for_1 = [row for row in result.rows if row[0] == 1]
    assert rows_for_1 == [(1, 1, "x", 1)]  # only its witness


def test_exists_sublink_all_tuples_contribute(db):
    result = db.execute(
        "SELECT PROVENANCE a FROM t WHERE EXISTS (SELECT 1 FROM s)"
    )
    for value in (1, 2, 5):
        assert len([r for r in result.rows if r[0] == value]) == 3


def test_exists_over_empty_subquery(db):
    result = db.execute(
        "SELECT PROVENANCE a FROM t WHERE EXISTS (SELECT 1 FROM s WHERE c > 99)"
    )
    assert result.rows == []


def test_scalar_sublink_aggregate_provenance(db):
    result = db.execute(
        "SELECT PROVENANCE a FROM t WHERE a < (SELECT max(c) FROM s)"
    )
    # max(c) = 9: every t row passes, and the aggregate's provenance (all
    # three s tuples) attaches to each result row.
    assert len(result) == 3 * 3
    assert result.columns == ["a", "prov_t_a", "prov_t_b", "prov_s_c"]


def test_scalar_sublink_filters_and_attaches(db):
    result = db.execute(
        "SELECT PROVENANCE a FROM t WHERE a < (SELECT min(c) + 1 FROM s)"
    )
    # min(c) + 1 = 2: only a=1 passes, with all three s witnesses.
    assert {row[0] for row in result.rows} == {1}
    assert len(result) == 3


def test_sublink_in_select_list(db):
    result = db.execute("SELECT PROVENANCE a, (SELECT max(c) FROM s) FROM t")
    assert result.columns == [
        "a", "?column?", "prov_t_a", "prov_t_b", "prov_s_c",
    ]
    assert len(result) == 9  # 3 rows x 3 contributing s tuples


def test_sublink_in_having(db):
    result = db.execute(
        "SELECT PROVENANCE b, sum(a) FROM t GROUP BY b "
        "HAVING sum(a) > (SELECT min(c) FROM s)"
    )
    # Groups y (2) and z (5) pass; each group row gains s provenance.
    assert result.columns == [
        "b", "sum", "prov_t_a", "prov_t_b", "prov_s_c",
    ]
    originals = {row[:2] for row in result.rows}
    assert originals == {("y", 2), ("z", 5)}
    for original in originals:
        witnesses = [r for r in result.rows if r[:2] == original]
        assert len(witnesses) == 3  # all of s via the scalar aggregate


def test_quantified_any_sublink(db):
    result = db.execute(
        "SELECT PROVENANCE a FROM t WHERE a <= ANY (SELECT c FROM s)"
    )
    rows_for_1 = {row for row in result.rows if row[0] == 1}
    assert rows_for_1 == {(1, 1, "x", 1), (1, 1, "x", 2), (1, 1, "x", 9)}


def test_multiple_sublinks(db):
    result = db.execute(
        "SELECT PROVENANCE a FROM t "
        "WHERE a IN (SELECT c FROM s) AND a < (SELECT max(c) FROM s)"
    )
    assert result.columns == [
        "a", "prov_t_a", "prov_t_b", "prov_s_c", "prov_s_1_c",
    ]
    # a in {1,2}; first sublink: 1 witness, second: all 3.
    assert len(result) == 2 * 1 * 3


def test_nested_sublink_inside_from_subquery(db):
    result = db.execute(
        "SELECT PROVENANCE v FROM "
        "(SELECT a AS v FROM t WHERE a IN (SELECT c FROM s)) AS sub"
    )
    assert result.columns == ["v", "prov_t_a", "prov_t_b", "prov_s_c"]
    assert len(result) == 2


def test_correlated_sublink_raises_rewrite_error(db):
    with pytest.raises(RewriteError, match="correlated"):
        db.execute(
            "SELECT PROVENANCE a FROM t "
            "WHERE EXISTS (SELECT 1 FROM s WHERE s.c = t.a)"
        )


def test_correlated_sublink_still_executes_without_provenance(db):
    result = db.execute(
        "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.c = t.a)"
    )
    assert sorted(result.rows) == [(1,), (2,)]


def test_sublink_original_filter_still_applies(db):
    # The rewritten query keeps the original condition: rows failing the
    # sublink must not leak in via the provenance join.
    result = db.execute(
        "SELECT PROVENANCE a FROM t WHERE a IN (SELECT c FROM s WHERE c < 2)"
    )
    assert {row[0] for row in result.rows} == {1}
