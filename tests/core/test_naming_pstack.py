"""Provenance attribute naming scheme (IV-A.1) and pStack unit tests."""

from __future__ import annotations

import pytest

from repro.core.naming import ProvenanceAttribute, ProvenanceNamer
from repro.core.pstack import PStack, concat_plists
from repro.datatypes import SQLType


def test_attribute_name_format():
    assert ProvenanceNamer.attribute_name("shop", 0, "name") == "prov_shop_name"
    assert ProvenanceNamer.attribute_name("Shop", 0, "NAME") == "prov_shop_name"


def test_repeated_reference_gets_number():
    assert ProvenanceNamer.attribute_name("shop", 1, "name") == "prov_shop_1_name"
    assert ProvenanceNamer.attribute_name("shop", 2, "name") == "prov_shop_2_name"


def test_namer_counts_references_per_relation():
    namer = ProvenanceNamer()
    assert namer.next_reference("shop") == 0
    assert namer.next_reference("shop") == 1
    assert namer.next_reference("items") == 0
    assert namer.next_reference("SHOP") == 2  # case-insensitive


def test_attributes_for_relation():
    namer = ProvenanceNamer()
    attrs = namer.attributes_for_relation(
        "items", ["id", "price"], [SQLType.INTEGER, SQLType.INTEGER]
    )
    assert [a.name for a in attrs] == ["prov_items_id", "prov_items_price"]
    assert all(a.ref_id == 0 for a in attrs)
    second = namer.attributes_for_relation("items", ["id"], [SQLType.INTEGER])
    assert second[0].name == "prov_items_1_id"
    assert second[0].ref_id == 1


def _attr(name: str) -> ProvenanceAttribute:
    return ProvenanceAttribute(name, "r", 0, name, SQLType.INTEGER)


def test_pstack_push_pop():
    stack = PStack()
    stack.push([_attr("a")])
    stack.push([_attr("b")])
    assert len(stack) == 2
    assert [a.name for a in stack.pop()] == ["b"]
    assert [a.name for a in stack.peek()] == ["a"]


def test_pstack_pop_many_in_push_order():
    stack = PStack()
    stack.push([_attr("a")])
    stack.push([_attr("b")])
    stack.push([_attr("c")])
    popped = stack.pop_many(2)
    assert [[a.name for a in plist] for plist in popped] == [["b"], ["c"]]
    assert len(stack) == 1


def test_pstack_underflow():
    stack = PStack()
    with pytest.raises(IndexError):
        stack.pop()
    with pytest.raises(IndexError):
        stack.pop_many(1)
    assert stack.pop_many(0) == []


def test_concat_plists_is_the_paper_concatenation():
    combined = concat_plists([[_attr("a")], [_attr("b"), _attr("c")]])
    assert [a.name for a in combined] == ["a", "b", "c"]
