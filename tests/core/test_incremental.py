"""Incremental, external and scope-limited provenance (IV-A.3 / IV-A.4)."""

from __future__ import annotations

import pytest

import repro
from repro.errors import RewriteError


@pytest.fixture
def db(example_db):
    return example_db


def test_select_into_stores_provenance(db):
    db.execute("SELECT PROVENANCE sum(price) AS total INTO stored FROM items")
    stored = db.execute("SELECT * FROM stored")
    assert stored.columns == ["total", "prov_items_id", "prov_items_price"]
    assert len(stored) == 3


def test_incremental_from_stored_table(db):
    db.execute("SELECT PROVENANCE sum(price) AS total INTO stored FROM items")
    result = db.execute(
        "SELECT PROVENANCE total * 2 FROM stored "
        "PROVENANCE (prov_items_id, prov_items_price)"
    )
    assert result.columns == ["?column?", "prov_items_id", "prov_items_price"]
    assert sorted(result.rows) == [(270, 1, 100), (270, 2, 10), (270, 3, 25)]


def test_provenance_annotation_with_unknown_attribute(db):
    db.execute("SELECT PROVENANCE sum(price) AS total INTO stored FROM items")
    with pytest.raises(RewriteError, match="not found"):
        db.execute("SELECT PROVENANCE total FROM stored PROVENANCE (nope)")


def test_external_provenance_on_plain_table(db):
    """External provenance: any relation can declare provenance columns."""
    db.execute("CREATE TABLE external (v integer, src text)")
    db.execute("INSERT INTO external VALUES (1, 'file_a'), (2, 'file_b')")
    result = db.execute("SELECT PROVENANCE v FROM external PROVENANCE (src)")
    assert result.columns == ["v", "src"]
    assert sorted(result.rows) == [(1, "file_a"), (2, "file_b")]


def test_view_with_provenance_body(db):
    db.execute(
        "CREATE VIEW v AS SELECT PROVENANCE name, numempl FROM shop"
    )
    plain = db.execute("SELECT * FROM v")
    assert plain.columns == [
        "name", "numempl", "prov_shop_name", "prov_shop_numempl",
    ]


def test_view_declared_provenance_attrs_used_by_default(db):
    db.execute(
        "CREATE VIEW v PROVENANCE (prov_shop_name, prov_shop_numempl) AS "
        "SELECT PROVENANCE name, numempl FROM shop"
    )
    result = db.execute("SELECT PROVENANCE name FROM v")
    assert result.columns == ["name", "prov_shop_name", "prov_shop_numempl"]


def test_baserelation_on_view(db):
    db.execute("CREATE VIEW totals AS SELECT sum(price) AS total FROM items")
    result = db.execute("SELECT PROVENANCE total FROM totals BASERELATION")
    assert result.columns == ["total", "prov_totals_total"]
    assert result.rows == [(135, 135)]


def test_baserelation_mixed_with_real_relation(db):
    result = db.execute(
        "SELECT PROVENANCE name, total FROM shop, "
        "(SELECT sum(price) AS total FROM items) BASERELATION AS agg"
    )
    assert result.columns == [
        "name", "total", "prov_shop_name", "prov_shop_numempl", "prov_agg_total",
    ]
    assert len(result) == 2


def test_provenance_through_two_stored_levels(db):
    """Provenance survives two SELECT INTO round trips."""
    db.execute("SELECT PROVENANCE sum(price) AS total INTO level1 FROM items")
    db.execute(
        "SELECT PROVENANCE total + 1 AS bumped INTO level2 FROM level1 "
        "PROVENANCE (prov_items_id, prov_items_price)"
    )
    result = db.execute(
        "SELECT PROVENANCE bumped FROM level2 "
        "PROVENANCE (prov_items_id, prov_items_price)"
    )
    assert sorted(result.rows) == [(136, 1, 100), (136, 2, 10), (136, 3, 25)]


def test_annotation_overrides_recomputation(db):
    """With the annotation, the rewriter must NOT descend into the view --
    stored provenance values are reused verbatim."""
    db.execute("SELECT PROVENANCE sum(price) AS total INTO stored FROM items")
    # Tamper with the stored provenance to observe which path is taken.
    db.execute("DROP TABLE items")
    result = db.execute(
        "SELECT PROVENANCE total FROM stored "
        "PROVENANCE (prov_items_id, prov_items_price)"
    )
    assert len(result) == 3  # items is gone; stored provenance still works
