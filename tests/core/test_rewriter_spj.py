"""SPJ rewrite tests: rules R1-R4 at the SQL level (paper Fig. 6.1)."""

from __future__ import annotations

from collections import Counter

import pytest

import repro


@pytest.fixture
def db():
    database = repro.connect()
    database.execute("CREATE TABLE t (a integer, b text)")
    database.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (2, 'y')")
    database.execute("CREATE TABLE s (c integer, d text)")
    database.execute("INSERT INTO s VALUES (1, 'p'), (3, 'q')")
    return database


def test_r1_base_relation_duplicates_attributes(db):
    result = db.execute("SELECT PROVENANCE a, b FROM t")
    assert result.columns == ["a", "b", "prov_t_a", "prov_t_b"]
    assert Counter(result.rows) == Counter(
        {(1, "x", 1, "x"): 1, (2, "y", 2, "y"): 2}
    )


def test_r2_projection_keeps_full_source_tuples(db):
    result = db.execute("SELECT PROVENANCE b FROM t")
    assert result.columns == ["b", "prov_t_a", "prov_t_b"]
    # b='y' appears twice; each carries the full source tuple.
    assert Counter(result.rows) == Counter(
        {("x", 1, "x"): 1, ("y", 2, "y"): 2}
    )


def test_r2_set_projection_distinct_over_extended_tuples(db):
    db.execute("INSERT INTO t VALUES (3, 'y')")
    result = db.execute("SELECT PROVENANCE DISTINCT b FROM t")
    # DISTINCT applies to the extended tuple: 'y' from (2,y) and (3,y)
    # remain distinct provenance rows (paper rule R2, set version).
    assert Counter(result.rows) == Counter(
        {("x", 1, "x"): 1, ("y", 2, "y"): 1, ("y", 3, "y"): 1}
    )


def test_r3_selection_applies_to_rewritten_input(db):
    result = db.execute("SELECT PROVENANCE a FROM t WHERE a > 1")
    assert Counter(result.rows) == Counter({(2, 2, "y"): 2})


def test_r4_cross_product_concatenates_plists(db):
    result = db.execute("SELECT PROVENANCE a, c FROM t, s WHERE a = c")
    assert result.columns == [
        "a", "c", "prov_t_a", "prov_t_b", "prov_s_c", "prov_s_d",
    ]
    assert result.rows == [(1, 1, 1, "x", 1, "p")]


def test_inner_join_rewrite(db):
    via_join = db.execute("SELECT PROVENANCE a, c FROM t JOIN s ON a = c")
    via_where = db.execute("SELECT PROVENANCE a, c FROM t, s WHERE a = c")
    assert via_join.columns == via_where.columns
    assert Counter(via_join.rows) == Counter(via_where.rows)


def test_left_outer_join_rewrite_null_pads_provenance(db):
    result = db.execute("SELECT PROVENANCE a, c FROM t LEFT JOIN s ON a = c")
    rows = Counter(result.rows)
    # Unmatched t-rows carry NULL provenance for s.
    assert rows[(2, None, 2, "y", None, None)] == 2
    assert rows[(1, 1, 1, "x", 1, "p")] == 1


def test_self_join_gets_numbered_provenance_names(db):
    result = db.execute(
        "SELECT PROVENANCE x.a FROM t AS x, t AS y WHERE x.a = y.a"
    )
    assert result.columns == [
        "a", "prov_t_a", "prov_t_b", "prov_t_1_a", "prov_t_1_b",
    ]


def test_subquery_rewritten_recursively(db):
    result = db.execute(
        "SELECT PROVENANCE v FROM (SELECT a + 10 AS v FROM t) AS sub"
    )
    assert result.columns == ["v", "prov_t_a", "prov_t_b"]
    assert Counter(result.rows) == Counter(
        {(11, 1, "x"): 1, (12, 2, "y"): 2}
    )


def test_provenance_marker_on_inner_subquery_only(db):
    # Outer query is plain; provenance attributes are ordinary columns.
    result = db.execute(
        "SELECT prov_t_a FROM (SELECT PROVENANCE b FROM t) AS sub"
    )
    assert sorted(result.rows) == [(1,), (2,), (2,)]


def test_order_by_and_limit_preserved(db):
    result = db.execute("SELECT PROVENANCE a FROM t ORDER BY a DESC LIMIT 2")
    assert result.rows[0][0] == 2
    assert len(result) == 2


def test_constants_and_expressions_in_targets(db):
    result = db.execute("SELECT PROVENANCE a * 2 + 1, 'k' FROM t WHERE a = 1")
    assert result.rows == [(3, "k", 1, "x")]


def test_query_without_from(db):
    result = db.execute("SELECT PROVENANCE 1 + 1")
    assert result.columns == ["?column?"]
    assert result.rows == [(2,)]


def test_provenance_of_empty_selection(db):
    result = db.execute("SELECT PROVENANCE a FROM t WHERE a > 100")
    assert result.rows == []


def test_original_multiplicities_preserved_for_spj(db):
    normal = db.execute("SELECT a FROM t")
    prov = db.execute("SELECT PROVENANCE a FROM t")
    assert Counter(r[:1] for r in prov.rows) == Counter(normal.rows)
