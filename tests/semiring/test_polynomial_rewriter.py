"""End-to-end tests for ``SELECT PROVENANCE (polynomial)``."""

from __future__ import annotations

from collections import Counter

import pytest

import repro
from repro.semiring import Polynomial, get_semiring


def V(name: str) -> Polynomial:
    return Polynomial.variable(name)


@pytest.fixture
def db() -> repro.PermDatabase:
    database = repro.connect()
    database.execute("CREATE TABLE shop (name text, numempl integer)")
    database.execute("CREATE TABLE sales (sname text, itemid integer)")
    database.execute("CREATE TABLE items (id integer, price integer)")
    database.execute("INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14)")
    database.execute(
        "INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), "
        "('Merdies', 2), ('Joba', 3), ('Joba', 3)"
    )
    database.execute("INSERT INTO items VALUES (1, 100), (2, 10), (3, 25)")
    return database


# -- acceptance criterion ---------------------------------------------------


def test_shop_example_counting_matches_bag_multiplicity(db):
    result = db.execute(
        "SELECT PROVENANCE (polynomial) name FROM shop WHERE numempl < 10"
    )
    assert result.columns == ["name", "prov_polynomial"]
    assert result.annotation_column == "prov_polynomial"
    normal = db.execute("SELECT name FROM shop WHERE numempl < 10")
    multiplicities = Counter(normal.rows)
    assert {row[:1] for row in result.rows} == set(multiplicities)
    for row, value in zip(result.rows, result.evaluate_provenance("counting")):
        assert value == multiplicities[row[:1]]


def test_default_witness_path_unchanged(db):
    result = db.execute("SELECT PROVENANCE name FROM shop WHERE numempl < 10")
    assert result.columns == ["name", "prov_shop_name", "prov_shop_numempl"]
    assert result.rows == [("Merdies", "Merdies", 3)]
    assert result.annotation_column is None
    with pytest.raises(repro.PermError):
        result.annotations()


# -- SPJ --------------------------------------------------------------------


def test_base_scan_mints_one_variable_per_tuple(db):
    result = db.execute("SELECT PROVENANCE (polynomial) name, numempl FROM shop")
    annotated = {row[:2]: row[2] for row in result.rows}
    assert annotated[("Merdies", 3)] == V("shop(Merdies,3)")
    assert annotated[("Joba", 14)] == V("shop(Joba,14)")


def test_join_multiplies_annotations(db):
    result = db.execute(
        "SELECT PROVENANCE (polynomial) name, price FROM shop, sales, items "
        "WHERE name = sname AND itemid = id AND price > 20"
    )
    annotated = {row[:2]: row[2] for row in result.rows}
    assert annotated[("Merdies", 100)] == (
        V("shop(Merdies,3)") * V("sales(Merdies,1)") * V("items(1,100)")
    )
    # Two identical sales tuples -> coefficient 2 through the join.
    assert annotated[("Joba", 25)] == (
        Polynomial.constant(2) * V("shop(Joba,14)") * V("sales(Joba,3)") * V("items(3,25)")
    )


def test_self_join_squares_the_variable(db):
    result = db.execute(
        "SELECT PROVENANCE (polynomial) a.name AS n FROM shop AS a, shop AS b "
        "WHERE a.name = b.name AND a.numempl < 10"
    )
    assert result.rows == [("Merdies", V("shop(Merdies,3)") * V("shop(Merdies,3)"))]
    assert result.rows[0][1].degree() == 2


def test_distinct_sums_duplicate_derivations(db):
    result = db.execute("SELECT PROVENANCE (polynomial) DISTINCT sname FROM sales")
    annotated = dict(result.rows)
    assert annotated["Merdies"] == (
        V("sales(Merdies,1)") + Polynomial.constant(2) * V("sales(Merdies,2)")
    )
    assert annotated["Joba"] == Polynomial.constant(2) * V("sales(Joba,3)")


def test_order_by_and_limit_apply_before_annotation(db):
    result = db.execute(
        "SELECT PROVENANCE (polynomial) itemid FROM sales ORDER BY itemid DESC LIMIT 2"
    )
    assert [row[0] for row in result.rows] == [3]
    # LIMIT keeps two derivation rows of itemid=3; the collapse sums them.
    assert result.rows[0][1] == Polynomial.constant(2) * V("sales(Joba,3)")


def test_order_by_expression_not_in_select_list(db):
    """Junk ORDER BY columns ride through the rewrite (like the witness
    rewrite): the ordering attribute refines the collapse grouping but is
    hidden from the visible result."""
    result = db.execute(
        "SELECT PROVENANCE (polynomial) name FROM shop ORDER BY numempl DESC"
    )
    assert result.columns == ["name", "prov_polynomial"]
    assert [row[0] for row in result.rows] == ["Joba", "Merdies"]
    assert result.annotations() == [V("shop(Joba,14)"), V("shop(Merdies,3)")]


def test_order_by_junk_aggregate(db):
    result = db.execute(
        "SELECT PROVENANCE (polynomial) sname FROM sales "
        "GROUP BY sname ORDER BY count(*) DESC"
    )
    assert result.columns == ["sname", "prov_polynomial"]
    assert [row[0] for row in result.rows] == ["Merdies", "Joba"]


# -- aggregation ------------------------------------------------------------


def test_aggregation_two_level_rewrite(db):
    result = db.execute(
        "SELECT PROVENANCE (polynomial) sname, count(*) AS c FROM sales GROUP BY sname"
    )
    annotated = {row[0]: (row[1], row[2]) for row in result.rows}
    count, polynomial = annotated["Merdies"]
    assert count == 3
    assert polynomial == (
        V("sales(Merdies,1)") + Polynomial.constant(2) * V("sales(Merdies,2)")
    )
    assert polynomial.evaluate(semiring=get_semiring("counting")) == count


def test_having_preserved(db):
    result = db.execute(
        "SELECT PROVENANCE (polynomial) sname, sum(itemid) AS s FROM sales "
        "GROUP BY sname HAVING count(*) > 2"
    )
    assert [row[:2] for row in result.rows] == [("Merdies", 5)]


def test_grand_aggregate_over_empty_input_footnote4(db):
    """Same deviation handling as the witness rewrite: the grand aggregate
    row over empty input has no derivations and disappears from q+."""
    assert db.execute("SELECT sum(numempl) FROM shop WHERE numempl > 999").rows == [
        (None,)
    ]
    result = db.execute(
        "SELECT PROVENANCE (polynomial) sum(numempl) FROM shop WHERE numempl > 999"
    )
    assert result.rows == []


# -- set operations ---------------------------------------------------------


def test_union_adds_annotations(db):
    result = db.execute(
        "SELECT PROVENANCE (polynomial) name FROM shop "
        "UNION SELECT sname FROM sales"
    )
    annotated = dict(result.rows)
    assert annotated["Merdies"] == (
        V("shop(Merdies,3)")
        + V("sales(Merdies,1)")
        + Polynomial.constant(2) * V("sales(Merdies,2)")
    )


def test_intersect_multiplies_annotations(db):
    result = db.execute(
        "SELECT PROVENANCE (polynomial) name FROM shop "
        "INTERSECT SELECT sname FROM sales"
    )
    annotated = dict(result.rows)
    assert annotated["Joba"] == (
        V("shop(Joba,14)") * (Polynomial.constant(2) * V("sales(Joba,3)"))
    )


def test_except_keeps_left_provenance(db):
    db.execute("INSERT INTO shop VALUES ('Solo', 1)")
    result = db.execute(
        "SELECT PROVENANCE (polynomial) name FROM shop EXCEPT SELECT sname FROM sales"
    )
    assert result.rows == [("Solo", V("shop(Solo,1)"))]


def test_setop_with_limit_keeps_original_semantics(db):
    result = db.execute(
        "SELECT PROVENANCE (polynomial) name FROM shop "
        "UNION SELECT sname FROM sales ORDER BY name LIMIT 1"
    )
    assert [row[0] for row in result.rows] == ["Joba"]
    assert result.rows[0][1].variables() == {"shop(Joba,14)", "sales(Joba,3)"}


# -- nesting & incremental computation --------------------------------------


def test_annotated_subquery_flows_through_plain_query(db):
    result = db.execute(
        "SELECT name, prov_polynomial FROM "
        "(SELECT PROVENANCE (polynomial) name FROM shop) AS t WHERE name = 'Joba'"
    )
    assert result.rows == [("Joba", V("shop(Joba,14)"))]


def test_incremental_reuse_of_stored_polynomials(db):
    db.execute(
        "SELECT PROVENANCE (polynomial) sname INTO stored FROM sales"
    )
    result = db.execute(
        "SELECT PROVENANCE (polynomial) sname FROM stored PROVENANCE (prov_polynomial)"
    )
    direct = db.execute("SELECT PROVENANCE (polynomial) sname FROM sales")
    assert sorted(result.rows) == sorted(direct.rows)


def test_polynomial_view_unfolds(db):
    db.execute(
        "CREATE VIEW annotated AS SELECT PROVENANCE (polynomial) name FROM shop"
    )
    result = db.execute("SELECT name, prov_polynomial FROM annotated")
    assert dict(result.rows)["Merdies"] == V("shop(Merdies,3)")


def test_witness_attributes_cannot_feed_polynomial_rewrite(db):
    db.execute("SELECT PROVENANCE name INTO wstored FROM shop")
    with pytest.raises(repro.RewriteError, match="witness-list"):
        db.execute(
            "SELECT PROVENANCE (polynomial) name FROM wstored "
            "PROVENANCE (prov_shop_name, prov_shop_numempl)"
        )


# -- guard rails ------------------------------------------------------------


def test_annotation_name_dodges_user_column_collisions(db):
    db.execute("CREATE TABLE clash (a integer, prov_polynomial integer)")
    db.execute("INSERT INTO clash VALUES (1, 99)")
    result = db.execute(
        "SELECT PROVENANCE (polynomial) a, prov_polynomial FROM clash"
    )
    assert result.annotation_column == "prov_polynomial_1"
    assert result.columns == ["a", "prov_polynomial", "prov_polynomial_1"]
    assert result.rows[0][1] == 99  # the user's column, untouched
    assert result.evaluate_provenance("counting") == [1]


def test_sublinks_rejected(db):
    with pytest.raises(repro.RewriteError, match="sublink"):
        db.execute(
            "SELECT PROVENANCE (polynomial) name FROM shop "
            "WHERE name IN (SELECT sname FROM sales)"
        )


def test_unknown_semantics_rejected(db):
    with pytest.raises(repro.RewriteError, match="unknown provenance semantics"):
        db.execute("SELECT PROVENANCE (frobnicate) name FROM shop")


def test_explicit_witness_semantics_matches_default(db):
    default = db.execute("SELECT PROVENANCE name FROM shop")
    explicit = db.execute("SELECT PROVENANCE (witness) name FROM shop")
    assert explicit.columns == default.columns
    assert sorted(explicit.rows) == sorted(default.rows)


# -- surfaces ---------------------------------------------------------------


def test_rewritten_sql_is_ordinary_sql(db):
    text = db.rewritten_sql(
        "SELECT PROVENANCE (polynomial) name FROM shop WHERE numempl < 10"
    )
    assert "perm_poly_token" in text
    assert "perm_poly_sum" in text
    assert "GROUP BY" in text


def test_provenance_api_semantics_parameter(db):
    result = db.provenance("SELECT name FROM shop", semantics="polynomial")
    assert result.annotation_column == "prov_polynomial"
    assert result.evaluate_provenance("boolean") == [True, True]


def test_prepared_query_exposes_annotation(db):
    prepared = db.prepare("SELECT PROVENANCE (polynomial) name FROM shop")
    result = prepared.run()
    assert result.annotation_column == "prov_polynomial"
    assert prepared.rewrite_seconds >= 0.0
