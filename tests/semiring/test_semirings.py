"""Semiring registry and custom-semiring extension tests."""

from __future__ import annotations

import pytest

from repro.semiring import (
    Polynomial,
    Semiring,
    get_semiring,
    register_semiring,
    semiring_names,
)
from repro.semiring.minting import TupleVariableMinter, mint_variable


def test_builtin_semirings_registered():
    assert {"counting", "boolean", "tropical", "polynomial"} <= set(semiring_names())


def test_lookup_is_case_insensitive():
    assert get_semiring("Counting") is get_semiring("counting")


def test_unknown_semiring_lists_known_names():
    with pytest.raises(ValueError, match="counting"):
        get_semiring("no-such-semiring")


def test_duplicate_registration_rejected_unless_replace():
    fuzzy = Semiring(
        name="test-fuzzy",
        zero=0.0,
        one=1.0,
        plus=max,
        times=min,
        description="Viterbi-style confidence scores",
    )
    register_semiring(fuzzy)
    with pytest.raises(ValueError):
        register_semiring(fuzzy)
    register_semiring(fuzzy, replace=True)
    assert get_semiring("test-fuzzy") is fuzzy


def test_custom_semiring_evaluates_polynomials():
    fuzzy = get_semiring("test-fuzzy") if "test-fuzzy" in semiring_names() else (
        register_semiring(
            Semiring("test-fuzzy", 0.0, 1.0, max, min), replace=True
        )
    )
    p = Polynomial.variable("a") * Polynomial.variable("b") + Polynomial.variable("c")
    # max over derivations of the min confidence along each derivation
    assert p.evaluate({"a": 0.9, "b": 0.5, "c": 0.4}, fuzzy) == 0.5


def test_mint_variable_formats_values():
    assert mint_variable("shop", ("Merdies", 3)) == "shop(Merdies,3)"
    assert mint_variable("r", (1, None)) == "r(1,NULL)"


def test_minter_prefers_primary_key(tmp_path):
    import repro

    db = repro.connect()
    db.execute("CREATE TABLE keyed (id integer, payload text, PRIMARY KEY (id))")
    db.execute("INSERT INTO keyed VALUES (7, 'long payload that should not appear')")
    result = db.execute("SELECT PROVENANCE (polynomial) payload FROM keyed")
    assert result.annotations()[0].variables() == {"keyed(7)"}


def test_minter_uses_all_columns_without_key():
    import repro

    db = repro.connect()
    db.execute("CREATE TABLE plain (a integer, b text)")
    db.execute("INSERT INTO plain VALUES (1, 'x')")
    result = db.execute("SELECT PROVENANCE (polynomial) a FROM plain")
    assert result.annotations()[0].variables() == {"plain(1,x)"}


def test_identity_attnos_without_schema():
    class FakeRTE:
        schema = None
        column_names = ["a", "b", "c"]

    assert TupleVariableMinter.identity_attnos(FakeRTE()) == [0, 1, 2]
