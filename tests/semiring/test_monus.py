"""N[X] monus: the Polynomial operation, the EXCEPT rewrite that emits
it, and the semiring registry's monus entries."""

from __future__ import annotations

import pytest

import repro
from repro.errors import RewriteError
from repro.semiring import Polynomial, get_semiring


def V(name: str) -> Polynomial:
    return Polynomial.variable(name)


@pytest.fixture
def db() -> repro.PermDatabase:
    database = repro.connect()
    database.execute("CREATE TABLE a (x integer)")
    database.execute("CREATE TABLE b (x integer)")
    database.execute("INSERT INTO a VALUES (1), (1), (2), (3)")
    database.execute("INSERT INTO b VALUES (1), (3), (4)")
    return database


# -- Polynomial.monus -------------------------------------------------------


def test_monus_is_per_monomial_truncated_subtraction():
    left = V("p") + V("p") + V("q")
    right = V("p") + V("q") + V("r")
    assert left.monus(right) == V("p")


def test_monus_clamps_at_zero():
    assert V("p").monus(V("p") + V("p")).is_zero()
    assert Polynomial.zero().monus(V("p")).is_zero()


def test_monus_of_disjoint_terms_is_identity():
    left = V("p") * V("q")
    assert left.monus(V("r")) == left


def test_monus_rejects_non_polynomial():
    with pytest.raises(TypeError):
        V("p").monus(3)


def test_covers_is_the_exactness_condition():
    bigger = V("p") + V("p") + V("q")
    smaller = V("p") + V("q")
    assert bigger.covers(smaller)
    assert not smaller.covers(bigger)
    # Covered monus inverts addition exactly.
    assert smaller + (bigger.monus(smaller)) == bigger


# -- semiring registry ------------------------------------------------------


def test_registered_monus_operations():
    assert get_semiring("counting").monus(2, 5) == 0
    assert get_semiring("counting").monus(5, 2) == 3
    assert get_semiring("boolean").monus(True, False) is True
    assert not get_semiring("boolean").monus(True, True)
    # min/+ has no truncated subtraction; deliberately absent.
    assert get_semiring("tropical").monus is None


def test_polynomial_semiring_monus_is_polynomial_monus():
    monus = get_semiring("polynomial").monus
    assert monus(V("p") + V("q"), V("q")) == V("p")


# -- EXCEPT rewrite ---------------------------------------------------------


def test_set_except_survivors_keep_left_annotation(db):
    result = db.execute(
        "SELECT PROVENANCE (polynomial) x FROM a EXCEPT SELECT x FROM b"
    )
    annotated = dict(result.rows)
    assert set(annotated) == {2}
    assert annotated[2] == V("a(2)")


def test_except_all_subtracts_overlapping_derivations(db):
    # a EXCEPT ALL (a WHERE x = 1): the shared x=1 derivations cancel
    # via monus, so only the non-overlapping tuples survive.
    result = db.execute(
        "SELECT PROVENANCE (polynomial) x FROM a "
        "EXCEPT ALL SELECT x FROM a WHERE x = 1"
    )
    annotated = dict(result.rows)
    assert set(annotated) == {2, 3}
    assert annotated[2] == V("a(2)")
    assert annotated[3] == V("a(3)")


def test_except_all_differential_row_sets(db):
    """The annotated result returns exactly the plain EXCEPT ALL rows."""
    sql = "SELECT x FROM a EXCEPT ALL SELECT x FROM b"
    plain = db.execute(sql)
    annotated = db.provenance(sql, semantics="polynomial")
    from collections import Counter

    assert Counter(row[:1] for row in annotated.rows) == Counter(plain.rows)


def test_monus_does_not_commute_with_counting_evaluation(db):
    """Amsterdamer et al.: monus is computed on N[X] and does NOT
    commute with semiring evaluation.  a(1) appears twice, b(1) once —
    the bag multiplicity of x=1 under EXCEPT ALL is 1, but the monus of
    the *disjoint* polynomials subtracts nothing, so counting-evaluating
    the annotation gives 2.  This divergence is inherent (documented in
    docs/semirings.md), not a bug; the returned rows themselves follow
    bag semantics."""
    sql = "SELECT x FROM a EXCEPT ALL SELECT x FROM b"
    annotated = db.provenance(sql, semantics="polynomial")
    by_key = dict(annotated.rows)
    assert by_key[1] == V("a(1)") + V("a(1)")
    assert by_key[1].evaluate(None, get_semiring("counting")) == 2


def test_except_matches_witness_row_set(db):
    sql = "SELECT x FROM a EXCEPT SELECT x FROM b"
    witness = db.provenance(sql)
    poly = db.provenance(sql, semantics="polynomial")
    assert {row[0] for row in witness.rows} == {row[0] for row in poly.rows}


def test_nested_except_raises_loudly(db):
    with pytest.raises(RewriteError, match="nested EXCEPT"):
        db.execute(
            "SELECT PROVENANCE (polynomial) x FROM "
            "((SELECT x FROM a EXCEPT SELECT x FROM b) "
            "EXCEPT SELECT x FROM b) AS t"
        )
