"""Unit tests for the N[X] polynomial datatype."""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.semiring import Polynomial, get_semiring


def x() -> Polynomial:
    return Polynomial.variable("x")


def y() -> Polynomial:
    return Polynomial.variable("y")


# -- normalization ----------------------------------------------------------


def test_like_terms_collect():
    assert x() + x() == Polynomial({((("x", 1),)): 2})
    assert str(x() + x()) == "2*x"


def test_powers_collect():
    assert str(x() * x()) == "x^2"
    assert (x() * x()).degree() == 2


def test_zero_and_one_identities():
    zero, one = Polynomial.zero(), Polynomial.one()
    assert x() + zero == x()
    assert x() * one == x()
    assert x() * zero == zero
    assert str(zero) == "0" and str(one) == "1"
    assert zero.is_zero() and one.is_one()


def test_structural_equality_and_hash():
    a = (x() + y()) * (x() + y())
    b = x() * x() + Polynomial({((("x", 1), ("y", 1))): 2}) + y() * y()
    assert a == b
    assert hash(a) == hash(b)
    assert len({a, b}) == 1


def test_variables_and_rendering():
    p = (x() + y()) * x()
    assert p.variables() == {"x", "y"}
    assert str(p) == "x*y + x^2"


def test_negative_coefficients_rejected():
    try:
        Polynomial({(): -1})
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("negative coefficient accepted")


# -- algebraic laws (hypothesis) -------------------------------------------


@st.composite
def polynomials(draw) -> Polynomial:
    total = Polynomial.zero()
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        term = Polynomial.constant(draw(st.integers(min_value=1, max_value=3)))
        for _ in range(draw(st.integers(min_value=0, max_value=2))):
            term = term * Polynomial.variable(draw(st.sampled_from("xyz")))
        total = total + term
    return total


@given(a=polynomials(), b=polynomials(), c=polynomials())
def test_semiring_laws(a, b, c):
    assert a + b == b + a
    assert a * b == b * a
    assert (a + b) + c == a + (b + c)
    assert (a * b) * c == a * (b * c)
    assert a * (b + c) == a * b + a * c


@given(a=polynomials())
def test_counting_evaluation_is_a_homomorphism(a):
    counting = get_semiring("counting")
    assert (a + a).evaluate(semiring=counting) == 2 * a.evaluate(semiring=counting)
    assert (a * a).evaluate(semiring=counting) == a.evaluate(semiring=counting) ** 2


# -- evaluation in the concrete semirings -----------------------------------


def test_counting_evaluation():
    p = x() + x() + x() * y()
    assert p.evaluate(semiring=get_semiring("counting")) == 3
    assert p.evaluate({"x": 2, "y": 5}, get_semiring("counting")) == 14


def test_boolean_evaluation():
    p = x() + x() * y()
    boolean = get_semiring("boolean")
    assert p.evaluate(semiring=boolean) is True
    assert p.evaluate({"x": False, "y": True}, boolean) is False
    assert p.evaluate({"x": True, "y": False}, boolean) is True
    assert Polynomial.zero().evaluate(semiring=boolean) is False


def test_tropical_evaluation_minimal_cost():
    # x costs 3, y costs 5: the cheapest derivation of x + x*y costs 3.
    p = x() + x() * y()
    tropical = get_semiring("tropical")
    assert p.evaluate({"x": 3, "y": 5}, tropical) == 3
    assert (x() * y()).evaluate({"x": 3, "y": 5}, tropical) == 8
    assert Polynomial.zero().evaluate({}, tropical) == math.inf


def test_polynomial_semiring_evaluation_is_identity_like():
    p = x() * y() + x()
    result = p.evaluate(
        lambda name: Polynomial.variable(name), get_semiring("polynomial")
    )
    assert result == p
