"""Deparsed rewritten queries re-executed over TPC-H.

The strongest form of the paper's "q+ is an ordinary SQL query" claim:
for the supported benchmark queries, deparse the provenance-rewritten
query tree back to SQL, run that SQL as a *plain* query, and compare
with the direct SELECT PROVENANCE execution.

The parser accepts ``IS NOT DISTINCT FROM`` (emitted for null-safe
rewrite joins) and parenthesized compound subselects, so the whole
supported workload round-trips.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.errors import ParseError
from repro.tpch.dbgen import tpch_database
from repro.tpch.qgen import generate_query
from repro.tpch.queries import SUPPORTED_QUERIES


@pytest.fixture(scope="module")
def db():
    return tpch_database(scale_factor=0.001, seed=42)


@pytest.mark.parametrize("number", SUPPORTED_QUERIES)
def test_rewritten_sql_roundtrip(db, number):
    prov_sql = generate_query(number, seed=2, provenance=True)
    rewritten = db.rewritten_sql(prov_sql)
    assert "prov_" in rewritten  # the rewrite actually happened

    direct = db.execute(prov_sql)
    # Every rewritten query — including the null-safe IS NOT DISTINCT FROM
    # joins of aggregation/set-operation rewrites — re-parses and
    # re-executes as ordinary SQL to the same result.
    roundtrip = db.execute(rewritten)
    assert roundtrip.columns == direct.columns
    assert Counter(roundtrip.rows) == Counter(direct.rows)


def _accessed_relations(query) -> set[str]:
    """Base relations accessed anywhere in a query tree (incl. sublinks)."""
    from repro.analyzer import expressions as ex
    from repro.analyzer.query_tree import RTEKind

    found: set[str] = set()
    for rte in query.range_table:
        if rte.kind is RTEKind.RELATION:
            found.add(rte.relation_name)
        elif rte.subquery is not None:
            found |= _accessed_relations(rte.subquery)
    for target in query.target_list:
        for node in ex.walk(target.expr):
            if isinstance(node, ex.SubLink):
                found |= _accessed_relations(node.subquery)
    for clause in ([query.jointree.quals] if query.jointree.quals is not None else []) + (
        [query.having] if query.having is not None else []
    ):
        for node in ex.walk(clause):
            if isinstance(node, ex.SubLink):
                found |= _accessed_relations(node.subquery)
    return found


@pytest.mark.parametrize("number", SUPPORTED_QUERIES)
def test_rewritten_sql_mentions_all_base_relations(db, number):
    """Every base relation accessed by the query appears in a provenance
    attribute of the rewritten SQL (the paper's schema definition)."""
    from repro.analyzer.analyzer import Analyzer
    from repro.sql.parser import parse_statement

    normal_sql = generate_query(number, seed=2)
    accessed = _accessed_relations(
        Analyzer(db.catalog).analyze(parse_statement(normal_sql))
    )
    assert accessed  # every TPC-H query reads at least one table
    prov_sql = generate_query(number, seed=2, provenance=True)
    rewritten = db.rewritten_sql(prov_sql).lower()
    for table in accessed:
        assert f"prov_{table}_" in rewritten, (number, table)


def test_second_seed_full_sweep(db):
    """A second qgen parameterization of every supported query, normal and
    provenance, to guard against parameter-dependent regressions."""
    for number in SUPPORTED_QUERIES:
        normal = db.execute(generate_query(number, seed=5))
        prov = db.execute(generate_query(number, seed=5, provenance=True))
        width = len(normal.columns)
        assert {row[:width] for row in prov.rows} <= set(normal.rows), number
