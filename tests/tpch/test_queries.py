"""TPC-H query suite: all 22 queries execute; 15 support provenance.

Mirrors the paper's section V setup at a tiny scale factor.
"""

from __future__ import annotations

import pytest

from repro.errors import RewriteError
from repro.tpch.dbgen import tpch_database
from repro.tpch.qgen import generate_parameters, generate_query, generate_workload
from repro.tpch.queries import (
    ALL_QUERIES,
    SUPPORTED_QUERIES,
    UNSUPPORTED_QUERIES,
    query_template,
)

# The genuinely correlated queries; Q18's sublink is uncorrelated, so this
# reproduction can rewrite it even though the paper's prototype could not.
CORRELATED_QUERIES = (2, 4, 17, 20, 21, 22)


@pytest.fixture(scope="module")
def db():
    return tpch_database(scale_factor=0.001, seed=42)


def test_query_partition_matches_paper():
    assert SUPPORTED_QUERIES == (1, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 19)
    assert UNSUPPORTED_QUERIES == (2, 4, 17, 18, 20, 21, 22)
    assert set(ALL_QUERIES) == set(range(1, 23)) - {0}


def test_unknown_query_number():
    with pytest.raises(KeyError):
        query_template(23)


@pytest.mark.parametrize("number", ALL_QUERIES)
def test_all_queries_execute_normally(db, number):
    result = db.execute(generate_query(number, seed=2))
    assert result.columns  # produced a schema; row counts vary by params


@pytest.mark.parametrize("number", SUPPORTED_QUERIES)
def test_supported_queries_compute_provenance(db, number):
    normal = db.execute(generate_query(number, seed=2))
    prov = db.execute(generate_query(number, seed=2, provenance=True))
    prov_columns = [c for c in prov.columns if c.startswith("prov_")]
    assert prov_columns, f"Q{number} gained no provenance attributes"
    width = len(normal.columns)
    assert prov.columns[:width] == normal.columns
    # Original part of every provenance row is an original result row.
    assert {row[:width] for row in prov.rows} <= set(normal.rows)


@pytest.mark.parametrize("number", CORRELATED_QUERIES)
def test_correlated_queries_rejected_by_rewriter(db, number):
    with pytest.raises(RewriteError, match="correlated"):
        db.execute(generate_query(number, seed=2, provenance=True))


def test_q18_provenance_works_beyond_paper_prototype(db):
    """Q18's IN-sublink is uncorrelated; this reproduction rewrites it."""
    result = db.execute(generate_query(18, seed=2, provenance=True))
    assert any(c.startswith("prov_") for c in result.columns)


def test_q1_provenance_contains_all_selected_lineitems(db):
    """Fig. 11's headline: Q1's provenance is the selected lineitem rows."""
    sql = generate_query(1, seed=2)
    prov = db.execute(sql.replace("SELECT", "SELECT PROVENANCE", 1))
    where_clause = sql[sql.index("WHERE"):sql.index("GROUP")]
    selected = db.execute(f"SELECT count(*) FROM lineitem {where_clause}").scalar()
    assert len(prov) == selected


def test_qgen_determinism():
    assert generate_query(3, seed=9) == generate_query(3, seed=9)
    assert generate_query(3, seed=9) != generate_query(3, seed=10)


def test_qgen_workload_versions():
    workload = generate_workload(6, versions=5, seed=0)
    assert len(workload) == 5
    assert len(set(workload)) > 1  # parameters actually vary


def test_qgen_parameters_in_spec_ranges():
    import random

    rng = random.Random(0)
    for _ in range(20):
        q6 = generate_parameters(6, rng)
        assert q6["quantity"] in (24, 25)
        assert q6["discount"].startswith("0.0")
        q16 = generate_parameters(16, rng)
        sizes = [q16[f"size{i}"] for i in range(1, 9)]
        assert len(set(sizes)) == 8
        assert all(1 <= s <= 50 for s in sizes)


def test_provenance_keyword_injection():
    sql = generate_query(6, seed=0, provenance=True)
    assert sql.startswith("SELECT PROVENANCE")
    assert sql.count("PROVENANCE") == 1


def test_q13_left_join_provenance(db):
    """Q13 exercises LEFT OUTER JOIN + nested aggregation."""
    result = db.execute(generate_query(13, seed=2, provenance=True))
    assert "prov_customer_c_custkey" in result.columns
    assert "prov_orders_o_orderkey" in result.columns
    # Customers without matching orders contribute rows with NULL orders
    # provenance; at tiny scale factors every customer may have orders, so
    # compute the expectation from the data.
    no_order_customers = db.execute(
        "SELECT count(*) FROM customer WHERE c_custkey NOT IN "
        "(SELECT o_custkey FROM orders)"
    ).scalar()
    orders_slot = result.columns.index("prov_orders_o_orderkey")
    null_provenance_rows = sum(1 for row in result.rows if row[orders_slot] is None)
    if no_order_customers:
        assert null_provenance_rows >= no_order_customers
    # Every customer appears in the provenance exactly as often as it has
    # (matching) orders, or once when it has none.
    assert len(result) >= db.execute("SELECT count(*) FROM customer").scalar()


def test_q16_not_in_sublink_provenance(db):
    """Q16: the negated sublink attaches supplier provenance (paper's
    discussion of its huge provenance)."""
    result = db.execute(generate_query(16, seed=2, provenance=True))
    assert any(c.startswith("prov_supplier_") for c in result.columns)
