"""TPC-H data generator tests: determinism, scaling, distributions."""

from __future__ import annotations

import datetime

import pytest

from repro.tpch import text_pools as pools
from repro.tpch.dbgen import END_DATE, START_DATE, TPCHData, generate, tpch_database


@pytest.fixture(scope="module")
def data() -> TPCHData:
    return generate(scale_factor=0.001, seed=42)


def test_fixed_tables(data):
    assert len(data.region) == 5
    assert len(data.nation) == 25
    assert [r[1] for r in data.region] == pools.REGIONS


def test_scaling_rules(data):
    assert len(data.supplier) == 10
    assert len(data.part) == 200
    assert len(data.partsupp) == 4 * len(data.part)
    assert len(data.customer) == 150
    assert len(data.orders) == 1500


def test_lineitem_per_order(data):
    per_order: dict[int, int] = {}
    for row in data.lineitem:
        per_order[row[0]] = per_order.get(row[0], 0) + 1
    assert set(per_order) == {row[0] for row in data.orders}
    assert all(1 <= n <= 7 for n in per_order.values())


def test_determinism():
    a = generate(scale_factor=0.001, seed=7)
    b = generate(scale_factor=0.001, seed=7)
    assert a.lineitem == b.lineitem
    assert a.orders == b.orders


def test_different_seeds_differ():
    a = generate(scale_factor=0.001, seed=1)
    b = generate(scale_factor=0.001, seed=2)
    assert a.lineitem != b.lineitem


def test_order_dates_in_range(data):
    for row in data.orders:
        assert START_DATE <= row[4] <= END_DATE


def test_lineitem_date_consistency(data):
    for row in data.lineitem[:500]:
        shipdate, commitdate, receiptdate = row[10], row[11], row[12]
        assert receiptdate > shipdate
        assert isinstance(commitdate, datetime.date)


def test_discounts_and_taxes_in_spec_range(data):
    for row in data.lineitem[:500]:
        assert 0.0 <= row[6] <= 0.10  # discount
        assert 0.0 <= row[7] <= 0.08  # tax
        assert 1 <= row[4] <= 50  # quantity


def test_market_segments(data):
    segments = {row[6] for row in data.customer}
    assert segments <= set(pools.SEGMENTS)
    assert len(segments) >= 3


def test_ship_modes_and_flags(data):
    modes = {row[14] for row in data.lineitem}
    assert modes <= set(pools.SHIP_MODES)
    flags = {row[8] for row in data.lineitem}
    assert flags <= {"R", "A", "N"}


def test_partsupp_references_valid_suppliers(data):
    supplier_keys = {row[0] for row in data.supplier}
    assert {row[1] for row in data.partsupp} <= supplier_keys


def test_q16_complaint_pattern_exists(data):
    # Small scales inject the pattern with boosted probability so Q16's
    # NOT IN sublink has work to do.
    assert any("Customer" in row[6] and "Complaints" in row[6] for row in data.supplier)


def test_orders_reference_valid_customers(data):
    customer_keys = {row[0] for row in data.customer}
    assert {row[1] for row in data.orders} <= customer_keys


def test_tpch_database_loads_all_tables():
    db = tpch_database(scale_factor=0.001, seed=42)
    for name in ("region", "nation", "supplier", "part", "partsupp",
                 "customer", "orders", "lineitem"):
        assert db.catalog.table(name).row_count() > 0


def test_total_rows_accounting(data):
    assert data.total_rows() == sum(len(rows) for rows in data.tables().values())
