"""Graceful shutdown and injected server faults: draining semantics,
typed ``shutting_down`` refusals, and fault-point plumbing on the
query path."""

from __future__ import annotations

import threading
import time

import pytest

import repro
from repro.errors import PermError
from repro.faultinject import FaultInjector
from repro.server import PermClient, ServerError, start_in_thread


@pytest.fixture()
def served_db():
    db = repro.connect(parallel_workers=2)
    db.execute("CREATE TABLE t (a integer, b text)")
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    handle = start_in_thread(db, request_timeout=30.0)
    yield db, handle
    handle.stop()


def make_client(handle, **kwargs) -> PermClient:
    host, port = handle.address
    return PermClient(host, port, **kwargs)


class TestGracefulShutdown:
    def test_drain_finishes_inflight_and_refuses_new(self, served_db):
        _, handle = served_db
        inj = FaultInjector()
        inj.on("server.query", "sleep", nth=1, seconds=0.8)

        results, errors, reports = [], [], []

        def slow_query():
            try:
                with make_client(handle) as client:
                    results.append(client.query("SELECT a FROM t"))
            except BaseException as exc:  # surfaced via the errors list
                errors.append(exc)

        with inj.installed():
            worker = threading.Thread(target=slow_query)
            worker.start()
            time.sleep(0.3)  # the slow query is admitted and sleeping

            shutter = threading.Thread(
                target=lambda: reports.append(handle.shutdown(drain_timeout=5.0))
            )
            shutter.start()
            time.sleep(0.15)  # the server is now draining

            with make_client(handle) as late:
                with pytest.raises(ServerError) as excinfo:
                    late.query("SELECT a FROM t")
            assert excinfo.value.kind == "shutting_down"

            worker.join(timeout=10.0)
            shutter.join(timeout=10.0)

        assert not errors
        assert sorted(r[0] for r in results[0].rows) == [1, 2, 3]
        assert reports == [{"drained": True, "abandoned": 0}]

    def test_drain_deadline_reports_abandoned_queries(self, served_db):
        _, handle = served_db
        inj = FaultInjector()
        inj.on("server.query", "sleep", nth=1, seconds=2.0)
        outcome = []

        def doomed_query():
            try:
                with make_client(handle) as client:
                    outcome.append(client.query("SELECT a FROM t"))
            except PermError as exc:
                outcome.append(exc)

        with inj.installed():
            worker = threading.Thread(target=doomed_query)
            worker.start()
            time.sleep(0.3)
            report = handle.shutdown(drain_timeout=0.2)
            worker.join(timeout=10.0)

        assert report == {"drained": False, "abandoned": 1}
        # The abandoned query's connection died with the server; it must
        # surface as an error, never as a silent fake success.
        assert len(outcome) == 1
        assert isinstance(outcome[0], PermError)

    def test_idle_shutdown_is_immediate_and_idempotent(self, served_db):
        _, handle = served_db
        report = handle.shutdown(drain_timeout=5.0)
        assert report == {"drained": True, "abandoned": 0}
        # Second call: the loop is gone, so there is nothing to report.
        assert handle.shutdown() is None
        handle.stop()  # and stop stays safe to call again

    def test_refusals_are_counted(self, served_db):
        _, handle = served_db
        server = handle.server
        # Flip the draining flag directly (instead of a full shutdown)
        # so the server is still up to answer the stats op afterwards.
        server._draining = True
        try:
            with make_client(handle) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.query("SELECT a FROM t")
                assert excinfo.value.kind == "shutting_down"
                stats = client.stats()["stats"]
                assert stats["shutdown_refusals"] >= 1
        finally:
            server._draining = False
        with make_client(handle) as client:
            assert client.query("SELECT a FROM t").rows


class TestInjectedServerFaults:
    def test_midquery_fault_maps_to_typed_wire_error(self, served_db):
        _, handle = served_db
        inj = FaultInjector()
        inj.on("server.query", "error", nth=1, error_type="io")
        with inj.installed(), make_client(handle) as client:
            with pytest.raises(ServerError) as excinfo:
                client.query("SELECT a FROM t")
            assert excinfo.value.kind == "io"
            # The connection survives a typed failure.
            assert client.query("SELECT a FROM t").rows

    def test_simulated_crash_kills_the_connection_not_the_result(
        self, served_db
    ):
        # A SimulatedCrash is process death: no handler may convert it
        # into a response.  The client observes a dead connection.
        _, handle = served_db
        inj = FaultInjector()
        inj.on("server.query", "crash", nth=1)
        with inj.installed(), make_client(handle) as client:
            with pytest.raises(PermError):
                client.query("SELECT a FROM t")
