"""Server integration tests: concurrent clients, snapshot isolation,
timeout, overload, sessions, and observability."""

from __future__ import annotations

import socket
import threading
import time

import pytest

import repro
from repro.errors import PermError
from repro.server import PermClient, PermServer, ServerError, start_in_thread


@pytest.fixture
def served_db():
    db = repro.connect(parallel_workers=2)
    db.execute("CREATE TABLE t (a integer, b text)")
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    handle = start_in_thread(db, request_timeout=30.0)
    yield db, handle
    handle.stop()


def test_query_and_provenance_match_embedded(served_db):
    db, handle = served_db
    host, port = handle.address
    with PermClient(host, port) as client:
        sql = "SELECT a, b FROM t WHERE a > 1"
        assert client.query(sql).rows == db.execute(sql).rows

        served = client.provenance("SELECT a FROM t", semantics="polynomial")
        embedded = db.provenance("SELECT a FROM t", semantics="polynomial")
        assert served.columns == embedded.columns
        assert served.annotation_column == embedded.annotation_column
        # Polynomials survive the JSON hop bit-exactly.
        served_annotations = [row[-1].to_wire() for row in served.rows]
        embedded_annotations = [row[-1].to_wire() for row in embedded.rows]
        assert served_annotations == embedded_annotations


def test_prepared_statement_cache_hits(served_db):
    _, handle = served_db
    host, port = handle.address
    with PermClient(host, port) as client:
        sql = "SELECT count(*) FROM t"
        first = client.query(sql)
        second = client.query(sql)
        assert not first.cached and second.cached
        stats = client.stats()
        me = [s for s in stats["sessions"] if s["session"] == client.session]
        assert me and me[0]["cache_hits"] >= 1


def test_sessions_isolate_caches(served_db):
    _, handle = served_db
    host, port = handle.address
    sql = "SELECT a FROM t"
    with PermClient(host, port, session="one") as a, PermClient(
        host, port, session="two"
    ) as b:
        assert not a.query(sql).cached
        assert not b.query(sql).cached  # different session: own cache
        assert a.query(sql).cached
        assert a.close_session()
        assert not a.query(sql).cached  # cache dropped with the session


def test_ddl_and_dml_route_through_execute(served_db):
    db, handle = served_db
    host, port = handle.address
    with PermClient(host, port) as client:
        result = client.query("INSERT INTO t VALUES (4, 'w')")
        assert result.command.startswith("INSERT")
        assert client.query("SELECT count(*) FROM t").scalar() == 4
        with pytest.raises(ServerError) as exc:
            client.query("INSERT INTO t VALUES (5, 'v')", provenance="witness")
        assert exc.value.kind == "query_error"
    assert db.execute("SELECT count(*) FROM t").scalar() == 4


def test_concurrent_clients_zero_wrong_answers(served_db):
    db, handle = served_db
    host, port = handle.address
    expected = db.execute("SELECT sum(a) FROM t").scalar()
    answers, failures = [], []

    def worker():
        try:
            with PermClient(host, port) as client:
                for _ in range(10):
                    answers.append(client.query("SELECT sum(a) FROM t").scalar())
        except Exception as exc:  # pragma: no cover - failure reporting
            failures.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(12)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not failures
    assert len(answers) == 120
    assert set(answers) == {expected}


def test_snapshot_isolation_across_concurrent_insert():
    # A query admitted before a write must not observe it, even when the
    # write lands mid-execution.  The slow cross product gives the
    # writer a wide window while the reader is already running.
    db = repro.connect()
    db.execute("CREATE TABLE n (v integer)")
    db.catalog.table("n").insert_many([(i,) for i in range(2000)])
    handle = start_in_thread(db, max_concurrency=2)
    host, port = handle.address
    try:
        # The always-true predicate forces per-pair evaluation, keeping
        # the reader busy for over a second while the writer lands.
        slow_sql = "SELECT count(*) FROM n a, n b WHERE a.v + b.v >= 0"
        results = {}

        def reader():
            with PermClient(host, port) as client:
                results["count"] = client.query(slow_sql).scalar()

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.3)  # let the reader be admitted and start executing
        with PermClient(host, port) as writer:
            writer.query("INSERT INTO n VALUES (9999)")
        thread.join(timeout=60)
        assert results["count"] == 2000 * 2000
        # A fresh query sees the new row.
        with PermClient(host, port) as client:
            assert client.query("SELECT count(*) FROM n").scalar() == 2001
    finally:
        handle.stop()


def test_timeout_returns_typed_error():
    db = repro.connect()
    db.execute("CREATE TABLE n (v integer)")
    db.catalog.table("n").insert_many([(i,) for i in range(2000)])
    handle = start_in_thread(db, request_timeout=0.2)
    host, port = handle.address
    try:
        with PermClient(host, port) as client:
            with pytest.raises(ServerError) as exc:
                client.query("SELECT count(*) FROM n a, n b, n c")
            assert exc.value.kind == "timeout"
            # The connection survives a timed-out query.
            assert client.query("SELECT count(*) FROM n").scalar() == 2000
    finally:
        handle.stop()


def test_overload_refused_not_buffered():
    db = repro.connect()
    db.execute("CREATE TABLE n (v integer)")
    db.catalog.table("n").insert_many([(i,) for i in range(2000)])
    handle = start_in_thread(db, max_concurrency=1, queue_limit=0)
    host, port = handle.address
    try:
        slow_sql = "SELECT count(*) FROM n a, n b WHERE a.v + b.v >= 0"
        overloaded = []
        done = {}

        def occupant():
            with PermClient(host, port) as client:
                done["count"] = client.query(slow_sql).scalar()

        thread = threading.Thread(target=occupant)
        thread.start()
        time.sleep(0.3)
        with PermClient(host, port) as client:
            try:
                client.query("SELECT 1")
            except ServerError as exc:
                overloaded.append(exc.kind)
        thread.join(timeout=60)
        assert overloaded == ["overloaded"]
        assert done["count"] == 2000 * 2000
        stats_db = handle.server.stats
        assert stats_db.overloads >= 1
    finally:
        handle.stop()


def test_stats_op_reports_counters(served_db):
    _, handle = served_db
    host, port = handle.address
    with PermClient(host, port) as client:
        client.query("SELECT 1")
        client.query("SELECT 1")
        stats = client.stats()
    top = stats["stats"]
    assert top["total_requests"] >= 2
    assert top["ok"] >= 2
    assert "qps" in top
    assert top["latency_ms"]["p50"] <= top["latency_ms"]["p99"]
    assert "hits" in stats["statement_cache"]


def test_protocol_error_on_garbage(served_db):
    _, handle = served_db
    host, port = handle.address
    with socket.create_connection((host, port), timeout=10) as sock:
        # Valid header, invalid JSON payload.
        sock.sendall((7).to_bytes(4, "big") + b"garbage")
        header = sock.recv(4)
        length = int.from_bytes(header, "big")
        payload = b""
        while len(payload) < length:
            payload += sock.recv(length - len(payload))
        import json

        response = json.loads(payload)
        assert response["ok"] is False
        assert response["error"]["type"] == "protocol_error"


def test_unknown_op_rejected(served_db):
    _, handle = served_db
    host, port = handle.address
    with PermClient(host, port) as client:
        with pytest.raises(ServerError) as exc:
            client._roundtrip({"op": "teleport"})
        assert exc.value.kind == "protocol_error"


def test_server_requires_execution_controls():
    db = repro.connect(backend="sqlite")
    with pytest.raises(PermError):
        PermServer(db)
