"""Wire-protocol unit tests: framing and the value codec."""

from __future__ import annotations

import datetime

import pytest

from repro.datatypes import Interval
from repro.semiring.polynomial import Polynomial
from repro.server.protocol import (
    MAX_FRAME,
    ProtocolError,
    check_length,
    decode_payload,
    decode_row,
    decode_value,
    encode_frame,
    encode_row,
    encode_value,
)


def test_frame_roundtrip():
    message = {"op": "query", "sql": "SELECT 1", "id": 7}
    frame = encode_frame(message)
    length = int.from_bytes(frame[:4], "big")
    assert length == len(frame) - 4
    assert decode_payload(frame[4:]) == message


def test_oversized_frame_rejected():
    with pytest.raises(ProtocolError):
        encode_frame({"sql": "x" * (MAX_FRAME + 1)})
    with pytest.raises(ProtocolError):
        check_length(MAX_FRAME + 1)


def test_malformed_payload_rejected():
    with pytest.raises(ProtocolError):
        decode_payload(b"\xff\xfe not json")
    with pytest.raises(ProtocolError):
        decode_payload(b"[1, 2, 3]")  # not an object


def test_scalar_values_pass_through():
    for value in (None, True, 42, 2.5, "text"):
        assert encode_value(value) == value
        assert decode_value(encode_value(value)) == value


def test_tagged_values_roundtrip():
    poly = Polynomial.variable("r(1)") + Polynomial.variable("r(2)")
    date = datetime.date(2026, 8, 7)
    interval = Interval(days=3, months=2)
    row = (1, poly, date, interval, "plain")
    decoded = decode_row(encode_row(row))
    assert decoded[0] == 1
    assert decoded[1] == poly
    assert decoded[2] == date
    assert decoded[3] == interval
    assert decoded[4] == "plain"


def test_unknown_value_degrades_to_tagged_string():
    class Weird:
        def __str__(self) -> str:
            return "weird!"

    encoded = encode_value(Weird())
    assert encoded == {"$str": "weird!"}
    assert decode_value(encoded) == "weird!"


def test_plain_dict_like_values_survive():
    # A one-key dict that is not a recognized tag decodes unchanged.
    assert decode_value({"$unknown": 1}) == {"$unknown": 1}
