"""Concurrent-access stress tests for the shared caches.

The server executes queries on a thread pool against one shared
database, so ``Table.columnar()``, the prepared-statement LRU, the
PythonBackend plan cache, and the catalog's (auto-)ANALYZE path all see
genuine multi-threaded access.  These tests hammer each from many
threads and assert no exceptions and no wrong answers.
"""

from __future__ import annotations

import threading

import repro


def _run_all(workers):
    failures = []

    def wrap(fn):
        def run():
            try:
                fn()
            except Exception as exc:  # pragma: no cover - failure reporting
                failures.append(exc)

        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return failures


def test_columnar_cache_under_concurrent_append():
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer, b integer)")
    table = db.catalog.table("t")
    table.insert_many([(i, i % 5) for i in range(5000)])
    stop = threading.Event()

    def writer():
        for i in range(2000):
            table.insert((5000 + i, i % 5))
        stop.set()

    def reader():
        while not stop.is_set():
            columns = table.columnar()
            # Column lists must be rectangular and never longer than the
            # live row count recorded when the cache was built.
            lengths = {len(col) for col in columns}
            assert len(lengths) == 1
            assert lengths.pop() <= table.row_count()

    failures = _run_all([writer] + [reader] * 4)
    assert not failures
    assert table.row_count() == 7000
    assert len(table.columnar()[0]) == 7000


def test_statement_and_plan_caches_under_concurrent_queries():
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer, b integer)")
    db.catalog.table("t").insert_many([(i, i % 7) for i in range(4000)])
    db.execute("ANALYZE")
    queries = [f"SELECT count(*) FROM t WHERE b = {i}" for i in range(7)]
    expected = {sql: db.execute(sql).scalar() for sql in queries}

    def reader():
        for _ in range(15):
            for sql, want in expected.items():
                assert db.execute(sql).scalar() == want

    failures = _run_all([reader] * 6)
    assert not failures
    stats = db.cache_stats()
    assert stats["hits"] > 0
    assert stats["entries"] <= stats["capacity"]


def test_parallel_queries_from_concurrent_threads():
    # Morsel workers and query threads share one global thread pool;
    # concurrent parallel queries must still all be exactly right.
    db = repro.connect(parallel_workers=2)
    db.execute("CREATE TABLE t (a integer, b integer)")
    db.catalog.table("t").insert_many([(i, i % 3) for i in range(12000)])
    db.execute("ANALYZE")
    expected = db.execute("SELECT sum(a) FROM t WHERE b = 1").scalar()

    def reader():
        for _ in range(5):
            got = db.execute("SELECT sum(a) FROM t WHERE b = 1").scalar()
            assert got == expected

    failures = _run_all([reader] * 4)
    assert not failures


def test_auto_analyze_under_concurrent_statements():
    db = repro.connect()
    db.execute("CREATE TABLE t (a integer)")
    db.catalog.table("t").insert_many([(i,) for i in range(1000)])
    db.execute("ANALYZE")
    table = db.catalog.table("t")

    def writer():
        for i in range(3000):
            table.insert((i,))

    def reader():
        for _ in range(30):
            assert db.execute("SELECT min(a) FROM t").scalar() == 0

    failures = _run_all([writer, writer] + [reader] * 3)
    assert not failures
    # Growth of 6000 rows over a 1000-row snapshot is far past the
    # threshold: some statement must have refreshed the statistics.
    stats = db.catalog.stats_for("t")
    assert stats is not None and stats.row_count > 1000
