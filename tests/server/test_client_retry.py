"""Client retry with exponential backoff + full jitter, driven end to
end by injecting typed faults at the server's admission and query
fault points."""

from __future__ import annotations

import pytest

import repro
from repro.faultinject import FaultInjector
from repro.server import RETRYABLE_ERRORS, PermClient, ServerError, start_in_thread


@pytest.fixture()
def served_db():
    db = repro.connect(parallel_workers=2)
    db.execute("CREATE TABLE t (a integer, b text)")
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    handle = start_in_thread(db, request_timeout=30.0)
    yield db, handle
    handle.stop()


def make_client(handle, **kwargs) -> PermClient:
    host, port = handle.address
    kwargs.setdefault("backoff_base", 0.001)  # keep tests fast
    kwargs.setdefault("retry_seed", 7)
    return PermClient(host, port, **kwargs)


class TestRetryableReads:
    def test_overloaded_read_retries_until_success(self, served_db):
        _, handle = served_db
        inj = FaultInjector()
        inj.on("server.admission", "error", times=2, error_type="overloaded")
        with inj.installed(), make_client(handle, max_retries=5) as client:
            result = client.query("SELECT a FROM t")
        assert result.attempts == 3
        assert sorted(r[0] for r in result.rows) == [1, 2, 3]

    def test_snapshot_invalid_read_retries(self, served_db):
        _, handle = served_db
        inj = FaultInjector()
        inj.on("server.query", "error", nth=1, error_type="snapshot_invalid")
        with inj.installed(), make_client(handle, max_retries=3) as client:
            result = client.query("SELECT a FROM t WHERE a > 1")
        assert result.attempts == 2

    def test_exhausted_retries_surface_the_attempt_count(self, served_db):
        _, handle = served_db
        inj = FaultInjector()
        inj.on(
            "server.admission", "error", times=None, error_type="overloaded"
        )
        with inj.installed(), make_client(handle, max_retries=2) as client:
            with pytest.raises(ServerError) as excinfo:
                client.query("SELECT a FROM t")
        assert excinfo.value.kind == "overloaded"
        assert excinfo.value.attempts == 3

    def test_first_try_success_is_one_attempt(self, served_db):
        _, handle = served_db
        with make_client(handle, max_retries=5) as client:
            assert client.query("SELECT a FROM t").attempts == 1


class TestRetryRefusals:
    def test_retry_off_by_default(self, served_db):
        _, handle = served_db
        inj = FaultInjector()
        inj.on("server.admission", "error", nth=1, error_type="overloaded")
        with inj.installed(), make_client(handle) as client:
            with pytest.raises(ServerError) as excinfo:
                client.query("SELECT a FROM t")
        assert excinfo.value.attempts == 1

    def test_writes_are_never_retried(self, served_db):
        db, handle = served_db
        inj = FaultInjector()
        inj.on("server.admission", "error", times=None, error_type="overloaded")
        with inj.installed(), make_client(handle, max_retries=5) as client:
            with pytest.raises(ServerError) as excinfo:
                client.query("INSERT INTO t VALUES (9, 'w')")
        # A retryable *error* but a non-retryable *statement*: exactly
        # one attempt, because a lost response may mean a committed
        # write and replaying it is not idempotent.
        assert excinfo.value.attempts == 1
        assert db.catalog.table("t").row_count() == 3

    def test_select_into_counts_as_a_write(self, served_db):
        _, handle = served_db
        inj = FaultInjector()
        inj.on("server.admission", "error", times=None, error_type="overloaded")
        with inj.installed(), make_client(handle, max_retries=5) as client:
            with pytest.raises(ServerError) as excinfo:
                client.query("SELECT a INTO t2 FROM t")
        assert excinfo.value.attempts == 1

    def test_shutting_down_is_not_retryable(self, served_db):
        _, handle = served_db
        assert "shutting_down" not in RETRYABLE_ERRORS
        inj = FaultInjector()
        inj.on(
            "server.admission", "error", times=None, error_type="shutting_down"
        )
        with inj.installed(), make_client(handle, max_retries=5) as client:
            with pytest.raises(ServerError) as excinfo:
                client.query("SELECT a FROM t")
        assert excinfo.value.kind == "shutting_down"
        assert excinfo.value.attempts == 1

    def test_non_retryable_error_types_fail_fast(self, served_db):
        _, handle = served_db
        inj = FaultInjector()
        inj.on("server.query", "error", times=None, error_type="io")
        with inj.installed(), make_client(handle, max_retries=5) as client:
            with pytest.raises(ServerError) as excinfo:
                client.query("SELECT a FROM t")
        assert excinfo.value.kind == "io"
        assert excinfo.value.attempts == 1


class TestBackoff:
    def test_full_jitter_within_exponential_ceiling(self, served_db):
        _, handle = served_db
        with make_client(
            handle, max_retries=5, backoff_base=0.05, backoff_cap=0.4
        ) as client:
            for attempt in range(1, 8):
                ceiling = min(0.4, 0.05 * 2 ** (attempt - 1))
                for _ in range(20):
                    delay = client._backoff_delay(attempt)
                    assert 0.0 <= delay <= ceiling

    def test_seeded_backoff_is_deterministic(self, served_db):
        _, handle = served_db
        with make_client(handle, retry_seed=42) as a, make_client(
            handle, retry_seed=42
        ) as b:
            assert [a._backoff_delay(i) for i in range(1, 6)] == [
                b._backoff_delay(i) for i in range(1, 6)
            ]
