"""Materialized provenance views behind PermServer: served reads match
direct execution, concurrent writers trigger maintenance instead of
wrong answers, and reads admitted under a snapshot invalidated by
DELETE fail with the typed ``snapshot_invalid`` error."""

from __future__ import annotations

import threading
import time
from collections import Counter

import pytest

import repro
from repro.server import PermClient, ServerError, start_in_thread


CREATE = (
    "CREATE MATERIALIZED PROVENANCE VIEW sales_prov AS "
    "SELECT PROVENANCE sname, itemid FROM sales"
)
READ = "SELECT PROVENANCE sname, itemid FROM sales"


@pytest.fixture
def served_db():
    db = repro.connect()
    db.execute("CREATE TABLE sales (sname text, itemid integer)")
    db.execute("INSERT INTO sales VALUES ('Merdies', 1), ('Joba', 3)")
    handle = start_in_thread(db, request_timeout=30.0)
    yield db, handle
    handle.stop()


def test_view_read_through_server_matches_direct(served_db):
    db, handle = served_db
    host, port = handle.address
    with PermClient(host, port) as client:
        client.query(CREATE)
        view = db.catalog.matview("sales_prov")
        served = client.query(READ)
        direct = db.execute(READ)
        assert Counter(served.rows) == Counter(direct.rows)
        assert view.served_reads >= 1
        # A write through the server stales the view; the next served
        # read reflects it via incremental maintenance.
        client.query("INSERT INTO sales VALUES ('Pop', 2)")
        after = client.query(READ)
        assert ("Pop", 2, "Pop", 2) in [tuple(r) for r in after.rows]
        assert view.incremental_refreshes >= 1


def test_polynomial_view_survives_the_wire(served_db):
    db, handle = served_db
    host, port = handle.address
    body = "SELECT PROVENANCE (polynomial) sname FROM sales"
    with PermClient(host, port) as client:
        client.query(
            f"CREATE MATERIALIZED PROVENANCE VIEW poly_v AS {body}"
        )
        served = client.query(body)
        direct = db.execute(body)
        assert served.annotation_column == direct.annotation_column
        served_wire = sorted(
            (row[0], row[-1].to_wire()) for row in served.rows
        )
        direct_wire = sorted(
            (row[0], row[-1].to_wire()) for row in direct.rows
        )
        assert served_wire == direct_wire
        assert db.catalog.matview("poly_v").served_reads >= 1


def test_concurrent_inserts_and_view_reads(served_db):
    db, handle = served_db
    host, port = handle.address
    with PermClient(host, port) as client:
        client.query(CREATE)
    view = db.catalog.matview("sales_prov")
    failures = []

    def writer(i):
        try:
            with PermClient(host, port) as client:
                for j in range(10):
                    client.query(
                        f"INSERT INTO sales VALUES ('w{i}', {j})"
                    )
        except Exception as exc:  # pragma: no cover - diagnostic
            failures.append(exc)

    def reader():
        try:
            with PermClient(host, port) as client:
                for _ in range(10):
                    result = client.query(READ)
                    # Every annotated row witnesses itself: the stored
                    # answer is internally consistent at all times.
                    for row in result.rows:
                        assert tuple(row[:2]) == tuple(row[2:])
        except Exception as exc:  # pragma: no cover - diagnostic
            failures.append(exc)

    threads = [threading.Thread(target=writer, args=(i,)) for i in range(3)]
    threads += [threading.Thread(target=reader) for _ in range(3)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not failures
    # Once the dust settles the view serves exactly what re-execution
    # would return, and maintenance (not staleness) got us there.
    with PermClient(host, port) as client:
        served = client.query(READ)
    db.execute("DROP MATERIALIZED PROVENANCE VIEW sales_prov")
    direct = db.execute(READ)
    assert Counter(tuple(r) for r in served.rows) == Counter(direct.rows)
    assert view.incremental_refreshes + view.full_refreshes >= 2


def test_delete_invalidates_inflight_view_read_with_typed_error():
    # A read admitted before a DELETE runs under the old snapshot.  The
    # delay below holds the read on the worker thread between snapshot
    # capture and execution — exactly the window a slow scheduler or a
    # long queue creates — while the DELETE bumps the base epoch.  The
    # stale view cannot serve that snapshot and the fallback execution
    # must fail with the typed snapshot_invalid error, never a wrong or
    # partial answer.
    db = repro.connect()
    db.execute("CREATE TABLE sales (sname text, itemid integer)")
    db.execute("INSERT INTO sales VALUES ('Merdies', 1), ('Joba', 3)")
    db.execute(CREATE)
    handle = start_in_thread(db, max_concurrency=2)
    host, port = handle.address
    real_run = db.run_compiled
    started, deleted = threading.Event(), threading.Event()

    def delayed_run(query, **kwargs):
        if kwargs.get("snapshot") is not None:
            started.set()
            deleted.wait(timeout=30)
        return real_run(query, **kwargs)

    db.run_compiled = delayed_run
    try:
        outcome = {}

        def reader():
            with PermClient(host, port) as client:
                try:
                    outcome["rows"] = client.query(READ).rows
                except ServerError as exc:
                    outcome["error"] = exc

        thread = threading.Thread(target=reader)
        thread.start()
        assert started.wait(timeout=30)
        db.execute("DELETE FROM sales WHERE sname = 'Joba'")
        deleted.set()
        thread.join(timeout=60)
        assert "error" in outcome, outcome
        assert outcome["error"].kind == "snapshot_invalid"
        assert "snapshot too old" in str(outcome["error"])
        # A fresh request succeeds: new snapshot, maintained view.
        db.run_compiled = real_run
        with PermClient(host, port) as client:
            rows = [tuple(r) for r in client.query(READ).rows]
        assert rows == [("Merdies", 1, "Merdies", 1)]
    finally:
        db.run_compiled = real_run
        handle.stop()
