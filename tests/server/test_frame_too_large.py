"""Oversized-frame hardening: a frame beyond MAX_FRAME gets a typed
``frame_too_large`` error and a clean close, never a connection reset
mid-send or an 8 MiB allocation."""

from __future__ import annotations

import socket
import struct

import pytest

import repro
from repro.server import MAX_FRAME, PermClient, start_in_thread
from repro.server.protocol import MAX_DRAIN, recv_frame


@pytest.fixture()
def served_db():
    db = repro.connect(parallel_workers=2)
    db.execute("CREATE TABLE t (a integer, b text)")
    db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    handle = start_in_thread(db, request_timeout=30.0)
    yield db, handle
    handle.stop()


def raw_connection(handle) -> socket.socket:
    host, port = handle.address
    return socket.create_connection((host, port), timeout=30.0)


def send_oversized(sock: socket.socket, declared: int, body: bytes) -> None:
    sock.sendall(struct.pack(">I", declared) + body)


class TestFrameTooLarge:
    def test_oversized_frame_gets_typed_error_and_clean_close(self, served_db):
        _, handle = served_db
        with raw_connection(handle) as sock:
            body = b"x" * (MAX_FRAME + 1)
            send_oversized(sock, len(body), body)
            reply = recv_frame(sock)
            assert reply is not None
            assert reply["ok"] is False
            assert reply["error"]["type"] == "frame_too_large"
            assert str(MAX_FRAME) in reply["error"]["message"]
            # Clean close: EOF at a frame boundary, not a reset.
            assert sock.recv(1) == b""

    def test_implausible_length_is_not_drained(self, served_db):
        _, handle = served_db
        with raw_connection(handle) as sock:
            # Only the header goes out; the server must not wait for
            # 64 MiB that will never arrive before answering.
            send_oversized(sock, MAX_DRAIN + 1, b"")
            reply = recv_frame(sock)
            assert reply is not None
            assert reply["error"]["type"] == "frame_too_large"
            assert sock.recv(1) == b""

    def test_rejection_is_counted_and_server_stays_up(self, served_db):
        _, handle = served_db
        with raw_connection(handle) as sock:
            body = b"y" * (MAX_FRAME + 1)
            send_oversized(sock, len(body), body)
            assert recv_frame(sock)["error"]["type"] == "frame_too_large"

        host, port = handle.address
        with PermClient(host, port) as client:
            assert client.query("SELECT a FROM t").rows
            stats = client.stats()["stats"]
            assert stats["frames_rejected"] >= 1

    def test_client_side_cap_refuses_before_sending(self, served_db):
        _, handle = served_db
        host, port = handle.address
        from repro.server import ProtocolError

        with PermClient(host, port) as client:
            with pytest.raises(ProtocolError):
                client.query("SELECT '" + "x" * (MAX_FRAME + 1) + "' FROM t")
            # The connection never carried the oversized frame and is
            # still usable.
            assert client.query("SELECT a FROM t").rows
