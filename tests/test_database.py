"""PermDatabase facade tests: DDL, DML, SELECT INTO, views, errors."""

from __future__ import annotations

import pytest

import repro
from repro.errors import AnalyzeError, CatalogError, ExecutionError, PermError


@pytest.fixture
def db():
    return repro.connect()


def test_create_insert_select_roundtrip(db):
    db.execute("CREATE TABLE t (a integer, b text)")
    result = db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
    assert result.command == "INSERT 2"
    assert sorted(db.execute("SELECT * FROM t").rows) == [(1, "x"), (2, "y")]


def test_multi_statement_execute_returns_last(db):
    result = db.execute(
        "CREATE TABLE t (a integer); INSERT INTO t VALUES (1); SELECT a FROM t"
    )
    assert result.rows == [(1,)]


def test_insert_with_column_list_fills_nulls(db):
    db.execute("CREATE TABLE t (a integer, b text, c float)")
    db.execute("INSERT INTO t (b) VALUES ('only_b')")
    assert db.execute("SELECT * FROM t").rows == [(None, "only_b", None)]


def test_insert_width_mismatch(db):
    db.execute("CREATE TABLE t (a integer, b text)")
    with pytest.raises(ExecutionError):
        db.execute("INSERT INTO t VALUES (1)")


def test_insert_from_select(db):
    db.execute("CREATE TABLE src (a integer)")
    db.execute("INSERT INTO src VALUES (1), (2)")
    db.execute("CREATE TABLE dst (a integer)")
    db.execute("INSERT INTO dst SELECT a * 10 FROM src")
    assert sorted(db.execute("SELECT a FROM dst").rows) == [(10,), (20,)]


def test_insert_expression_values(db):
    db.execute("CREATE TABLE t (a integer, d date)")
    db.execute("INSERT INTO t VALUES (1 + 1, DATE '1995-01-01' + INTERVAL '1' MONTH)")
    import datetime

    assert db.execute("SELECT * FROM t").rows == [(2, datetime.date(1995, 2, 1))]


def test_select_into_creates_table(db):
    db.execute("CREATE TABLE t (a integer)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    result = db.execute("SELECT a * 2 AS doubled INTO copy FROM t")
    assert result.command.startswith("SELECT INTO")
    assert sorted(db.execute("SELECT doubled FROM copy").rows) == [(2,), (4,)]


def test_select_into_existing_table_rejected(db):
    db.execute("CREATE TABLE t (a integer)")
    with pytest.raises(CatalogError):
        db.execute("SELECT 1 AS x INTO t")


def test_create_view_and_query(db):
    db.execute("CREATE TABLE t (a integer)")
    db.execute("INSERT INTO t VALUES (1), (5)")
    db.execute("CREATE VIEW big AS SELECT a FROM t WHERE a > 2")
    assert db.execute("SELECT * FROM big").rows == [(5,)]


def test_view_reflects_table_changes(db):
    db.execute("CREATE TABLE t (a integer)")
    db.execute("CREATE VIEW v AS SELECT a FROM t")
    db.execute("INSERT INTO t VALUES (7)")
    assert db.execute("SELECT * FROM v").rows == [(7,)]


def test_view_body_validated_at_creation(db):
    with pytest.raises(AnalyzeError):
        db.execute("CREATE VIEW v AS SELECT zzz FROM nowhere")


def test_drop_table_and_view(db):
    db.execute("CREATE TABLE t (a integer)")
    db.execute("CREATE VIEW v AS SELECT a FROM t")
    db.execute("DROP VIEW v")
    db.execute("DROP TABLE t")
    with pytest.raises(AnalyzeError):
        db.execute("SELECT * FROM t")


def test_drop_if_exists(db):
    db.execute("DROP TABLE IF EXISTS ghost")
    db.execute("DROP VIEW IF EXISTS ghost")


def test_query_result_helpers(db):
    db.execute("CREATE TABLE t (a integer)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    result = db.execute("SELECT a FROM t ORDER BY a")
    assert len(result) == 2
    assert list(result) == [(1,), (2,)]
    assert result.relation().multiplicity((1,)) == 1
    assert "a" in result.pretty()


def test_scalar_helper_errors(db):
    db.execute("CREATE TABLE t (a integer)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    with pytest.raises(ExecutionError):
        db.execute("SELECT a FROM t").scalar()


def test_provenance_helper_rejects_ddl(db):
    with pytest.raises(PermError):
        db.provenance("CREATE TABLE t (a integer)")


def test_prepare_exposes_timings(db):
    db.execute("CREATE TABLE t (a integer)")
    prepared = db.prepare("SELECT a FROM t")
    assert prepared.compile_seconds > 0
    assert prepared.rewrite_seconds >= 0
    assert prepared.run().rows == []


def test_module_disabled_skips_rewrite(db):
    plain = repro.connect(provenance_module_enabled=False)
    plain.execute("CREATE TABLE t (a integer)")
    prepared = plain.prepare("SELECT a FROM t")
    assert prepared.rewrite_seconds == 0.0


def test_load_table_and_relation_helpers(db):
    from repro.catalog.schema import TableSchema
    from repro.datatypes import SQLType

    db.create_table(TableSchema.of("bulk", [("x", SQLType.INTEGER)]))
    assert db.load_table("bulk", [(1,), (2,), (3,)]) == 3
    assert len(db.table_relation("bulk")) == 3


def test_empty_statement_sequence(db):
    result = db.execute(";;;")
    assert result.command == "EMPTY"
