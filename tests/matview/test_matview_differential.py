"""Differential suite: view-answered results ≡ re-execution.

Twin databases get identical DML; one answers ``SELECT PROVENANCE``
reads from a materialized provenance view (maintained incrementally
where the shape allows, by full refresh otherwise), the other runs the
rewritten query from scratch every time.  After every interleaved
INSERT/DELETE/UPDATE step the two answers must be the same multiset —
over the paper's shop/sales/items examples and the TPC-H SF-tiny
workload, for witness and polynomial semantics alike.
"""

from __future__ import annotations

from collections import Counter

import pytest

import repro
from repro.tpch.dbgen import generate, load_into


_EXAMPLE_SETUP = (
    "CREATE TABLE shop (name text, numempl integer)",
    "CREATE TABLE sales (sname text, itemid integer)",
    "CREATE TABLE items (id integer, price integer)",
    "INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14)",
    "INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), "
    "('Merdies', 2), ('Joba', 3), ('Joba', 3)",
    "INSERT INTO items VALUES (1, 100), (2, 10), (3, 25)",
)

# Interleaved writes touching every dependency of every view below.
_EXAMPLE_DML = (
    "INSERT INTO sales VALUES ('Joba', 1)",
    "DELETE FROM sales WHERE sname = 'Merdies' AND itemid = 2",
    "INSERT INTO shop VALUES ('Pop', 5)",
    "INSERT INTO sales VALUES ('Pop', 2), ('Pop', 2)",
    "UPDATE sales SET itemid = 3 WHERE sname = 'Pop'",
    "DELETE FROM shop WHERE name = 'Joba'",
    "INSERT INTO items VALUES (4, 7)",
    "DELETE FROM items WHERE id = 2",
    "INSERT INTO shop VALUES ('Joba', 14)",
)

# View bodies spanning the eligibility spectrum: single-table scans,
# a multiway join (delta-maintained), and shapes that force full
# refresh (aggregation, UNION ALL) — all must stay differential-exact.
_EXAMPLE_VIEWS = (
    "SELECT PROVENANCE sname, itemid FROM sales",
    "SELECT PROVENANCE (polynomial) sname FROM sales",
    "SELECT PROVENANCE name FROM shop WHERE numempl < 10",
    "SELECT PROVENANCE name, price FROM shop, sales, items "
    "WHERE name = sname AND itemid = id",
    "SELECT PROVENANCE (polynomial) name, id FROM shop, sales, items "
    "WHERE name = sname AND itemid = id",
    "SELECT PROVENANCE sname, count(*) AS n FROM sales GROUP BY sname",
    "(SELECT PROVENANCE name FROM shop) UNION ALL (SELECT sname FROM sales)",
)


def _twin(setup):
    with_views, plain = repro.connect(), repro.connect()
    for sql in setup:
        with_views.execute(sql)
        plain.execute(sql)
    return with_views, plain


def _assert_same_answer(with_views, plain, body):
    served = with_views.execute(body)
    direct = plain.execute(body)
    assert served.columns == direct.columns
    assert served.annotation_column == direct.annotation_column
    assert Counter(served.rows) == Counter(direct.rows), body


@pytest.mark.parametrize("body", _EXAMPLE_VIEWS)
def test_paper_examples_interleaved_dml(body):
    with_views, plain = _twin(_EXAMPLE_SETUP)
    with_views.execute(f"CREATE MATERIALIZED PROVENANCE VIEW v AS {body}")
    view = with_views.catalog.matview("v")
    _assert_same_answer(with_views, plain, body)
    for sql in _EXAMPLE_DML:
        with_views.execute(sql)
        plain.execute(sql)
        _assert_same_answer(with_views, plain, body)
    # Every read after the create went through the view, not the engine.
    assert view.served_reads == 1 + len(_EXAMPLE_DML)


def test_paper_examples_all_views_at_once():
    """All views coexist; each DML step staleness-checks every one."""
    with_views, plain = _twin(_EXAMPLE_SETUP)
    for i, body in enumerate(_EXAMPLE_VIEWS):
        with_views.execute(
            f"CREATE MATERIALIZED PROVENANCE VIEW v{i} AS {body}"
        )
    for sql in _EXAMPLE_DML:
        with_views.execute(sql)
        plain.execute(sql)
        for body in _EXAMPLE_VIEWS:
            _assert_same_answer(with_views, plain, body)


_TPCH_VIEWS = (
    "SELECT PROVENANCE l_orderkey, l_quantity FROM lineitem "
    "WHERE l_quantity > 45",
    "SELECT PROVENANCE (polynomial) l_orderkey FROM lineitem "
    "WHERE l_quantity > 45",
    "SELECT PROVENANCE o_orderkey, o_totalprice, l_quantity "
    "FROM orders, lineitem "
    "WHERE o_orderkey = l_orderkey AND l_quantity > 48",
    "SELECT PROVENANCE (polynomial) o_orderkey FROM orders, lineitem "
    "WHERE o_orderkey = l_orderkey AND l_quantity > 48",
)

_TPCH_DML = (
    "INSERT INTO lineitem VALUES "
    "(999901, 1, 1, 1, 50, 5000, 0.01, 0.02, 'N', 'O', "
    "'1997-01-01', '1997-01-02', '1997-01-03', 'NONE', 'TRUCK', 'delta row')",
    "DELETE FROM lineitem WHERE l_quantity = 50 AND l_orderkey < 1000",
    "INSERT INTO orders VALUES "
    "(999901, 1, 'O', 424242.42, '1997-01-01', '1-URGENT', 'Clerk#1', 0, "
    "'delta order')",
    "UPDATE lineitem SET l_quantity = 49 WHERE l_orderkey = 999901",
    "DELETE FROM orders WHERE o_orderkey = 999901",
)


def test_tpch_sf_tiny_interleaved_dml():
    data = generate(0.001, seed=42)
    with_views, plain = repro.connect(), repro.connect()
    load_into(with_views, data)
    load_into(plain, data)
    views = []
    for i, body in enumerate(_TPCH_VIEWS):
        with_views.execute(
            f"CREATE MATERIALIZED PROVENANCE VIEW tpch{i} AS {body}"
        )
        views.append(with_views.catalog.matview(f"tpch{i}"))
        _assert_same_answer(with_views, plain, body)
    for sql in _TPCH_DML:
        with_views.execute(sql)
        plain.execute(sql)
        for body in _TPCH_VIEWS:
            _assert_same_answer(with_views, plain, body)
    # The single-table and join views are all delta-maintainable, and
    # the interleaving actually exercised the incremental path.
    assert all(v.incremental_eligible for v in views)
    assert sum(v.incremental_refreshes for v in views) > 0
