"""Delta maintenance, eligibility classification, and staleness rules."""

from __future__ import annotations

import pytest

import repro
from repro.errors import CatalogError, ExecutionError


WITNESS_READ = "SELECT PROVENANCE sname, itemid FROM sales"
POLY_READ = "SELECT PROVENANCE (polynomial) sname FROM sales"


def make_view(db, name, body):
    db.execute(f"CREATE MATERIALIZED PROVENANCE VIEW {name} AS {body}")
    return db.catalog.matview(name)


# -- incremental paths ------------------------------------------------------


def test_insert_is_applied_incrementally(example_db):
    view = make_view(example_db, "v", f"SELECT PROVENANCE sname, itemid FROM sales")
    example_db.execute("INSERT INTO sales VALUES ('Joba', 1)")
    result = example_db.execute(WITNESS_READ)
    assert view.incremental_refreshes == 1
    assert view.full_refreshes == 1
    assert ("Joba", 1, "Joba", 1) in result.rows


def test_delete_is_applied_incrementally(example_db):
    view = make_view(example_db, "v", WITNESS_READ)
    example_db.execute("DELETE FROM sales WHERE sname = 'Joba'")
    result = example_db.execute(WITNESS_READ)
    assert view.incremental_refreshes == 1
    assert all(row[0] != "Joba" for row in result.rows)


def test_update_is_applied_incrementally(example_db):
    view = make_view(example_db, "v", WITNESS_READ)
    example_db.execute("UPDATE sales SET itemid = 9 WHERE sname = 'Joba'")
    result = example_db.execute(WITNESS_READ)
    assert view.incremental_refreshes == 1
    assert ("Joba", 9, "Joba", 9) in result.rows
    assert ("Joba", 3, "Joba", 3) not in result.rows


def test_insert_then_delete_cancels_to_reanchor(example_db):
    view = make_view(example_db, "v", WITNESS_READ)
    before = list(view.rows)
    example_db.execute("INSERT INTO sales VALUES ('Ghost', 99)")
    example_db.execute("DELETE FROM sales WHERE sname = 'Ghost'")
    result = example_db.execute(WITNESS_READ)
    assert sorted(result.rows) == sorted(before)
    # The deltas cancelled; no term evaluation or full refresh happened.
    assert view.incremental_refreshes == 1
    assert view.full_refreshes == 1


def test_polynomial_delete_uses_exact_monus(example_db):
    view = make_view(example_db, "v", POLY_READ)
    # 'Merdies' has three sales; deleting one must shrink the
    # polynomial via monus, not drop the tuple.
    example_db.execute(
        "DELETE FROM sales WHERE sname = 'Merdies' AND itemid = 1"
    )
    result = example_db.execute(POLY_READ)
    assert view.incremental_refreshes == 1
    by_key = dict(result.rows)
    assert set(by_key) == {"Merdies", "Joba"}
    # Only the two itemid=2 derivations remain for Merdies.
    assert len(by_key["Merdies"].terms()) == 1
    assert by_key["Merdies"].terms()[0][1] == 2


def test_join_view_maintained_across_both_tables(example_db):
    body = "SELECT PROVENANCE name, itemid FROM shop, sales WHERE name = sname"
    view = make_view(example_db, "v", body)
    assert view.incremental_eligible, view.ineligible_reason
    example_db.execute("INSERT INTO shop VALUES ('Pop', 5)")
    example_db.execute("INSERT INTO sales VALUES ('Pop', 2)")
    served = example_db.execute(body)
    assert view.incremental_refreshes == 1
    example_db.execute("DROP MATERIALIZED PROVENANCE VIEW v")
    direct = example_db.execute(body)
    from collections import Counter

    assert Counter(served.rows) == Counter(direct.rows)
    assert ("Pop", 2, "Pop", 5, "Pop", 2) in served.rows


def test_union_all_is_full_refresh_but_correct(example_db):
    """UNION ALL branches are affine (a branch not referencing the
    changed table would re-contribute its rows in every delta term), so
    set operations always take the full-refresh path — and still serve
    exactly what re-execution returns."""
    body = "(SELECT PROVENANCE name FROM shop) UNION ALL (SELECT sname FROM sales)"
    view = make_view(example_db, "v", body)
    assert not view.incremental_eligible
    assert "affine" in view.ineligible_reason
    example_db.execute("INSERT INTO shop VALUES ('New', 1)")
    served = example_db.execute(body)
    assert view.incremental_refreshes == 0
    assert view.full_refreshes == 2
    example_db.execute("DROP MATERIALIZED PROVENANCE VIEW v")
    direct = example_db.execute(body)
    from collections import Counter

    assert Counter(served.rows) == Counter(direct.rows)


# -- eligibility classification --------------------------------------------


@pytest.mark.parametrize(
    "body, reason_part",
    [
        (
            "SELECT PROVENANCE sname, count(*) AS n FROM sales GROUP BY sname",
            "aggregation",
        ),
        ("SELECT PROVENANCE DISTINCT sname FROM sales", "DISTINCT"),
        (
            "(SELECT PROVENANCE name FROM shop) UNION (SELECT sname FROM sales)",
            "set operations",
        ),
        (
            "(SELECT PROVENANCE name FROM shop) EXCEPT (SELECT sname FROM sales)",
            "set operations",
        ),
        (
            "SELECT PROVENANCE name, itemid FROM shop LEFT JOIN sales ON name = sname",
            "LEFT JOIN",
        ),
        # IN-sublinks are desugared to LEFT JOIN by the analyzer, so the
        # outer-join rule is what rejects them.
        (
            "SELECT PROVENANCE name FROM shop WHERE name IN (SELECT sname FROM sales)",
            "LEFT JOIN",
        ),
        (
            "SELECT PROVENANCE a.name FROM shop AS a, shop AS b",
            "referenced more than once",
        ),
    ],
)
def test_ineligible_shapes_fall_back_to_full_refresh(
    example_db, body, reason_part
):
    view = make_view(example_db, "v", body)
    assert not view.incremental_eligible
    assert reason_part in view.ineligible_reason
    # Touch both tables so every parametrized view goes stale.
    example_db.execute("INSERT INTO sales VALUES ('Merdies', 3)")
    example_db.execute("INSERT INTO shop VALUES ('Ore', 4)")
    served = example_db.execute(body)
    assert view.incremental_refreshes == 0
    assert view.full_refreshes == 2  # create + maintain-on-read
    # Differential: still exactly what re-execution returns.
    example_db.execute(f"DROP MATERIALIZED PROVENANCE VIEW v")
    direct = example_db.execute(body)
    from collections import Counter

    assert Counter(served.rows) == Counter(direct.rows)


def test_writes_bypassing_the_delta_log_force_full_refresh(example_db):
    view = make_view(example_db, "v", WITNESS_READ)
    # load_table appends directly to the heap without a delta record.
    example_db.load_table("sales", [("Sneaky", 42)])
    result = example_db.execute(WITNESS_READ)
    assert view.incremental_refreshes == 0
    assert view.full_refreshes == 2
    assert ("Sneaky", 42, "Sneaky", 42) in result.rows


def test_dropped_and_recreated_table_forces_full_refresh(example_db):
    view = make_view(example_db, "v", WITNESS_READ)
    example_db.execute("DROP TABLE sales")
    example_db.execute("CREATE TABLE sales (sname text, itemid integer)")
    example_db.execute("INSERT INTO sales VALUES ('Fresh', 1)")
    result = example_db.execute(WITNESS_READ)
    assert view.full_refreshes == 2
    assert result.rows == [("Fresh", 1, "Fresh", 1)]


# -- staleness rules --------------------------------------------------------


def test_analyze_does_not_force_refresh(example_db):
    view = make_view(example_db, "v", WITNESS_READ)
    assert view.is_current(example_db.catalog)
    example_db.execute("ANALYZE sales")
    example_db.execute("ANALYZE")
    assert view.is_current(example_db.catalog)
    example_db.execute(WITNESS_READ)
    assert view.full_refreshes == 1
    assert view.incremental_refreshes == 0
    assert view.served_reads == 1


def test_dropped_base_table_raises_clean_error(example_db):
    make_view(example_db, "v", WITNESS_READ)
    example_db.execute("DROP TABLE sales")
    with pytest.raises(CatalogError, match="depends on table 'sales'"):
        example_db.execute(WITNESS_READ)
    with pytest.raises(CatalogError, match="has been dropped"):
        example_db.execute("REFRESH MATERIALIZED PROVENANCE VIEW v")


def test_truncate_invalidates_the_delta_log(example_db):
    view = make_view(example_db, "v", WITNESS_READ)
    table = example_db.catalog.table("sales")
    table.truncate()
    example_db.execute("INSERT INTO sales VALUES ('After', 8)")
    result = example_db.execute(WITNESS_READ)
    assert view.full_refreshes == 2
    assert result.rows == [("After", 8, "After", 8)]


# -- DML delta-log regression (snapshots) -----------------------------------


def test_delete_invalidates_inflight_snapshot(example_db):
    compiled = example_db.compile_select("SELECT sname FROM sales")
    snapshot = example_db.snapshot()
    example_db.execute("DELETE FROM sales WHERE sname = 'Joba'")
    with pytest.raises(ExecutionError, match="snapshot too old"):
        example_db.run_compiled(compiled, snapshot=snapshot)


def test_update_invalidates_inflight_snapshot(example_db):
    compiled = example_db.compile_select("SELECT sname FROM sales")
    snapshot = example_db.snapshot()
    example_db.execute("UPDATE sales SET itemid = 0 WHERE sname = 'Joba'")
    with pytest.raises(ExecutionError, match="snapshot too old"):
        example_db.run_compiled(compiled, snapshot=snapshot)


def test_insert_keeps_inflight_snapshot_valid(example_db):
    compiled = example_db.compile_select("SELECT sname FROM sales")
    snapshot = example_db.snapshot()
    example_db.execute("INSERT INTO sales VALUES ('Later', 7)")
    result = example_db.run_compiled(compiled, snapshot=snapshot)
    assert all(row[0] != "Later" for row in result.rows)


def test_dml_records_per_statement_deltas(example_db):
    table = example_db.catalog.table("sales")
    base = table.delta_seq  # the fixture's own INSERT is already logged
    example_db.execute("INSERT INTO sales VALUES ('A', 1)")
    example_db.execute("DELETE FROM sales WHERE sname = 'A'")
    example_db.execute("UPDATE sales SET itemid = 4 WHERE sname = 'Joba'")
    deltas = table.deltas_since(base)
    commands = [d.command for d in deltas]
    assert commands == ["INSERT", "DELETE", "UPDATE"]
    assert deltas[0].inserted == (("A", 1),)
    assert deltas[1].deleted == (("A", 1),)
    assert len(deltas[2].inserted) == len(deltas[2].deleted) == 2
