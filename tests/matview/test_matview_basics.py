"""Materialized provenance views: DDL surface, routing, catalog and CLI."""

from __future__ import annotations

import pytest

import repro
from repro.errors import CatalogError, PermError
from repro.sql.parser import parse_sql
from repro.sql.printer import format_statement
from repro.sql import ast


CREATE = (
    "CREATE MATERIALIZED PROVENANCE VIEW emp_prov AS "
    "SELECT PROVENANCE name FROM shop WHERE numempl < 10"
)
READ = "SELECT PROVENANCE name FROM shop WHERE numempl < 10"


# -- parser / printer -------------------------------------------------------


def test_create_statement_parses_and_prints():
    (stmt,) = parse_sql(CREATE)
    assert isinstance(stmt, ast.CreateMatViewStmt)
    assert stmt.name == "emp_prov"
    assert stmt.query.provenance
    text = format_statement(stmt)
    assert text.startswith("CREATE MATERIALIZED PROVENANCE VIEW emp_prov AS")
    # The printed form re-parses to the same statement kind.
    (again,) = parse_sql(text)
    assert isinstance(again, ast.CreateMatViewStmt)


def test_refresh_and_drop_parse_and_print():
    (refresh,) = parse_sql("REFRESH MATERIALIZED PROVENANCE VIEW v")
    assert isinstance(refresh, ast.RefreshMatViewStmt)
    assert format_statement(refresh) == "REFRESH MATERIALIZED PROVENANCE VIEW v"
    (drop,) = parse_sql("DROP MATERIALIZED PROVENANCE VIEW IF EXISTS v")
    assert isinstance(drop, ast.DropStmt)
    assert drop.kind == "matview"
    assert drop.if_exists
    (short,) = parse_sql("DROP MATERIALIZED VIEW v")
    assert short.kind == "matview"


# -- create / drop ----------------------------------------------------------


def test_create_materializes_and_registers(example_db):
    example_db.execute(CREATE)
    view = example_db.catalog.matview("emp_prov")
    assert view.semantics == "witness"
    assert view.columns == ["name", "prov_shop_name", "prov_shop_numempl"]
    assert view.rows == [("Merdies", "Merdies", 3)]
    assert set(view.deps) == {"shop"}
    assert view.full_refreshes == 1


def test_read_is_answered_from_the_view(example_db):
    example_db.execute(CREATE)
    view = example_db.catalog.matview("emp_prov")
    result = example_db.execute(READ)
    assert result.rows == [("Merdies", "Merdies", 3)]
    assert view.served_reads == 1
    # provenance() routes through the same matcher.
    result = example_db.provenance("SELECT name FROM shop WHERE numempl < 10")
    assert view.served_reads == 2
    assert result.rows == [("Merdies", "Merdies", 3)]


def test_view_answer_survives_the_statement_cache(example_db):
    example_db.execute(CREATE)
    view = example_db.catalog.matview("emp_prov")
    first = example_db.execute(READ)
    second = example_db.execute(READ)  # statement-cache marker hit
    assert first.rows == second.rows
    assert view.served_reads == 2


def test_unrelated_provenance_query_is_not_routed(example_db):
    example_db.execute(CREATE)
    view = example_db.catalog.matview("emp_prov")
    example_db.execute("SELECT PROVENANCE name FROM shop")
    assert view.served_reads == 0


def test_semantics_distinguish_views(example_db):
    example_db.execute(
        "CREATE MATERIALIZED PROVENANCE VIEW poly_v AS "
        "SELECT PROVENANCE (polynomial) name FROM shop"
    )
    view = example_db.catalog.matview("poly_v")
    assert view.semantics == "polynomial"
    # The witness-semantics spelling of the same SELECT must not hit it.
    example_db.execute("SELECT PROVENANCE name FROM shop")
    assert view.served_reads == 0
    result = example_db.execute("SELECT PROVENANCE (polynomial) name FROM shop")
    assert view.served_reads == 1
    assert result.annotation_column == "prov_polynomial"


def test_drop_removes_routing(example_db):
    example_db.execute(CREATE)
    example_db.execute(READ)
    example_db.execute("DROP MATERIALIZED PROVENANCE VIEW emp_prov")
    assert not example_db.catalog.has_matview("emp_prov")
    # Still answerable — by the ordinary pipeline now.
    result = example_db.execute(READ)
    assert result.rows == [("Merdies", "Merdies", 3)]
    with pytest.raises(CatalogError):
        example_db.execute("DROP MATERIALIZED PROVENANCE VIEW emp_prov")
    example_db.execute("DROP MATERIALIZED PROVENANCE VIEW IF EXISTS emp_prov")


def test_refresh_statement_forces_full_refresh(example_db):
    example_db.execute(CREATE)
    view = example_db.catalog.matview("emp_prov")
    example_db.execute("REFRESH MATERIALIZED PROVENANCE VIEW emp_prov")
    assert view.full_refreshes == 2
    with pytest.raises(CatalogError):
        example_db.execute("REFRESH MATERIALIZED PROVENANCE VIEW nope")


def test_name_collisions_are_rejected(example_db):
    example_db.execute(CREATE)
    with pytest.raises(CatalogError, match="already exists"):
        example_db.execute(
            "CREATE MATERIALIZED PROVENANCE VIEW emp_prov AS "
            "SELECT PROVENANCE name FROM shop"
        )
    with pytest.raises(CatalogError, match="already exists"):
        example_db.execute(
            "CREATE MATERIALIZED PROVENANCE VIEW shop AS "
            "SELECT PROVENANCE name FROM shop"
        )


def test_definition_must_be_a_provenance_select(example_db):
    with pytest.raises(PermError, match="PROVENANCE"):
        example_db.execute(
            "CREATE MATERIALIZED PROVENANCE VIEW v AS SELECT name FROM shop"
        )


def test_definition_rejects_order_by(example_db):
    with pytest.raises(PermError, match="ORDER BY"):
        example_db.execute(
            "CREATE MATERIALIZED PROVENANCE VIEW v AS "
            "SELECT PROVENANCE name FROM shop ORDER BY name"
        )


def test_broken_definition_leaves_no_catalog_entry(example_db):
    with pytest.raises(PermError):
        example_db.execute(
            "CREATE MATERIALIZED PROVENANCE VIEW v AS "
            "SELECT PROVENANCE nothing FROM missing_table"
        )
    assert not example_db.catalog.has_matview("v")


def test_requires_provenance_module():
    db = repro.connect(provenance_module_enabled=False)
    db.execute("CREATE TABLE t (a integer)")
    with pytest.raises(PermError, match="provenance module"):
        db.execute(
            "CREATE MATERIALIZED PROVENANCE VIEW v AS SELECT PROVENANCE a FROM t"
        )


# -- explain / CLI ----------------------------------------------------------


def test_explain_reports_view_answer(example_db):
    example_db.execute(CREATE)
    text = example_db.explain(READ)
    assert "answered from materialized provenance view 'emp_prov'" in text
    assert "fresh" in text.splitlines()[0]
    example_db.execute("INSERT INTO shop VALUES ('Tiny', 2)")
    stale = example_db.explain(READ)
    assert "stale" in stale.splitlines()[0]


def test_cli_matviews_command(example_db, capsys):
    from repro.__main__ import _handle_meta

    assert _handle_meta(example_db, "\\matviews")
    assert "no materialized provenance views" in capsys.readouterr().out
    example_db.execute(CREATE)
    example_db.execute(READ)
    assert _handle_meta(example_db, "\\matviews")
    out = capsys.readouterr().out
    assert "emp_prov" in out
    assert "witness" in out
    assert "reads served 1" in out
