"""SQL-level provenance invariants over randomly generated queries.

Complements the algebra-level proof properties: the full pipeline
(parser -> analyzer -> rewriter -> planner -> executor) must satisfy

1. result preservation (set semantics) for SELECT PROVENANCE,
2. every provenance block is either a real base tuple or all-NULL,
3. the provenance schema follows the naming scheme and column order.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)

_value = st.integers(min_value=0, max_value=3)
_rows_r = st.lists(st.tuples(_value, st.one_of(st.none(), _value)), max_size=6)
_rows_s = st.lists(st.tuples(_value, _value), max_size=6)


def _make_db(rows_r, rows_s) -> repro.PermDatabase:
    db = repro.connect()
    db.execute("CREATE TABLE r (k integer, v integer)")
    db.execute("CREATE TABLE s (k2 integer, w integer)")
    db.load_table("r", rows_r)
    db.load_table("s", rows_s)
    return db


@st.composite
def sql_queries(draw) -> str:
    """Random single-block SQL over r and s."""
    shape = draw(st.sampled_from(["spj", "agg", "setop", "sublink"]))
    comparison = draw(st.sampled_from(["=", "<", ">", "<=", ">=", "<>"]))
    constant = draw(_value)
    if shape == "spj":
        join = draw(st.sampled_from(["", ", s WHERE k {} k2".format(comparison)]))
        if join:
            return f"SELECT k, w FROM r{join}"
        return f"SELECT k, v FROM r WHERE k {comparison} {constant}"
    if shape == "agg":
        having = draw(st.sampled_from(["", " HAVING count(*) > 1"]))
        return f"SELECT k, sum(v), count(*) FROM r GROUP BY k{having}"
    if shape == "setop":
        op = draw(st.sampled_from(["UNION", "UNION ALL", "INTERSECT", "EXCEPT"]))
        return f"SELECT k FROM r {op} SELECT k2 FROM s"
    negated = draw(st.sampled_from(["", "NOT "]))
    return (
        f"SELECT k FROM r WHERE v IS NOT NULL AND "
        f"k {negated}IN (SELECT k2 FROM s)"
    )


@given(rows_r=_rows_r, rows_s=_rows_s, sql=sql_queries())
@_SETTINGS
def test_sql_provenance_invariants(rows_r, rows_s, sql):
    db = _make_db(rows_r, rows_s)
    normal = db.execute(sql)
    prov = db.provenance(sql)

    width = len(normal.columns)
    # 1. Schema: original columns first, then prov_-prefixed attributes.
    assert prov.columns[:width] == normal.columns
    assert all(c.startswith("prov_") for c in prov.columns[width:])

    # 2. Result preservation under set semantics.
    assert {row[:width] for row in prov.rows} == set(normal.rows)

    # 3. Every provenance block is a base tuple or all-NULL padding.
    blocks: dict[str, list[int]] = {}
    for i, column in enumerate(prov.columns[width:], start=width):
        table = column.split("_")[1]
        blocks.setdefault(table, []).append(i)
    base = {"r": set(map(tuple, rows_r)), "s": set(map(tuple, rows_s))}
    for table, positions in blocks.items():
        for row in prov.rows:
            block = tuple(row[i] for i in positions)
            if all(v is None for v in block):
                continue
            assert block in base[table], (table, block, sql)


@given(rows_r=_rows_r, sql=st.sampled_from([
    "SELECT k FROM r",
    "SELECT k, sum(v) FROM r GROUP BY k",
    "SELECT DISTINCT k FROM r",
]))
@_SETTINGS
def test_provenance_idempotent_over_stored_results(rows_r, sql):
    """Storing provenance and recomputing from the store (incremental
    computation) yields the same provenance as direct computation."""
    db = _make_db(rows_r, [])
    direct = db.provenance(sql)
    db.execute(
        sql.replace("SELECT", "SELECT PROVENANCE", 1).replace(" FROM", " INTO stored FROM", 1)
        if " INTO " not in sql
        else sql
    )
    prov_columns = ", ".join(c for c in direct.columns if c.startswith("prov_"))
    visible = ", ".join(c for c in direct.columns if not c.startswith("prov_"))
    incremental = db.execute(
        f"SELECT PROVENANCE {visible} FROM stored PROVENANCE ({prov_columns})"
    )
    assert sorted(incremental.rows, key=repr) == sorted(direct.rows, key=repr)
