"""The paper's correctness proof (section III-E) as executable properties.

For random algebra queries and random small databases:

1. **Result preservation**: the original-attribute part of the rewritten
   query equals the original result under set semantics,
   ``ΠS_T(T+) = ΠS_T(T)``.
2. **Cui-Widom equivalence**: for every original result tuple and every
   base relation reference, the set of distinct provenance tuples that
   the rewrite attaches equals the lineage computed by the independent
   Cui-Widom implementation.

These two properties together are exactly the paper's proof obligations.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings

from repro.algebra.evaluate import evaluate
from repro.baselines.cui_widom import lineage
from repro.core.algebra_rules import rewrite_algebra

from tests.properties.strategies import algebra_queries, databases

_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@given(op=algebra_queries(), db=databases())
@_SETTINGS
def test_result_preservation(op, db):
    # strict Fig. 1 semantics: the paper's proof is stated for the algebra
    # where aggregation over an empty input is empty (the SQL grand
    # aggregate row is the documented footnote-4 deviation, covered by
    # test_rewriter_aspj.py::test_grand_aggregate_over_empty_input_footnote4).
    original = evaluate(op, db, strict_fig1=True)
    rewritten, _ = rewrite_algebra(op)
    plus = evaluate(rewritten, db, strict_fig1=True)
    original_part = plus.project_columns(list(original.columns))
    assert original_part.set_equal(original)


@given(op=algebra_queries(max_depth=2), db=databases())
@_SETTINGS
def test_cui_widom_equivalence(op, db):
    original = evaluate(op, db, strict_fig1=True)
    rewritten, plist = rewrite_algebra(op)
    plus = evaluate(rewritten, db, strict_fig1=True)

    # Group provenance columns by the base relation reference they trace.
    refs = op.base_references()
    ref_columns: dict[int, list[int]] = {ref.ref_id: [] for ref in refs}
    plus_columns = list(plus.columns)
    for attr in plist:
        ref_columns[attr.ref_id].append(plus_columns.index(attr.name))
    original_positions = [plus_columns.index(c) for c in original.columns]

    reference = lineage(op, db, strict_fig1=True)
    for result_tuple in original.distinct_rows():
        matching = [
            row
            for row in plus.distinct_rows()
            if tuple(row[i] for i in original_positions) == result_tuple
        ]
        for ref in refs:
            positions = ref_columns[ref.ref_id]
            witnessed = {
                tuple(row[i] for i in positions)
                for row in matching
                if not all(row[i] is None for i in positions)
            }
            expected = set(reference[result_tuple].get(ref.ref_id, frozenset()))
            assert witnessed == expected, (
                f"provenance mismatch for {result_tuple} on reference "
                f"{ref.name}#{ref.ref_id}: rewrite={witnessed} "
                f"cui-widom={expected}\nquery: {op}"
            )
