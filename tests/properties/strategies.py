"""Hypothesis strategies generating random Perm-algebra queries.

Queries are built over two base relations with small integer domains (to
force duplicates and join collisions) and occasional NULLs in non-key
columns.  Every operator output uses fresh column names, so schemas stay
collision-free through joins and the rewrite rules' renamings.
"""

from __future__ import annotations

import itertools

from hypothesis import strategies as st

from repro.algebra import (
    Aggregate,
    AggSpec,
    Attr,
    BagDifference,
    BagIntersection,
    BagProject,
    BagUnion,
    BaseRelation,
    Cross,
    Join,
    Select,
    SetDifference,
    SetIntersection,
    SetProject,
    SetUnion,
)
from repro.algebra.expr import BinOp, Cmp, Lit
from repro.storage.relation import Relation

_fresh = itertools.count()


def fresh_name(prefix: str = "c") -> str:
    return f"{prefix}{next(_fresh)}"


# Small domains force collisions; first column never NULL so that no base
# tuple is entirely NULL (all-NULL provenance groups mean "no contribution").
_value = st.integers(min_value=0, max_value=3)
_maybe_null_value = st.one_of(st.none(), _value)


@st.composite
def base_rows(draw) -> list[tuple]:
    size = draw(st.integers(min_value=0, max_value=5))
    return [
        (draw(_value), draw(_maybe_null_value))
        for _ in range(size)
    ]


@st.composite
def databases(draw) -> dict[str, Relation]:
    return {
        "r": Relation.from_rows(["r_k", "r_v"], draw(base_rows())),
        "s": Relation.from_rows(["s_k", "s_v"], draw(base_rows())),
    }


def _leaf(draw) -> BaseRelation:
    name = draw(st.sampled_from(["r", "s"]))
    return BaseRelation(name, [fresh_name(), fresh_name()])


def _condition(draw, columns: list[str]):
    column = draw(st.sampled_from(columns))
    op = draw(st.sampled_from(["=", "<", "<=", ">", ">=", "<>"]))
    return Cmp(op, Attr(column), Lit(draw(_value)))


@st.composite
def algebra_queries(draw, max_depth: int = 3):
    """A random algebra expression of bounded depth."""
    return _query(draw, max_depth)


def _query(draw, depth: int):
    if depth <= 0:
        return _leaf(draw)
    kind = draw(
        st.sampled_from(
            [
                "leaf",
                "select",
                "project_bag",
                "project_set",
                "join",
                "cross",
                "aggregate",
                "setop",
            ]
        )
    )
    if kind == "leaf":
        return _leaf(draw)
    if kind == "select":
        child = _query(draw, depth - 1)
        return Select(child, _condition(draw, child.schema()))
    if kind in ("project_bag", "project_set"):
        child = _query(draw, depth - 1)
        schema = child.schema()
        count = draw(st.integers(min_value=1, max_value=len(schema)))
        chosen = draw(
            st.lists(
                st.sampled_from(schema), min_size=count, max_size=count, unique=True
            )
        )
        items = [(Attr(c), fresh_name()) for c in chosen]
        if draw(st.booleans()) and len(schema) >= 2:
            items.append(
                (BinOp("+", Attr(schema[0]), Lit(draw(_value))), fresh_name())
            )
        cls = BagProject if kind == "project_bag" else SetProject
        return cls(child, items)
    if kind in ("join", "cross"):
        left = _query(draw, depth - 1)
        right = _query(draw, depth - 1)
        if kind == "cross":
            return Cross(left, right)
        condition = Cmp(
            "=",
            Attr(draw(st.sampled_from(left.schema()))),
            Attr(draw(st.sampled_from(right.schema()))),
        )
        join_kind = draw(st.sampled_from(["inner", "left", "right", "full"]))
        return Join(left, right, condition, join_kind)
    if kind == "aggregate":
        child = _query(draw, depth - 1)
        schema = child.schema()
        group_count = draw(st.integers(min_value=0, max_value=min(2, len(schema))))
        group_by = draw(
            st.lists(
                st.sampled_from(schema),
                min_size=group_count,
                max_size=group_count,
                unique=True,
            )
        )
        func = draw(st.sampled_from(["sum", "count", "min", "max"]))
        arg = None if func == "count" and draw(st.booleans()) else Attr(
            draw(st.sampled_from(schema))
        )
        return Aggregate(child, group_by, [AggSpec(func, arg, fresh_name())])
    # set operation: equal-width operands via projection onto two columns.
    left = _project_to_two(draw, _query(draw, depth - 1))
    right = _project_to_two(draw, _query(draw, depth - 1))
    cls = draw(
        st.sampled_from(
            [SetUnion, BagUnion, SetIntersection, BagIntersection,
             SetDifference, BagDifference]
        )
    )
    return cls(left, right)


def _project_to_two(draw, child):
    schema = child.schema()
    first = draw(st.sampled_from(schema))
    second = draw(st.sampled_from(schema))
    return BagProject(child, [(Attr(first), fresh_name()), (Attr(second), fresh_name())])
