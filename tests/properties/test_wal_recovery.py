"""Durability as a property: for *random* DML/DDL sequences (with
checkpoints interleaved) and a crash at *any* byte of the WAL tail, the
recovered database is equivalent to a twin that executed exactly the
durable statement prefix — heaps, epochs, statistics, matviews, and
witness + polynomial provenance reads alike."""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.wal import format as walfmt
from repro.wal.wal import segment_path

from tests.wal.harness import fingerprint, provenance_reads, replay_twin

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

_CHECKPOINT = object()  # workload marker: take a checkpoint here

_value = st.integers(min_value=0, max_value=5)


@st.composite
def workloads(draw):
    """A random statement sequence over a small evolving schema."""
    ops = [("sql", "CREATE TABLE r (k integer, v integer)")]
    extra_tables = 0
    views = 0
    made_matview = False
    for _ in range(draw(st.integers(min_value=2, max_value=8))):
        choice = draw(
            st.sampled_from(
                ["insert", "insert", "update", "delete", "analyze",
                 "create_table", "view", "matview", "checkpoint"]
            )
        )
        if choice == "insert":
            rows = draw(
                st.lists(st.tuples(_value, _value), min_size=1, max_size=3)
            )
            values = ", ".join(f"({k}, {v})" for k, v in rows)
            ops.append(("sql", f"INSERT INTO r VALUES {values}"))
        elif choice == "update":
            k, d = draw(_value), draw(_value)
            ops.append(
                ("sql", f"UPDATE r SET v = v + {d} WHERE k = {k}")
            )
        elif choice == "delete":
            ops.append(("sql", f"DELETE FROM r WHERE k = {draw(_value)}"))
        elif choice == "analyze":
            ops.append(("sql", "ANALYZE r"))
        elif choice == "create_table":
            extra_tables += 1
            name = f"extra{extra_tables}"
            ops.append(("sql", f"CREATE TABLE {name} (a integer)"))
            ops.append(("sql", f"INSERT INTO {name} VALUES ({draw(_value)})"))
        elif choice == "view":
            views += 1
            ops.append(
                ("sql", f"CREATE VIEW w{views} AS SELECT k FROM r WHERE v > 1")
            )
        elif choice == "matview" and not made_matview:
            made_matview = True
            ops.append(
                (
                    "sql",
                    "CREATE MATERIALIZED PROVENANCE VIEW mv AS "
                    "SELECT PROVENANCE k, v FROM r WHERE v > 0",
                )
            )
        elif choice == "checkpoint":
            ops.append(("checkpoint", None))
    return ops


@given(ops=workloads(), tail_fraction=st.floats(min_value=0.0, max_value=1.0))
@_SETTINGS
def test_recovery_equals_durable_prefix(ops, tail_fraction):
    tmp = Path(tempfile.mkdtemp(prefix="walprop"))
    try:
        db = repro.connect(wal_dir=tmp / "wal")
        statements = []
        ckpt_prefix = 0  # statements already covered by the last checkpoint
        for kind, sql in ops:
            if kind == "checkpoint":
                db.checkpoint()
                ckpt_prefix = len(statements)
            else:
                db.execute(sql)
                statements.append(sql)
        tail_segment = db.wal_status()["segment"]
        db.close()

        tail_path = segment_path(tmp / "wal", tail_segment)
        tail_bytes = tail_path.read_bytes()

        # Crash points: every frame boundary of the tail segment, plus
        # one hypothesis-drawn arbitrary byte offset.
        cuts = {walfmt.SEGMENT_HEADER_SIZE, len(tail_bytes)}
        offset = walfmt.SEGMENT_HEADER_SIZE
        for record in walfmt.scan_segment(tail_bytes).records:
            offset += len(walfmt.encode_record(record))
            cuts.add(offset)
        cuts.add(round(tail_fraction * len(tail_bytes)))

        twin_cache = {}
        for cut in sorted(cuts):
            crash_dir = tmp / f"crash{cut}"
            shutil.copytree(tmp / "wal", crash_dir)
            with open(segment_path(crash_dir, tail_segment), "r+b") as fh:
                fh.truncate(cut)

            durable = ckpt_prefix + len(
                walfmt.scan_segment(tail_bytes[:cut]).records
            )
            recovered = repro.connect(wal_dir=crash_dir)
            if durable not in twin_cache:
                twin = replay_twin(statements[:durable])
                twin_cache[durable] = (
                    fingerprint(twin),
                    provenance_reads(twin),
                )
            want_fp, want_reads = twin_cache[durable]
            assert fingerprint(recovered) == want_fp
            assert provenance_reads(recovered) == want_reads
            recovered.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
