"""Semiring provenance invariants over randomly generated SQL queries.

The two specialization properties of ``N[X]`` polynomials (Green et al.):

1. **Counting**: evaluating a result tuple's polynomial in the counting
   semiring (every tuple variable -> 1) yields the tuple's bag
   multiplicity in the original query result.  Holds for the positive
   bag algebra: SPJ queries (without duplicate elimination) and
   ``UNION ALL``.
2. **Boolean / lineage**: the variables of a result tuple's polynomial
   are exactly the contributing base tuples the witness-list rewriter
   attaches to that tuple, and evaluating the polynomial in the boolean
   semiring under the witness valuation is true.  Holds for SPJ and
   union/intersection set operations (EXCEPT differs by design: the
   polynomial keeps only the left input's provenance, witness lists also
   attach the filtering right-side tuples).

Together these pin the polynomial rewrite against two independent
oracles: the engine's own bag semantics and the paper's witness rewrite.
"""

from __future__ import annotations

from collections import Counter

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.semiring import get_semiring
from repro.semiring.minting import mint_variable

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)

_value = st.integers(min_value=0, max_value=3)
_rows_r = st.lists(st.tuples(_value, st.one_of(st.none(), _value)), max_size=6)
_rows_s = st.lists(st.tuples(_value, _value), max_size=6)


def _make_db(rows_r, rows_s) -> repro.PermDatabase:
    db = repro.connect()
    db.execute("CREATE TABLE r (k integer, v integer)")
    db.execute("CREATE TABLE s (k2 integer, w integer)")
    db.load_table("r", rows_r)
    db.load_table("s", rows_s)
    return db


def _polynomial_sql(sql: str) -> str:
    return sql.replace("SELECT", "SELECT PROVENANCE (polynomial)", 1)


@st.composite
def counting_queries(draw) -> str:
    """Positive bag-algebra queries: SPJ (no DISTINCT) and UNION ALL."""
    shape = draw(st.sampled_from(["filter", "join", "union_all", "project"]))
    comparison = draw(st.sampled_from(["=", "<", ">", "<=", ">=", "<>"]))
    constant = draw(_value)
    if shape == "filter":
        return f"SELECT k, v FROM r WHERE k {comparison} {constant}"
    if shape == "join":
        return f"SELECT k, w FROM r, s WHERE k {comparison} k2"
    if shape == "project":
        return "SELECT k FROM r"
    return "SELECT k FROM r UNION ALL SELECT k2 FROM s"


@given(rows_r=_rows_r, rows_s=_rows_s, sql=counting_queries())
@_SETTINGS
def test_counting_semiring_equals_bag_multiplicity(rows_r, rows_s, sql):
    db = _make_db(rows_r, rows_s)
    normal = db.execute(sql)
    poly = db.execute(_polynomial_sql(sql))
    counting = get_semiring("counting")

    width = len(normal.columns)
    assert poly.columns == normal.columns + ["prov_polynomial"]
    assert poly.annotation_column == "prov_polynomial"

    multiplicities = Counter(normal.rows)
    # One annotated row per distinct original tuple (the K-relation view).
    assert {row[:width] for row in poly.rows} == set(multiplicities)
    assert len(poly.rows) == len(set(multiplicities))
    for row in poly.rows:
        evaluated = row[width].evaluate(semiring=counting)
        assert evaluated == multiplicities[row[:width]], (sql, row)


@st.composite
def lineage_queries(draw) -> str:
    """SPJ + union/intersection shapes comparable with witness lists."""
    shape = draw(st.sampled_from(["filter", "join", "setop"]))
    comparison = draw(st.sampled_from(["=", "<", ">", "<=", ">=", "<>"]))
    constant = draw(_value)
    if shape == "filter":
        return f"SELECT k, v FROM r WHERE k {comparison} {constant}"
    if shape == "join":
        return f"SELECT k, w FROM r, s WHERE k {comparison} k2"
    op = draw(st.sampled_from(["UNION", "UNION ALL", "INTERSECT", "INTERSECT ALL"]))
    return f"SELECT k FROM r {op} SELECT k2 FROM s"


@given(rows_r=_rows_r, rows_s=_rows_s, sql=lineage_queries())
@_SETTINGS
def test_boolean_semiring_agrees_with_witness_lists(rows_r, rows_s, sql):
    db = _make_db(rows_r, rows_s)
    witness = db.provenance(sql)
    poly = db.execute(_polynomial_sql(sql))
    boolean = get_semiring("boolean")

    width = len(witness.columns) - sum(
        1 for c in witness.columns if c.startswith("prov_")
    )

    # Group the witness provenance columns into per-base-relation blocks.
    blocks: dict[str, list[int]] = {}
    for i, column in enumerate(witness.columns[width:], start=width):
        table = column.split("_")[1]
        blocks.setdefault(table, []).append(i)

    # Witness oracle: for each result tuple, the set of contributing base
    # tuples encoded as minted variable names.
    witnessed: dict[tuple, set[str]] = {}
    for row in witness.rows:
        variables = witnessed.setdefault(row[:width], set())
        for table, positions in blocks.items():
            block = tuple(row[i] for i in positions)
            if all(value is None for value in block):
                continue
            variables.add(mint_variable(table, block))

    annotated = {row[:width]: row[width] for row in poly.rows}
    assert set(annotated) == set(witnessed), sql
    for tuple_, polynomial in annotated.items():
        expected = witnessed[tuple_]
        assert polynomial.variables() == expected, (sql, tuple_)
        # The boolean evaluation under the witness valuation must confirm
        # the tuple's existence.
        valuation = {name: True for name in expected}
        assert polynomial.evaluate(valuation, boolean) is True, (sql, tuple_)


@given(rows_r=_rows_r, sql=st.sampled_from([
    "SELECT k, sum(v), count(*) FROM r GROUP BY k",
    "SELECT k, count(*) FROM r WHERE v IS NOT NULL GROUP BY k",
]))
@_SETTINGS
def test_counting_semiring_counts_group_derivations(rows_r, sql):
    """For GROUP BY, the polynomial sums one variable per group member,
    so its counting evaluation equals count(*) of the group."""
    db = _make_db(rows_r, [])
    poly = db.execute(_polynomial_sql(sql))
    counting = get_semiring("counting")
    count_index = len(poly.columns) - 2  # count(*) is the last visible column
    for row in poly.rows:
        assert row[-1].evaluate(semiring=counting) == row[count_index], (sql, row)
