"""The eight-table TPC-H schema (TPC-H specification rev. 2.x, §1.4)."""

from __future__ import annotations

from repro.catalog.schema import TableSchema
from repro.datatypes import SQLType

I = SQLType.INTEGER
F = SQLType.FLOAT
T = SQLType.TEXT
D = SQLType.DATE


REGION = TableSchema.of(
    "region",
    [("r_regionkey", I), ("r_name", T), ("r_comment", T)],
    primary_key=["r_regionkey"],
)

NATION = TableSchema.of(
    "nation",
    [("n_nationkey", I), ("n_name", T), ("n_regionkey", I), ("n_comment", T)],
    primary_key=["n_nationkey"],
)

SUPPLIER = TableSchema.of(
    "supplier",
    [
        ("s_suppkey", I),
        ("s_name", T),
        ("s_address", T),
        ("s_nationkey", I),
        ("s_phone", T),
        ("s_acctbal", F),
        ("s_comment", T),
    ],
    primary_key=["s_suppkey"],
)

PART = TableSchema.of(
    "part",
    [
        ("p_partkey", I),
        ("p_name", T),
        ("p_mfgr", T),
        ("p_brand", T),
        ("p_type", T),
        ("p_size", I),
        ("p_container", T),
        ("p_retailprice", F),
        ("p_comment", T),
    ],
    primary_key=["p_partkey"],
)

PARTSUPP = TableSchema.of(
    "partsupp",
    [
        ("ps_partkey", I),
        ("ps_suppkey", I),
        ("ps_availqty", I),
        ("ps_supplycost", F),
        ("ps_comment", T),
    ],
    primary_key=["ps_partkey", "ps_suppkey"],
)

CUSTOMER = TableSchema.of(
    "customer",
    [
        ("c_custkey", I),
        ("c_name", T),
        ("c_address", T),
        ("c_nationkey", I),
        ("c_phone", T),
        ("c_acctbal", F),
        ("c_mktsegment", T),
        ("c_comment", T),
    ],
    primary_key=["c_custkey"],
)

ORDERS = TableSchema.of(
    "orders",
    [
        ("o_orderkey", I),
        ("o_custkey", I),
        ("o_orderstatus", T),
        ("o_totalprice", F),
        ("o_orderdate", D),
        ("o_orderpriority", T),
        ("o_clerk", T),
        ("o_shippriority", I),
        ("o_comment", T),
    ],
    primary_key=["o_orderkey"],
)

LINEITEM = TableSchema.of(
    "lineitem",
    [
        ("l_orderkey", I),
        ("l_partkey", I),
        ("l_suppkey", I),
        ("l_linenumber", I),
        ("l_quantity", F),
        ("l_extendedprice", F),
        ("l_discount", F),
        ("l_tax", F),
        ("l_returnflag", T),
        ("l_linestatus", T),
        ("l_shipdate", D),
        ("l_commitdate", D),
        ("l_receiptdate", D),
        ("l_shipinstruct", T),
        ("l_shipmode", T),
        ("l_comment", T),
    ],
    primary_key=["l_orderkey", "l_linenumber"],
)

ALL_SCHEMAS = [REGION, NATION, SUPPLIER, PART, PARTSUPP, CUSTOMER, ORDERS, LINEITEM]
