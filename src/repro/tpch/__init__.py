"""TPC-H substrate: schema, data generator and query generator.

The paper evaluates Perm on the TPC-H decision-support benchmark
(section V).  Since the official ``dbgen``/``qgen`` binaries are not
available offline, this package implements a pure-Python equivalent that
preserves the schema, the column value distributions and the random
query parameter substitution, at laptop-sized scale factors.
"""

from repro.tpch.dbgen import generate, load_into
from repro.tpch.queries import SUPPORTED_QUERIES, UNSUPPORTED_QUERIES, query_template
from repro.tpch.qgen import generate_query

__all__ = [
    "generate",
    "load_into",
    "SUPPORTED_QUERIES",
    "UNSUPPORTED_QUERIES",
    "query_template",
    "generate_query",
]
