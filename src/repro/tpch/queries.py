"""The TPC-H queries supported by the Perm prototype, as SQL templates.

The paper (section V): "The Perm prototype currently supports all
SQL-features implemented by PostgreSQL except correlated sublinks, thus
we can not compute the provenance of queries 2,4,17,18,20,21 and 22".
The remaining 15 queries are reproduced here, adapted minimally to the
repro dialect (Q15's revenue view is inlined as a FROM subquery; the
semantics including the scalar-max sublink are unchanged).

Templates use ``str.format`` placeholders filled by
:mod:`repro.tpch.qgen` with spec-conformant random parameters.
"""

from __future__ import annotations

SUPPORTED_QUERIES = (1, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 19)
# Excluded exactly as in the paper: correlated sublinks.
UNSUPPORTED_QUERIES = (2, 4, 17, 18, 20, 21, 22)

_TEMPLATES: dict[int, str] = {}

_TEMPLATES[1] = """
SELECT
    l_returnflag,
    l_linestatus,
    sum(l_quantity) AS sum_qty,
    sum(l_extendedprice) AS sum_base_price,
    sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
    sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
    avg(l_quantity) AS avg_qty,
    avg(l_extendedprice) AS avg_price,
    avg(l_discount) AS avg_disc,
    count(*) AS count_order
FROM lineitem
WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '{delta}' DAY
GROUP BY l_returnflag, l_linestatus
ORDER BY l_returnflag, l_linestatus
"""

_TEMPLATES[3] = """
SELECT
    l_orderkey,
    sum(l_extendedprice * (1 - l_discount)) AS revenue,
    o_orderdate,
    o_shippriority
FROM customer, orders, lineitem
WHERE c_mktsegment = '{segment}'
  AND c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate < DATE '{date}'
  AND l_shipdate > DATE '{date}'
GROUP BY l_orderkey, o_orderdate, o_shippriority
ORDER BY revenue DESC, o_orderdate
LIMIT 10
"""

_TEMPLATES[5] = """
SELECT
    n_name,
    sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM customer, orders, lineitem, supplier, nation, region
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND l_suppkey = s_suppkey
  AND c_nationkey = s_nationkey
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = '{region}'
  AND o_orderdate >= DATE '{date}'
  AND o_orderdate < DATE '{date}' + INTERVAL '1' YEAR
GROUP BY n_name
ORDER BY revenue DESC
"""

_TEMPLATES[6] = """
SELECT sum(l_extendedprice * l_discount) AS revenue
FROM lineitem
WHERE l_shipdate >= DATE '{date}'
  AND l_shipdate < DATE '{date}' + INTERVAL '1' YEAR
  AND l_discount BETWEEN {discount} - 0.01 AND {discount} + 0.01
  AND l_quantity < {quantity}
"""

_TEMPLATES[7] = """
SELECT supp_nation, cust_nation, l_year, sum(volume) AS revenue
FROM (
    SELECT
        n1.n_name AS supp_nation,
        n2.n_name AS cust_nation,
        EXTRACT(YEAR FROM l_shipdate) AS l_year,
        l_extendedprice * (1 - l_discount) AS volume
    FROM supplier, lineitem, orders, customer, nation AS n1, nation AS n2
    WHERE s_suppkey = l_suppkey
      AND o_orderkey = l_orderkey
      AND c_custkey = o_custkey
      AND s_nationkey = n1.n_nationkey
      AND c_nationkey = n2.n_nationkey
      AND (
            (n1.n_name = '{nation1}' AND n2.n_name = '{nation2}')
         OR (n1.n_name = '{nation2}' AND n2.n_name = '{nation1}')
      )
      AND l_shipdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
) AS shipping
GROUP BY supp_nation, cust_nation, l_year
ORDER BY supp_nation, cust_nation, l_year
"""

_TEMPLATES[8] = """
SELECT
    o_year,
    sum(CASE WHEN nation = '{nation}' THEN volume ELSE 0 END) / sum(volume)
        AS mkt_share
FROM (
    SELECT
        EXTRACT(YEAR FROM o_orderdate) AS o_year,
        l_extendedprice * (1 - l_discount) AS volume,
        n2.n_name AS nation
    FROM part, supplier, lineitem, orders, customer,
         nation AS n1, nation AS n2, region
    WHERE p_partkey = l_partkey
      AND s_suppkey = l_suppkey
      AND l_orderkey = o_orderkey
      AND o_custkey = c_custkey
      AND c_nationkey = n1.n_nationkey
      AND n1.n_regionkey = r_regionkey
      AND r_name = '{region}'
      AND s_nationkey = n2.n_nationkey
      AND o_orderdate BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
      AND p_type = '{type}'
) AS all_nations
GROUP BY o_year
ORDER BY o_year
"""

_TEMPLATES[9] = """
SELECT nation, o_year, sum(amount) AS sum_profit
FROM (
    SELECT
        n_name AS nation,
        EXTRACT(YEAR FROM o_orderdate) AS o_year,
        l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity
            AS amount
    FROM part, supplier, lineitem, partsupp, orders, nation
    WHERE s_suppkey = l_suppkey
      AND ps_suppkey = l_suppkey
      AND ps_partkey = l_partkey
      AND p_partkey = l_partkey
      AND o_orderkey = l_orderkey
      AND s_nationkey = n_nationkey
      AND p_name LIKE '%{color}%'
) AS profit
GROUP BY nation, o_year
ORDER BY nation, o_year DESC
"""

_TEMPLATES[10] = """
SELECT
    c_custkey,
    c_name,
    sum(l_extendedprice * (1 - l_discount)) AS revenue,
    c_acctbal,
    n_name,
    c_address,
    c_phone,
    c_comment
FROM customer, orders, lineitem, nation
WHERE c_custkey = o_custkey
  AND l_orderkey = o_orderkey
  AND o_orderdate >= DATE '{date}'
  AND o_orderdate < DATE '{date}' + INTERVAL '3' MONTH
  AND l_returnflag = 'R'
  AND c_nationkey = n_nationkey
GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment
ORDER BY revenue DESC
LIMIT 20
"""

_TEMPLATES[11] = """
SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS value
FROM partsupp, supplier, nation
WHERE ps_suppkey = s_suppkey
  AND s_nationkey = n_nationkey
  AND n_name = '{nation}'
GROUP BY ps_partkey
HAVING sum(ps_supplycost * ps_availqty) > (
    SELECT sum(ps_supplycost * ps_availqty) * {fraction}
    FROM partsupp, supplier, nation
    WHERE ps_suppkey = s_suppkey
      AND s_nationkey = n_nationkey
      AND n_name = '{nation}'
)
ORDER BY value DESC
"""

_TEMPLATES[12] = """
SELECT
    l_shipmode,
    sum(CASE WHEN o_orderpriority = '1-URGENT' OR o_orderpriority = '2-HIGH'
             THEN 1 ELSE 0 END) AS high_line_count,
    sum(CASE WHEN o_orderpriority <> '1-URGENT'
              AND o_orderpriority <> '2-HIGH'
             THEN 1 ELSE 0 END) AS low_line_count
FROM orders, lineitem
WHERE o_orderkey = l_orderkey
  AND l_shipmode IN ('{mode1}', '{mode2}')
  AND l_commitdate < l_receiptdate
  AND l_shipdate < l_commitdate
  AND l_receiptdate >= DATE '{date}'
  AND l_receiptdate < DATE '{date}' + INTERVAL '1' YEAR
GROUP BY l_shipmode
ORDER BY l_shipmode
"""

_TEMPLATES[13] = """
SELECT c_count, count(*) AS custdist
FROM (
    SELECT c_custkey AS c_key, count(o_orderkey) AS c_count
    FROM customer LEFT OUTER JOIN orders
      ON c_custkey = o_custkey AND o_comment NOT LIKE '%{word1}%{word2}%'
    GROUP BY c_custkey
) AS c_orders
GROUP BY c_count
ORDER BY custdist DESC, c_count DESC
"""

_TEMPLATES[14] = """
SELECT
    100.00 * sum(CASE WHEN p_type LIKE 'PROMO%'
                      THEN l_extendedprice * (1 - l_discount)
                      ELSE 0 END) / sum(l_extendedprice * (1 - l_discount))
        AS promo_revenue
FROM lineitem, part
WHERE l_partkey = p_partkey
  AND l_shipdate >= DATE '{date}'
  AND l_shipdate < DATE '{date}' + INTERVAL '1' MONTH
"""

# Q15: the revenue view is inlined as FROM subqueries; the defining scalar
# max-sublink structure is preserved.
_TEMPLATES[15] = """
SELECT s_suppkey, s_name, s_address, s_phone, total_revenue
FROM supplier, (
    SELECT l_suppkey AS supplier_no,
           sum(l_extendedprice * (1 - l_discount)) AS total_revenue
    FROM lineitem
    WHERE l_shipdate >= DATE '{date}'
      AND l_shipdate < DATE '{date}' + INTERVAL '3' MONTH
    GROUP BY l_suppkey
) AS revenue
WHERE s_suppkey = supplier_no
  AND total_revenue = (
      SELECT max(total_revenue)
      FROM (
          SELECT l_suppkey AS supplier_no,
                 sum(l_extendedprice * (1 - l_discount)) AS total_revenue
          FROM lineitem
          WHERE l_shipdate >= DATE '{date}'
            AND l_shipdate < DATE '{date}' + INTERVAL '3' MONTH
          GROUP BY l_suppkey
      ) AS revenue_inner
  )
ORDER BY s_suppkey
"""

_TEMPLATES[16] = """
SELECT p_brand, p_type, p_size, count(DISTINCT ps_suppkey) AS supplier_cnt
FROM partsupp, part
WHERE p_partkey = ps_partkey
  AND p_brand <> '{brand}'
  AND p_type NOT LIKE '{type}%'
  AND p_size IN ({size1}, {size2}, {size3}, {size4},
                 {size5}, {size6}, {size7}, {size8})
  AND ps_suppkey NOT IN (
      SELECT s_suppkey FROM supplier
      WHERE s_comment LIKE '%Customer%Complaints%'
  )
GROUP BY p_brand, p_type, p_size
ORDER BY supplier_cnt DESC, p_brand, p_type, p_size
"""

_TEMPLATES[19] = """
SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue
FROM lineitem, part
WHERE (
        p_partkey = l_partkey
    AND p_brand = '{brand1}'
    AND p_container IN ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG')
    AND l_quantity >= {quantity1} AND l_quantity <= {quantity1} + 10
    AND p_size BETWEEN 1 AND 5
    AND l_shipmode IN ('AIR', 'REG AIR')
    AND l_shipinstruct = 'DELIVER IN PERSON'
) OR (
        p_partkey = l_partkey
    AND p_brand = '{brand2}'
    AND p_container IN ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK')
    AND l_quantity >= {quantity2} AND l_quantity <= {quantity2} + 10
    AND p_size BETWEEN 1 AND 10
    AND l_shipmode IN ('AIR', 'REG AIR')
    AND l_shipinstruct = 'DELIVER IN PERSON'
) OR (
        p_partkey = l_partkey
    AND p_brand = '{brand3}'
    AND p_container IN ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG')
    AND l_quantity >= {quantity3} AND l_quantity <= {quantity3} + 10
    AND p_size BETWEEN 1 AND 15
    AND l_shipmode IN ('AIR', 'REG AIR')
    AND l_shipinstruct = 'DELIVER IN PERSON'
)
"""


# ---------------------------------------------------------------------------
# The seven queries the paper's prototype could not rewrite (correlated
# sublinks).  The repro engine still *executes* them normally -- "Perm can
# run almost all of the queries of the TPC-H benchmark" -- and the
# provenance rewriter raises RewriteError for the correlated ones.
# ---------------------------------------------------------------------------

_TEMPLATES[2] = """
SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone,
       s_comment
FROM part, supplier, partsupp, nation, region
WHERE p_partkey = ps_partkey
  AND s_suppkey = ps_suppkey
  AND p_size = {size}
  AND p_type LIKE '%{type}'
  AND s_nationkey = n_nationkey
  AND n_regionkey = r_regionkey
  AND r_name = '{region}'
  AND ps_supplycost = (
      SELECT min(ps_supplycost)
      FROM partsupp, supplier, nation, region
      WHERE p_partkey = ps_partkey
        AND s_suppkey = ps_suppkey
        AND s_nationkey = n_nationkey
        AND n_regionkey = r_regionkey
        AND r_name = '{region}'
  )
ORDER BY s_acctbal DESC, n_name, s_name, p_partkey
LIMIT 100
"""

_TEMPLATES[4] = """
SELECT o_orderpriority, count(*) AS order_count
FROM orders
WHERE o_orderdate >= DATE '{date}'
  AND o_orderdate < DATE '{date}' + INTERVAL '3' MONTH
  AND EXISTS (
      SELECT 1 FROM lineitem
      WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate
  )
GROUP BY o_orderpriority
ORDER BY o_orderpriority
"""

_TEMPLATES[17] = """
SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
FROM lineitem, part
WHERE p_partkey = l_partkey
  AND p_brand = '{brand}'
  AND p_container = '{container}'
  AND l_quantity < (
      SELECT 0.2 * avg(l_quantity)
      FROM lineitem AS l2
      WHERE l2.l_partkey = p_partkey
  )
"""

_TEMPLATES[18] = """
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       sum(l_quantity)
FROM customer, orders, lineitem
WHERE o_orderkey IN (
      SELECT l_orderkey FROM lineitem
      GROUP BY l_orderkey HAVING sum(l_quantity) > {quantity}
  )
  AND c_custkey = o_custkey
  AND o_orderkey = l_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100
"""

_TEMPLATES[20] = """
SELECT s_name, s_address
FROM supplier, nation
WHERE s_suppkey IN (
      SELECT ps_suppkey FROM partsupp
      WHERE ps_partkey IN (
            SELECT p_partkey FROM part WHERE p_name LIKE '{color}%'
        )
        AND ps_availqty > (
            SELECT 0.5 * sum(l_quantity)
            FROM lineitem
            WHERE l_partkey = ps_partkey
              AND l_suppkey = ps_suppkey
              AND l_shipdate >= DATE '{date}'
              AND l_shipdate < DATE '{date}' + INTERVAL '1' YEAR
        )
  )
  AND s_nationkey = n_nationkey
  AND n_name = '{nation}'
ORDER BY s_name
"""

_TEMPLATES[21] = """
SELECT s_name, count(*) AS numwait
FROM supplier, lineitem AS l1, orders, nation
WHERE s_suppkey = l1.l_suppkey
  AND o_orderkey = l1.l_orderkey
  AND o_orderstatus = 'F'
  AND l1.l_receiptdate > l1.l_commitdate
  AND EXISTS (
      SELECT 1 FROM lineitem AS l2
      WHERE l2.l_orderkey = l1.l_orderkey
        AND l2.l_suppkey <> l1.l_suppkey
  )
  AND NOT EXISTS (
      SELECT 1 FROM lineitem AS l3
      WHERE l3.l_orderkey = l1.l_orderkey
        AND l3.l_suppkey <> l1.l_suppkey
        AND l3.l_receiptdate > l3.l_commitdate
  )
  AND s_nationkey = n_nationkey
  AND n_name = '{nation}'
GROUP BY s_name
ORDER BY numwait DESC, s_name
LIMIT 100
"""

_TEMPLATES[22] = """
SELECT cntrycode, count(*) AS numcust, sum(c_acctbal) AS totacctbal
FROM (
    SELECT SUBSTRING(c_phone FROM 1 FOR 2) AS cntrycode, c_acctbal
    FROM customer
    WHERE SUBSTRING(c_phone FROM 1 FOR 2) IN
          ('{c1}', '{c2}', '{c3}', '{c4}', '{c5}', '{c6}', '{c7}')
      AND c_acctbal > (
          SELECT avg(c_acctbal) FROM customer
          WHERE c_acctbal > 0.00
            AND SUBSTRING(c_phone FROM 1 FOR 2) IN
                ('{c1}', '{c2}', '{c3}', '{c4}', '{c5}', '{c6}', '{c7}')
      )
      AND NOT EXISTS (
          SELECT 1 FROM orders WHERE o_custkey = c_custkey
      )
) AS custsale
GROUP BY cntrycode
ORDER BY cntrycode
"""

ALL_QUERIES = tuple(sorted(_TEMPLATES))


def query_template(number: int) -> str:
    """The SQL template of a TPC-H query (1..22 minus a few shapes).

    Every query the engine can express is available; whether the Perm
    rewriter supports its *provenance* is a separate question (see
    SUPPORTED_QUERIES / UNSUPPORTED_QUERIES).
    """
    if number not in _TEMPLATES:
        raise KeyError(f"unknown TPC-H query number {number}")
    return _TEMPLATES[number].strip()
