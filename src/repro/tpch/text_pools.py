"""Word pools for TPC-H text columns (specification §4.2.2.13 and App. A).

The pools drive the value distributions that the benchmark queries'
selectivities depend on: part names/types/containers, order priorities,
ship modes, market segments, and the grammar-generated comments (which
must occasionally contain the patterns Q13 and Q16 filter on).
"""

from __future__ import annotations

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

# nation -> region index (TPC-H appendix A)
NATIONS = [
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

P_NAME_WORDS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished",
    "chartreuse", "chiffon", "chocolate", "coral", "cornflower",
    "cornsilk", "cream", "cyan", "dark", "deep", "dim", "dodger", "drab",
    "firebrick", "floral", "forest", "frosted", "gainsboro", "ghost",
    "goldenrod", "green", "grey", "honeydew", "hot", "indian", "ivory",
    "khaki", "lace", "lavender", "lawn", "lemon", "light", "lime", "linen",
    "magenta", "maroon", "medium", "metallic", "midnight", "mint", "misty",
    "moccasin", "navajo", "navy", "olive", "orange", "orchid", "pale",
    "papaya", "peach", "peru", "pink", "plum", "powder", "puff", "purple",
    "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell",
    "sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan",
    "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
]

TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

CONTAINER_SYLLABLE_1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINER_SYLLABLE_2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]

PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]

SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]

SHIP_INSTRUCTIONS = [
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"
]

# A small grammar-free word soup for comments; patterns that the queries
# grep for (Q13: "special ... requests", Q16: "Customer ... Complaints")
# are injected explicitly by dbgen with spec-like probabilities.
COMMENT_WORDS = [
    "furiously", "slyly", "carefully", "blithely", "quickly", "fluffily",
    "final", "ironic", "pending", "bold", "express", "regular", "special",
    "even", "silent", "unusual", "brave", "quiet", "ruthless", "daring",
    "deposits", "foxes", "accounts", "packages", "instructions", "requests",
    "theodolites", "dependencies", "excuses", "platelets", "asymptotes",
    "courts", "dolphins", "multipliers", "sauternes", "warthogs", "ideas",
    "sleep", "wake", "haggle", "nag", "use", "boost", "detect", "engage",
    "cajole", "integrate", "among", "according", "to", "the", "above",
    "after", "against", "along", "beyond", "beneath", "under", "over",
]
