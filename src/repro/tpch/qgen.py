"""Random query parameter substitution (qgen equivalent).

The paper generated "a set of 100 versions for each benchmark query" with
the TPC-H query generator; this module reproduces that: parameter ranges
follow the specification's per-query substitution rules, driven by a
seeded RNG so workloads are reproducible.
"""

from __future__ import annotations

import random

from repro.tpch import text_pools as pools
from repro.tpch.queries import query_template

_NATION_NAMES = [name for name, _ in pools.NATIONS]

_COLORS = [
    "green", "red", "blue", "brown", "pink", "ivory", "azure", "navy",
    "olive", "peach", "plum", "salmon", "wheat",
]

_Q13_WORD1 = ["special", "pending", "unusual", "express"]
_Q13_WORD2 = ["packages", "requests", "accounts", "deposits"]


def _random_date(rng: random.Random, year_lo: int, year_hi: int, month_hi: int = 12) -> str:
    year = rng.randint(year_lo, year_hi)
    month = rng.randint(1, month_hi)
    return f"{year:04d}-{month:02d}-01"


def generate_parameters(number: int, rng: random.Random) -> dict:
    """Spec-conformant random parameters for one query."""
    if number == 1:
        return {"delta": rng.randint(60, 120)}
    if number == 3:
        return {
            "segment": rng.choice(pools.SEGMENTS),
            "date": f"1995-03-{rng.randint(1, 28):02d}",
        }
    if number == 5:
        return {
            "region": rng.choice(pools.REGIONS),
            "date": f"{rng.randint(1993, 1997)}-01-01",
        }
    if number == 6:
        return {
            "date": f"{rng.randint(1993, 1997)}-01-01",
            "discount": f"0.0{rng.randint(2, 9)}",
            "quantity": rng.choice([24, 25]),
        }
    if number == 7:
        nation1, nation2 = rng.sample(_NATION_NAMES, 2)
        return {"nation1": nation1, "nation2": nation2}
    if number == 8:
        nation = rng.choice(_NATION_NAMES)
        region = pools.REGIONS[dict(pools.NATIONS)[nation]]
        part_type = (
            f"{rng.choice(pools.TYPE_SYLLABLE_1)} "
            f"{rng.choice(pools.TYPE_SYLLABLE_2)} "
            f"{rng.choice(pools.TYPE_SYLLABLE_3)}"
        )
        return {"nation": nation, "region": region, "type": part_type}
    if number == 9:
        return {"color": rng.choice(_COLORS)}
    if number == 10:
        return {"date": _random_date(rng, 1993, 1994)}
    if number == 11:
        # The spec divides by SF; small scale factors keep more groups.
        return {"nation": rng.choice(_NATION_NAMES), "fraction": "0.0001"}
    if number == 12:
        mode1, mode2 = rng.sample(pools.SHIP_MODES, 2)
        return {
            "mode1": mode1,
            "mode2": mode2,
            "date": f"{rng.randint(1993, 1997)}-01-01",
        }
    if number == 13:
        return {"word1": rng.choice(_Q13_WORD1), "word2": rng.choice(_Q13_WORD2)}
    if number == 14:
        return {"date": _random_date(rng, 1993, 1997)}
    if number == 15:
        return {"date": _random_date(rng, 1993, 1997, month_hi=10)}
    if number == 16:
        sizes = rng.sample(range(1, 51), 8)
        return {
            "brand": f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
            "type": f"{rng.choice(pools.TYPE_SYLLABLE_1)} "
                    f"{rng.choice(pools.TYPE_SYLLABLE_2)}",
            **{f"size{i + 1}": size for i, size in enumerate(sizes)},
        }
    if number == 19:
        return {
            "brand1": f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
            "brand2": f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
            "brand3": f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
            "quantity1": rng.randint(1, 10),
            "quantity2": rng.randint(10, 20),
            "quantity3": rng.randint(20, 30),
        }
    # Queries outside the paper's supported set (still executable normally).
    if number == 2:
        return {
            "size": rng.randint(1, 50),
            "type": rng.choice(pools.TYPE_SYLLABLE_3),
            "region": rng.choice(pools.REGIONS),
        }
    if number == 4:
        return {"date": _random_date(rng, 1993, 1997, month_hi=10)}
    if number == 17:
        return {
            "brand": f"Brand#{rng.randint(1, 5)}{rng.randint(1, 5)}",
            "container": f"{rng.choice(pools.CONTAINER_SYLLABLE_1)} "
                         f"{rng.choice(pools.CONTAINER_SYLLABLE_2)}",
        }
    if number == 18:
        return {"quantity": rng.randint(312, 315)}
    if number == 20:
        return {
            "color": rng.choice(_COLORS),
            "date": f"{rng.randint(1993, 1997)}-01-01",
            "nation": rng.choice(_NATION_NAMES),
        }
    if number == 21:
        return {"nation": rng.choice(_NATION_NAMES)}
    if number == 22:
        codes = rng.sample(range(10, 35), 7)
        return {f"c{i + 1}": str(code) for i, code in enumerate(codes)}
    raise KeyError(f"no parameter rules for TPC-H Q{number}")


def generate_query(
    number: int, seed: int = 0, provenance: bool = False
) -> str:
    """One randomized instance of a TPC-H query.

    With ``provenance=True`` the SQL-PLE PROVENANCE keyword is injected
    into the outermost select-clause.
    """
    rng = random.Random(seed * 1000 + number)
    sql = query_template(number).format(**generate_parameters(number, rng))
    if provenance:
        sql = sql.replace("SELECT", "SELECT PROVENANCE", 1)
    return sql


def generate_workload(
    number: int, versions: int, provenance: bool = False, seed: int = 0
) -> list[str]:
    """A set of randomized versions of one query (paper: 100 versions)."""
    return [
        generate_query(number, seed=seed + i, provenance=provenance)
        for i in range(versions)
    ]
