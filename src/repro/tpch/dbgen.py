"""Deterministic TPC-H data generator (dbgen equivalent).

Row counts follow the specification's scaling rules::

    supplier = SF * 10_000        customer = SF * 150_000
    part     = SF * 200_000       orders   = SF * 1_500_000
    partsupp = 4 * part           lineitem = 1..7 lines per order

Value distributions preserve what the benchmark queries select on:
uniform dates in [1992-01-01, 1998-08-02], discounts in [0, 0.10],
quantities in [1, 50], the five market segments, the seven ship modes,
and the comment patterns used by Q13 and Q16.  Everything is generated
from a seeded ``random.Random``, so a (scale_factor, seed) pair always
yields the same database -- benchmark configurations are reproducible.
"""

from __future__ import annotations

import datetime
import random
from dataclasses import dataclass, field

from repro.database import PermDatabase
from repro.tpch import text_pools as pools
from repro.tpch.schema import ALL_SCHEMAS

START_DATE = datetime.date(1992, 1, 1)
END_DATE = datetime.date(1998, 8, 2)
CURRENT_DATE = datetime.date(1995, 6, 17)

_DATE_RANGE_DAYS = (END_DATE - START_DATE).days


@dataclass
class TPCHData:
    """All eight generated tables, as lists of row tuples."""

    scale_factor: float
    seed: int
    region: list[tuple] = field(default_factory=list)
    nation: list[tuple] = field(default_factory=list)
    supplier: list[tuple] = field(default_factory=list)
    part: list[tuple] = field(default_factory=list)
    partsupp: list[tuple] = field(default_factory=list)
    customer: list[tuple] = field(default_factory=list)
    orders: list[tuple] = field(default_factory=list)
    lineitem: list[tuple] = field(default_factory=list)

    def tables(self) -> dict[str, list[tuple]]:
        return {
            "region": self.region,
            "nation": self.nation,
            "supplier": self.supplier,
            "part": self.part,
            "partsupp": self.partsupp,
            "customer": self.customer,
            "orders": self.orders,
            "lineitem": self.lineitem,
        }

    def total_rows(self) -> int:
        return sum(len(rows) for rows in self.tables().values())


def _comment(rng: random.Random, min_words: int = 4, max_words: int = 10) -> str:
    count = rng.randint(min_words, max_words)
    return " ".join(rng.choice(pools.COMMENT_WORDS) for _ in range(count))


def _phone(rng: random.Random, nationkey: int) -> str:
    return (
        f"{10 + nationkey}-{rng.randint(100, 999)}-"
        f"{rng.randint(100, 999)}-{rng.randint(1000, 9999)}"
    )


def _random_date(rng: random.Random) -> datetime.date:
    return START_DATE + datetime.timedelta(days=rng.randint(0, _DATE_RANGE_DAYS))


def generate(scale_factor: float = 0.001, seed: int = 42) -> TPCHData:
    """Generate a TPC-H database at the given scale factor."""
    rng = random.Random(seed)
    data = TPCHData(scale_factor=scale_factor, seed=seed)

    n_supplier = max(int(scale_factor * 10_000), 3)
    n_part = max(int(scale_factor * 200_000), 10)
    n_customer = max(int(scale_factor * 150_000), 10)
    n_orders = max(int(scale_factor * 1_500_000), 30)

    # region / nation: fixed 5 + 25 rows.
    for key, name in enumerate(pools.REGIONS):
        data.region.append((key, name, _comment(rng)))
    for key, (name, regionkey) in enumerate(pools.NATIONS):
        data.nation.append((key, name, regionkey, _comment(rng)))

    # supplier; ~5 per 10000 get the Q16 complaints pattern.
    for key in range(1, n_supplier + 1):
        nationkey = rng.randrange(25)
        comment = _comment(rng, 6, 12)
        roll = rng.random()
        if roll < 0.0005 or (n_supplier <= 100 and roll < 0.05):
            comment = f"{comment} Customer {_comment(rng, 1, 2)} Complaints {comment}"
        data.supplier.append(
            (
                key,
                f"Supplier#{key:09d}",
                _comment(rng, 2, 3),
                nationkey,
                _phone(rng, nationkey),
                round(rng.uniform(-999.99, 9999.99), 2),
                comment,
            )
        )

    # part / partsupp.
    for key in range(1, n_part + 1):
        name = " ".join(rng.sample(pools.P_NAME_WORDS, 5))
        mfgr_id = rng.randint(1, 5)
        brand_id = rng.randint(1, 5)
        part_type = (
            f"{rng.choice(pools.TYPE_SYLLABLE_1)} "
            f"{rng.choice(pools.TYPE_SYLLABLE_2)} "
            f"{rng.choice(pools.TYPE_SYLLABLE_3)}"
        )
        retail = round(
            (90000 + (key % 20001) * 100 / 2000.0 + 100 * (key % 1000)) / 100.0, 2
        )
        data.part.append(
            (
                key,
                name,
                f"Manufacturer#{mfgr_id}",
                f"Brand#{mfgr_id}{brand_id}",
                part_type,
                rng.randint(1, 50),
                f"{rng.choice(pools.CONTAINER_SYLLABLE_1)} "
                f"{rng.choice(pools.CONTAINER_SYLLABLE_2)}",
                retail,
                _comment(rng, 2, 5),
            )
        )
        for supplier_offset in range(4):
            suppkey = (
                (key + supplier_offset * (n_supplier // 4 + 1)) % n_supplier
            ) + 1
            data.partsupp.append(
                (
                    key,
                    suppkey,
                    rng.randint(1, 9999),
                    round(rng.uniform(1.0, 1000.0), 2),
                    _comment(rng, 10, 20),
                )
            )

    # customer.
    for key in range(1, n_customer + 1):
        nationkey = rng.randrange(25)
        data.customer.append(
            (
                key,
                f"Customer#{key:09d}",
                _comment(rng, 2, 3),
                nationkey,
                _phone(rng, nationkey),
                round(rng.uniform(-999.99, 9999.99), 2),
                rng.choice(pools.SEGMENTS),
                _comment(rng, 6, 12),
            )
        )

    # orders / lineitem.
    part_retail = {row[0]: row[7] for row in data.part}
    part_suppliers: dict[int, list[int]] = {}
    for row in data.partsupp:
        part_suppliers.setdefault(row[0], []).append(row[1])

    line_counter = 0
    for key in range(1, n_orders + 1):
        custkey = rng.randint(1, n_customer)
        orderdate = START_DATE + datetime.timedelta(
            days=rng.randint(0, _DATE_RANGE_DAYS - 151)
        )
        comment = _comment(rng, 5, 12)
        if rng.random() < 0.01:
            comment = f"{comment} special{_comment(rng, 1, 2)}requests {comment}"
        n_lines = rng.randint(1, 7)
        total = 0.0
        lines: list[tuple] = []
        all_f = True
        any_f = False
        for line_number in range(1, n_lines + 1):
            partkey = rng.randint(1, n_part)
            suppkey = rng.choice(part_suppliers[partkey])
            quantity = float(rng.randint(1, 50))
            extended = round(quantity * part_retail[partkey], 2)
            discount = rng.randint(0, 10) / 100.0
            tax = rng.randint(0, 8) / 100.0
            shipdate = orderdate + datetime.timedelta(days=rng.randint(1, 121))
            commitdate = orderdate + datetime.timedelta(days=rng.randint(30, 90))
            receiptdate = shipdate + datetime.timedelta(days=rng.randint(1, 30))
            if receiptdate <= CURRENT_DATE:
                returnflag = "R" if rng.random() < 0.5 else "A"
            else:
                returnflag = "N"
            linestatus = "F" if shipdate <= CURRENT_DATE else "O"
            if linestatus == "F":
                any_f = True
            else:
                all_f = False
            total += extended * (1 + tax) * (1 - discount)
            lines.append(
                (
                    key,
                    partkey,
                    suppkey,
                    line_number,
                    quantity,
                    extended,
                    discount,
                    tax,
                    returnflag,
                    linestatus,
                    shipdate,
                    commitdate,
                    receiptdate,
                    rng.choice(pools.SHIP_INSTRUCTIONS),
                    rng.choice(pools.SHIP_MODES),
                    _comment(rng, 2, 6),
                )
            )
            line_counter += 1
        if all_f:
            status = "F"
        elif any_f:
            status = "P"
        else:
            status = "O"
        data.orders.append(
            (
                key,
                custkey,
                status,
                round(total, 2),
                orderdate,
                rng.choice(pools.PRIORITIES),
                f"Clerk#{rng.randint(1, max(n_orders // 1000, 1)):09d}",
                0,
                comment,
            )
        )
        data.lineitem.extend(lines)
    return data


def load_into(db: PermDatabase, data: TPCHData) -> None:
    """Create the TPC-H schema in ``db`` and load the generated rows."""
    for schema in ALL_SCHEMAS:
        db.create_table(schema)
    for name, rows in data.tables().items():
        db.load_table(name, rows)


def tpch_database(
    scale_factor: float = 0.001, seed: int = 42, **db_kwargs
) -> PermDatabase:
    """Convenience: a fresh database pre-loaded with TPC-H data.

    Extra keyword arguments go to :class:`PermDatabase` (e.g.
    ``wal_dir=...`` for a durable database — the bulk load happens
    through the programmatic helpers, which bypass the WAL, so it is
    checkpointed afterwards to make the loaded rows durable).
    """
    db = PermDatabase(**db_kwargs)
    load_into(db, generate(scale_factor, seed))
    if db.durable:
        db.checkpoint()
    return db
