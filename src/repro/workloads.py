"""Artificial query generators for the paper's section V-B experiments.

* :func:`setop_queries` -- random set-operation trees over selections on
  ``part`` (Fig. 12); union/intersection only, as in the paper, to avoid
  the exponential result growth of chained set-difference.
* :func:`spj_queries` -- random SPJ trees with ``numSub`` leaf subqueries
  (Fig. 13).
* :func:`aggregation_chain` -- ``agg`` stacked aggregation operations,
  each grouping on the primary key divided by ``numGrp = agg-th root of
  |part|`` (Fig. 14).
* :func:`selection_queries` -- simple primary-key range selections on
  ``supplier`` (the Fig. 15 Trio comparison workload).
"""

from __future__ import annotations

import random


def _key_range(rng: random.Random, max_key: int, span_fraction: float = 0.2) -> tuple[int, int]:
    span = max(int(max_key * span_fraction), 1)
    low = rng.randint(1, max(max_key - span, 1))
    return low, low + rng.randint(1, span)


def setop_queries(
    num_setops: int,
    count: int,
    max_partkey: int,
    seed: int = 0,
    provenance: bool = False,
    operator: str | None = None,
    semantics: str | None = None,
) -> list[str]:
    """Random set-operation trees with ``num_setops`` leaf selections.

    ``operator`` fixes every internal node to UNION or INTERSECT
    (homogeneous trees, used by the set-op strategy ablation); by default
    operators are chosen per node, as in the paper's Fig. 12 workload.
    ``semantics`` names the contribution semantics for provenance queries
    (``"polynomial"``; None = default witness lists).
    """
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        sql = _random_setop_tree(rng, num_setops, max_partkey, operator)
        if provenance:
            sql = sql.replace("SELECT", _provenance_marker(semantics), 1)
        queries.append(sql)
    return queries


def _provenance_marker(semantics: str | None) -> str:
    if semantics is None:
        return "SELECT PROVENANCE"
    return f"SELECT PROVENANCE ({semantics})"


def _part_selection(rng: random.Random, max_partkey: int) -> str:
    low, high = _key_range(rng, max_partkey)
    return (
        "SELECT p_partkey, p_name, p_retailprice FROM part "
        f"WHERE p_partkey >= {low} AND p_partkey <= {high}"
    )


def _random_setop_tree(
    rng: random.Random, leaves: int, max_partkey: int, operator: str | None = None
) -> str:
    if leaves == 1:
        return _part_selection(rng, max_partkey)
    split = rng.randint(1, leaves - 1)
    left = _random_setop_tree(rng, split, max_partkey, operator)
    right = _random_setop_tree(rng, leaves - split, max_partkey, operator)
    op = operator or rng.choice(["UNION", "INTERSECT"])
    return f"({left}) {op} ({right})"


def spj_queries(
    num_sub: int,
    count: int,
    max_partkey: int,
    seed: int = 0,
    provenance: bool = False,
    semantics: str | None = None,
) -> list[str]:
    """Random SPJ trees with ``num_sub`` leaf subqueries joined on the key."""
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        sql = _random_spj_tree(rng, num_sub, max_partkey)
        if provenance:
            sql = sql.replace("SELECT", _provenance_marker(semantics), 1)
        queries.append(sql)
    return queries


def _random_spj_tree(rng: random.Random, leaves: int, max_partkey: int) -> str:
    if leaves == 1:
        low, high = _key_range(rng, max_partkey, span_fraction=0.5)
        return (
            "SELECT p_partkey AS k, p_retailprice AS v FROM part "
            f"WHERE p_partkey >= {low} AND p_partkey <= {high}"
        )
    split = rng.randint(1, leaves - 1)
    left = _random_spj_tree(rng, split, max_partkey)
    right = _random_spj_tree(rng, leaves - split, max_partkey)
    return (
        f"SELECT a.k AS k, a.v + b.v AS v FROM ({left}) AS a, ({right}) AS b "
        "WHERE a.k = b.k"
    )


def aggregation_chain(depth: int, part_count: int, provenance: bool = False) -> str:
    """``depth`` stacked aggregations over ``part`` (paper section V-B.3).

    Each level groups on the key divided by ``numGrp`` so every level
    performs roughly the same number of aggregate computations.
    """
    num_grp = max(round(part_count ** (1.0 / depth)), 2)
    sql = "SELECT p_partkey AS k, p_retailprice AS v FROM part"
    for _ in range(depth):
        sql = (
            f"SELECT k / {num_grp} AS k, sum(v) AS v "
            f"FROM ({sql}) AS t GROUP BY k / {num_grp}"
        )
    if provenance:
        sql = sql.replace("SELECT", "SELECT PROVENANCE", 1)
    return sql


def selection_queries(
    count: int, max_suppkey: int, seed: int = 0, provenance: bool = False
) -> list[str]:
    """Simple key-range selections on supplier (Fig. 15 workload)."""
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        low, high = _key_range(rng, max_suppkey)
        sql = (
            "SELECT s_suppkey, s_name, s_acctbal FROM supplier "
            f"WHERE s_suppkey >= {low} AND s_suppkey <= {high}"
        )
        if provenance:
            sql = sql.replace("SELECT", "SELECT PROVENANCE", 1)
        queries.append(sql)
    return queries
