"""The Perm algebra (paper Fig. 1) as a formal, directly-evaluable IR.

This package is independent of the SQL engine: operators evaluate
directly over bag-semantics :class:`~repro.storage.relation.Relation`
objects.  It exists to make the paper's formal artifacts executable:

* the algebra definitions of Fig. 1 (set/bag projection and set
  operations, selection, crossproduct, joins, aggregation),
* the rewrite rules R1-R9 of Fig. 3 (``repro.core.algebra_rules``),
* the correctness argument of section III-E, turned into property-based
  tests comparing rewritten queries against the Cui-Widom baseline.
"""

from repro.algebra.expr import (
    Attr,
    BinOp,
    BoolAnd,
    BoolNot,
    BoolOr,
    Cmp,
    Lit,
    NullSafeEq,
)
from repro.algebra.operators import (
    Aggregate,
    AggSpec,
    BagDifference,
    BagIntersection,
    BagProject,
    BagUnion,
    BaseRelation,
    Cross,
    Join,
    Select,
    SetDifference,
    SetIntersection,
    SetProject,
    SetUnion,
)
from repro.algebra.evaluate import evaluate

__all__ = [
    "Attr", "Lit", "Cmp", "NullSafeEq", "BinOp", "BoolAnd", "BoolOr", "BoolNot",
    "BaseRelation", "Select", "Cross", "Join",
    "SetProject", "BagProject", "Aggregate", "AggSpec",
    "SetUnion", "BagUnion", "SetIntersection", "BagIntersection",
    "SetDifference", "BagDifference",
    "evaluate",
]
