"""Scalar expressions of the formal algebra.

Expressions evaluate against a *named row* (dict column -> value) with
SQL three-valued logic, matching the semantics of the engine's compiled
expressions so that cross-checks between the two are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

Row = Mapping[str, Any]


class Scalar:
    """Base class for algebra scalar expressions."""

    __slots__ = ()

    def eval(self, row: Row) -> Any:  # pragma: no cover - interface
        raise NotImplementedError

    def attributes(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class Attr(Scalar):
    """Attribute reference by name."""

    name: str

    def eval(self, row: Row) -> Any:
        return row[self.name]

    def attributes(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Lit(Scalar):
    value: Any

    def eval(self, row: Row) -> Any:
        return self.value

    def __str__(self) -> str:
        return repr(self.value)


_CMP_FN: dict[str, Callable[[Any, Any], Any]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Cmp(Scalar):
    """Comparison with NULL propagation."""

    op: str
    left: Scalar
    right: Scalar

    def eval(self, row: Row) -> Any:
        a = self.left.eval(row)
        b = self.right.eval(row)
        if a is None or b is None:
            return None
        return _CMP_FN[self.op](a, b)

    def attributes(self) -> set[str]:
        return self.left.attributes() | self.right.attributes()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class NullSafeEq(Scalar):
    """IS NOT DISTINCT FROM: the rewrite rules' tuple-equality joins."""

    left: Scalar
    right: Scalar

    def eval(self, row: Row) -> Any:
        a = self.left.eval(row)
        b = self.right.eval(row)
        if a is None and b is None:
            return True
        if a is None or b is None:
            return False
        return a == b

    def attributes(self) -> set[str]:
        return self.left.attributes() | self.right.attributes()

    def __str__(self) -> str:
        return f"({self.left} <=> {self.right})"


_BIN_FN: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class BinOp(Scalar):
    op: str
    left: Scalar
    right: Scalar

    def eval(self, row: Row) -> Any:
        a = self.left.eval(row)
        b = self.right.eval(row)
        if a is None or b is None:
            return None
        return _BIN_FN[self.op](a, b)

    def attributes(self) -> set[str]:
        return self.left.attributes() | self.right.attributes()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BoolAnd(Scalar):
    args: tuple[Scalar, ...]

    def eval(self, row: Row) -> Any:
        saw_null = False
        for arg in self.args:
            value = arg.eval(row)
            if value is False:
                return False
            if value is None:
                saw_null = True
        return None if saw_null else True

    def attributes(self) -> set[str]:
        out: set[str] = set()
        for arg in self.args:
            out |= arg.attributes()
        return out

    def __str__(self) -> str:
        return "(" + " AND ".join(str(a) for a in self.args) + ")"


@dataclass(frozen=True)
class BoolOr(Scalar):
    args: tuple[Scalar, ...]

    def eval(self, row: Row) -> Any:
        saw_null = False
        for arg in self.args:
            value = arg.eval(row)
            if value is True:
                return True
            if value is None:
                saw_null = True
        return None if saw_null else False

    def attributes(self) -> set[str]:
        out: set[str] = set()
        for arg in self.args:
            out |= arg.attributes()
        return out

    def __str__(self) -> str:
        return "(" + " OR ".join(str(a) for a in self.args) + ")"


@dataclass(frozen=True)
class BoolNot(Scalar):
    arg: Scalar

    def eval(self, row: Row) -> Any:
        value = self.arg.eval(row)
        return None if value is None else not value

    def attributes(self) -> set[str]:
        return self.arg.attributes()

    def __str__(self) -> str:
        return f"(NOT {self.arg})"


def attr_equal(left: str, right: str) -> Cmp:
    """Shorthand for the ubiquitous ``a = b`` join condition."""
    return Cmp("=", Attr(left), Attr(right))
