"""Direct interpreter for the Perm algebra (paper Fig. 1).

``evaluate(op, db)`` computes the bag-semantics result of an algebra
expression over a database mapping relation names to
:class:`~repro.storage.relation.Relation` objects.

The implementation follows the figure's definitions literally --
multiplicities are explicit everywhere -- with one deliberate deviation:
aggregation over an empty input *without* grouping attributes yields the
SQL grand-aggregate row (count 0 / NULL otherwise), matching both
PostgreSQL and the behaviour the paper's Fig. 11 footnote 4 describes.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.algebra.expr import Scalar
from repro.algebra.operators import (
    Aggregate,
    AggSpec,
    AlgebraOp,
    BagDifference,
    BagIntersection,
    BagProject,
    BagUnion,
    BaseRelation,
    Cross,
    Join,
    Select,
    SetDifference,
    SetIntersection,
    SetProject,
    SetUnion,
)
from repro.storage.relation import Relation


class AlgebraError(Exception):
    pass


def evaluate(
    op: AlgebraOp, db: dict[str, Relation], strict_fig1: bool = False
) -> Relation:
    """Evaluate an algebra expression over named base relations.

    ``strict_fig1`` switches grand aggregation over empty input to the
    literal Fig. 1 definition (empty result) instead of the SQL
    grand-aggregate row; the formal correctness properties use it because
    the paper's proof is stated for that algebra (the SQL behaviour is
    the paper's Fig. 11 footnote 4 deviation).
    """
    if isinstance(op, BaseRelation):
        if op.name not in db:
            raise AlgebraError(f"base relation {op.name!r} not in database")
        relation = db[op.name]
        if len(relation.columns) != len(op.columns):
            raise AlgebraError(
                f"relation {op.name!r} arity {len(relation.columns)} does not "
                f"match reference arity {len(op.columns)}"
            )
        return relation.rename(op.columns)
    if isinstance(op, Select):
        return _select(op, db, strict_fig1)
    if isinstance(op, (SetProject, BagProject)):
        return _project(op, db, strict_fig1)
    if isinstance(op, Cross):
        return _join(op.left, op.right, None, "inner", db, strict_fig1)
    if isinstance(op, Join):
        return _join(op.left, op.right, op.condition, op.kind, db, strict_fig1)
    if isinstance(op, Aggregate):
        return _aggregate(op, db, strict_fig1)
    if isinstance(op, (SetUnion, BagUnion, SetIntersection, BagIntersection,
                       SetDifference, BagDifference)):
        return _setop(op, db, strict_fig1)
    raise AlgebraError(f"unknown operator {op!r}")


def _named(schema: list[str], row: tuple) -> dict[str, Any]:
    return dict(zip(schema, row))


def _select(op: Select, db: dict[str, Relation], strict_fig1: bool = False) -> Relation:
    source = evaluate(op.input, db, strict_fig1)
    schema = list(source.columns)
    counts: Counter = Counter()
    for row, n in source.counted():
        if op.condition.eval(_named(schema, row)) is True:
            counts[row] += n
    return Relation(schema, counts)


def _project(op, db: dict[str, Relation], strict_fig1: bool = False) -> Relation:
    source = evaluate(op.input, db, strict_fig1)
    schema = list(source.columns)
    out_columns = [name for _, name in op.items]
    counts: Counter = Counter()
    for row, n in source.counted():
        named = _named(schema, row)
        projected = tuple(expr.eval(named) for expr, _ in op.items)
        counts[projected] += n
    if isinstance(op, SetProject):
        counts = Counter({row: 1 for row in counts})
    return Relation(out_columns, counts)


def _join(
    left_op: AlgebraOp,
    right_op: AlgebraOp,
    condition,
    kind: str,
    db: dict[str, Relation],
    strict_fig1: bool = False,
) -> Relation:
    left = evaluate(left_op, db, strict_fig1)
    right = evaluate(right_op, db, strict_fig1)
    overlap = set(left.columns) & set(right.columns)
    if overlap:
        raise AlgebraError(f"join operand schemas overlap: {sorted(overlap)}")
    schema = list(left.columns) + list(right.columns)
    counts: Counter = Counter()
    left_rows = list(left.counted())
    right_rows = list(right.counted())
    left_matched = [False] * len(left_rows)
    right_matched = [False] * len(right_rows)
    for i, (lrow, ln) in enumerate(left_rows):
        for j, (rrow, rn) in enumerate(right_rows):
            combined = lrow + rrow
            if condition is None or condition.eval(_named(schema, combined)) is True:
                counts[combined] += ln * rn
                left_matched[i] = True
                right_matched[j] = True
    null_right = (None,) * len(right.columns)
    null_left = (None,) * len(left.columns)
    if kind in ("left", "full"):
        for i, (lrow, ln) in enumerate(left_rows):
            if not left_matched[i]:
                counts[lrow + null_right] += ln
    if kind in ("right", "full"):
        for j, (rrow, rn) in enumerate(right_rows):
            if not right_matched[j]:
                counts[null_left + rrow] += rn
    return Relation(schema, counts)


def _agg_result(spec: AggSpec, values: list[tuple[Any, int]]) -> Any:
    """Aggregate over (value, multiplicity) pairs with SQL null semantics."""
    if spec.func == "count":
        if spec.arg is None:
            return sum(n for _, n in values)
        return sum(n for v, n in values if v is not None)
    present = [(v, n) for v, n in values if v is not None]
    if not present:
        return None
    if spec.func == "sum":
        return sum(v * n for v, n in present)
    if spec.func == "avg":
        total = sum(v * n for v, n in present)
        count = sum(n for _, n in present)
        return total / count
    if spec.func == "min":
        return min(v for v, _ in present)
    if spec.func == "max":
        return max(v for v, _ in present)
    raise AlgebraError(f"unknown aggregate {spec.func!r}")


def _aggregate(op: Aggregate, db: dict[str, Relation], strict_fig1: bool = False) -> Relation:
    source = evaluate(op.input, db, strict_fig1)
    schema = list(source.columns)
    groups: dict[tuple, list[tuple[dict, int]]] = {}
    order: list[tuple] = []
    for row, n in source.counted():
        named = _named(schema, row)
        key = tuple(named[g] for g in op.group_by)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((named, n))
    counts: Counter = Counter()
    if not groups and not op.group_by:
        if strict_fig1:
            return Relation(op.schema(), counts)
        # SQL grand aggregate over empty input (see module docstring).
        row = tuple(_agg_result(spec, []) for spec in op.aggregates)
        counts[row] = 1
        return Relation(op.schema(), counts)
    for key in order:
        members = groups[key]
        results = []
        for spec in op.aggregates:
            if spec.arg is None:
                values = [(None, n) for _, n in members]
            else:
                values = [(spec.arg.eval(named), n) for named, n in members]
            results.append(_agg_result(spec, values))
        counts[key + tuple(results)] = 1
    return Relation(op.schema(), counts)


def _setop(op, db: dict[str, Relation], strict_fig1: bool = False) -> Relation:
    left = evaluate(op.left, db, strict_fig1)
    right = evaluate(op.right, db, strict_fig1)
    if len(left.columns) != len(right.columns):
        raise AlgebraError("set operation inputs are not union compatible")
    right = right.rename(list(left.columns))
    schema = list(left.columns)
    counts: Counter = Counter()
    if isinstance(op, SetUnion):
        for row in left.to_set() | right.to_set():
            counts[row] = 1
    elif isinstance(op, BagUnion):
        for row, n in left.counted():
            counts[row] += n
        for row, n in right.counted():
            counts[row] += n
    elif isinstance(op, SetIntersection):
        for row in left.to_set() & right.to_set():
            counts[row] = 1
    elif isinstance(op, BagIntersection):
        for row, n in left.counted():
            m = right.multiplicity(row)
            if m:
                counts[row] = min(n, m)
    elif isinstance(op, SetDifference):
        for row in left.to_set() - right.to_set():
            counts[row] = 1
    elif isinstance(op, BagDifference):
        for row, n in left.counted():
            m = right.multiplicity(row)
            if n - m > 0:
                counts[row] = n - m
    else:  # pragma: no cover
        raise AlgebraError(f"unknown set operation {op!r}")
    return Relation(schema, counts)
