"""Operators of the Perm algebra (paper Fig. 1).

Every operator knows its output ``schema()`` (ordered column names) and
its children.  Evaluation (``repro.algebra.evaluate``) is a direct
interpretation of the definitions in Fig. 1 over bag-semantics
relations, including the set/bag operator variants.

Base relation references carry a ``ref_id`` so that multiple references
to the same relation (self-joins) stay distinguishable -- the rewrite
rules and the Cui-Widom baseline both track provenance per *reference*,
exactly as the paper's representation does ("Multiple references to a
base relation are handled as separate relations").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.algebra.expr import Scalar

_ref_counter = itertools.count()


class AlgebraOp:
    """Base class of algebra operators."""

    __slots__ = ()

    def schema(self) -> list[str]:  # pragma: no cover - interface
        raise NotImplementedError

    def children(self) -> list["AlgebraOp"]:
        return []

    def base_references(self) -> list["BaseRelation"]:
        """All base relation references, in left-to-right order."""
        if isinstance(self, BaseRelation):
            return [self]
        refs: list[BaseRelation] = []
        for child in self.children():
            refs.extend(child.base_references())
        return refs


@dataclass
class BaseRelation(AlgebraOp):
    """A reference to a named base relation with a fixed schema."""

    name: str
    columns: list[str]
    ref_id: int = field(default_factory=lambda: next(_ref_counter))

    def schema(self) -> list[str]:
        return list(self.columns)

    def __str__(self) -> str:
        return self.name


@dataclass
class Select(AlgebraOp):
    """σ_C(T): keeps tuples satisfying C (Fig. 1c)."""

    input: AlgebraOp
    condition: Scalar

    def schema(self) -> list[str]:
        return self.input.schema()

    def children(self) -> list[AlgebraOp]:
        return [self.input]

    def __str__(self) -> str:
        return f"σ[{self.condition}]({self.input})"


@dataclass
class _ProjectBase(AlgebraOp):
    """Shared structure of set/bag projection.

    ``items`` is the paper's A-list: (expression, output name) pairs,
    covering plain attributes, renamings, constants and functions.
    """

    input: AlgebraOp
    items: list[tuple[Scalar, str]]

    def schema(self) -> list[str]:
        return [name for _, name in self.items]

    def children(self) -> list[AlgebraOp]:
        return [self.input]


class SetProject(_ProjectBase):
    """Π^S_A(T): duplicate-eliminating projection (Fig. 1a)."""

    def __str__(self) -> str:
        return f"ΠS[{', '.join(n for _, n in self.items)}]({self.input})"


class BagProject(_ProjectBase):
    """Π^B_A(T): multiplicity-preserving projection (Fig. 1b)."""

    def __str__(self) -> str:
        return f"ΠB[{', '.join(n for _, n in self.items)}]({self.input})"


@dataclass
class Cross(AlgebraOp):
    """T1 × T2 (Fig. 1c); the operands' schemas must not overlap."""

    left: AlgebraOp
    right: AlgebraOp

    def schema(self) -> list[str]:
        return self.left.schema() + self.right.schema()

    def children(self) -> list[AlgebraOp]:
        return [self.left, self.right]

    def __str__(self) -> str:
        return f"({self.left} × {self.right})"


@dataclass
class Join(AlgebraOp):
    """Inner and outer joins (Fig. 1c; outer variants defined analogously)."""

    left: AlgebraOp
    right: AlgebraOp
    condition: Scalar
    kind: str = "inner"  # 'inner' | 'left' | 'right' | 'full'

    def schema(self) -> list[str]:
        return self.left.schema() + self.right.schema()

    def children(self) -> list[AlgebraOp]:
        return [self.left, self.right]

    def __str__(self) -> str:
        symbol = {"inner": "⋈", "left": "⟕", "right": "⟖", "full": "⟗"}[self.kind]
        return f"({self.left} {symbol}[{self.condition}] {self.right})"


@dataclass
class AggSpec:
    """One aggregation function application: name(arg) AS output."""

    func: str  # 'sum' | 'count' | 'avg' | 'min' | 'max'
    arg: Optional[Scalar]  # None = count(*)
    output: str


@dataclass
class Aggregate(AlgebraOp):
    """α_{G, aggr}(T) (Fig. 1c): group on G, apply aggregation functions.

    Output schema: grouping attributes followed by aggregate outputs.
    Result multiplicity is 1 per group, as in the paper's definition.
    """

    input: AlgebraOp
    group_by: list[str]
    aggregates: list[AggSpec]

    def schema(self) -> list[str]:
        return list(self.group_by) + [spec.output for spec in self.aggregates]

    def children(self) -> list[AlgebraOp]:
        return [self.input]

    def __str__(self) -> str:
        aggs = ", ".join(f"{s.func}({s.arg or '*'})" for s in self.aggregates)
        return f"α[{', '.join(self.group_by)}; {aggs}]({self.input})"


@dataclass
class _SetOpBase(AlgebraOp):
    """Union-compatible inputs; result schema is T1's (paper III-A)."""

    left: AlgebraOp
    right: AlgebraOp

    def schema(self) -> list[str]:
        return self.left.schema()

    def children(self) -> list[AlgebraOp]:
        return [self.left, self.right]

    _SYMBOL = "?"

    def __str__(self) -> str:
        return f"({self.left} {self._SYMBOL} {self.right})"


class SetUnion(_SetOpBase):
    _SYMBOL = "∪S"


class BagUnion(_SetOpBase):
    _SYMBOL = "∪B"


class SetIntersection(_SetOpBase):
    _SYMBOL = "∩S"


class BagIntersection(_SetOpBase):
    _SYMBOL = "∩B"


class SetDifference(_SetOpBase):
    _SYMBOL = "−S"


class BagDifference(_SetOpBase):
    _SYMBOL = "−B"
