"""Interactive SQL shell for the Perm reproduction.

Usage::

    python -m repro                 # empty database
    python -m repro --tpch 0.002    # pre-loaded TPC-H at SF 0.002
    python -m repro --example       # the paper's shop/sales/items example

Inside the shell, end statements with ``;``.  Meta commands:

* ``\\q`` quit, ``\\d`` list relations,
* ``\\rewrite <query>`` print the provenance-rewritten SQL,
* ``\\explain <query>`` print the logical trees (before/after
  optimization) and the physical plan,
* ``\\explain+ <query>`` additionally execute the plan and annotate
  every node with actual row/batch counts and wall time,
* ``\\optimize [on|off]`` show or toggle the logical optimizer,
* ``\\vectorize [on|off]`` show or toggle batch-at-a-time execution,
* ``\\fuse [on|off]`` show or toggle pipeline-fused kernel codegen,
* ``\\costbased [on|off]`` show or toggle cost-based planning,
* ``\\parallel [off|N]`` show or set morsel-driven parallel workers,
* ``\\analyze [table]`` collect planner statistics (ANALYZE),
* ``\\stats`` statement-cache counters + collected table statistics,
* ``\\matviews`` list materialized provenance views with freshness and
  maintenance counters,
* ``\\semirings`` list registered semirings and rewrite strategies,
* ``\\backend [name]`` show or switch the execution backend
  (``python`` / ``sqlite``),
* ``\\shards`` sharded-backend status: per-table partitioning, scatter
  and pruning counters, per-shard row/query tallies (requires
  ``--shards``),
* ``\\server [start [port]|stats|stop]`` manage a background query
  server on this database (``repro.server`` wire protocol),
* ``\\wal`` write-ahead-log status and last recovery report (requires
  ``--wal-dir``),
* ``\\checkpoint`` snapshot the catalog and truncate the WAL.

``python -m repro --serve PORT`` skips the shell and serves the
database over TCP until interrupted.

``SELECT PROVENANCE (polynomial) ...`` computes semiring provenance
polynomials instead of witness lists.
"""

from __future__ import annotations

import argparse
import sys

import repro
from repro.errors import PermError


def _parse_shard_keys(specs: list[str] | None) -> dict[str, str | None] | None:
    """``--shard-key table=col`` pairs as a dict (``table=`` replicates)."""
    if not specs:
        return None
    keys: dict[str, str | None] = {}
    for spec in specs:
        table, eq, column = spec.partition("=")
        if not table or not eq:
            raise PermError(f"--shard-key expects TABLE=COLUMN, got {spec!r}")
        keys[table.strip()] = column.strip() or None
    return keys


def _build_database(args: argparse.Namespace) -> repro.PermDatabase:
    shard_keys = _parse_shard_keys(args.shard_key)
    if args.tpch is not None:
        from repro.tpch.dbgen import tpch_database

        print(f"loading TPC-H at SF {args.tpch} ...", file=sys.stderr)
        db = tpch_database(
            scale_factor=args.tpch,
            wal_dir=args.wal_dir,
            wal_sync=args.wal_sync,
        )
        if args.shards is not None:
            from repro.sharding.backend import ShardedBackend

            def sharded(catalog, _child=args.backend):
                return ShardedBackend(
                    catalog,
                    shards=args.shards,
                    shard_keys=shard_keys,
                    child=_child,
                )

            db.set_backend(sharded)
        elif args.backend != "python":
            db.set_backend(args.backend)
        db.optimizer_enabled = not args.no_optimize
        db.vectorize_enabled = not args.no_vectorize
        db.cost_based_enabled = not args.no_cost_based
        db.parallel_executor = args.executor
        return db
    db = repro.connect(
        backend=args.backend,
        optimize=not args.no_optimize,
        vectorize=not args.no_vectorize,
        cost_based=not args.no_cost_based,
        parallel_executor=args.executor,
        shards=args.shards,
        shard_keys=shard_keys,
        wal_dir=args.wal_dir,
        wal_sync=args.wal_sync,
    )
    if db.durable and db.last_recovery is not None:
        report = db.last_recovery
        if report.checkpoint_segment is not None or report.statements_replayed:
            print(
                f"recovered from {report.directory}: "
                f"checkpoint segment {report.checkpoint_segment}, "
                f"{report.statements_replayed} statements replayed",
                file=sys.stderr,
            )
    if args.example:
        db.execute("CREATE TABLE shop (name text, numempl integer)")
        db.execute("CREATE TABLE sales (sname text, itemid integer)")
        db.execute("CREATE TABLE items (id integer, price integer)")
        db.execute("INSERT INTO shop VALUES ('Merdies', 3), ('Joba', 14)")
        db.execute(
            "INSERT INTO sales VALUES ('Merdies', 1), ('Merdies', 2), "
            "('Merdies', 2), ('Joba', 3), ('Joba', 3)"
        )
        db.execute("INSERT INTO items VALUES (1, 100), (2, 10), (3, 25)")
    return db


#: The shell's background server handle (``\\server start``).
_server_handle = None


def _handle_server(db: repro.PermDatabase, rest: str) -> None:
    global _server_handle
    words = rest.split()
    action = words[0] if words else "stats"
    if action == "start":
        if _server_handle is not None:
            host, port = _server_handle.address
            print(f"server already running on {host}:{port}")
            return
        from repro.server import start_in_thread

        port = int(words[1]) if len(words) > 1 else 0
        _server_handle = start_in_thread(db, port=port)
        host, port = _server_handle.address
        print(f"server listening on {host}:{port}")
        return
    if _server_handle is None:
        print("no server running (use \\server start [port])")
        return
    if action == "stop":
        _server_handle.stop()
        _server_handle = None
        print("server stopped")
        return
    if action == "stats":
        stats = _server_handle.server.stats.snapshot(
            active_sessions=len(_server_handle.server.sessions),
            pending=_server_handle.server._pending,
        )
        for key, value in stats.items():
            print(f"  {key}: {value}")
        return
    print("usage: \\server [start [port]|stats|stop]")


def _handle_meta(db: repro.PermDatabase, line: str) -> bool:
    """Process a backslash command; returns False to quit."""
    command, _, rest = line.partition(" ")
    if command in ("\\q", "\\quit"):
        return False
    if command == "\\d":
        for table in db.catalog.tables():
            columns = ", ".join(
                f"{c.name} {c.type.value}" for c in table.schema.columns
            )
            print(f"  {table.name} ({columns})  -- {table.row_count()} rows")
        return True
    if command == "\\rewrite":
        print(db.rewritten_sql(rest))
        return True
    if command == "\\explain":
        print(db.explain(rest))
        return True
    if command == "\\explain+":
        print(db.explain(rest, analyze=True))
        return True
    if command == "\\optimize":
        choice = rest.strip().lower()
        if choice in ("on", "off"):
            db.optimizer_enabled = choice == "on"
        elif choice:
            print("usage: \\optimize [on|off]")
            return True
        state = "on" if db.optimizer_enabled else "off"
        print(f"logical optimizer: {state}")
        return True
    if command == "\\vectorize":
        choice = rest.strip().lower()
        if choice in ("on", "off"):
            db.vectorize_enabled = choice == "on"
        elif choice:
            print("usage: \\vectorize [on|off]")
            return True
        state = "on" if db.vectorize_enabled else "off"
        print(f"vectorized execution: {state}")
        return True
    if command == "\\fuse":
        choice = rest.strip().lower()
        if choice in ("on", "off"):
            db.fuse_pipelines_enabled = choice == "on"
        elif choice:
            print("usage: \\fuse [on|off]")
            return True
        state = "on" if db.fuse_pipelines_enabled else "off"
        print(f"pipeline fusion: {state}")
        return True
    if command == "\\costbased":
        choice = rest.strip().lower()
        if choice in ("on", "off"):
            db.cost_based_enabled = choice == "on"
        elif choice:
            print("usage: \\costbased [on|off]")
            return True
        state = "on" if db.cost_based_enabled else "off"
        print(f"cost-based planning: {state}")
        return True
    if command == "\\parallel":
        choice = rest.strip().lower()
        if choice in ("off", "1"):
            db.parallel_workers = 1
        elif choice.isdigit():
            db.parallel_workers = int(choice)
        elif choice == "on":
            db.parallel_workers = None  # one worker per core
        elif choice:
            print("usage: \\parallel [off|N]")
            return True
        workers = db.parallel_workers
        if workers is None:
            import os

            print(f"parallel workers: per-core ({os.cpu_count() or 1})")
        elif workers <= 1:
            print("parallel workers: off (serial execution)")
        else:
            print(f"parallel workers: {workers}")
        return True
    if command == "\\server":
        _handle_server(db, rest.strip())
        return True
    if command == "\\wal":
        status = db.wal_status()
        if status is None:
            print("not durable (start with --wal-dir DIR)")
            return True
        recovery = status.pop("last_recovery", None)
        for key, value in status.items():
            print(f"  {key}: {value}")
        if recovery is not None:
            print("  last recovery:")
            for key, value in recovery.items():
                print(f"    {key}: {value}")
        return True
    if command == "\\checkpoint":
        segment = db.checkpoint()
        print(f"checkpoint written; WAL rolled to segment {segment}")
        return True
    if command == "\\analyze":
        result = db.analyze(rest.strip() or None)
        for name, rows, columns in result.rows:
            print(f"  analyzed {name}: {rows} rows, {columns} columns")
        return True
    if command == "\\stats":
        stats = db.cache_stats()
        print(
            "prepared-statement cache: "
            f"{stats['hits']} hits, {stats['misses']} misses, "
            f"{stats['entries']}/{stats['capacity']} entries"
        )
        print(f"backend: {db.backend.describe()}")
        analyzed = db.catalog.analyzed_tables()
        if not analyzed:
            print("table statistics: none collected (run \\analyze)")
            return True
        print("table statistics:")
        for table_stats in analyzed:
            widest = max(
                table_stats.columns.values(),
                key=lambda c: c.ndv,
                default=None,
            )
            detail = (
                f", max ndv {widest.ndv}" if widest is not None else ""
            )
            print(
                f"  {table_stats.table_name}: {table_stats.row_count} rows, "
                f"{len(table_stats.columns)} columns{detail}"
            )
        return True
    if command == "\\backend":
        from repro.backends import backend_names

        choice = rest.strip()
        if choice:
            db.set_backend(choice)
            print(f"execution backend: {db.backend_name} ({db.backend.describe()})")
            return True
        for name in backend_names():
            marker = "*" if name == db.backend_name else " "
            print(f" {marker} {name}")
        print(f"active: {db.backend.describe()}")
        return True
    if command == "\\shards":
        stats = getattr(db.backend, "scatter_stats", None)
        if stats is None:
            print(
                "backend is not sharded (start with --shards N or "
                "connect(shards=N))"
            )
            return True
        info = stats()
        print(
            f"{info['shards']} {info['child_backend']} shard(s), "
            f"{info['executor']} scatter"
        )
        print(
            f"  queries: {info['scattered']} scattered "
            f"({info['pruned_queries']} pruned), "
            f"{info['local_fallbacks']} local fallbacks"
        )
        for kind, count in sorted(info["fallback_reasons"].items()):
            print(f"    fallback {kind}: {count}")
        for shard_id, per in enumerate(info["per_shard"]):
            print(
                f"  shard {shard_id}: {per['queries']} queries, "
                f"{per['rows']} rows returned"
            )
        part = info["partitioner"]
        print(
            f"  partitioner: {part['full_loads']} full loads, "
            f"{part['delta_syncs']} delta syncs, "
            f"{part['appended_rows']} rows appended"
        )
        for table in db.backend.partitioner.describe_tables():
            if table["replicated"]:
                placement = "replicated to every shard"
            else:
                placement = f"hash({table['shard_key']})"
            counts = "/".join(str(n) for n in table["shard_rows"])
            print(
                f"  {table['table']}: {placement}, "
                f"{table['rows']} rows ({counts})"
            )
        return True
    if command == "\\matviews":
        from repro.matview import maintenance

        views = db.catalog.matviews()
        if not views:
            print("no materialized provenance views (CREATE MATERIALIZED "
                  "PROVENANCE VIEW v AS SELECT PROVENANCE ...)")
            return True
        for view in views:
            state = maintenance.status(view, db.catalog)
            if view.incremental_eligible:
                mode = "delta-maintained"
            else:
                mode = f"full-refresh ({view.ineligible_reason})"
            print(
                f"  {view.name} [{view.semantics}] {state}: "
                f"{len(view.rows)} rows over "
                f"{', '.join(sorted(view.deps)) or 'no tables'}; {mode}"
            )
            print(
                f"    reads served {view.served_reads}, refreshes "
                f"{view.incremental_refreshes} incremental / "
                f"{view.full_refreshes} full"
            )
        return True
    if command == "\\semirings":
        from repro.core.registry import get_rewrite_strategy, rewrite_strategy_names
        from repro.semiring import get_semiring, semiring_names

        print("rewrite strategies (SELECT PROVENANCE (<name>) ...):")
        for name in rewrite_strategy_names():
            print(f"  {name}: {get_rewrite_strategy(name).description}")
        print("semirings (QueryResult.evaluate_provenance(<name>)):")
        for name in semiring_names():
            print(f"  {name}: {get_semiring(name).description}")
        return True
    print(
        "unknown meta command "
        f"{command!r} (\\q, \\d, \\rewrite, \\explain, \\explain+, "
        "\\optimize, \\vectorize, \\fuse, \\costbased, \\parallel, \\analyze, "
        "\\stats, \\matviews, \\semirings, \\backend, \\shards, \\server, "
        "\\wal, \\checkpoint)"
    )
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Interactive shell for the Perm provenance engine",
    )
    parser.add_argument("--tpch", type=float, default=None, metavar="SF",
                        help="pre-load TPC-H data at the given scale factor")
    parser.add_argument("--example", action="store_true",
                        help="pre-load the paper's shop/sales/items example")
    parser.add_argument("--command", "-c", default=None,
                        help="execute one statement and exit")
    parser.add_argument("--backend", default="python",
                        help="execution backend (python, sqlite)")
    parser.add_argument("--no-optimize", action="store_true",
                        help="disable the logical optimizer (plan the "
                             "rewritten tree verbatim)")
    parser.add_argument("--no-vectorize", action="store_true",
                        help="disable batch-at-a-time execution (run the "
                             "Python engine tuple-at-a-time)")
    parser.add_argument("--no-cost-based", action="store_true",
                        help="plan with the legacy heuristic join ordering "
                             "instead of the statistics-driven cost model")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="morsel-driven parallel workers (1 = serial, "
                             "0 = one per core)")
    parser.add_argument("--executor", default="thread",
                        choices=["thread", "process", "serial"],
                        help="worker-pool strategy for parallel morsels "
                             "and shard scatter (default: thread)")
    parser.add_argument("--shards", type=int, default=None, metavar="N",
                        help="hash-partition tables over N shard backends "
                             "and scatter-gather queries across them")
    parser.add_argument("--shard-key", action="append", default=None,
                        metavar="TABLE=COL",
                        help="override a table's shard key (repeatable; "
                             "TABLE= replicates the table to every shard)")
    parser.add_argument("--serve", type=int, default=None, metavar="PORT",
                        help="serve the database over TCP instead of "
                             "starting the shell")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address for --serve (default 127.0.0.1)")
    parser.add_argument("--wal-dir", default=None, metavar="DIR",
                        help="durable mode: write-ahead log committed "
                             "statements to DIR and recover whatever a "
                             "previous process left there")
    parser.add_argument("--wal-sync", default="always",
                        choices=["always", "batch", "never"],
                        help="WAL fsync policy (default: always)")
    args = parser.parse_args(argv)

    db = _build_database(args)
    if args.workers != 1:
        db.parallel_workers = None if args.workers == 0 else args.workers
    if args.serve is not None:
        import time as _time

        from repro.server import start_in_thread

        handle = start_in_thread(db, host=args.host, port=args.serve)
        host, port = handle.address
        print(f"serving on {host}:{port} (ctrl-c to stop)", file=sys.stderr)
        try:
            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            handle.stop()
            db.close()
            return 0
    if args.command is not None:
        try:
            result = db.execute(args.command)
        except PermError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        finally:
            db.close()
        if result.columns:
            print(result.pretty())
        else:
            print(result.command)
        return 0

    print("Perm repro shell -- SELECT PROVENANCE ... to compute provenance.")
    print(
        "\\q quit, \\d relations, \\rewrite <q>, \\explain[+] <q>, "
        "\\optimize [on|off], \\vectorize [on|off], \\fuse [on|off], "
        "\\costbased [on|off], "
        "\\parallel [off|N], \\analyze [table], \\stats, \\matviews, "
        "\\semirings, \\backend [name], \\shards, "
        "\\server [start|stats|stop]"
    )
    buffer = ""
    while True:
        try:
            prompt = "perm> " if not buffer else "  ... "
            line = input(prompt)
        except (EOFError, KeyboardInterrupt):
            print()
            db.close()
            return 0
        if not buffer and line.strip().startswith("\\"):
            try:
                if not _handle_meta(db, line.strip()):
                    db.close()
                    return 0
            except PermError as exc:
                print(f"error: {exc}")
            continue
        buffer += line + "\n"
        if ";" not in line:
            continue
        statement, buffer = buffer, ""
        try:
            result = db.execute(statement)
        except PermError as exc:
            print(f"error: {exc}")
            continue
        if result.columns:
            print(result.pretty())
            print(f"({len(result)} rows)")
        else:
            print(result.command)


if __name__ == "__main__":
    raise SystemExit(main())
