"""Statement matching for materialized provenance views.

A view answers a ``SELECT PROVENANCE`` statement when the statement *is*
the view's definition.  Matching is textual but normalized: both sides
are printed through :func:`repro.sql.printer.format_select`, so
whitespace, keyword case and redundant parentheses do not defeat a
match.  The provenance marker itself is excluded from the printed text
and carried as a separate, normalized semantics component — ``SELECT
PROVENANCE (witness) ...`` and plain ``SELECT PROVENANCE ...`` name the
same rewrite and produce the same key.
"""

from __future__ import annotations

from typing import Optional

from repro.sql import ast
from repro.sql.printer import format_select

#: The strategy the rewriter applies when no explicit semantics is named.
DEFAULT_SEMANTICS = "witness"


def normalize_semantics(provenance_type: Optional[str]) -> str:
    """Canonical rewrite-strategy name for a parsed provenance marker."""
    if not provenance_type:
        return DEFAULT_SEMANTICS
    return provenance_type.strip().lower()


def statement_key(stmt: object) -> Optional[tuple[str, str]]:
    """The ``(semantics, normalized sql)`` identity of a provenance
    SELECT, or None when the statement cannot be view-answered.

    Only provenance-marked single SELECT statements participate:
    ordinary queries never hit a materialized provenance view.
    """
    if not isinstance(stmt, (ast.SelectStmt, ast.SetOpSelect)):
        return None
    if not getattr(stmt, "provenance", False):
        return None
    semantics = normalize_semantics(getattr(stmt, "provenance_type", None))
    # Print the statement *without* its marker so explicit and implicit
    # spellings of the same semantics normalize to one key.  The marker
    # fields are restored immediately; the AST is otherwise untouched.
    saved = (stmt.provenance, stmt.provenance_type)
    stmt.provenance = False
    stmt.provenance_type = None
    try:
        text = format_select(stmt)
    finally:
        stmt.provenance, stmt.provenance_type = saved
    return (semantics, text)
