"""Materialized provenance views with semiring delta maintenance.

``CREATE MATERIALIZED PROVENANCE VIEW v AS SELECT PROVENANCE ...``
runs the provenance-rewritten definition once and stores the annotated
result; later reads of the *same* provenance query are answered from
the stored heap.  Base-table writes are folded in incrementally where
the semiring structure makes that exact — N[X] addition for inserts,
monus for deletes — and by a conservative full refresh everywhere else.

Modules:

* :mod:`repro.matview.view` — the stored object and its dependency
  bookkeeping;
* :mod:`repro.matview.matching` — normalized statement identity, so a
  query hits the view it textually restates;
* :mod:`repro.matview.maintenance` — full and delta refresh, shadow
  -catalog delta evaluation, eligibility classification.
"""

from repro.matview.matching import statement_key, normalize_semantics
from repro.matview.view import DependencyState, MaterializedProvenanceView
from repro.matview import maintenance

__all__ = [
    "DependencyState",
    "MaterializedProvenanceView",
    "maintenance",
    "normalize_semantics",
    "statement_key",
]
