"""The stored form of a materialized provenance view.

A :class:`MaterializedProvenanceView` owns the annotated result heap of
one ``SELECT PROVENANCE`` query plus the bookkeeping that makes delta
maintenance possible: which base tables the query reads and exactly
which state of each — ``(uid, epoch, row count, delta seq)`` — the
stored rows were computed from.  Freshness is a pure comparison of that
record against the live catalog; refreshing it is the maintenance
module's job (:mod:`repro.matview.maintenance`).

All mutation and serving happens under the view's re-entrant lock: the
server shares one database across executor threads, and a reader must
never observe a half-replaced heap.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import CatalogError
from repro.matview.matching import statement_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.catalog.catalog import Catalog
    from repro.sql.ast import SelectNode


@dataclass(frozen=True)
class DependencyState:
    """The exact base-table state a materialization was computed from.

    ``uid`` pins the heap identity (a dropped-and-recreated table is a
    different heap); ``epoch``/``row_count`` pin the visible data
    (within one epoch heaps are append-only); ``delta_seq`` anchors the
    per-statement delta log so maintenance can ask the table for
    everything that happened since.
    """

    uid: int
    epoch: int
    row_count: int
    delta_seq: int


class MaterializedProvenanceView:
    """One registered ``CREATE MATERIALIZED PROVENANCE VIEW``."""

    def __init__(
        self,
        name: str,
        sql: str,
        statement: "SelectNode",
        semantics: str,
    ) -> None:
        self.name = name
        self.sql = sql
        self.statement = statement
        self.statement_key = statement_key(statement)
        self.semantics = semantics
        # Materialized state (all guarded by ``lock``).
        self.columns: list[str] = []
        self.rows: list[tuple] = []
        self.annotation_column: Optional[str] = None
        self.deps: dict[str, DependencyState] = {}
        # Incremental-maintenance bookkeeping.  ``poly_map`` (polynomial
        # semantics) keys each stored row's visible part to its
        # annotation and ``poly_pos`` locates that key's row so merges
        # stay delta-sized; ``row_bag`` (witness semantics) counts whole
        # rows.  One family is populated, by the maintenance module.
        self.incremental_eligible = False
        self.ineligible_reason: Optional[str] = "never materialized"
        self.poly_map: Optional[dict[tuple, object]] = None
        self.poly_pos: dict[tuple, int] = {}
        self.row_bag: Optional[Counter] = None
        self.lock = threading.RLock()
        # Counters surfaced by the CLI's ``\matviews``.
        self.full_refreshes = 0
        self.incremental_refreshes = 0
        self.served_reads = 0

    # -- freshness ----------------------------------------------------------

    def check_dependencies(self, catalog: "Catalog") -> None:
        """Raise a clean error when a base table no longer exists."""
        for dep_name in self.deps:
            if not catalog.has_table(dep_name):
                raise CatalogError(
                    f"materialized provenance view {self.name!r} depends "
                    f"on table {dep_name!r}, which has been dropped"
                )

    def is_current(self, catalog: "Catalog") -> bool:
        """Whether the stored rows still reflect every base table.

        Purely a state comparison — never touches the heaps' data.  A
        dropped or recreated dependency reads as stale here; serving
        paths call :meth:`check_dependencies` first to fail loudly.
        """
        for dep_name, dep in self.deps.items():
            if not catalog.has_table(dep_name):
                return False
            table = catalog.table(dep_name)
            if (
                table.uid != dep.uid
                or table.epoch != dep.epoch
                or table.row_count() != dep.row_count
            ):
                return False
        return True

    def matches_snapshot(self, snapshot: dict) -> bool:
        """Whether the stored rows correspond exactly to a server
        snapshot token (``{table.uid: (epoch, row_count)}``)."""
        for dep in self.deps.values():
            if snapshot.get(dep.uid) != (dep.epoch, dep.row_count):
                return False
        return True

    # -- serving ------------------------------------------------------------

    def result(self):
        """The stored result as a fresh :class:`QueryResult`.

        Rows are copied under the caller-held lock so a concurrent
        refresh can never tear a served read.
        """
        from repro.database import QueryResult

        return QueryResult(
            columns=list(self.columns),
            rows=list(self.rows),
            command="SELECT",
            annotation_column=self.annotation_column,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MaterializedProvenanceView({self.name!r}, "
            f"{self.semantics}, {len(self.rows)} rows)"
        )
