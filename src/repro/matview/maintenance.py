"""Refresh machinery for materialized provenance views.

Two maintenance paths keep a view's stored rows equal to what re-running
its definition would return:

**Full refresh** re-runs the provenance-rewritten definition through the
in-process engine under a snapshot matching the dependency states being
recorded, so the stored rows and the recorded ``(epoch, row count)`` per
base table can never disagree — even while concurrent writers append.

**Incremental (delta) maintenance** consumes the per-statement delta log
(:class:`repro.storage.table.TableDelta`) and exploits that the
rewritten form of an eligible view — select/project/join and ``UNION
ALL``, each base table referenced once — is *multilinear* in its base
tables: with ``T'ᵢ = Tᵢ + Δᵢ`` (signed bag deltas),

    ΔV = Σ_{∅≠S⊆changed} (−1)^{|S|+1} · Q(Δᵢ for i∈S, T'ⱼ for j∉S)

which references only *new* table states — the old heap no longer
exists after deletes, so the classical expansion over old states is not
evaluable here.  Each term runs the unchanged rewritten query against a
shadow catalog that swaps the subset's tables for small delta heaps.

Merging the signed terms into the stored state is where the semiring
structure earns its keep:

* polynomial semantics merges per visible tuple with N[X] addition and
  :meth:`~repro.semiring.polynomial.Polynomial.monus`.  Monus is only
  the exact inverse of addition when the subtrahend is covered
  coefficient-wise (the semiring's natural order), so every subtraction
  is guarded by ``covers()`` — an uncovered delete means the log and the
  stored state disagree and the view falls back to a full refresh;
* witness semantics merges whole annotated rows as a counted bag; a
  negative count is the same disagreement and triggers the same
  fallback.

Anything the algebra cannot maintain exactly — aggregation, DISTINCT,
set difference/intersection, sublinks, self-joins, a pruned delta log,
writes that bypassed the log — is detected and answered with a full
refresh, never with silently wrong rows.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import TYPE_CHECKING, Optional

from repro.analyzer import expressions as ex
from repro.analyzer.analyzer import Analyzer
from repro.analyzer.query_tree import JoinTreeExpr, Query, RTEKind
from repro.errors import ExecutionError, PermError
from repro.executor.context import ExecContext
from repro.matview.view import DependencyState, MaterializedProvenanceView
from repro.planner import make_planner
from repro.semiring.polynomial import Polynomial
from repro.storage.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.database import PermDatabase

#: Inclusion-exclusion evaluates up to ``3^k − 1`` signed terms for
#: ``k`` changed tables; past this many changed tables a full refresh
#: is both simpler and almost certainly cheaper.
MAX_DELTA_TABLES = 3

#: Refresh retries when a concurrent TRUNCATE/DELETE invalidates the
#: snapshot mid-refresh before giving up.
_REFRESH_RETRIES = 5

#: Semantics whose merge algebra is implemented; anything else is
#: correct-but-full-refresh.
_INCREMENTAL_SEMANTICS = ("witness", "polynomial")


# ---------------------------------------------------------------------------
# Entry points (caller holds view.lock)
# ---------------------------------------------------------------------------


def ensure_fresh(db: "PermDatabase", view: MaterializedProvenanceView) -> str:
    """Bring a view up to date; returns ``'fresh'``, ``'incremental'``
    or ``'full'`` describing what was needed."""
    view.check_dependencies(db.catalog)
    if view.is_current(db.catalog):
        return "fresh"
    if view.incremental_eligible:
        if incremental_refresh(db, view):
            return "incremental"
    full_refresh(db, view)
    return "full"


def full_refresh(db: "PermDatabase", view: MaterializedProvenanceView) -> None:
    """Recompute the view from scratch and re-anchor its dependencies."""
    view.check_dependencies(db.catalog)
    last_error: Optional[ExecutionError] = None
    for _ in range(_REFRESH_RETRIES):
        deps, snapshot = _capture_dependencies(db, view)
        try:
            pre, rewritten, columns, rows = _evaluate(
                db, view.statement, db.catalog, snapshot
            )
        except ExecutionError as exc:
            if str(exc).startswith("snapshot too old"):
                last_error = exc
                continue  # a writer moved a heap mid-refresh; recapture
            raise
        view.columns = columns
        view.rows = list(rows)
        view.annotation_column = rewritten.annotation_column
        view.deps = deps
        view.full_refreshes += 1
        _classify(view, pre, rewritten)
        _index_stored_state(view)
        return
    raise last_error  # pragma: no cover - needs a pathological writer


def incremental_refresh(
    db: "PermDatabase", view: MaterializedProvenanceView
) -> bool:
    """Apply logged base-table deltas to the stored rows.

    Returns False — with the stored state untouched — whenever the log
    cannot prove the result exact; the caller then falls back to
    :func:`full_refresh`.
    """
    catalog = db.catalog
    changed: dict[str, tuple[Table, list[tuple], list[tuple]]] = {}
    new_deps: dict[str, DependencyState] = {}
    snapshot: dict[int, tuple[int, int]] = {}
    for dep_name, dep in view.deps.items():
        table = catalog.table(dep_name)
        if table.uid != dep.uid:
            return False  # dropped and recreated: a different heap
        seq = table.delta_seq
        epoch = table.epoch
        row_count = table.row_count()
        snapshot[table.uid] = (epoch, row_count)
        new_deps[dep_name] = DependencyState(table.uid, epoch, row_count, seq)
        if epoch == dep.epoch and row_count == dep.row_count and seq == dep.delta_seq:
            continue
        deltas = table.deltas_since(dep.delta_seq)
        if deltas is None:
            return False  # log pruned or truncated past our anchor
        deltas = [d for d in deltas if d.seq <= seq]
        inserted, deleted = _net_delta(deltas)
        if dep.row_count + len(inserted) - len(deleted) != row_count:
            # Rows reached the heap without a delta record (bulk load,
            # SELECT INTO): the log is not the whole story.
            return False
        changed[dep_name] = (table, inserted, deleted)
    if not changed:
        # Deltas cancelled out (or only the delta seq moved); just
        # re-anchor so is_current() is cheap again.
        view.deps = new_deps
        return True
    if len(changed) > MAX_DELTA_TABLES:
        return False

    terms = _evaluate_delta_terms(db, view, changed, snapshot)
    if terms is None:
        return False
    if not _merge_terms(view, terms):
        return False
    view.deps = new_deps
    view.incremental_refreshes += 1
    return True


def status(view: MaterializedProvenanceView, catalog) -> str:
    """One-word freshness label for the CLI and ``explain``."""
    for dep_name in view.deps:
        if not catalog.has_table(dep_name):
            return "broken"
    return "fresh" if view.is_current(catalog) else "stale"


# ---------------------------------------------------------------------------
# Evaluation (full pipeline against a possibly-shadowed catalog)
# ---------------------------------------------------------------------------


class _ShadowCatalog:
    """A catalog view that swaps named tables for delta heaps.

    The planner binds base relations by name at plan time, so handing
    it a catalog whose :meth:`table` answers with a small delta heap
    re-plans the *unchanged* view definition over the delta — schema,
    token minting and witness attributes all behave as if the delta
    rows were the table's whole content.  Everything else (schemas,
    statistics, views) proxies to the real catalog.
    """

    def __init__(self, base, overrides: dict[str, Table]) -> None:
        self._base = base
        self._overrides = overrides

    def table(self, name: str) -> Table:
        override = self._overrides.get(name.lower())
        if override is not None:
            return override
        return self._base.table(name)

    def __getattr__(self, attr):
        return getattr(self._base, attr)


def _capture_dependencies(
    db: "PermDatabase", view: MaterializedProvenanceView
) -> tuple[dict[str, DependencyState], dict[int, tuple[int, int]]]:
    """Record the current state of every base table the view reads.

    The matching snapshot token is returned alongside so the refresh
    can *execute under* exactly the state it records — concurrent
    appends past the captured row counts are simply not visible.
    """
    from repro.backends.base import collect_base_relations

    analyzed = Analyzer(db.catalog).analyze(view.statement)
    deps: dict[str, DependencyState] = {}
    snapshot: dict[int, tuple[int, int]] = {}
    for name in sorted(collect_base_relations(analyzed)):
        table = db.catalog.table(name)
        deps[name.lower()] = DependencyState(
            table.uid, table.epoch, table.row_count(), table.delta_seq
        )
        snapshot[table.uid] = (table.epoch, table.row_count())
    return deps, snapshot


def _evaluate(
    db: "PermDatabase",
    statement,
    catalog,
    snapshot: Optional[dict[int, tuple[int, int]]],
) -> tuple[Query, Query, list[str], list[tuple]]:
    """Run the full frontend + in-process engine for one statement.

    Always the Python engine regardless of the active backend: only it
    honors snapshot reads, and delta heaps exist solely in the (shadow)
    catalog — a data-shipping backend would not see them.
    """
    from repro.core.rewriter import traverse_query_tree
    from repro.executor.nodes import run_plan_rows

    analyzed = Analyzer(catalog).analyze(statement)
    rewritten = traverse_query_tree(analyzed)
    planned = rewritten
    if db.optimizer_enabled:
        from repro.optimizer import optimize_query_tree

        planned = optimize_query_tree(rewritten)
    plan = make_planner(
        catalog, cost_based=db.cost_based_enabled, vectorize=False
    ).plan(planned)
    ctx = ExecContext(snapshot=snapshot)
    rows = run_plan_rows(plan, ctx)
    return analyzed, planned, list(plan.output_names), rows


def _evaluate_delta_terms(
    db: "PermDatabase",
    view: MaterializedProvenanceView,
    changed: dict[str, tuple[Table, list[tuple], list[tuple]]],
    snapshot: dict[int, tuple[int, int]],
) -> Optional[list[tuple[int, list[tuple]]]]:
    """All signed inclusion-exclusion terms as ``(sign, rows)`` pairs."""
    names = sorted(changed)
    terms: list[tuple[int, list[tuple]]] = []
    for size in range(1, len(names) + 1):
        for subset in itertools.combinations(names, size):
            # Each Δᵢ = Aᵢ − Dᵢ expands multilinearly into a choice of
            # the insert or delete heap per table in the subset.
            for sides in itertools.product(("+", "-"), repeat=size):
                overrides: dict[str, Table] = {}
                skip = False
                for name, side in zip(subset, sides):
                    table, inserted, deleted = changed[name]
                    delta_rows = inserted if side == "+" else deleted
                    if not delta_rows:
                        skip = True  # an empty factor zeroes the term
                        break
                    overrides[name] = Table(table.schema, delta_rows)
                if skip:
                    continue
                sign = (-1) ** (size + 1) * (-1) ** sides.count("-")
                shadow = _ShadowCatalog(db.catalog, overrides)
                try:
                    _, rewritten, columns, rows = _evaluate(
                        db, view.statement, shadow, snapshot
                    )
                except ExecutionError as exc:
                    if str(exc).startswith("snapshot too old"):
                        return None  # concurrent writer; retry as full
                    raise
                if columns != view.columns or (
                    rewritten.annotation_column != view.annotation_column
                ):
                    return None  # shape drifted; not safely mergeable
                terms.append((sign, rows))
    return terms


def _net_delta(deltas) -> tuple[list[tuple], list[tuple]]:
    """Collapse a delta sequence into net inserted / deleted bags.

    A row deleted after being inserted (or re-inserted after being
    deleted) within the window cancels, so the returned pair is exactly
    ``T_new − T_old`` split into its positive and negative parts.
    """
    inserted: Counter = Counter()
    deleted: Counter = Counter()
    for delta in deltas:
        for row in delta.deleted:
            if inserted[row] > 0:
                inserted[row] -= 1
            else:
                deleted[row] += 1
        for row in delta.inserted:
            if deleted[row] > 0:
                deleted[row] -= 1
            else:
                inserted[row] += 1
    return list(inserted.elements()), list(deleted.elements())


# ---------------------------------------------------------------------------
# Merging signed terms into the stored state
# ---------------------------------------------------------------------------


def _merge_terms(
    view: MaterializedProvenanceView, terms: list[tuple[int, list[tuple]]]
) -> bool:
    if view.semantics == "polynomial":
        return _merge_polynomial(view, terms)
    return _merge_witness(view, terms)


def _merge_polynomial(
    view: MaterializedProvenanceView, terms: list[tuple[int, list[tuple]]]
) -> bool:
    if view.poly_map is None or view.annotation_column is None:
        return False
    try:
        ann = view.columns.index(view.annotation_column)
    except ValueError:
        return False
    positive: dict[tuple, Polynomial] = {}
    negative: dict[tuple, Polynomial] = {}
    zero = Polynomial.zero()
    for sign, rows in terms:
        bucket = positive if sign > 0 else negative
        for row in rows:
            key = row[:ann] + row[ann + 1 :]
            poly = row[ann]
            if not isinstance(poly, Polynomial):
                return False
            bucket[key] = bucket.get(key, zero) + poly
    # Work out the new annotation per touched key without mutating yet,
    # so an inexact monus leaves the stored state untouched.
    changed: dict[tuple, Optional[Polynomial]] = {}
    for key, poly in positive.items():
        changed[key] = view.poly_map.get(key, zero) + poly
    for key, poly in negative.items():
        current = changed[key] if key in changed else view.poly_map.get(key, zero)
        if not current.covers(poly):
            # Monus would clamp instead of invert: the stored state and
            # the delta log disagree — recompute rather than guess.
            return False
        remaining = current.monus(poly)
        changed[key] = None if remaining.is_zero() else remaining
    # Apply delta-sized: update rows in place via the key→position
    # index; only a key removal forces an O(stored) compaction.
    pos = view.poly_pos
    removed = False
    for key, poly in changed.items():
        at = pos.get(key)
        if poly is None:
            view.poly_map.pop(key, None)
            if at is not None:
                view.rows[at] = None
                del pos[key]
                removed = True
            continue
        view.poly_map[key] = poly
        row = key[:ann] + (poly,) + key[ann:]
        if at is None:
            pos[key] = len(view.rows)
            view.rows.append(row)
        else:
            view.rows[at] = row
    if removed:
        view.rows = [row for row in view.rows if row is not None]
        view.poly_pos = {
            row[:ann] + row[ann + 1 :]: at for at, row in enumerate(view.rows)
        }
    return True


def _merge_witness(
    view: MaterializedProvenanceView, terms: list[tuple[int, list[tuple]]]
) -> bool:
    if view.row_bag is None:
        return False
    delta: Counter = Counter()
    for sign, rows in terms:
        for row in rows:
            delta[row] += sign
    bag = view.row_bag
    if any(bag[row] + count < 0 for row, count in delta.items()):
        return False  # bag difference is inexact here; recompute
    # Apply delta-sized: pure insertions append; only deletions pay an
    # O(stored) rebuild of the row list.
    removed = False
    appended: list[tuple] = []
    for row, count in delta.items():
        if count == 0:
            continue
        remaining = bag[row] + count
        if remaining:
            bag[row] = remaining
        else:
            del bag[row]
        if count < 0:
            removed = True
        else:
            appended.extend([row] * count)
    if removed:
        view.rows = list(bag.elements())
    else:
        view.rows.extend(appended)
    return True


def _index_stored_state(view: MaterializedProvenanceView) -> None:
    """(Re)build the merge index after a full refresh."""
    view.poly_map = None
    view.poly_pos = {}
    view.row_bag = None
    if not view.incremental_eligible:
        return
    if view.semantics == "polynomial":
        if view.annotation_column is None:
            view.incremental_eligible = False
            view.ineligible_reason = "rewrite produced no annotation column"
            return
        ann = view.columns.index(view.annotation_column)
        poly_map: dict[tuple, Polynomial] = {}
        poly_pos: dict[tuple, int] = {}
        for at, row in enumerate(view.rows):
            key = row[:ann] + row[ann + 1 :]
            if key in poly_map or not isinstance(row[ann], Polynomial):
                # Duplicate visible tuples mean the root collapse did
                # not run; per-key merging would be wrong.
                view.incremental_eligible = False
                view.ineligible_reason = "result rows not keyed by visible tuple"
                return
            poly_map[key] = row[ann]
            poly_pos[key] = at
        view.poly_map = poly_map
        view.poly_pos = poly_pos
    else:
        view.row_bag = Counter(view.rows)


# ---------------------------------------------------------------------------
# Eligibility classification
# ---------------------------------------------------------------------------


def _classify(
    view: MaterializedProvenanceView, analyzed: Query, rewritten: Query
) -> None:
    """Decide whether delta maintenance applies to this view.

    Structural limits come from the multilinearity argument in the
    module docstring; the reference count runs on the *rewritten* tree
    because that is the query actually evaluated over delta heaps — a
    rewrite that duplicated a base table (aggregate provenance joins
    do) would break per-occurrence linearity even if the original
    query referenced it once.
    """
    view.incremental_eligible = False
    if view.semantics not in _INCREMENTAL_SEMANTICS:
        view.ineligible_reason = (
            f"no delta merge algebra for {view.semantics!r} semantics"
        )
        return
    reason = _structural_reason(analyzed)
    if reason is None:
        counts: Counter = Counter()
        _count_base_references(rewritten, counts)
        repeated = sorted(name for name, n in counts.items() if n > 1)
        if repeated:
            reason = (
                f"table {repeated[0]!r} is referenced more than once "
                "(maintenance is per-occurrence linear)"
            )
    view.incremental_eligible = reason is None
    view.ineligible_reason = reason


def _structural_reason(query: Query) -> Optional[str]:
    """First structural feature that rules out delta maintenance.

    The delta expansion needs the evaluated query to be *multilinear*
    per base-table occurrence — in particular it must vanish when any
    referenced heap is empty.  That rules out more than aggregation:

    * set operations are affine, not multilinear (a ``UNION ALL``
      branch not referencing the changed table contributes its rows to
      every delta term, duplicating them), and
    * outer joins preserve the null-padded side of an empty input.
    """
    if query.has_aggs or query.group_clause or query.having is not None:
        return "aggregation is not delta-maintainable"
    if query.distinct:
        return "DISTINCT is not delta-maintainable"
    if query.sort_clause or query.limit_count is not None or query.limit_offset is not None:
        return "ORDER BY/LIMIT is not delta-maintainable"
    if query.set_operations is not None:
        return (
            "set operations are not delta-maintainable "
            "(branches are affine, not multilinear)"
        )
    reason = _jointree_reason(query.jointree.items)
    if reason is not None:
        return reason
    for expr in _iter_expressions(query):
        for node in ex.walk(expr):
            if isinstance(node, ex.SubLink):
                return "subquery expressions are not delta-maintainable"
    for rte in query.range_table:
        if rte.subquery is not None:
            reason = _structural_reason(rte.subquery)
            if reason is not None:
                return reason
    return None


def _jointree_reason(items) -> Optional[str]:
    stack = list(items)
    while stack:
        item = stack.pop()
        if isinstance(item, JoinTreeExpr):
            if item.join_type not in ("inner", "cross"):
                return (
                    f"{item.join_type.upper()} JOIN is not "
                    "delta-maintainable (does not vanish on empty inputs)"
                )
            stack.append(item.left)
            stack.append(item.right)
    return None


def _iter_expressions(query: Query):
    for target in query.target_list:
        yield target.expr
    if query.jointree.quals is not None:
        yield query.jointree.quals
    stack = list(query.jointree.items)
    while stack:
        item = stack.pop()
        if isinstance(item, JoinTreeExpr):
            if item.quals is not None:
                yield item.quals
            stack.append(item.left)
            stack.append(item.right)
    yield from query.group_clause
    if query.having is not None:
        yield query.having


def _count_base_references(query: Query, counts: Counter) -> None:
    for rte in query.range_table:
        if rte.kind is RTEKind.RELATION and rte.relation_name:
            counts[rte.relation_name.lower()] += 1
        elif rte.subquery is not None:
            _count_base_references(rte.subquery, counts)
    for expr in _iter_expressions(query):
        for node in ex.walk(expr):
            if isinstance(node, ex.SubLink):
                _count_base_references(node.subquery, counts)


def validate_definition(statement) -> None:
    """Reject definition shapes a materialized view cannot serve.

    Raised at CREATE time with a targeted message instead of failing
    obscurely later: the stored heap is unordered, so an ORDER BY /
    LIMIT contract could not be honored on serve, and SELECT INTO has
    side effects a refresh must not repeat.
    """
    if not getattr(statement, "provenance", False):
        raise PermError(
            "CREATE MATERIALIZED PROVENANCE VIEW requires a SELECT "
            "PROVENANCE body (add the PROVENANCE keyword)"
        )
    if getattr(statement, "into", None):
        raise PermError(
            "SELECT INTO cannot be used as a materialized view definition"
        )
    if statement.order_by or statement.limit is not None or statement.offset is not None:
        raise PermError(
            "ORDER BY/LIMIT/OFFSET are not supported in materialized "
            "provenance view definitions (the stored result is unordered)"
        )
