"""Exchange insertion: the cost-based planner's parallelization pass.

Runs once over a finished physical plan (root planner only).  A subtree
is wrapped in an :class:`~repro.parallel.exchange.ExchangeNode` when it
is a *pipeline*: an optional parallel-safe ``HashAggregate`` on top of
a chain of parallel-safe ``FilterNode`` / ``ProjectNode`` /
``SliceNode`` operators bottoming out in a single parallel-safe
``SeqScan`` whose heap is large enough that fan-out pays for dispatch.
Everything in such a pipeline is pure per-chunk work: no sublinks, no
correlated outer references, no shared materialized spools — exactly
the properties the planner's ``parallel_safe`` flags certify.

The pass wraps the *topmost* eligible chain (so filters, projections
and the aggregation's accumulation all move into the workers, not just
the scan) and otherwise recurses through ``child``/``left``/``right``
links — join inputs, set-operation arms and FROM-subquery plans all
parallelize independently.  Subplans reachable only through compiled
expression closures (sublinks) are intentionally left serial: they
execute against per-row outer contexts the exchange cannot fork.
"""

from __future__ import annotations

from typing import Optional

from repro.executor.fusion import FusedPipelineNode
from repro.executor.nodes import (
    FilterNode,
    HashAggregate,
    PlanNode,
    ProjectNode,
    SeqScan,
    SliceNode,
)
from repro.parallel import DEFAULT_MORSEL_SIZE, MIN_PARALLEL_ROWS
from repro.parallel.exchange import ExchangeNode

#: Plan-tree child links rewritten in place by the pass.
_CHILD_ATTRS = ("child", "left", "right")


def _pipeline_scan(node: PlanNode) -> Optional[SeqScan]:
    """The base scan of a parallel-safe pipeline rooted at ``node``, or
    None when the subtree is not a wrappable pipeline."""
    current = node
    if isinstance(current, HashAggregate):
        if (
            not current.parallel_safe
            or current.batch_group_exprs is None
            or current.batch_unique_args is None
        ):
            return None
        current = current.child
    while True:
        if isinstance(current, SeqScan):
            if not current.parallel_safe:
                return None
            if current.predicate is not None and current.batch_predicates is None:
                return None  # row-only predicate: no batch form to fork
            return current
        if isinstance(current, FusedPipelineNode):
            # The fused kernel is pure per-chunk work over its bare
            # scan; the chain's parallel_safe flags folded into the
            # node's own at fusion time.
            if not current.parallel_safe:
                return None
        elif isinstance(current, FilterNode):
            if not current.parallel_safe or current.batch_predicates is None:
                return None
        elif isinstance(current, ProjectNode):
            if not current.parallel_safe or current.batch_exprs is None:
                return None
        elif not isinstance(current, SliceNode):
            return None
        current = current.child


def insert_exchanges(
    plan: PlanNode,
    workers: int,
    morsel_size: Optional[int] = None,
    min_rows: int = MIN_PARALLEL_ROWS,
    strategy: str = "thread",
) -> PlanNode:
    """Wrap eligible pipelines of ``plan`` in exchange nodes.

    ``workers`` is the resolved fan-out; ``morsel_size`` defaults to
    :data:`~repro.parallel.DEFAULT_MORSEL_SIZE`.  ``min_rows`` gates on
    the *actual* heap row count (the scan cost driver — estimated
    output cardinality may be tiny for selective filters whose scans
    are still worth parallelizing).  ``strategy`` names the registered
    worker-pool strategy morsels dispatch on (``thread`` / ``process``
    / ``serial``).
    """
    if workers <= 1:
        return plan
    size = DEFAULT_MORSEL_SIZE if morsel_size is None else max(int(morsel_size), 1)

    scan = _pipeline_scan(plan)
    if scan is not None and scan.table.row_count() >= max(min_rows, size + 1):
        return ExchangeNode(plan, scan, workers, size, strategy=strategy)
    for attr in _CHILD_ATTRS:
        child = getattr(plan, attr, None)
        if isinstance(child, PlanNode):
            setattr(
                plan, attr, insert_exchanges(child, workers, size, min_rows, strategy)
            )
    return plan
