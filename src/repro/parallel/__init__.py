"""Morsel-driven intra-query parallelism.

The vectorized engine already decomposes scans into columnar chunks;
this package turns those chunk ranges into *morsels* — independently
schedulable scan ranges — and fans a parallel-safe pipeline out over a
worker pool, merging per-worker state at an exchange operator:

* :mod:`repro.parallel.dispatch` — the worker-pool abstraction.  The
  default strategy runs morsels on a shared thread pool; the interface
  is a pure ``tasks -> ordered results`` map so a
  ``ProcessPoolExecutor`` strategy can slot in later without touching
  the exchange operator.
* :mod:`repro.parallel.exchange` —
  :class:`~repro.parallel.exchange.ExchangeNode`, the plan operator
  that owns morsel generation, dispatch, and the ordered merge of
  worker outputs.  Provenance merges are semiring-native: witness-list
  pipelines concatenate worker chunks in morsel order (bag union), and
  partial polynomial aggregation merges by polynomial addition.
* :mod:`repro.parallel.planning` — the cost-based planner's post-pass
  that inserts exchanges above parallel-safe
  scan→filter→project(→partial-aggregate) pipelines when the estimated
  scan cardinality justifies the fan-out.

The row engine never parallelizes and ``parallel_workers=1`` disables
exchange insertion entirely — both stay available as differential
oracles for the parallel paths.
"""

from __future__ import annotations

import os
from typing import Optional

#: Rows per morsel.  Small enough that a 4-worker pool load-balances
#: over benchmark-scale tables, large enough that per-morsel dispatch
#: overhead (future + context + partial-state merge) stays amortized.
DEFAULT_MORSEL_SIZE = 4096

#: Scans below this row count never fan out: the fixed dispatch cost
#: exceeds any per-worker saving on small inputs.
MIN_PARALLEL_ROWS = 8192


def resolve_worker_count(setting: Optional[int]) -> int:
    """Normalize a worker-count knob: ``None`` means one worker per
    available core, anything else is clamped to at least 1."""
    if setting is None:
        return max(os.cpu_count() or 1, 1)
    return max(int(setting), 1)


from repro.parallel.dispatch import (  # noqa: E402
    SerialStrategy,
    ThreadPoolStrategy,
    WorkerPoolStrategy,
    get_strategy,
)
from repro.parallel.exchange import ExchangeNode  # noqa: E402
from repro.parallel.planning import insert_exchanges  # noqa: E402

__all__ = [
    "DEFAULT_MORSEL_SIZE",
    "MIN_PARALLEL_ROWS",
    "ExchangeNode",
    "SerialStrategy",
    "ThreadPoolStrategy",
    "WorkerPoolStrategy",
    "get_strategy",
    "insert_exchanges",
    "resolve_worker_count",
]
