"""The exchange operator: fan a pipeline out over morsels, merge in order.

An :class:`ExchangeNode` wraps one parallel-safe pipeline whose base is
a single heap scan.  At execution it splits the scan's physical row
range into morsels, runs the *whole* pipeline once per morsel on the
worker pool (each worker gets a forked context restricted to its
range), and merges worker outputs:

* **Streaming pipelines** (scan→filter→project): worker chunks are
  concatenated in morsel order.  Rows therefore appear in exactly the
  serial scan order, so witness-list provenance merges as a plain bag
  union and differential tests compare ordered row lists.
* **Partial aggregation** (pipeline topped by a
  :class:`~repro.executor.nodes.HashAggregate`): each worker
  accumulates private per-group states over its morsels; the exchange
  merges them group-by-group with :meth:`AggState.merge` in morsel
  order.  The merge is semiring-native — polynomial annotation states
  add in ``N[X]``, so ``SELECT PROVENANCE (polynomial)`` aggregates
  parallelize without leaving the provenance algebra.

The row protocol (:meth:`run`) always executes serially — the row
engine is the differential oracle for the parallel paths.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.executor.context import ExecContext
from repro.executor.nodes import HashAggregate, PlanNode, SeqScan
from repro.parallel.dispatch import WorkerPoolStrategy, get_strategy
from repro.storage.chunk import Chunk


class ExchangeNode(PlanNode):
    """Gather node over a morsel-parallel pipeline."""

    def __init__(
        self,
        child: PlanNode,
        scan: SeqScan,
        workers: int,
        morsel_size: int,
        strategy: str = "thread",
    ) -> None:
        self.child = child
        self.scan = scan
        self.workers = max(int(workers), 1)
        self.morsel_size = max(int(morsel_size), 1)
        self.strategy_name = strategy
        self.output_names = list(child.output_names)
        self.estimate = child.estimate
        self.partial_agg = isinstance(child, HashAggregate)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        mode = "partial-agg" if self.partial_agg else "stream"
        return (
            f"Exchange ({mode}, {self.workers} workers, "
            f"morsel={self.morsel_size})"
        )

    # -- serial oracle -------------------------------------------------------

    def run(self, ctx: ExecContext) -> Iterator[tuple]:
        return self.child.run(ctx)

    # -- parallel execution --------------------------------------------------

    def _morsels(self, ctx: ExecContext) -> list[tuple[int, int]]:
        start, stop = self.scan._bounds(ctx)
        size = self.morsel_size
        return [
            (lower, min(lower + size, stop)) for lower in range(start, stop, size)
        ]

    def _strategy(self) -> WorkerPoolStrategy:
        return get_strategy(self.strategy_name, self.workers)

    def run_batches(self, ctx: ExecContext) -> Iterator[Chunk]:
        if ctx.morsel is not None:
            # Already inside a worker (defensive: planning never nests
            # exchanges) — degrade to serial rather than re-fan-out.
            yield from self.child.run_batches(ctx)
            return
        morsels = self._morsels(ctx)
        if self.workers <= 1 or len(morsels) <= 1:
            yield from self.child.run_batches(ctx)
            return
        strategy = self._strategy()
        # Materialize the scan's columnar cache before fan-out: thread
        # workers would race to build it, and fork-based workers inherit
        # the finished cache copy-on-write instead of each transposing
        # its own copy.
        self.scan.table.columnar()
        if self.partial_agg:
            yield from self._run_partial_agg(ctx, morsels, strategy)
            return

        child = self.child

        def task(start: int, stop: int):
            worker_ctx = ctx.fork_morsel(start, stop)
            # compact() detaches selection vectors so the merged stream
            # hands downstream operators plain dense chunks.
            return [
                chunk.compact() for chunk in child.run_batches(worker_ctx)
            ]

        tasks = [
            (lambda start=start, stop=stop: task(start, stop))
            for start, stop in morsels
        ]
        for chunks in strategy.map_ordered(tasks):
            yield from chunks

    def _run_partial_agg(
        self,
        ctx: ExecContext,
        morsels: list[tuple[int, int]],
        strategy: WorkerPoolStrategy,
    ) -> Iterator[Chunk]:
        agg: HashAggregate = self.child  # type: ignore[assignment]

        def task(start: int, stop: int):
            worker_ctx = ctx.fork_morsel(start, stop)
            return agg._accumulate_batches(worker_ctx)

        tasks = [
            (lambda start=start, stop=stop: task(start, stop))
            for start, stop in morsels
        ]
        merged_groups: dict[tuple, list] = {}
        merged_order: list[tuple] = []
        merged_grand: Optional[list] = None
        for groups, order, grand_states in strategy.map_ordered(tasks):
            if grand_states is not None:
                if merged_grand is None:
                    merged_grand = grand_states
                else:
                    for into, part in zip(merged_grand, grand_states):
                        into.merge(part)
            for key in order:
                states = merged_groups.get(key)
                if states is None:
                    # First worker (in morsel order) to produce the group
                    # donates its states — key order across the merged map
                    # is first-encounter order over the concatenated
                    # morsel stream, identical to the serial scan.
                    merged_groups[key] = groups[key]
                    merged_order.append(key)
                else:
                    for into, part in zip(states, groups[key]):
                        into.merge(part)
        yield from agg._emit_batches(merged_groups, merged_order, merged_grand, ctx)
