"""Worker-pool strategies for morsel dispatch.

A strategy is a deliberately small interface — ``map_ordered`` takes
zero-argument tasks and returns their results in task order — so the
exchange operator never cares *where* morsels run:

* :class:`SerialStrategy` runs tasks inline (the degenerate pool; also
  the fallback when only one morsel exists).
* :class:`ThreadPoolStrategy` runs tasks on one shared, lazily grown
  ``ThreadPoolExecutor``.  Threads are the right default for this
  engine: morsel tasks spend their time in C-level list/zip/dict
  operations that release contention points cheaply, and shared-heap
  access (the table's columnar cache) needs no serialization.
* :class:`ForkProcessStrategy` (registered as ``process``) finally
  breaks the GIL for CPU-bound morsels and shard scatter: it forks one
  worker per slice of the task list, so closures (and the tables /
  columnar caches they capture) are inherited copy-on-write without
  pickling the *inputs* — only each task's *result* is pickled back
  over a pipe.  On platforms without ``fork`` it degrades to the
  thread pool.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

from repro.errors import ExecutionError

Task = Callable[[], Any]


class WorkerPoolStrategy:
    """Maps zero-argument tasks to results, preserving task order."""

    name = "abstract"

    def map_ordered(self, tasks: Sequence[Task]) -> list:  # pragma: no cover
        raise NotImplementedError


class SerialStrategy(WorkerPoolStrategy):
    """Run every task inline on the calling thread."""

    name = "serial"

    def map_ordered(self, tasks: Sequence[Task]) -> list:
        return [task() for task in tasks]


#: One process-wide thread pool shared by all exchanges and queries.
#: Creating a pool per query would pay thread spawn on every statement;
#: sharing one keeps dispatch at enqueue cost.  The pool grows (never
#: shrinks) to the largest worker count any exchange has asked for.
_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None
_pool_size = 0


def shared_thread_pool(workers: int) -> ThreadPoolExecutor:
    global _pool, _pool_size
    with _pool_lock:
        if _pool is None or _pool_size < workers:
            previous = _pool
            _pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-morsel"
            )
            _pool_size = workers
            if previous is not None:
                # Queued tasks still drain; new work goes to the bigger pool.
                previous.shutdown(wait=False)
        return _pool


class ThreadPoolStrategy(WorkerPoolStrategy):
    """Dispatch tasks to the shared thread pool.

    Tasks never submit sub-tasks (exchange pipelines contain no nested
    exchanges), so a bounded shared pool cannot deadlock on itself;
    concurrent queries simply interleave their morsels.
    """

    name = "thread"

    def __init__(self, workers: int) -> None:
        self.workers = max(int(workers), 1)

    def map_ordered(self, tasks: Sequence[Task]) -> list:
        if len(tasks) <= 1:
            return [task() for task in tasks]
        pool = shared_thread_pool(self.workers)
        futures = [pool.submit(task) for task in tasks]
        # result() re-raises worker exceptions on the coordinating
        # thread, so engine errors (snapshot invalidation, timeouts)
        # surface exactly like in serial execution.
        return [future.result() for future in futures]


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def _fork_worker(conn, tasks: Sequence[Task], indexes: list[int]) -> None:
    """Child body: run assigned tasks, stream pickled results back."""
    try:
        for index in indexes:
            try:
                payload = pickle.dumps(
                    (index, True, tasks[index]()), protocol=pickle.HIGHEST_PROTOCOL
                )
            except BaseException as exc:  # noqa: BLE001 - must cross the pipe
                payload = pickle.dumps(
                    (index, False, (type(exc).__name__, str(exc))),
                    protocol=pickle.HIGHEST_PROTOCOL,
                )
            conn.send_bytes(payload)
    finally:
        conn.close()
        # _exit skips atexit/flush of inherited parent state (WAL
        # buffers, stdio) — the child must not double-write any of it.
        os._exit(0)


class ForkProcessStrategy(WorkerPoolStrategy):
    """Fork-based process scatter: COW inputs in, pickled results out.

    Each worker gets a contiguous-stride slice of the task list and its
    own pipe; the parent drains pipes in worker order, so no task result
    is ever dropped and the first worker error re-raises on the
    coordinating thread like in serial execution.
    """

    name = "process"

    def __init__(self, workers: int) -> None:
        self.workers = max(int(workers), 1)

    def map_ordered(self, tasks: Sequence[Task]) -> list:
        if len(tasks) <= 1 or self.workers <= 1:
            return [task() for task in tasks]
        if not _fork_available():  # pragma: no cover - platform dependent
            return ThreadPoolStrategy(self.workers).map_ordered(tasks)
        ctx = multiprocessing.get_context("fork")
        count = min(self.workers, len(tasks))
        workers = []
        for worker_id in range(count):
            recv, send = ctx.Pipe(duplex=False)
            indexes = list(range(worker_id, len(tasks), count))
            process = ctx.Process(
                target=_fork_worker, args=(send, tasks, indexes), daemon=True
            )
            process.start()
            send.close()
            workers.append((process, recv, indexes))
        results: list = [None] * len(tasks)
        received = [False] * len(tasks)
        error: tuple | None = None
        for process, recv, indexes in workers:
            try:
                while True:
                    try:
                        payload = recv.recv_bytes()
                    except EOFError:
                        break
                    index, ok, value = pickle.loads(payload)
                    if ok:
                        results[index] = value
                        received[index] = True
                    elif error is None:
                        error = value
            finally:
                recv.close()
                process.join()
        if error is not None:
            if error[0] == "ExecutionError":
                # preserve the message verbatim: classifiers key on its
                # prefix ("snapshot too old", "statement timeout", ...)
                raise ExecutionError(error[1])
            raise ExecutionError(f"{error[0]}: {error[1]}")
        if not all(received):
            missing = received.count(False)
            raise ExecutionError(
                f"process scatter lost {missing} task result(s) "
                "(worker died before reporting)"
            )
        return results


_STRATEGIES: dict[str, Callable[[int], WorkerPoolStrategy]] = {
    "serial": lambda workers: SerialStrategy(),
    "thread": ThreadPoolStrategy,
    "process": ForkProcessStrategy,
}


def get_strategy(name: str, workers: int) -> WorkerPoolStrategy:
    """Instantiate a registered strategy for the given worker count."""
    try:
        factory = _STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown worker-pool strategy {name!r} "
            f"(available: {', '.join(sorted(_STRATEGIES))})"
        ) from None
    return factory(workers)


def register_strategy(
    name: str, factory: Callable[[int], WorkerPoolStrategy]
) -> None:
    """Register an additional strategy (e.g. a process pool)."""
    _STRATEGIES[name] = factory
