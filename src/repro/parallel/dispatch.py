"""Worker-pool strategies for morsel dispatch.

A strategy is a deliberately small interface — ``map_ordered`` takes
zero-argument tasks and returns their results in task order — so the
exchange operator never cares *where* morsels run:

* :class:`SerialStrategy` runs tasks inline (the degenerate pool; also
  the fallback when only one morsel exists).
* :class:`ThreadPoolStrategy` runs tasks on one shared, lazily grown
  ``ThreadPoolExecutor``.  Threads are the right default for this
  engine: morsel tasks spend their time in C-level list/zip/dict
  operations that release contention points cheaply, and shared-heap
  access (the table's columnar cache) needs no serialization.
* A future ``ProcessPoolStrategy`` plugs in by registering another
  name: because tasks are closures over (plan node, morsel range), a
  process strategy would ship ``(plan, start, stop)`` picklable
  descriptions instead — the signature already passes tasks as a
  sequence, so only the strategy body changes, not the exchange.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

Task = Callable[[], Any]


class WorkerPoolStrategy:
    """Maps zero-argument tasks to results, preserving task order."""

    name = "abstract"

    def map_ordered(self, tasks: Sequence[Task]) -> list:  # pragma: no cover
        raise NotImplementedError


class SerialStrategy(WorkerPoolStrategy):
    """Run every task inline on the calling thread."""

    name = "serial"

    def map_ordered(self, tasks: Sequence[Task]) -> list:
        return [task() for task in tasks]


#: One process-wide thread pool shared by all exchanges and queries.
#: Creating a pool per query would pay thread spawn on every statement;
#: sharing one keeps dispatch at enqueue cost.  The pool grows (never
#: shrinks) to the largest worker count any exchange has asked for.
_pool_lock = threading.Lock()
_pool: ThreadPoolExecutor | None = None
_pool_size = 0


def shared_thread_pool(workers: int) -> ThreadPoolExecutor:
    global _pool, _pool_size
    with _pool_lock:
        if _pool is None or _pool_size < workers:
            previous = _pool
            _pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-morsel"
            )
            _pool_size = workers
            if previous is not None:
                # Queued tasks still drain; new work goes to the bigger pool.
                previous.shutdown(wait=False)
        return _pool


class ThreadPoolStrategy(WorkerPoolStrategy):
    """Dispatch tasks to the shared thread pool.

    Tasks never submit sub-tasks (exchange pipelines contain no nested
    exchanges), so a bounded shared pool cannot deadlock on itself;
    concurrent queries simply interleave their morsels.
    """

    name = "thread"

    def __init__(self, workers: int) -> None:
        self.workers = max(int(workers), 1)

    def map_ordered(self, tasks: Sequence[Task]) -> list:
        if len(tasks) <= 1:
            return [task() for task in tasks]
        pool = shared_thread_pool(self.workers)
        futures = [pool.submit(task) for task in tasks]
        # result() re-raises worker exceptions on the coordinating
        # thread, so engine errors (snapshot invalidation, timeouts)
        # surface exactly like in serial execution.
        return [future.result() for future in futures]


_STRATEGIES: dict[str, Callable[[int], WorkerPoolStrategy]] = {
    "serial": lambda workers: SerialStrategy(),
    "thread": ThreadPoolStrategy,
}


def get_strategy(name: str, workers: int) -> WorkerPoolStrategy:
    """Instantiate a registered strategy for the given worker count."""
    try:
        factory = _STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown worker-pool strategy {name!r} "
            f"(available: {', '.join(sorted(_STRATEGIES))})"
        ) from None
    return factory(workers)


def register_strategy(
    name: str, factory: Callable[[int], WorkerPoolStrategy]
) -> None:
    """Register an additional strategy (e.g. a process pool)."""
    _STRATEGIES[name] = factory
