"""SQL value domain for the repro engine.

The engine operates on plain Python values: ``int``, ``float``, ``str``,
``bool``, :class:`datetime.date` and ``None`` (SQL NULL).  This module
centralizes

* the type tags used by schemas and the analyzer,
* null-aware comparison used by predicates and sort,
* SQL-style implicit coercion (int -> float, date arithmetic),
* parsing of literals (dates, intervals) used by the parser and TPC-H.

Keeping this in one place means the executor, the formal algebra
interpreter and the baselines all share identical value semantics, which
is what the correctness property tests rely on.
"""

from __future__ import annotations

import datetime
import enum
import re
from typing import Any


class SQLType(enum.Enum):
    """Type tags carried by columns and analyzed expressions."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    DATE = "date"
    INTERVAL = "interval"
    POLYNOMIAL = "polynomial"  # N[X] provenance annotations (repro.semiring)
    NULL = "null"  # type of a bare NULL literal before coercion
    ANY = "any"  # wildcard used by a few polymorphic functions

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SQLType.{self.name}"


NUMERIC_TYPES = frozenset({SQLType.INTEGER, SQLType.FLOAT})

_TYPE_NAME_ALIASES = {
    "int": SQLType.INTEGER,
    "int4": SQLType.INTEGER,
    "int8": SQLType.INTEGER,
    "integer": SQLType.INTEGER,
    "bigint": SQLType.INTEGER,
    "smallint": SQLType.INTEGER,
    "serial": SQLType.INTEGER,
    "float": SQLType.FLOAT,
    "float8": SQLType.FLOAT,
    "real": SQLType.FLOAT,
    "double": SQLType.FLOAT,
    "double precision": SQLType.FLOAT,
    "decimal": SQLType.FLOAT,
    "numeric": SQLType.FLOAT,
    "text": SQLType.TEXT,
    "varchar": SQLType.TEXT,
    "char": SQLType.TEXT,
    "character": SQLType.TEXT,
    "character varying": SQLType.TEXT,
    "string": SQLType.TEXT,
    "bool": SQLType.BOOLEAN,
    "boolean": SQLType.BOOLEAN,
    "date": SQLType.DATE,
    "interval": SQLType.INTERVAL,
    "polynomial": SQLType.POLYNOMIAL,
}


def type_from_name(name: str) -> SQLType:
    """Resolve a SQL type name (``varchar(25)``, ``decimal(15,2)``) to a tag."""
    base = name.strip().lower()
    base = re.sub(r"\s*\(.*\)$", "", base)
    if base not in _TYPE_NAME_ALIASES:
        raise ValueError(f"unknown SQL type name: {name!r}")
    return _TYPE_NAME_ALIASES[base]


def type_of_value(value: Any) -> SQLType:
    """Infer the SQL type tag of a Python value."""
    if value is None:
        return SQLType.NULL
    if isinstance(value, bool):  # bool before int: bool is an int subclass
        return SQLType.BOOLEAN
    if isinstance(value, int):
        return SQLType.INTEGER
    if isinstance(value, float):
        return SQLType.FLOAT
    if isinstance(value, str):
        return SQLType.TEXT
    if isinstance(value, datetime.date):
        return SQLType.DATE
    if isinstance(value, Interval):
        return SQLType.INTERVAL
    from repro.semiring.polynomial import Polynomial

    if isinstance(value, Polynomial):
        return SQLType.POLYNOMIAL
    raise ValueError(f"value {value!r} has no SQL type")


class Interval:
    """A SQL interval restricted to what TPC-H needs: days, months, years.

    Months and years are kept separate from days so that
    ``date + interval '1' month`` follows calendar arithmetic, exactly like
    PostgreSQL.
    """

    __slots__ = ("days", "months")

    def __init__(self, days: int = 0, months: int = 0) -> None:
        self.days = days
        self.months = months

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Interval)
            and self.days == other.days
            and self.months == other.months
        )

    def __hash__(self) -> int:
        return hash((self.days, self.months))

    def __neg__(self) -> "Interval":
        return Interval(days=-self.days, months=-self.months)

    def __add__(self, other: "Interval") -> "Interval":
        if not isinstance(other, Interval):
            return NotImplemented
        return Interval(days=self.days + other.days, months=self.months + other.months)

    def __repr__(self) -> str:
        return f"Interval(days={self.days}, months={self.months})"

    @staticmethod
    def parse(quantity: str, unit: str) -> "Interval":
        """Parse ``interval '3' month`` style literals.

        ``quantity`` is the quoted string, ``unit`` the trailing keyword.
        """
        n = int(quantity.strip())
        unit = unit.lower().rstrip("s")
        if unit == "day":
            return Interval(days=n)
        if unit == "month":
            return Interval(months=n)
        if unit == "year":
            return Interval(months=12 * n)
        raise ValueError(f"unsupported interval unit: {unit!r}")


def add_months(day: datetime.date, months: int) -> datetime.date:
    """Calendar-correct date + months (clamping the day like PostgreSQL)."""
    month_index = day.month - 1 + months
    year = day.year + month_index // 12
    month = month_index % 12 + 1
    # clamp day-of-month to the target month's length
    for dom in range(day.day, 0, -1):
        try:
            return datetime.date(year, month, dom)
        except ValueError:
            continue
    raise ValueError(f"cannot add {months} months to {day}")  # pragma: no cover


def date_add(day: datetime.date, delta: Interval) -> datetime.date:
    """``date + interval`` with calendar month arithmetic."""
    result = add_months(day, delta.months) if delta.months else day
    if delta.days:
        result = result + datetime.timedelta(days=delta.days)
    return result


def parse_date(text: str) -> datetime.date:
    """Parse an ISO ``YYYY-MM-DD`` date literal."""
    return datetime.date.fromisoformat(text.strip())


# ---------------------------------------------------------------------------
# Null-aware comparison & equality
# ---------------------------------------------------------------------------

def sql_eq(a: Any, b: Any) -> Any:
    """SQL ``=``: returns None if either side is NULL (three-valued logic)."""
    if a is None or b is None:
        return None
    return a == b


def sql_compare(a: Any, b: Any) -> int:
    """Total-order comparison for non-null values; raises on NULL.

    Used by sort and by min/max.  NULL ordering is handled by callers
    (NULLS LAST by default, matching PostgreSQL ascending sorts).
    """
    if a is None or b is None:
        raise ValueError("sql_compare does not accept NULL")
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


_SORT_RANK = {
    SQLType.BOOLEAN: 0,
    SQLType.INTEGER: 1,
    SQLType.FLOAT: 1,
    SQLType.TEXT: 2,
    SQLType.DATE: 3,
    SQLType.INTERVAL: 4,
    SQLType.POLYNOMIAL: 5,
}


def sort_key(value: Any) -> tuple:
    """A key usable by ``sorted`` that puts NULLs last and orders mixed rows.

    Rows produced by one query always have homogeneous column types, so the
    rank component only matters for NULL vs non-NULL.
    """
    if value is None:
        return (1, 0, 0)
    rank = _SORT_RANK.get(type_of_value(value), 5)
    return (0, rank, value)


def is_distinct(a: Any, b: Any) -> bool:
    """SQL ``IS DISTINCT FROM``: NULL-safe inequality."""
    if a is None and b is None:
        return False
    if a is None or b is None:
        return True
    return not a == b


def coerce_types(left: SQLType, right: SQLType) -> SQLType:
    """Result type of combining two types in arithmetic / comparison.

    Mirrors PostgreSQL's implicit numeric promotion.  Raises ``ValueError``
    for incompatible combinations; the analyzer converts that to an
    :class:`~repro.errors.TypeMismatchError` with position info.
    """
    if left == right:
        return left
    if SQLType.NULL in (left, right):
        return right if left == SQLType.NULL else left
    if SQLType.ANY in (left, right):
        return right if left == SQLType.ANY else left
    if left in NUMERIC_TYPES and right in NUMERIC_TYPES:
        return SQLType.FLOAT
    raise ValueError(f"cannot combine types {left.value} and {right.value}")


def format_value(value: Any) -> str:
    """Render a value the way the CLI / examples print result cells."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "t" if value else "f"
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)
