"""Deterministic fault injection for durability and serving tests.

The engine's crash-safety code paths — WAL appends, fsyncs, checkpoint
renames, server admission — each call :func:`fault_point` with a stable
point name.  In production no injector is installed and the call is a
single global read returning ``None`` (the hook stays off the hot
path).  Tests and the CI chaos job install a :class:`FaultInjector`
whose *rules* decide, deterministically, what happens at each hit of a
point:

* ``crash``  — raise :class:`SimulatedCrash` (process death; derives
  from ``BaseException`` so no engine ``except PermError`` handler can
  swallow it — only the test harness catches it).
* ``torn``   — returned to the call site, which writes only
  ``action.keep`` bytes of the record before raising
  :class:`SimulatedCrash` (a torn/partial WAL frame).
* ``error``  — raise :class:`InjectedFault`, a typed, *catchable*
  engine error (``error_type`` names the failure: ``"io"``,
  ``"overloaded"``, ``"shutting_down"``...).  The server maps these to
  typed wire errors, so client retry logic can be driven end to end.
* ``sleep``  — block for ``seconds`` (slow-I/O and slow-query faults).

Determinism: rules fire on exact hit counts (``nth=3`` = third hit of
that point) or via a ``probability`` drawn from the injector's seeded
``random.Random`` — the same seed and workload replay the same fault
schedule, which is what lets the chaos matrix enumerate crash points
exhaustively.

>>> inj = FaultInjector(seed=7)
>>> inj.on("wal.append", "torn", nth=2, keep=5)
>>> with inj.installed():
...     ...  # second WAL append writes 5 bytes, then SimulatedCrash
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from random import Random
from typing import Any, Iterator, Optional

from repro.errors import PermError


class SimulatedCrash(BaseException):
    """The injected process death.

    Deliberately *not* a :class:`PermError` (nor even an
    ``Exception``): crash recovery must be exercised against whatever
    bytes reached the disk, so no library-level handler may catch and
    "clean up" after the crash point.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at fault point {point!r}")
        self.point = point


class InjectedFault(PermError):
    """A typed, recoverable injected failure (I/O error, admission
    fault, ...).  ``error_type`` is the machine-readable kind the
    server surfaces on the wire."""

    def __init__(self, point: str, error_type: str, message: str = "") -> None:
        super().__init__(
            message or f"injected {error_type} fault at {point!r}"
        )
        self.point = point
        self.error_type = error_type


@dataclass
class FaultAction:
    """What a matched rule asks the call site to do.

    Only ``torn`` actions are ever *returned* by :func:`fault_point`
    (the call site owns the partial write); every other kind is acted
    on inside the hook itself.
    """

    kind: str  # 'crash' | 'torn' | 'error' | 'sleep'
    point: str
    keep: int = 0  # torn: payload bytes to write before crashing
    error_type: str = "io"
    message: str = ""
    seconds: float = 0.0


@dataclass
class FaultRule:
    point: str
    kind: str
    nth: Optional[int] = None  # fire at exactly the nth hit (1-based)
    probability: Optional[float] = None  # else fire per-hit with this chance
    times: Optional[int] = 1  # firings allowed; None = unlimited
    fired: int = 0
    keep: int = 0
    error_type: str = "io"
    message: str = ""
    seconds: float = 0.0

    def matches(self, point: str, hit: int, rng: Random) -> bool:
        if self.point != point:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self.nth is not None:
            return hit == self.nth
        if self.probability is not None:
            return rng.random() < self.probability
        return True  # unconditional rule: every hit


class FaultInjector:
    """A seeded schedule of faults over named injection points."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = Random(seed)
        self.rules: list[FaultRule] = []
        self.hits: Counter[str] = Counter()
        self.fired: list[tuple[str, str]] = []  # (point, kind) log
        self._lock = threading.Lock()

    def on(
        self,
        point: str,
        kind: str,
        *,
        nth: Optional[int] = None,
        probability: Optional[float] = None,
        times: Optional[int] = 1,
        keep: int = 0,
        error_type: str = "io",
        message: str = "",
        seconds: float = 0.0,
    ) -> "FaultInjector":
        """Register one rule; returns self for chaining."""
        if kind not in ("crash", "torn", "error", "sleep"):
            raise ValueError(f"unknown fault kind {kind!r}")
        self.rules.append(
            FaultRule(
                point=point,
                kind=kind,
                nth=nth,
                probability=probability,
                times=times,
                keep=keep,
                error_type=error_type,
                message=message,
                seconds=seconds,
            )
        )
        return self

    def check(self, point: str, ctx: dict) -> Optional[FaultAction]:
        """Record a hit of ``point`` and return the action to take."""
        with self._lock:
            self.hits[point] += 1
            hit = self.hits[point]
            for rule in self.rules:
                if rule.matches(point, hit, self.rng):
                    rule.fired += 1
                    self.fired.append((point, rule.kind))
                    return FaultAction(
                        kind=rule.kind,
                        point=point,
                        keep=rule.keep,
                        error_type=rule.error_type,
                        message=rule.message,
                        seconds=rule.seconds,
                    )
        return None

    @contextmanager
    def installed(self) -> Iterator["FaultInjector"]:
        """Install this injector globally for the duration of a block."""
        install(self)
        try:
            yield self
        finally:
            clear()


# ---------------------------------------------------------------------------
# The global hook
# ---------------------------------------------------------------------------

_active: Optional[FaultInjector] = None


def install(injector: FaultInjector) -> None:
    global _active
    _active = injector


def clear() -> None:
    global _active
    _active = None


def active() -> Optional[FaultInjector]:
    return _active


def fault_point(point: str, **ctx: Any) -> Optional[FaultAction]:
    """The injection hook: a no-op global read unless an injector is
    installed.  Raises / sleeps for most actions; returns ``torn``
    actions for the call site to interpret (partial write + crash)."""
    injector = _active
    if injector is None:
        return None
    action = injector.check(point, ctx)
    if action is None:
        return None
    if action.kind == "crash":
        raise SimulatedCrash(point)
    if action.kind == "error":
        raise InjectedFault(point, action.error_type, action.message)
    if action.kind == "sleep":
        time.sleep(action.seconds)
        return None
    return action  # 'torn': the caller owns the partial write
