"""Aggregate function implementations with SQL null semantics.

* NULL inputs are skipped by every aggregate,
* ``sum``/``min``/``max``/``avg`` over zero non-null inputs yield NULL,
* ``count`` yields 0,
* DISTINCT deduplicates input values before accumulation.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.semiring.polynomial import Polynomial


class AggState:
    """Base accumulator; one instance per group per aggregate."""

    __slots__ = ()

    def add(self, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def result(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class CountStarState(AggState):
    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def add(self, value: Any) -> None:
        self.n += 1

    def result(self) -> int:
        return self.n


class CountState(AggState):
    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.n += 1

    def result(self) -> int:
        return self.n


class SumState(AggState):
    __slots__ = ("total", "seen")

    def __init__(self) -> None:
        self.total: Any = 0
        self.seen = False

    def add(self, value: Any) -> None:
        if value is not None:
            self.total += value
            self.seen = True

    def result(self) -> Any:
        return self.total if self.seen else None


class AvgState(AggState):
    __slots__ = ("total", "n")

    def __init__(self) -> None:
        self.total = 0.0
        self.n = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.total += value
            self.n += 1

    def result(self) -> Optional[float]:
        return self.total / self.n if self.n else None


class MinState(AggState):
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is not None and (self.best is None or value < self.best):
            self.best = value

    def result(self) -> Any:
        return self.best


class MaxState(AggState):
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is not None and (self.best is None or value > self.best):
            self.best = value

    def result(self) -> Any:
        return self.best


class PolySumState(AggState):
    """Semiring sum of ``N[X]`` provenance polynomials.

    Used by the polynomial rewrite's collapse step: the annotations of all
    derivations of one result tuple are added up.  NULL inputs are skipped
    like in any aggregate, leaving the zero polynomial.
    """

    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total = Polynomial.zero()

    def add(self, value: Any) -> None:
        if value is not None:
            self.total = self.total + value

    def result(self) -> Any:
        return self.total


class DistinctWrapper(AggState):
    """Feeds only first occurrences of each value into the inner state."""

    __slots__ = ("inner", "seen")

    def __init__(self, inner: AggState) -> None:
        self.inner = inner
        self.seen: set = set()

    def add(self, value: Any) -> None:
        if value in self.seen:
            return
        self.seen.add(value)
        self.inner.add(value)

    def result(self) -> Any:
        return self.inner.result()


_STATE_CLASSES: dict[str, Callable[[], AggState]] = {
    "count": CountState,
    "sum": SumState,
    "avg": AvgState,
    "min": MinState,
    "max": MaxState,
    "perm_poly_sum": PolySumState,
}


def make_aggregate_factory(
    name: str, star: bool = False, distinct: bool = False
) -> Callable[[], AggState]:
    """Return a zero-argument factory creating fresh accumulator states."""
    if star:
        if name != "count":
            raise ValueError(f"{name}(*) is not defined")
        return CountStarState
    if name not in _STATE_CLASSES:
        raise ValueError(f"unknown aggregate {name!r}")
    base = _STATE_CLASSES[name]
    if distinct:
        return lambda: DistinctWrapper(base())
    return base
