"""Aggregate function implementations with SQL null semantics.

* NULL inputs are skipped by every aggregate,
* ``sum``/``min``/``max``/``avg`` over zero non-null inputs yield NULL,
* ``count`` yields 0,
* DISTINCT deduplicates input values before accumulation.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.semiring.polynomial import Polynomial


class AggState:
    """Base accumulator; one instance per group per aggregate.

    ``add_many``/``add_count`` are the vectorized entry points: a batch
    executor feeds a whole column slice (or a bare row count for
    argument-less aggregates) per group per chunk.  The defaults loop
    over :meth:`add`, and the hot states override them with C-level
    reductions.  Accumulation order matches the row engine: values
    arrive in row order, chunk after chunk, so fold-sensitive results
    (float sums) differ only by partial-sum regrouping.

    ``merge`` folds another state of the same kind into this one — the
    combine step of morsel-parallel partial aggregation
    (:class:`~repro.parallel.exchange.ExchangeNode`).  Every state is a
    commutative monoid under merge; provenance states are *semiring*
    merges (:class:`PolySumState` merges by polynomial addition), so
    parallel provenance aggregation stays inside the N[X] algebra.
    Merges are applied in morsel order, keeping fold-sensitive results
    deterministic for a fixed worker/morsel configuration.
    """

    __slots__ = ()

    def add(self, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def add_many(self, values: list) -> None:
        for value in values:
            self.add(value)

    def add_count(self, count: int) -> None:
        for _ in range(count):
            self.add(None)

    def merge(self, other: "AggState") -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def result(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class CountStarState(AggState):
    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def add(self, value: Any) -> None:
        self.n += 1

    def add_many(self, values: list) -> None:
        self.n += len(values)

    def add_count(self, count: int) -> None:
        self.n += count

    def merge(self, other: "CountStarState") -> None:
        self.n += other.n

    def result(self) -> int:
        return self.n


class CountState(AggState):
    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.n += 1

    def add_many(self, values: list) -> None:
        self.n += sum(1 for value in values if value is not None)

    def merge(self, other: "CountState") -> None:
        self.n += other.n

    def result(self) -> int:
        return self.n


class SumState(AggState):
    __slots__ = ("total", "seen")

    def __init__(self) -> None:
        self.total: Any = 0
        self.seen = False

    def add(self, value: Any) -> None:
        if value is not None:
            self.total += value
            self.seen = True

    def add_many(self, values: list) -> None:
        present = [value for value in values if value is not None]
        if present:
            self.total += sum(present[1:], start=present[0])
            self.seen = True

    def merge(self, other: "SumState") -> None:
        if other.seen:
            self.total = other.total if not self.seen else self.total + other.total
            self.seen = True

    def result(self) -> Any:
        return self.total if self.seen else None


class AvgState(AggState):
    __slots__ = ("total", "n")

    def __init__(self) -> None:
        self.total = 0.0
        self.n = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.total += value
            self.n += 1

    def add_many(self, values: list) -> None:
        present = [value for value in values if value is not None]
        if present:
            self.total += sum(present)
            self.n += len(present)

    def merge(self, other: "AvgState") -> None:
        self.total += other.total
        self.n += other.n

    def result(self) -> Optional[float]:
        return self.total / self.n if self.n else None


class MinState(AggState):
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is not None and (self.best is None or value < self.best):
            self.best = value

    def add_many(self, values: list) -> None:
        present = [value for value in values if value is not None]
        if present:
            low = min(present)
            if self.best is None or low < self.best:
                self.best = low

    def merge(self, other: "MinState") -> None:
        self.add(other.best)

    def result(self) -> Any:
        return self.best


class MaxState(AggState):
    __slots__ = ("best",)

    def __init__(self) -> None:
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is not None and (self.best is None or value > self.best):
            self.best = value

    def add_many(self, values: list) -> None:
        present = [value for value in values if value is not None]
        if present:
            high = max(present)
            if self.best is None or high > self.best:
                self.best = high

    def merge(self, other: "MaxState") -> None:
        self.add(other.best)

    def result(self) -> Any:
        return self.best


class PolySumState(AggState):
    """Semiring sum of ``N[X]`` provenance polynomials.

    Used by the polynomial rewrite's collapse step: the annotations of all
    derivations of one result tuple are added up.  NULL inputs are skipped
    like in any aggregate, leaving the zero polynomial.
    """

    __slots__ = ("total",)

    def __init__(self) -> None:
        self.total = Polynomial.zero()

    def add(self, value: Any) -> None:
        if value is not None:
            self.total = self.total + value

    def add_many(self, values: list) -> None:
        present = [value for value in values if value is not None]
        if present:
            # One merged normalization pass instead of a quadratic
            # re-normalizing fold — the big vectorization win for
            # polynomial provenance over large groups.
            self.total = Polynomial.sum_all([self.total, *present])

    def merge(self, other: "PolySumState") -> None:
        # Semiring-native combine: partial provenance annotations from
        # two morsel ranges add in N[X], exactly like the serial fold.
        self.total = self.total + other.total

    def result(self) -> Any:
        return self.total


class DistinctWrapper(AggState):
    """Feeds only first occurrences of each value into the inner state."""

    __slots__ = ("inner", "seen")

    def __init__(self, inner: AggState) -> None:
        self.inner = inner
        self.seen: set = set()

    def add(self, value: Any) -> None:
        if value in self.seen:
            return
        self.seen.add(value)
        self.inner.add(value)

    def merge(self, other: "DistinctWrapper") -> None:
        # Replay the other worker's distinct values; cross-worker
        # duplicates are filtered here exactly like in-worker ones.
        for value in other.seen:
            self.add(value)

    def result(self) -> Any:
        return self.inner.result()


_STATE_CLASSES: dict[str, Callable[[], AggState]] = {
    "count": CountState,
    "sum": SumState,
    "avg": AvgState,
    "min": MinState,
    "max": MaxState,
    "perm_poly_sum": PolySumState,
}


def make_aggregate_factory(
    name: str, star: bool = False, distinct: bool = False
) -> Callable[[], AggState]:
    """Return a zero-argument factory creating fresh accumulator states."""
    if star:
        if name != "count":
            raise ValueError(f"{name}(*) is not defined")
        return CountStarState
    if name not in _STATE_CLASSES:
        raise ValueError(f"unknown aggregate {name!r}")
    base = _STATE_CLASSES[name]
    if distinct:
        return lambda: DistinctWrapper(base())
    return base
