"""Pipeline fusion: one generated kernel per scan→filter→project chain.

The vectorized engine executes a pipeline as a chain of per-operator
batch passes: each scan predicate kernel walks a column and narrows a
selection vector, and the projection applies per-column kernels (or a
zero-copy slice) to the surviving rows.  Every operator boundary costs
one full pass plus an intermediate list, and the selection vector is
re-applied lazily by every downstream column read.

This pass replaces such a chain with a :class:`FusedPipelineNode`
holding ONE generated Python function over the chunk's physical
columns::

    def _fused(chunk, ctx):
        n = chunk.nrows
        c4 = chunk.column(4)
        c6 = chunk.column(6)
        return [(c4[i], f1(c6[i]))
                for i in _range(n)
                if (None if c6[i] is None else c6[i] < k2)]

i.e. a single comprehension that inlines every filter conjunct (with
short-circuit between conjuncts) and every projection expression — no
verdict lists, no selection vectors, no intermediate chunks.  It is the
chain-level generalization of ``ProjectNode._build_emitter``'s fused
slot reads.

Correctness rests on two facts about SQL's three-valued logic in
Python:

* The engine keeps a row exactly when the predicate evaluates to
  ``True``; with NULL represented as ``None``, *truthiness* of a 3VL
  value (one of ``True``/``False``/``None``) is exactly "is True".
  Python ``and``/``or`` chains over 3VL values return one of the
  operand values, whose truthiness again matches Kleene semantics — so
  conjunctions and disjunctions inline as plain ``and``/``or``.
* In filter position ``NOT x`` is true iff ``x is False``; nested
  NOT-over-AND/OR is pushed down by De Morgan (exact in Kleene logic).

Value-position expressions use explicit ``None``-propagation mirroring
the row compiler's operator helpers; operators whose semantics carry
state (division errors, date arithmetic, LIKE regexes, scalar
functions) bind the *same* helper objects from
:mod:`repro.executor.expr_eval` into the generated function's globals.

A chain is fusible when its planner-attached ``fusion`` metadata (the
original analyzed expressions plus the variable layout; see
``physical.py``) exists for every predicate-bearing node and every
expression compiles through :class:`_SourceEmitter`.  Anything the
emitter cannot express — sublinks, correlated outer references, dynamic
LIKE patterns, non-constant IN lists — raises :class:`NotFusible` and
the chain simply keeps its unfused operators.  ``run()`` (the row
protocol) always delegates to the original chain, so fused plans keep
an exact row-mode fallback.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.analyzer import expressions as ex
from repro.datatypes import SQLType
from repro.executor.expr_eval import (
    SCALAR_FUNCTIONS,
    _concat,
    _date_minus,
    _date_plus,
    _div_float,
    _div_int,
    _mod,
    _null_safe_eq,
    _null_safe_ne,
    like_to_regex,
)
from repro.executor.nodes import (
    FilterNode,
    PlanNode,
    ProjectNode,
    SeqScan,
    SliceNode,
)
from repro.storage.chunk import Chunk

#: Plan-tree child links the fusion walk rewrites in place (the same
#: links :mod:`repro.parallel.planning` traverses).
_CHILD_ATTRS = ("child", "left", "right")


class NotFusible(Exception):
    """An expression (or chain) the source emitter cannot inline."""


#: Binary comparisons inlined as native operators (null-propagating).
_INLINE_COMPARE = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
#: Null-propagating arithmetic inlined as native operators.
_INLINE_ARITH = {"+": "+", "-": "-", "*": "*"}
#: Operators that keep their row-path helper (stateful semantics:
#: division errors, text coercion, null-safe equality).
_HELPER_OPS = {
    "%": _mod,
    "||": _concat,
    "<=>": _null_safe_eq,
    "<!=>": _null_safe_ne,
}


class _SourceEmitter:
    """Compiles analyzed expressions to Python source fragments.

    Fragments read the current chunk row through ``c<phys>[i]`` column
    accesses; ``varmap`` (the emitting node's layout) and ``state`` (the
    node-input-slot → physical-scan-column mapping threaded through
    interior slices) are set by the caller before each node's
    expressions are emitted.  Non-literal runtime objects (constants,
    regexes, helper functions, IN sets) are bound into ``env``, the
    generated function's globals.
    """

    def __init__(self) -> None:
        self.env: dict[str, Any] = {"_range": range}
        self.used: dict[int, str] = {}  # physical column -> local name
        self.varmap: dict = {}
        self.state: list[int] = []
        self._counter = 0

    # -- naming helpers -----------------------------------------------------

    def _name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def bind(self, value: Any, prefix: str) -> str:
        name = self._name(prefix)
        self.env[name] = value
        return name

    def col(self, slot: int) -> str:
        phys = self.state[slot]
        name = self.used.setdefault(phys, f"c{phys}")
        return f"{name}[i]"

    def _operand(self, expr: ex.Expr) -> tuple[str, str]:
        """``(first_use, reuse)`` sources for an operand referenced more
        than once in a template: compound operands bind a walrus temp at
        their first (leftmost) evaluation point."""
        src, simple = self.value(expr)
        if simple:
            return src, src
        temp = self._name("_t")
        return f"({temp} := {src})", temp

    # -- filter position ----------------------------------------------------

    def cond(self, expr: ex.Expr) -> str:
        """Source whose *truthiness* equals "the predicate is True"."""
        if isinstance(expr, ex.BoolOpExpr):
            if expr.op == "and":
                return "(" + " and ".join(self.cond(a) for a in expr.args) + ")"
            if expr.op == "or":
                return "(" + " or ".join(self.cond(a) for a in expr.args) + ")"
            arg = expr.args[0]
            if isinstance(arg, ex.BoolOpExpr):
                if arg.op == "not":  # ¬¬x = x (exact in Kleene logic)
                    return self.cond(arg.args[0])
                flipped = "or" if arg.op == "and" else "and"
                pushed = ex.BoolOpExpr(
                    op=flipped,
                    args=tuple(
                        ex.BoolOpExpr(op="not", args=(a,), type=expr.type)
                        for a in arg.args
                    ),
                    type=expr.type,
                )
                return self.cond(pushed)
            src, _ = self.value(arg)
            return f"({src} is False)"
        src, _ = self.value(expr)
        return src

    # -- value position -----------------------------------------------------

    def value(self, expr: ex.Expr) -> tuple[str, bool]:
        """``(source, is_simple)`` for the expression's SQL value; simple
        sources (column reads, bound constants) are re-evaluation-free."""
        method = getattr(self, f"_value_{type(expr).__name__}", None)
        if method is None:
            raise NotFusible(type(expr).__name__)
        return method(expr)

    def _value_Var(self, expr: ex.Var) -> tuple[str, bool]:
        if expr.levelsup != 0:
            raise NotFusible("correlated outer reference")
        slot = self.varmap.get((expr.varno, expr.varattno))
        if slot is None:
            raise NotFusible("variable outside the chain layout")
        return self.col(slot), True

    def _value_Const(self, expr: ex.Const) -> tuple[str, bool]:
        if expr.value is None:
            return "None", True
        return self.bind(expr.value, "k"), True

    def _value_OpExpr(self, expr: ex.OpExpr) -> tuple[str, bool]:
        if len(expr.args) == 1:  # unary minus
            a1, a = self._operand(expr.args[0])
            return f"(None if {a1} is None else -{a})", False
        left, right = expr.args
        op = expr.op
        if op in _INLINE_COMPARE or op in _INLINE_ARITH:
            if op in _INLINE_ARITH and SQLType.DATE in (left.type, right.type):
                return self._date_arith(expr)
            py_op = _INLINE_COMPARE.get(op) or _INLINE_ARITH[op]
            return self._null_propagating(left, right, py_op)
        if op == "/":
            helper = (
                _div_int
                if left.type == SQLType.INTEGER and right.type == SQLType.INTEGER
                else _div_float
            )
            return self._helper_call(helper, left, right)
        if op in _HELPER_OPS:
            return self._helper_call(_HELPER_OPS[op], left, right)
        raise NotFusible(f"operator {op!r}")

    def _null_propagating(
        self, left: ex.Expr, right: ex.Expr, py_op: str
    ) -> tuple[str, bool]:
        a1, a = self._operand(left)
        b1, b = self._operand(right)
        # A non-NULL constant operand needs no None test of its own.
        checks = []
        if not (isinstance(left, ex.Const) and left.value is not None):
            checks.append(f"{a1} is None")
            a1 = a
        if not (isinstance(right, ex.Const) and right.value is not None):
            checks.append(f"{b1} is None")
        if not checks:
            return f"({a} {py_op} {b})", False
        guard = " or ".join(checks)
        return f"(None if {guard} else {a} {py_op} {b})", False

    def _date_arith(self, expr: ex.OpExpr) -> tuple[str, bool]:
        left, right = expr.args
        if expr.op == "+":
            if left.type == SQLType.DATE:
                return self._helper_call(_date_plus, left, right)
            return self._helper_call(_date_plus, right, left)
        if expr.op == "-" and left.type == SQLType.DATE:
            return self._helper_call(_date_minus, left, right)
        return self._null_propagating(left, right, _INLINE_ARITH[expr.op])

    def _helper_call(self, fn, *args: ex.Expr) -> tuple[str, bool]:
        name = self.bind(fn, "f")
        sources = ", ".join(self.value(a)[0] for a in args)
        return f"{name}({sources})", False

    def _value_BoolOpExpr(self, expr: ex.BoolOpExpr) -> tuple[str, bool]:
        if expr.op != "not":
            # Value-position AND/OR would need non-short-circuit Kleene
            # evaluation, diverging from the row path on errors; filters
            # (the hot case) go through cond() instead.
            raise NotFusible("boolean value expression")
        a1, a = self._operand(expr.args[0])
        return f"(None if {a1} is None else not {a})", False

    def _value_NullTest(self, expr: ex.NullTest) -> tuple[str, bool]:
        src, _ = self.value(expr.arg)
        test = "is not None" if expr.negated else "is None"
        return f"({src} {test})", False

    def _value_LikeTest(self, expr: ex.LikeTest) -> tuple[str, bool]:
        if not isinstance(expr.pattern, ex.Const) or expr.pattern.value is None:
            raise NotFusible("dynamic LIKE pattern")
        regex = self.bind(like_to_regex(str(expr.pattern.value)), "r")
        a1, a = self._operand(expr.arg)
        verdict = "is None" if expr.negated else "is not None"
        return (
            f"(None if {a1} is None else {regex}.fullmatch({a}) {verdict})",
            False,
        )

    def _value_InList(self, expr: ex.InList) -> tuple[str, bool]:
        if not all(isinstance(item, ex.Const) for item in expr.items):
            raise NotFusible("non-constant IN list")
        values = [item.value for item in expr.items]
        has_null = any(v is None for v in values)
        members = self.bind(frozenset(v for v in values if v is not None), "s")
        a1, a = self._operand(expr.arg)
        if expr.negated:
            tail = "None" if has_null else "True"
            body = f"False if {a} in {members} else {tail}"
        else:
            tail = "None" if has_null else "False"
            body = f"True if {a} in {members} else {tail}"
        return f"(None if {a1} is None else ({body}))", False

    def _value_FuncExpr(self, expr: ex.FuncExpr) -> tuple[str, bool]:
        fn = SCALAR_FUNCTIONS.get(expr.name)
        if fn is None:
            raise NotFusible(f"function {expr.name!r}")
        return self._helper_call(fn, *expr.args)

    def _value_CaseExpr(self, expr: ex.CaseExpr) -> tuple[str, bool]:
        if expr.default is not None:
            result = self.value(expr.default)[0]
        else:
            result = "None"
        # WHEN conditions use is-True semantics = cond() truthiness; the
        # nested conditionals preserve the row path's short-circuit.
        for when, then in reversed(expr.whens):
            result = f"({self.value(then)[0]} if {self.cond(when)} else {result})"
        return result, False


# ---------------------------------------------------------------------------
# The fused node
# ---------------------------------------------------------------------------


class FusedPipelineNode(PlanNode):
    """A scan→filter→project chain collapsed into one generated kernel.

    ``child`` is a bare clone of the chain's scan (no predicates) so
    chunks arrive unfiltered and uninstrumented passes see honest scan
    cardinalities; ``fallback`` is the original operator chain, kept for
    the row protocol (and as the audit trail of what was fused).
    """

    def __init__(
        self,
        scan: SeqScan,
        fallback: PlanNode,
        kernel,
        n_predicates: int,
        source: str,
    ) -> None:
        self.child = scan
        self.fallback = fallback
        self.kernel = kernel
        self.n_predicates = n_predicates
        self.source = source  # generated kernel text (debugging aid)
        self.output_names = list(fallback.output_names)
        self.estimate = fallback.estimate
        self.batch_size_hint = fallback.batch_size_hint
        self.parallel_safe = fallback.parallel_safe

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return (
            f"FusedPipeline [{self.n_predicates} preds -> "
            f"{len(self.output_names)} cols]"
        )

    def run(self, ctx):
        return self.fallback.run(ctx)

    def run_batches(self, ctx):
        kernel = self.kernel
        width = len(self.output_names)
        for chunk in self.child.run_batches(ctx):
            rows = kernel(chunk, ctx)
            if rows:
                yield Chunk.from_rows(rows, width)


# ---------------------------------------------------------------------------
# Chain detection and code generation
# ---------------------------------------------------------------------------


def _chain_parallel_safe(nodes: list[PlanNode]) -> bool:
    return all(node.parallel_safe for node in nodes)


def _try_fuse(root: PlanNode) -> Optional[FusedPipelineNode]:
    """Fuse the chain rooted at ``root``, or None when it isn't one.

    Fusible chains are a ``ProjectNode`` (with planner fusion metadata)
    or a ``SliceNode`` on top of interior ``FilterNode``/``SliceNode``
    operators bottoming out in a ``SeqScan``, with at least one filter
    conjunct in between — projection-only chains keep the existing
    zero-copy column paths, which fusion could only make worse.
    """
    if isinstance(root, ProjectNode):
        if root.fusion is None or root.batch_exprs is None:
            return None
    elif not isinstance(root, SliceNode):
        return None
    mids: list[PlanNode] = []
    current = root.child
    while isinstance(current, (FilterNode, SliceNode)):
        if isinstance(current, FilterNode) and (
            current.fusion is None or current.batch_predicates is None
        ):
            return None
        mids.append(current)
        current = current.child
    if not isinstance(current, SeqScan):
        return None
    scan = current
    scan_conjuncts: list[ex.Expr] = []
    if scan.predicate is not None:
        if scan.fusion is None or scan.batch_predicates is None:
            return None
        scan_conjuncts = scan.fusion[1]
    n_predicates = len(scan_conjuncts) + sum(
        len(node.fusion[1]) for node in mids if isinstance(node, FilterNode)
    )
    if n_predicates == 0:
        return None

    emitter = _SourceEmitter()
    state = list(range(scan.width()))
    conds: list[str] = []
    try:
        if scan_conjuncts:
            emitter.varmap, emitter.state = scan.fusion[0], state
            conds += [emitter.cond(c) for c in scan_conjuncts]
        for node in reversed(mids):
            if isinstance(node, SliceNode):
                state = [state[k] for k in node.keep]
                continue
            emitter.varmap, emitter.state = node.fusion[0], state
            conds += [emitter.cond(c) for c in node.fusion[1]]
        if isinstance(root, SliceNode):
            emitter.state = state
            outs = [emitter.col(k) for k in root.keep]
        else:
            emitter.varmap, emitter.state = root.fusion[0], state
            outs = [emitter.value(e)[0] for e in root.fusion[1]]
    except NotFusible:
        return None

    if len(outs) == 1:
        row_src = f"({outs[0]},)"
    else:
        row_src = "(" + ", ".join(outs) + ")"
    lines = ["def _fused(chunk, ctx):", "    n = chunk.nrows"]
    for phys in sorted(emitter.used):
        lines.append(f"    {emitter.used[phys]} = chunk.column({phys})")
    cond_src = " and ".join(conds)
    lines.append(f"    return [{row_src} for i in _range(n) if {cond_src}]")
    source = "\n".join(lines)
    namespace: dict[str, Any] = {}
    exec(compile(source, "<fused-pipeline>", "exec"), emitter.env, namespace)

    bare = SeqScan(
        scan.table,
        list(scan.output_names),
        columns=list(scan.columns) if scan.columns is not None else None,
    )
    bare.parallel_safe = scan.parallel_safe
    fused = FusedPipelineNode(
        bare, root, namespace["_fused"], n_predicates, source
    )
    fused.parallel_safe = _chain_parallel_safe([root, *mids, scan])
    return fused


def fuse_pipelines(plan: PlanNode) -> PlanNode:
    """Fuse every eligible pipeline in the tree (post-order, in place);
    returns the (possibly replaced) root."""
    fused = _try_fuse(plan)
    if fused is not None:
        return fused
    for attr in _CHILD_ATTRS:
        child = getattr(plan, attr, None)
        if isinstance(child, PlanNode):
            setattr(plan, attr, fuse_pipelines(child))
    return plan
