"""Expression compiler: analyzed expressions -> Python closures.

Each expression compiles to ``fn(row, ctx) -> value`` where ``row`` is the
current input tuple of the plan node evaluating the expression and ``ctx``
is the :class:`~repro.executor.context.ExecContext`.

Design points:

* Vars are resolved to positional slots at compile time via ``varmap``
  (``(varno, varattno) -> slot``); outer references (``levelsup > 0``)
  resolve through ``outer_varmaps`` and read ``ctx.outer_rows`` at runtime.
* Three-valued logic is implemented exactly: comparisons return None on
  NULL input, AND/OR short-circuit per SQL, NOT maps None to None.
* Sublinks compile to subplan executions.  Uncorrelated sublinks execute
  once per query and cache their result in ``ctx.caches`` (so a re-run of
  the same plan on a fresh context recomputes); correlated sublinks
  re-execute per row with the row pushed onto the context's outer stack.
* LIKE patterns that are constants are compiled to regexes once.

Batch mode (:meth:`ExprCompiler.compile_batch`) compiles the same
expressions to *column-wise* kernels ``fn(chunk, ctx) -> list`` over
:class:`~repro.storage.chunk.Chunk` inputs; see the section at the bottom
of this module.
"""

from __future__ import annotations

import datetime
import functools
import math
import re
from typing import Any, Callable, Optional, Sequence

from repro.datatypes import Interval, SQLType, date_add, parse_date
from repro.errors import ExecutionError, PlanError
from repro.analyzer import expressions as ex

CompiledExpr = Callable[[tuple, Any], Any]
#: Batch kernels map a Chunk to one output column (list of values).
BatchExpr = Callable[[Any, Any], list]
VarMap = dict[tuple[int, int], int]

#: Sentinel distinguishing "not cached yet" from a cached None result.
_UNCACHED = object()


# ---------------------------------------------------------------------------
# Scalar operator implementations (null-propagating)
# ---------------------------------------------------------------------------


def _eq(a, b):
    return None if a is None or b is None else a == b


def _ne(a, b):
    return None if a is None or b is None else a != b


def _lt(a, b):
    return None if a is None or b is None else a < b


def _le(a, b):
    return None if a is None or b is None else a <= b


def _gt(a, b):
    return None if a is None or b is None else a > b


def _ge(a, b):
    return None if a is None or b is None else a >= b


def _null_safe_eq(a, b):
    """``IS NOT DISTINCT FROM`` -- never returns NULL.

    Used by the provenance rewriter's joins (aggregation and set-operation
    rewrites) where NULL grouping keys / NULL set-op columns must match
    each other, mirroring GROUP BY and UNION null semantics.
    """
    if a is None and b is None:
        return True
    if a is None or b is None:
        return False
    return a == b


def _null_safe_ne(a, b):
    """``IS DISTINCT FROM`` (negation of the above)."""
    return not _null_safe_eq(a, b)


COMPARISONS: dict[str, Callable[[Any, Any], Any]] = {
    "=": _eq,
    "<>": _ne,
    "<": _lt,
    "<=": _le,
    ">": _gt,
    ">=": _ge,
    "<=>": _null_safe_eq,
    "<!=>": _null_safe_ne,
}

_NEGATED_OP = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}


def _add(a, b):
    return None if a is None or b is None else a + b


def _sub(a, b):
    return None if a is None or b is None else a - b


def _mul(a, b):
    return None if a is None or b is None else a * b


def _div_float(a, b):
    if a is None or b is None:
        return None
    if b == 0:
        raise ExecutionError("division by zero")
    return a / b


def _div_int(a, b):
    """PostgreSQL integer division truncates toward zero."""
    if a is None or b is None:
        return None
    if b == 0:
        raise ExecutionError("division by zero")
    return int(math.trunc(a / b)) if (a < 0) != (b < 0) else a // b


def _mod(a, b):
    """PostgreSQL %: result takes the sign of the dividend."""
    if a is None or b is None:
        return None
    if b == 0:
        raise ExecutionError("division by zero")
    return a - _div_int(a, b) * b


def _concat(a, b):
    if a is None or b is None:
        return None
    return _text(a) + _text(b)


def _text(v: Any) -> str:
    if isinstance(v, str):
        return v
    if isinstance(v, bool):
        return "t" if v else "f"
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    if isinstance(v, datetime.date):
        return v.isoformat()
    return str(v)


def _date_plus(a, b):
    if a is None or b is None:
        return None
    if isinstance(b, Interval):
        return date_add(a, b)
    return a + datetime.timedelta(days=int(b))


def _date_minus(a, b):
    if a is None or b is None:
        return None
    if isinstance(b, Interval):
        return date_add(a, -b)
    if isinstance(b, datetime.date):
        return (a - b).days
    return a - datetime.timedelta(days=int(b))


# ---------------------------------------------------------------------------
# Scalar function implementations
# ---------------------------------------------------------------------------


def _null_guard(fn: Callable) -> Callable:
    def wrapped(*args):
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapped


def _coalesce(*args):
    for arg in args:
        if arg is not None:
            return arg
    return None


def _nullif(a, b):
    if a is None:
        return None
    if b is not None and a == b:
        return None
    return a


def _greatest(*args):
    present = [a for a in args if a is not None]
    return max(present) if present else None


def _least(*args):
    present = [a for a in args if a is not None]
    return min(present) if present else None


def _substr(s: str, start: int, length: Optional[int] = None) -> str:
    # SQL substring is 1-based; clamp like PostgreSQL.
    begin = max(start - 1, 0)
    if length is None:
        return s[begin:]
    if length < 0:
        raise ExecutionError("negative substring length not allowed")
    end = max(start - 1 + length, begin)
    return s[begin:end]


def _cast_integer(v):
    if isinstance(v, str):
        return int(v.strip())
    return int(v)


def _cast_date(v):
    if isinstance(v, datetime.date):
        return v
    return parse_date(str(v))


# -- provenance polynomial primitives (repro.semiring) ----------------------
#
# Emitted only by the polynomial rewrite strategy; they give annotations a
# path through ordinary plan nodes: token minting at scans, products at
# joins (sums live in the perm_poly_sum aggregate).

from repro.semiring.minting import mint_variable as _mint_variable
from repro.semiring.polynomial import Polynomial as _Polynomial


def _poly_token(relation, *identity):
    return _Polynomial.variable(_mint_variable(relation, identity))


def _poly_mul(*factors):
    product = _Polynomial.one()
    for factor in factors:
        if factor is None:
            return None
        product = product * factor
    return product


def _poly_one():
    return _Polynomial.one()


def _poly_monus(left, right):
    # A NULL subtrahend means "no matching derivations to remove" (the
    # LEFT JOIN the EXCEPT rewrite emits produced no right-side row), so
    # it subtracts nothing rather than poisoning the annotation.
    if left is None:
        return None
    if right is None:
        return left
    return left.monus(right)


SCALAR_FUNCTIONS: dict[str, Callable] = {
    "upper": _null_guard(lambda s: s.upper()),
    "lower": _null_guard(lambda s: s.lower()),
    "length": _null_guard(len),
    "abs": _null_guard(abs),
    "round": _null_guard(lambda x, n=0: round(float(x), int(n))),
    "floor": _null_guard(lambda x: float(math.floor(x))),
    "ceil": _null_guard(lambda x: float(math.ceil(x))),
    "sqrt": _null_guard(math.sqrt),
    "power": _null_guard(lambda a, b: float(a) ** float(b)),
    "mod": _mod,
    "coalesce": _coalesce,
    "concat": lambda *args: "".join(_text(a) for a in args if a is not None),
    "substr": _null_guard(_substr),
    "strpos": _null_guard(lambda s, sub: s.find(sub) + 1),
    "trim": _null_guard(lambda s: s.strip()),
    "nullif": _nullif,
    "greatest": _greatest,
    "least": _least,
    "extract_year": _null_guard(lambda d: d.year),
    "extract_month": _null_guard(lambda d: d.month),
    "extract_day": _null_guard(lambda d: d.day),
    "cast_integer": _null_guard(_cast_integer),
    "cast_float": _null_guard(lambda v: float(v)),
    "cast_text": _null_guard(_text),
    "cast_date": _null_guard(_cast_date),
    "cast_boolean": _null_guard(bool),
    "perm_poly_token": _poly_token,
    "perm_poly_mul": _poly_mul,
    "perm_poly_one": _poly_one,
    "perm_poly_monus": _poly_monus,
}


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern into an anchored regex."""
    out: list[str] = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if ch == "\\" and i + 1 < len(pattern):
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return re.compile("".join(out), re.DOTALL)


#: Compiled-regex memo for *dynamic* LIKE patterns (the pattern is an
#: expression, so each row may produce a different — but in practice
#: heavily repeated — pattern string).  ``lru_cache`` is thread-safe,
#: which matters because parallel morsel workers share this cache.
_cached_like_regex = functools.lru_cache(maxsize=256)(like_to_regex)


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------


class ExprCompiler:
    """Compiles expressions for one plan node's input layout.

    ``varmap`` maps level-0 ``(varno, varattno)`` to input slots;
    ``outer_varmaps`` is the stack of enclosing layouts (innermost last)
    for correlated sublinks.  ``plan_subquery`` plans a sublink's query
    tree and returns an executable plan node; it is injected by the
    planner to avoid a circular import.
    """

    def __init__(
        self,
        varmap: VarMap,
        outer_varmaps: Sequence[VarMap] = (),
        plan_subquery: Optional[Callable] = None,
    ) -> None:
        self.varmap = varmap
        self.outer_varmaps = list(outer_varmaps)
        self.plan_subquery = plan_subquery
        # Row closures memoized per expression node: the planner compiles
        # most expressions twice under vectorize (row form + batch form,
        # whose fallbacks wrap the row closure), and re-compiling a
        # SubLink would plan its subquery again.
        self._row_memo: dict[int, tuple[ex.Expr, CompiledExpr]] = {}
        # Sublink subplans memoized the same way: the row closure and the
        # dedicated batch kernel of one SubLink share one planned subtree.
        self._subplan_memo: dict[int, tuple[ex.Expr, Any]] = {}

    def compile(self, expr: ex.Expr) -> CompiledExpr:
        memoized = self._row_memo.get(id(expr))
        if memoized is not None and memoized[0] is expr:
            return memoized[1]
        method = getattr(self, f"_compile_{type(expr).__name__}", None)
        if method is None:
            raise PlanError(f"cannot compile expression {expr!r}")
        compiled = method(expr)
        self._row_memo[id(expr)] = (expr, compiled)
        return compiled

    # -- leaves -------------------------------------------------------------

    def _compile_Var(self, expr: ex.Var) -> CompiledExpr:
        if expr.levelsup == 0:
            key = (expr.varno, expr.varattno)
            if key not in self.varmap:
                raise PlanError(f"variable {expr} not found in plan layout")
            slot = self.varmap[key]
            return lambda row, ctx: row[slot]
        level = expr.levelsup
        if level > len(self.outer_varmaps):
            raise PlanError(f"outer reference {expr} exceeds nesting depth")
        outer_map = self.outer_varmaps[-level]
        key = (expr.varno, expr.varattno)
        if key not in outer_map:
            raise PlanError(f"outer variable {expr} not found in enclosing layout")
        slot = outer_map[key]
        return lambda row, ctx: ctx.outer_rows[-level][slot]

    def _compile_Const(self, expr: ex.Const) -> CompiledExpr:
        value = expr.value
        return lambda row, ctx: value

    # -- operators ------------------------------------------------------------

    def _compile_OpExpr(self, expr: ex.OpExpr) -> CompiledExpr:
        if len(expr.args) == 1:  # unary minus
            arg = self.compile(expr.args[0])
            return lambda row, ctx: None if (v := arg(row, ctx)) is None else -v
        left_expr, right_expr = expr.args
        fn = self._select_binary_fn(expr.op, left_expr.type, right_expr.type)
        # Operand inlining: slot reads and constants bind directly into
        # the operator closure, cutting call frames in the hottest paths
        # (scan predicates, aggregate arguments, join keys).
        lslot = self._direct_slot(left_expr)
        rslot = self._direct_slot(right_expr)
        if lslot is not None:
            if rslot is not None:
                return lambda row, ctx: fn(row[lslot], row[rslot])
            if isinstance(right_expr, ex.Const):
                rval = right_expr.value
                return lambda row, ctx: fn(row[lslot], rval)
            right = self.compile(right_expr)
            return lambda row, ctx: fn(row[lslot], right(row, ctx))
        if rslot is not None:
            if isinstance(left_expr, ex.Const):
                lval = left_expr.value
                return lambda row, ctx: fn(lval, row[rslot])
            left = self.compile(left_expr)
            return lambda row, ctx: fn(left(row, ctx), row[rslot])
        left = self.compile(left_expr)
        if isinstance(right_expr, ex.Const):
            rval = right_expr.value
            return lambda row, ctx: fn(left(row, ctx), rval)
        right = self.compile(right_expr)
        return lambda row, ctx: fn(left(row, ctx), right(row, ctx))

    def _direct_slot(self, expr: ex.Expr) -> Optional[int]:
        """Input slot for a local Var operand; None otherwise."""
        if isinstance(expr, ex.Var) and expr.levelsup == 0:
            return self.varmap.get((expr.varno, expr.varattno))
        return None

    def _select_binary_fn(
        self, op: str, left_type: SQLType, right_type: SQLType
    ) -> Callable[[Any, Any], Any]:
        if op in COMPARISONS:
            return COMPARISONS[op]
        if op == "||":
            return _concat
        if op == "+":
            if left_type == SQLType.DATE:
                return _date_plus
            if right_type == SQLType.DATE:
                return lambda a, b: _date_plus(b, a)
            return _add
        if op == "-":
            if left_type == SQLType.DATE:
                return _date_minus
            return _sub
        if op == "*":
            return _mul
        if op == "/":
            if left_type == SQLType.INTEGER and right_type == SQLType.INTEGER:
                return _div_int
            return _div_float
        if op == "%":
            return _mod
        raise PlanError(f"unknown operator {op!r}")

    def _compile_BoolOpExpr(self, expr: ex.BoolOpExpr) -> CompiledExpr:
        compiled = [self.compile(a) for a in expr.args]
        if expr.op == "not":
            arg = compiled[0]

            def _not(row, ctx):
                v = arg(row, ctx)
                return None if v is None else not v

            return _not
        if expr.op == "and":

            def _and(row, ctx):
                saw_null = False
                for fn in compiled:
                    v = fn(row, ctx)
                    if v is False:
                        return False
                    if v is None:
                        saw_null = True
                return None if saw_null else True

            return _and

        def _or(row, ctx):
            saw_null = False
            for fn in compiled:
                v = fn(row, ctx)
                if v is True:
                    return True
                if v is None:
                    saw_null = True
            return None if saw_null else False

        return _or

    def _compile_FuncExpr(self, expr: ex.FuncExpr) -> CompiledExpr:
        if expr.name not in SCALAR_FUNCTIONS:
            raise PlanError(f"unknown function {expr.name!r}")
        fn = SCALAR_FUNCTIONS[expr.name]
        compiled = [self.compile(a) for a in expr.args]
        if len(compiled) == 1:
            arg0 = compiled[0]
            return lambda row, ctx: fn(arg0(row, ctx))
        if len(compiled) == 2:
            arg0, arg1 = compiled
            return lambda row, ctx: fn(arg0(row, ctx), arg1(row, ctx))
        return lambda row, ctx: fn(*(c(row, ctx) for c in compiled))

    def _compile_Aggref(self, expr: ex.Aggref) -> CompiledExpr:
        raise PlanError(
            "internal error: Aggref must be replaced by the planner before "
            "expression compilation"
        )

    def _compile_CaseExpr(self, expr: ex.CaseExpr) -> CompiledExpr:
        whens = [(self.compile(c), self.compile(r)) for c, r in expr.whens]
        default = self.compile(expr.default) if expr.default is not None else None

        def _case(row, ctx):
            for cond, result in whens:
                if cond(row, ctx) is True:
                    return result(row, ctx)
            return default(row, ctx) if default is not None else None

        return _case

    def _compile_NullTest(self, expr: ex.NullTest) -> CompiledExpr:
        arg = self.compile(expr.arg)
        if expr.negated:
            return lambda row, ctx: arg(row, ctx) is not None
        return lambda row, ctx: arg(row, ctx) is None

    def _compile_LikeTest(self, expr: ex.LikeTest) -> CompiledExpr:
        arg = self.compile(expr.arg)
        negated = expr.negated
        if isinstance(expr.pattern, ex.Const) and expr.pattern.value is not None:
            regex = like_to_regex(str(expr.pattern.value))

            def _like_const(row, ctx):
                v = arg(row, ctx)
                if v is None:
                    return None
                matched = regex.fullmatch(v) is not None
                return (not matched) if negated else matched

            return _like_const
        pattern = self.compile(expr.pattern)

        def _like(row, ctx):
            v = arg(row, ctx)
            p = pattern(row, ctx)
            if v is None or p is None:
                return None
            matched = _cached_like_regex(str(p)).fullmatch(v) is not None
            return (not matched) if negated else matched

        return _like

    def _compile_InList(self, expr: ex.InList) -> CompiledExpr:
        arg = self.compile(expr.arg)
        items = [self.compile(i) for i in expr.items]
        negated = expr.negated

        def _in(row, ctx):
            v = arg(row, ctx)
            if v is None:
                return None
            saw_null = False
            for item in items:
                candidate = item(row, ctx)
                if candidate is None:
                    saw_null = True
                elif candidate == v:
                    return False if negated else True
            if saw_null:
                return None
            return True if negated else False

        return _in

    # -- sublinks -----------------------------------------------------------------

    def _sublink_subplan(self, expr: ex.SubLink):
        """The sublink's planned subquery, shared across compilations.

        The enclosing-layout stack is ordered outermost..innermost, so
        the current layout is appended last (Var levelsup=k reads
        stack[-k]).
        """
        memoized = self._subplan_memo.get(id(expr))
        if memoized is not None and memoized[0] is expr:
            return memoized[1]
        subplan = self.plan_subquery(
            expr.subquery, [*self.outer_varmaps, self.varmap]
        )
        self._subplan_memo[id(expr)] = (expr, subplan)
        return subplan

    def _compile_SubLink(self, expr: ex.SubLink) -> CompiledExpr:
        if self.plan_subquery is None:
            raise PlanError("sublinks are not allowed in this context")
        subplan = self._sublink_subplan(expr)
        if expr.kind == ex.SubLinkKind.SCALAR:
            return self._compile_scalar_sublink(expr, subplan)
        if expr.kind == ex.SubLinkKind.EXISTS:
            return self._compile_exists_sublink(expr, subplan)
        return self._compile_quantified_sublink(expr, subplan)

    @staticmethod
    def _run_subplan(subplan, ctx, row, correlated: bool) -> list[tuple]:
        # Subplans execute in the same protocol as the main pipeline so
        # that order-of-fold-sensitive results (float sums) agree with
        # the enclosing query's own computation of the same aggregate.
        from repro.executor.nodes import run_plan_rows

        if correlated:
            ctx.push_outer(row)
            try:
                return run_plan_rows(subplan, ctx)
            finally:
                ctx.pop_outer()
        return run_plan_rows(subplan, ctx)

    def _compile_scalar_sublink(self, expr: ex.SubLink, subplan) -> CompiledExpr:
        correlated = expr.correlated
        # Uncorrelated sublinks evaluate once per *execution*: the memo
        # lives in ctx.caches under a per-closure sentinel, so a prepared
        # plan re-run on a fresh context recomputes against live data.
        key = object()

        def _scalar(row, ctx):
            if not correlated:
                cached = ctx.caches.get(key, _UNCACHED)
                if cached is not _UNCACHED:
                    return cached
            rows = self._run_subplan(subplan, ctx, row, correlated)
            if len(rows) > 1:
                raise ExecutionError(
                    "more than one row returned by a subquery used as an expression"
                )
            value = rows[0][0] if rows else None
            if not correlated:
                ctx.caches[key] = value
            return value

        return _scalar

    def _compile_exists_sublink(self, expr: ex.SubLink, subplan) -> CompiledExpr:
        correlated = expr.correlated
        key = object()

        def _probe(ctx) -> bool:
            if ctx.vectorized:
                return next(iter(subplan.run_batches(ctx)), None) is not None
            return next(iter(subplan.run(ctx)), None) is not None

        def _exists(row, ctx):
            if correlated:
                ctx.push_outer(row)
                try:
                    return _probe(ctx)
                finally:
                    ctx.pop_outer()
            found = ctx.caches.get(key, _UNCACHED)
            if found is _UNCACHED:
                found = _probe(ctx)
                ctx.caches[key] = found
            return found

        return _exists

    def _compile_quantified_sublink(self, expr: ex.SubLink, subplan) -> CompiledExpr:
        """``x op ANY (subq)`` / ``x op ALL (subq)`` with full 3VL."""
        testfn = self.compile(expr.testexpr)
        op = expr.operator or "="
        cmp = COMPARISONS[op]
        is_any = expr.kind == ex.SubLinkKind.ANY
        correlated = expr.correlated
        key = object()

        def _values(row, ctx) -> list:
            if not correlated:
                values = ctx.caches.get(key)
                if values is not None:
                    return values
            rows = self._run_subplan(subplan, ctx, row, correlated)
            values = [r[0] for r in rows]
            if not correlated:
                ctx.caches[key] = values
            return values

        def _quantified(row, ctx):
            values = _values(row, ctx)
            test = testfn(row, ctx)
            saw_null = False
            if is_any:
                for value in values:
                    verdict = cmp(test, value)
                    if verdict is True:
                        return True
                    if verdict is None:
                        saw_null = True
                return None if saw_null else False
            for value in values:
                verdict = cmp(test, value)
                if verdict is False:
                    return False
                if verdict is None:
                    saw_null = True
            return None if saw_null else True

        return _quantified

    # ------------------------------------------------------------------
    # Batch mode: expressions -> column-wise kernels over Chunks
    # ------------------------------------------------------------------
    #
    # ``compile_batch`` produces ``fn(chunk, ctx) -> list`` evaluating the
    # expression for every logical row of the chunk at once.  NULLs stay
    # in-band (None entries; boolean columns are True/False/None — the
    # 3VL "null mask" is the None pattern itself).  Two invariants keep
    # batch mode exactly equivalent to row mode:
    #
    # * Conditional constructs (AND, OR, CASE) evaluate later arms only
    #   on still-active rows, via sub-chunks carrying selection vectors.
    #   Row mode's short-circuiting therefore transfers: an arm that
    #   would raise (division by zero, say) on a row the earlier arms
    #   already decided is never evaluated on that row in batch mode
    #   either.
    # * Anything that resists vectorization — correlated sublinks, odd
    #   engine edge cases — falls back to evaluating the row closure per
    #   row over ``chunk.rows()``.  The fallback is local to the one
    #   expression: the surrounding pipeline stays batched.

    def compile_batch(self, expr: ex.Expr) -> BatchExpr:
        method = getattr(self, f"_batch_{type(expr).__name__}", None)
        if method is not None:
            kernel = method(expr)
            if kernel is not None:
                return kernel
        return self._batch_fallback(expr)

    def _batch_fallback(self, expr: ex.Expr) -> BatchExpr:
        """Per-row fallback: the row closure applied over the chunk's rows."""
        fn = self.compile(expr)

        def kernel(chunk, ctx):
            return [fn(row, ctx) for row in chunk.rows()]

        return kernel

    # -- leaves -------------------------------------------------------------

    def _batch_Var(self, expr: ex.Var) -> Optional[BatchExpr]:
        if expr.levelsup == 0:
            key = (expr.varno, expr.varattno)
            if key not in self.varmap:
                raise PlanError(f"variable {expr} not found in plan layout")
            slot = self.varmap[key]
            return lambda chunk, ctx: chunk.column(slot)
        level = expr.levelsup
        if level > len(self.outer_varmaps):
            raise PlanError(f"outer reference {expr} exceeds nesting depth")
        outer_map = self.outer_varmaps[-level]
        key = (expr.varno, expr.varattno)
        if key not in outer_map:
            raise PlanError(f"outer variable {expr} not found in enclosing layout")
        slot = outer_map[key]
        # Constant within the batch: the enclosing row is fixed while a
        # correlated subplan's chunks stream by.
        return lambda chunk, ctx: [ctx.outer_rows[-level][slot]] * len(chunk)

    def _batch_Const(self, expr: ex.Const) -> BatchExpr:
        value = expr.value
        return lambda chunk, ctx: [value] * len(chunk)

    # -- operators ----------------------------------------------------------

    def _batch_OpExpr(self, expr: ex.OpExpr) -> Optional[BatchExpr]:
        if len(expr.args) == 1:  # unary minus
            arg = self.compile_batch(expr.args[0])
            return lambda chunk, ctx: [
                None if v is None else -v for v in arg(chunk, ctx)
            ]
        left_expr, right_expr = expr.args
        fn = self._select_binary_fn(expr.op, left_expr.type, right_expr.type)
        template = _BATCH_BINARY_TEMPLATES.get(fn)
        if isinstance(right_expr, ex.Const):
            left = self.compile_batch(left_expr)
            const = right_expr.value
            if (
                template is None
                and fn is _div_float
                and const is not None
                and const != 0
            ):
                # Division is excluded from the hot-operator templates
                # only because of the zero check; with a constant
                # nonzero divisor that check happens here, once.
                template = "(None if a is None else a / b)"
            if template is not None:
                return _KERNEL_COL_CONST(template)(left, const)
            return lambda chunk, ctx: [fn(a, const) for a in left(chunk, ctx)]
        if isinstance(left_expr, ex.Const):
            right = self.compile_batch(right_expr)
            const = left_expr.value
            if template is not None:
                return _KERNEL_CONST_COL(template)(right, const)
            return lambda chunk, ctx: [fn(const, b) for b in right(chunk, ctx)]
        left = self.compile_batch(left_expr)
        right = self.compile_batch(right_expr)
        if template is not None:
            return _KERNEL_COL_COL(template)(left, right)
        return lambda chunk, ctx: [
            fn(a, b) for a, b in zip(left(chunk, ctx), right(chunk, ctx))
        ]

    def _batch_BoolOpExpr(self, expr: ex.BoolOpExpr) -> Optional[BatchExpr]:
        if expr.op == "not":
            arg = self.compile_batch(expr.args[0])
            return lambda chunk, ctx: [
                None if v is None else not v for v in arg(chunk, ctx)
            ]
        kernels = [self.compile_batch(a) for a in expr.args]
        if expr.op == "and":
            return self._batch_progressive(kernels, short_on=False)
        return self._batch_progressive(kernels, short_on=True)

    @staticmethod
    def _batch_progressive(kernels: list[BatchExpr], short_on: bool) -> BatchExpr:
        """AND/OR over columns with row-mode short-circuit semantics.

        ``short_on`` is the verdict that decides a row immediately (False
        for AND, True for OR).  Decided rows drop out of the active set,
        and later arms are evaluated on a sub-chunk of only the still
        active rows — so an arm never runs on a row an earlier arm
        already decided, exactly like the row engine's short-circuit.
        NULL marks the row "undecided-with-null": it stays active (a
        later decisive verdict overrides) and resolves to None at the
        end, matching SQL's 3VL.
        """
        neutral = not short_on

        def _boolop(chunk, ctx):
            n = len(chunk)
            out: list = [neutral] * n
            active = list(range(n))
            sub = chunk
            for position, fn in enumerate(kernels):
                if not active:
                    break
                if position:
                    sub = chunk.select(active)
                verdicts = fn(sub, ctx)
                next_active: list[int] = []
                push = next_active.append
                for index, verdict in zip(active, verdicts):
                    if verdict is short_on:
                        out[index] = short_on
                    elif verdict is None:
                        out[index] = None
                        push(index)
                    else:
                        push(index)
                active = next_active
            return out

        return _boolop

    def _batch_FuncExpr(self, expr: ex.FuncExpr) -> Optional[BatchExpr]:
        if expr.name not in SCALAR_FUNCTIONS:
            raise PlanError(f"unknown function {expr.name!r}")
        fn = SCALAR_FUNCTIONS[expr.name]
        kernels = [self.compile_batch(a) for a in expr.args]
        if not kernels:
            return lambda chunk, ctx: [fn() for _ in range(len(chunk))]
        if len(kernels) == 1:
            arg0 = kernels[0]
            return lambda chunk, ctx: [fn(a) for a in arg0(chunk, ctx)]
        if len(kernels) == 2:
            arg0, arg1 = kernels
            return lambda chunk, ctx: [
                fn(a, b) for a, b in zip(arg0(chunk, ctx), arg1(chunk, ctx))
            ]
        return lambda chunk, ctx: [
            fn(*vals) for vals in zip(*(k(chunk, ctx) for k in kernels))
        ]

    def _batch_Aggref(self, expr: ex.Aggref) -> BatchExpr:
        raise PlanError(
            "internal error: Aggref must be replaced by the planner before "
            "expression compilation"
        )

    def _batch_CaseExpr(self, expr: ex.CaseExpr) -> Optional[BatchExpr]:
        whens = [
            (self.compile_batch(c), self.compile_batch(r)) for c, r in expr.whens
        ]
        default = (
            self.compile_batch(expr.default) if expr.default is not None else None
        )

        def _case(chunk, ctx):
            n = len(chunk)
            out: list = [None] * n
            active = list(range(n))
            for position, (cond, result) in enumerate(whens):
                if not active:
                    break
                sub = chunk if position == 0 and len(active) == n else chunk.select(active)
                verdicts = cond(sub, ctx)
                matched = [i for i, v in zip(active, verdicts) if v is True]
                if matched:
                    values = result(chunk.select(matched), ctx)
                    for index, value in zip(matched, values):
                        out[index] = value
                active = [i for i, v in zip(active, verdicts) if v is not True]
            if default is not None and active:
                values = default(chunk.select(active), ctx)
                for index, value in zip(active, values):
                    out[index] = value
            return out

        return _case

    def _batch_NullTest(self, expr: ex.NullTest) -> Optional[BatchExpr]:
        arg = self.compile_batch(expr.arg)
        if expr.negated:
            return lambda chunk, ctx: [v is not None for v in arg(chunk, ctx)]
        return lambda chunk, ctx: [v is None for v in arg(chunk, ctx)]

    def _batch_LikeTest(self, expr: ex.LikeTest) -> Optional[BatchExpr]:
        arg = self.compile_batch(expr.arg)
        if isinstance(expr.pattern, ex.Const):
            if expr.pattern.value is None:
                return lambda chunk, ctx: [None] * len(chunk)
            match = like_to_regex(str(expr.pattern.value)).fullmatch
            if expr.negated:
                return lambda chunk, ctx: [
                    None if v is None else match(v) is None
                    for v in arg(chunk, ctx)
                ]
            return lambda chunk, ctx: [
                None if v is None else match(v) is not None
                for v in arg(chunk, ctx)
            ]
        # Dynamic pattern: evaluate the pattern column batch-wise and
        # memoize the compiled regex per distinct pattern string — a
        # chunk-local dict fronts the shared LRU, so the common case
        # (few distinct patterns per chunk) never touches a lock.
        pattern = self.compile_batch(expr.pattern)
        negated = expr.negated

        def _like_dynamic(chunk, ctx):
            values = arg(chunk, ctx)
            patterns = pattern(chunk, ctx)
            matchers: dict[str, Any] = {}
            out = []
            for v, p in zip(values, patterns):
                if v is None or p is None:
                    out.append(None)
                    continue
                key = str(p)
                match = matchers.get(key)
                if match is None:
                    match = _cached_like_regex(key).fullmatch
                    matchers[key] = match
                matched = match(v) is not None
                out.append((not matched) if negated else matched)
            return out

        return _like_dynamic

    def _batch_InList(self, expr: ex.InList) -> Optional[BatchExpr]:
        if not all(isinstance(item, ex.Const) for item in expr.items):
            return None  # expression items: per-row fallback
        arg = self.compile_batch(expr.arg)
        values = {item.value for item in expr.items if item.value is not None}
        saw_null = any(item.value is None for item in expr.items)
        negated = expr.negated
        hit = False if negated else True
        miss = None if saw_null else (True if negated else False)

        def _in(chunk, ctx):
            return [
                None if v is None else (hit if v in values else miss)
                for v in arg(chunk, ctx)
            ]

        return _in

    # -- sublinks (batch) ---------------------------------------------------

    def _batch_SubLink(self, expr: ex.SubLink) -> Optional[BatchExpr]:
        if expr.correlated:
            return None  # re-executes per row: fall back to the row closure
        if expr.kind in (ex.SubLinkKind.ANY, ex.SubLinkKind.ALL):
            return self._batch_quantified_sublink(expr)
        fn = self.compile(expr)

        def _broadcast(chunk, ctx):
            n = len(chunk)
            if n == 0:
                return []
            # Uncorrelated: the row argument is ignored and the result is
            # cached in ctx, so one evaluation serves the whole batch.
            return [fn((), ctx)] * n

        return _broadcast

    def _batch_quantified_sublink(self, expr: ex.SubLink) -> Optional[BatchExpr]:
        """Vectorized uncorrelated ``x op ANY/ALL (subq)``.

        The subquery column is reduced *once per execution* into the
        cheapest digest the operator admits — a hash set for ``=`` /
        ``<>`` (the IN / NOT IN rewrites), the extreme value for the
        range operators (``x < ANY(S)`` ⇔ ``x < max(S)``, ``x < ALL(S)``
        ⇔ ``x < min(S)``, and dually for ``>``) — and the whole test
        column probes it in one comprehension, replacing the former
        per-row fallback loop.  Exact 3VL is preserved: a NULL test
        value or a NULL among the subquery values yields NULL whenever
        the quantifier is not already decided without it.
        """
        op = expr.operator or "="
        if op not in ("=", "<>", "<", "<=", ">", ">="):
            return None  # null-safe operators keep the row path
        if self.plan_subquery is None:
            raise PlanError("sublinks are not allowed in this context")
        subplan = self._sublink_subplan(expr)
        test_kernel = self.compile_batch(expr.testexpr)
        is_any = expr.kind == ex.SubLinkKind.ANY
        cache_key = object()

        def _digest(ctx):
            digest = ctx.caches.get(cache_key)
            if digest is None:
                rows = self._run_subplan(subplan, ctx, (), correlated=False)
                values = [r[0] for r in rows]
                non_null = [v for v in values if v is not None]
                saw_null = len(non_null) < len(values)
                if op in ("=", "<>"):
                    reduced: Any = set(non_null)
                elif non_null:
                    # ANY wants the loosest bound, ALL the tightest.
                    if (op in ("<", "<=")) == is_any:
                        reduced = max(non_null)
                    else:
                        reduced = min(non_null)
                else:
                    reduced = None
                digest = (reduced, bool(non_null), saw_null)
                ctx.caches[cache_key] = digest
            return digest

        cmp = COMPARISONS[op]
        eq_based = op in ("=", "<>")

        def _kernel(chunk, ctx):
            reduced, has_values, saw_null = _digest(ctx)
            tests = test_kernel(chunk, ctx)
            if not has_values and not saw_null:
                # Empty subquery: ANY is False, ALL is True, regardless
                # of the test value (even NULL).
                return [is_any is False for _ in tests]
            out = []
            append = out.append
            if eq_based:
                members = reduced
                if is_any:
                    # x = ANY: True on membership; x <> ANY: True unless
                    # every value equals x (set has other values).
                    for v in tests:
                        if v is None:
                            append(None)
                        elif op == "=":
                            append(True if v in members else (None if saw_null else False))
                        else:  # <> ANY
                            others = len(members) - (1 if v in members else 0)
                            append(True if others > 0 else (None if saw_null else False))
                else:
                    for v in tests:
                        if v is None:
                            append(None)
                        elif op == "=":
                            # = ALL: every value equals x.
                            only_x = members == {v}
                            append(
                                False
                                if (members and not only_x)
                                else (None if saw_null else only_x)
                            )
                        else:  # <> ALL (NOT IN)
                            append(
                                False
                                if v in members
                                else (None if saw_null else True)
                            )
                return out
            bound = reduced
            if is_any:
                for v in tests:
                    if v is None:
                        append(None)
                    elif bound is not None and cmp(v, bound) is True:
                        append(True)
                    else:
                        append(None if saw_null else False)
            else:
                for v in tests:
                    if v is None:
                        append(None)
                    elif bound is not None and cmp(v, bound) is not True:
                        append(False)
                    else:
                        append(None if saw_null else True)
            return out

        return _kernel


# -- generated column kernels for the common binary operators ---------------
#
# For the hot operators (comparisons, + - *, null-safe =) the kernel body
# is generated source with the null checks inlined in the comprehension:
# no per-element Python call at all.  ``a``/``b`` name the two operands;
# the three shapes bind them to two columns, column+constant, or
# constant+column.

_BATCH_BINARY_TEMPLATES: dict[Callable, str] = {
    _eq: "(None if a is None or b is None else a == b)",
    _ne: "(None if a is None or b is None else a != b)",
    _lt: "(None if a is None or b is None else a < b)",
    _le: "(None if a is None or b is None else a <= b)",
    _gt: "(None if a is None or b is None else a > b)",
    _ge: "(None if a is None or b is None else a >= b)",
    _add: "(None if a is None or b is None else a + b)",
    _sub: "(None if a is None or b is None else a - b)",
    _mul: "(None if a is None or b is None else a * b)",
    _null_safe_eq: "((b is None) if a is None else (False if b is None else a == b))",
    _null_safe_ne: "((b is not None) if a is None else (True if b is None else a != b))",
}


def _kernel_factory(source: str) -> Callable:
    cache: dict[str, Callable] = {}

    def factory(template: str) -> Callable:
        built = cache.get(template)
        if built is None:
            built = eval(source.format(expr=template))  # generated templates only
            cache[template] = built
        return built

    return factory


_KERNEL_COL_COL = _kernel_factory(
    "lambda lk, rk: lambda chunk, ctx: "
    "[{expr} for a, b in zip(lk(chunk, ctx), rk(chunk, ctx))]"
)
_KERNEL_COL_CONST = _kernel_factory(
    "lambda lk, b: lambda chunk, ctx: [{expr} for a in lk(chunk, ctx)]"
)
_KERNEL_CONST_COL = _kernel_factory(
    "lambda rk, a: lambda chunk, ctx: [{expr} for b in rk(chunk, ctx)]"
)
