"""Execution context shared by all plan nodes of one query execution."""

from __future__ import annotations


class ExecContext:
    """Carries cross-node execution state.

    ``outer_rows`` is the stack of rows from enclosing queries, used by
    correlated sublinks: a Var with ``levelsup = k`` reads from
    ``outer_rows[-k]``.  Uncorrelated sublinks cache their results in
    closures, so the context stays tiny.
    """

    __slots__ = ("outer_rows",)

    def __init__(self) -> None:
        self.outer_rows: list[tuple] = []

    def push_outer(self, row: tuple) -> None:
        self.outer_rows.append(row)

    def pop_outer(self) -> None:
        self.outer_rows.pop()
