"""Execution context shared by all plan nodes of one query execution."""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.errors import ExecutionError
from repro.storage.chunk import DEFAULT_BATCH_SIZE


class ExecContext:
    """Carries cross-node execution state.

    ``outer_rows`` is the stack of rows from enclosing queries, used by
    correlated sublinks: a Var with ``levelsup = k`` reads from
    ``outer_rows[-k]``.

    ``caches`` holds all per-*execution* memoization: uncorrelated
    sublink results and :class:`~repro.executor.nodes.MaterializeNode`
    spools, keyed by a per-closure sentinel or the node itself.  Keeping
    this state here (instead of inside plan objects) is what makes a
    plan re-runnable: a fresh context sees fresh data, while shared
    subplans still evaluate once *within* an execution.

    ``batch_size`` is the chunk row count for vectorized execution, and
    ``vectorized`` records which protocol drives this execution so that
    *subplans* (sublinks) run in the same mode as the main pipeline —
    float aggregates fold identically on both sides of a comparison
    (TPC-H Q15's ``total_revenue = (SELECT max(total_revenue) ...)``)
    only when the folds regroup partial sums the same way.

    ``snapshot`` (when set) maps ``Table.uid`` to the ``(epoch,
    row_count)`` visible to this execution: scans clamp to the recorded
    prefix (rows are append-only within an epoch) and raise when the
    epoch moved (TRUNCATE), giving the server its cheap MVCC read token.

    ``morsel`` is the ``(start, stop)`` physical row range a parallel
    worker is restricted to; it is set only on worker-forked contexts
    (:meth:`fork_morsel`) and consumed by the pipeline's base scan.

    ``deadline`` is a ``time.monotonic()`` instant after which long
    loops abort with an :class:`ExecutionError` — cooperative
    cancellation for per-request timeouts, checked at chunk granularity
    so the cost stays off the per-row path.
    """

    __slots__ = (
        "outer_rows",
        "caches",
        "batch_size",
        "vectorized",
        "snapshot",
        "morsel",
        "deadline",
    )

    def __init__(
        self,
        batch_size: int = DEFAULT_BATCH_SIZE,
        vectorized: bool = False,
        snapshot: Optional[dict[int, tuple[int, int]]] = None,
        deadline: Optional[float] = None,
    ) -> None:
        self.outer_rows: list[tuple] = []
        self.caches: dict[Any, Any] = {}
        self.batch_size = batch_size
        self.vectorized = vectorized
        self.snapshot = snapshot
        self.morsel: Optional[tuple[int, int]] = None
        self.deadline = deadline

    def push_outer(self, row: tuple) -> None:
        self.outer_rows.append(row)

    def pop_outer(self) -> None:
        self.outer_rows.pop()

    # -- snapshot reads -----------------------------------------------------

    def snapshot_stop(self, table: Any) -> Optional[int]:
        """The number of rows of ``table`` visible to this execution, or
        None for all.  Raises when the snapshot no longer applies (the
        heap was truncated since it was taken).  Tables absent from the
        snapshot (created after it was taken) are fully visible — the
        catalog lookup already happened at plan time."""
        snapshot = self.snapshot
        if snapshot is None:
            return None
        entry = snapshot.get(table.uid)
        if entry is None:
            return None
        epoch, visible_rows = entry
        if epoch != table.epoch:
            raise ExecutionError(
                f"snapshot too old: table {table.name!r} was truncated or "
                "had rows deleted/updated since the snapshot was taken"
            )
        return visible_rows

    # -- cooperative cancellation -------------------------------------------

    def check_deadline(self) -> None:
        deadline = self.deadline
        if deadline is not None and time.monotonic() >= deadline:
            raise ExecutionError("query canceled: execution timeout exceeded")

    # -- parallel workers ---------------------------------------------------

    def fork_morsel(self, start: int, stop: int) -> "ExecContext":
        """A fresh context for one morsel of a parallel pipeline.

        Caches are deliberately *not* shared: exchange pipelines are
        parallel-safe by construction (no sublinks, no materialized
        spools), so each worker keeps private memoization and no
        cross-thread locking is needed on the hot path.
        """
        clone = ExecContext(
            batch_size=self.batch_size,
            vectorized=True,
            snapshot=self.snapshot,
            deadline=self.deadline,
        )
        clone.morsel = (start, stop)
        return clone
