"""Execution context shared by all plan nodes of one query execution."""

from __future__ import annotations

from typing import Any

from repro.storage.chunk import DEFAULT_BATCH_SIZE


class ExecContext:
    """Carries cross-node execution state.

    ``outer_rows`` is the stack of rows from enclosing queries, used by
    correlated sublinks: a Var with ``levelsup = k`` reads from
    ``outer_rows[-k]``.

    ``caches`` holds all per-*execution* memoization: uncorrelated
    sublink results and :class:`~repro.executor.nodes.MaterializeNode`
    spools, keyed by a per-closure sentinel or the node itself.  Keeping
    this state here (instead of inside plan objects) is what makes a
    plan re-runnable: a fresh context sees fresh data, while shared
    subplans still evaluate once *within* an execution.

    ``batch_size`` is the chunk row count for vectorized execution, and
    ``vectorized`` records which protocol drives this execution so that
    *subplans* (sublinks) run in the same mode as the main pipeline —
    float aggregates fold identically on both sides of a comparison
    (TPC-H Q15's ``total_revenue = (SELECT max(total_revenue) ...)``)
    only when the folds regroup partial sums the same way.
    """

    __slots__ = ("outer_rows", "caches", "batch_size", "vectorized")

    def __init__(
        self, batch_size: int = DEFAULT_BATCH_SIZE, vectorized: bool = False
    ) -> None:
        self.outer_rows: list[tuple] = []
        self.caches: dict[Any, Any] = {}
        self.batch_size = batch_size
        self.vectorized = vectorized

    def push_outer(self, row: tuple) -> None:
        self.outer_rows.append(row)

    def pop_outer(self) -> None:
        self.outer_rows.pop()
