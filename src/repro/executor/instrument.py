"""EXPLAIN ANALYZE support: per-node runtime statistics.

:func:`instrument_plan` wraps every node's ``run``/``run_batches`` with
counting shims (instance attributes shadow the class methods, so inner
nodes calling ``self.child.run(...)`` hit the shims too).  After the
plan is drained, :func:`format_plan_with_stats` renders the usual
EXPLAIN tree annotated with actual row counts, batch counts, wall time,
and loop counts.

Timing is *inclusive* (a node's time contains its children's), measured
as the sum of the per-``next()`` latencies of the node's iterator —  the
same convention as PostgreSQL's ``EXPLAIN ANALYZE``.  ``loops`` counts
how many times the node was started: materialized subplans restart per
consumer, correlated sublink subplans restart per outer row.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.executor.nodes import PlanNode


#: A node whose actual row count is off from the estimate by more than
#: this factor (either direction) gets flagged — cheap misestimation
#: debugging: the flagged nodes are where the cost model went wrong.
MISESTIMATE_FACTOR = 10.0


@dataclass
class NodeStats:
    """Actual execution counters for one plan node."""

    rows: int = 0
    batches: int = 0
    loops: int = 0
    seconds: float = 0.0

    def describe(self, estimate: float | None = None) -> str:
        if self.loops == 0:
            return "(never executed)"
        parts = []
        if estimate is not None:
            parts.append(f"est={estimate:.0f}")
        parts.append(f"actual rows={self.rows}")
        if self.batches:
            parts.append(f"batches={self.batches}")
        parts.append(f"time={self.seconds * 1000.0:.3f}ms")
        if self.loops > 1:
            parts.append(f"loops={self.loops}")
        text = "(" + " ".join(parts) + ")"
        if estimate is not None and self._misestimated(estimate):
            ratio = max(self._rows_per_loop(), 1.0) / max(estimate, 1.0)
            if ratio < 1:
                ratio = 1 / ratio
            text += f"  !! misestimate {ratio:.0f}x"
        return text

    def _rows_per_loop(self) -> float:
        """Actual rows per execution — estimates are per execution, so a
        node restarted per outer row compares its average, not the
        accumulated total (PostgreSQL's EXPLAIN convention)."""
        return self.rows / max(self.loops, 1)

    def _misestimated(self, estimate: float) -> bool:
        actual = max(self._rows_per_loop(), 1.0)
        expected = max(estimate, 1.0)
        return (
            actual > expected * MISESTIMATE_FACTOR
            or expected > actual * MISESTIMATE_FACTOR
        )


def instrument_plan(plan: PlanNode) -> dict[int, NodeStats]:
    """Attach counting shims to every node; returns stats keyed by id()."""
    stats: dict[int, NodeStats] = {}
    for node in _walk(plan):
        if id(node) in stats:
            continue  # shared subplans appear under several parents
        stats[id(node)] = _wrap_node(node)
    return stats


def _walk(node: PlanNode):
    yield node
    for child in node.children():
        yield from _walk(child)


def _wrap_node(node: PlanNode) -> NodeStats:
    stats = NodeStats()
    original_run = node.run
    original_batches = node.run_batches
    clock = time.perf_counter

    def run(ctx):
        stats.loops += 1
        iterator = iter(original_run(ctx))
        while True:
            started = clock()
            try:
                row = next(iterator)
            except StopIteration:
                stats.seconds += clock() - started
                return
            stats.seconds += clock() - started
            stats.rows += 1
            yield row

    def run_batches(ctx):
        stats.loops += 1
        iterator = iter(original_batches(ctx))
        while True:
            started = clock()
            try:
                chunk = next(iterator)
            except StopIteration:
                stats.seconds += clock() - started
                return
            stats.seconds += clock() - started
            stats.batches += 1
            stats.rows += len(chunk)
            yield chunk

    node.run = run  # type: ignore[method-assign]
    node.run_batches = run_batches  # type: ignore[method-assign]
    return stats


def format_plan_with_stats(
    plan: PlanNode, stats: dict[int, NodeStats], indent: int = 0
) -> str:
    """The EXPLAIN tree with per-node estimated/actual counters appended.

    Nodes where actual rows deviate from the planner's estimate by more
    than :data:`MISESTIMATE_FACTOR` are flagged ``!! misestimate Nx``.
    """
    node_stats = stats.get(id(plan))
    suffix = (
        f"  {node_stats.describe(getattr(plan, 'estimate', None))}"
        if node_stats is not None
        else ""
    )
    lines = ["  " * indent + f"-> {plan.label()}{suffix}"]
    lines += [
        format_plan_with_stats(child, stats, indent + 1)
        for child in plan.children()
    ]
    return "\n".join(lines)
