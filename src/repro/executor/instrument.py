"""EXPLAIN ANALYZE support: per-node runtime statistics.

:func:`instrument_plan` wraps every node's ``run``/``run_batches`` with
counting shims (instance attributes shadow the class methods, so inner
nodes calling ``self.child.run(...)`` hit the shims too).  After the
plan is drained, :func:`format_plan_with_stats` renders the usual
EXPLAIN tree annotated with actual row counts, batch counts, wall time,
and loop counts.

Timing is *inclusive* (a node's time contains its children's), measured
as the sum of the per-``next()`` latencies of the node's iterator —  the
same convention as PostgreSQL's ``EXPLAIN ANALYZE``.  ``loops`` counts
how many times the node was started: materialized subplans restart per
consumer, correlated sublink subplans restart per outer row.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.executor.nodes import PlanNode


@dataclass
class NodeStats:
    """Actual execution counters for one plan node."""

    rows: int = 0
    batches: int = 0
    loops: int = 0
    seconds: float = 0.0

    def describe(self) -> str:
        if self.loops == 0:
            return "(never executed)"
        parts = [f"actual rows={self.rows}"]
        if self.batches:
            parts.append(f"batches={self.batches}")
        parts.append(f"time={self.seconds * 1000.0:.3f}ms")
        if self.loops > 1:
            parts.append(f"loops={self.loops}")
        return "(" + " ".join(parts) + ")"


def instrument_plan(plan: PlanNode) -> dict[int, NodeStats]:
    """Attach counting shims to every node; returns stats keyed by id()."""
    stats: dict[int, NodeStats] = {}
    for node in _walk(plan):
        if id(node) in stats:
            continue  # shared subplans appear under several parents
        stats[id(node)] = _wrap_node(node)
    return stats


def _walk(node: PlanNode):
    yield node
    for child in node.children():
        yield from _walk(child)


def _wrap_node(node: PlanNode) -> NodeStats:
    stats = NodeStats()
    original_run = node.run
    original_batches = node.run_batches
    clock = time.perf_counter

    def run(ctx):
        stats.loops += 1
        iterator = iter(original_run(ctx))
        while True:
            started = clock()
            try:
                row = next(iterator)
            except StopIteration:
                stats.seconds += clock() - started
                return
            stats.seconds += clock() - started
            stats.rows += 1
            yield row

    def run_batches(ctx):
        stats.loops += 1
        iterator = iter(original_batches(ctx))
        while True:
            started = clock()
            try:
                chunk = next(iterator)
            except StopIteration:
                stats.seconds += clock() - started
                return
            stats.seconds += clock() - started
            stats.batches += 1
            stats.rows += len(chunk)
            yield chunk

    node.run = run  # type: ignore[method-assign]
    node.run_batches = run_batches  # type: ignore[method-assign]
    return stats


def format_plan_with_stats(
    plan: PlanNode, stats: dict[int, NodeStats], indent: int = 0
) -> str:
    """The EXPLAIN tree with per-node actual counters appended."""
    node_stats = stats.get(id(plan))
    suffix = f"  {node_stats.describe()}" if node_stats is not None else ""
    lines = ["  " * indent + f"-> {plan.label()}{suffix}"]
    lines += [
        format_plan_with_stats(child, stats, indent + 1)
        for child in plan.children()
    ]
    return "\n".join(lines)
