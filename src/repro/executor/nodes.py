"""Physical plan nodes.

Each node implements ``run(ctx) -> Iterator[tuple]`` (volcano-style, with
materialization where the algorithm requires it: hash builds, sorts,
aggregation).  Nodes carry ``output_names`` for EXPLAIN and result schema
construction, and an ``estimate`` used by the planner's greedy join
ordering.

Join semantics notes:

* hash/nested-loop joins implement SQL semantics: NULL join keys never
  match, but unmatched rows still appear null-extended in outer joins;
* set operations implement bag semantics via counters (UNION/INTERSECT/
  EXCEPT ALL) and sets (DISTINCT variants), matching the Perm algebra
  definitions in paper Fig. 1b.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.errors import ExecutionError
from repro.executor.aggregates import AggState
from repro.executor.context import ExecContext
from repro.storage.table import Table

Row = tuple
Predicate = Callable[[Row, ExecContext], Any]
Scalar = Callable[[Row, ExecContext], Any]


class PlanNode:
    """Base class for physical plan nodes."""

    output_names: list[str]
    estimate: float

    def run(self, ctx: ExecContext) -> Iterator[Row]:  # pragma: no cover
        raise NotImplementedError

    def children(self) -> list["PlanNode"]:
        return []

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + f"-> {self.label()}"]
        lines += [child.explain(indent + 1) for child in self.children()]
        return "\n".join(lines)

    def width(self) -> int:
        return len(self.output_names)


class SeqScan(PlanNode):
    """Full scan of a heap table, optionally filtered."""

    def __init__(self, table: Table, output_names: list[str], predicate: Optional[Predicate] = None) -> None:
        self.table = table
        self.output_names = output_names
        self.predicate = predicate
        rows = table.row_count()
        self.estimate = max(rows * (0.25 if predicate else 1.0), 1.0)

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        rows = self.table.raw_rows()
        predicate = self.predicate
        if predicate is None:
            yield from rows
        else:
            for row in rows:
                if predicate(row, ctx) is True:
                    yield row

    def label(self) -> str:
        suffix = " (filtered)" if self.predicate else ""
        return f"SeqScan on {self.table.name}{suffix}"


class OneRow(PlanNode):
    """Produces a single empty row; basis for FROM-less selects."""

    def __init__(self) -> None:
        self.output_names = []
        self.estimate = 1.0

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        yield ()


class ValuesNode(PlanNode):
    """A constant list of rows (INSERT ... VALUES and tests)."""

    def __init__(self, rows: list[Row], output_names: list[str]) -> None:
        self.rows = rows
        self.output_names = output_names
        self.estimate = max(len(rows), 1)

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        yield from self.rows


class FilterNode(PlanNode):
    def __init__(self, child: PlanNode, predicate: Predicate) -> None:
        self.child = child
        self.predicate = predicate
        self.output_names = list(child.output_names)
        self.estimate = max(child.estimate * 0.25, 1.0)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        predicate = self.predicate
        for row in self.child.run(ctx):
            if predicate(row, ctx) is True:
                yield row


class ProjectNode(PlanNode):
    def __init__(self, child: PlanNode, exprs: list[Scalar], output_names: list[str]) -> None:
        self.child = child
        self.exprs = exprs
        self.output_names = output_names
        self.estimate = child.estimate

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        exprs = self.exprs
        for row in self.child.run(ctx):
            yield tuple(fn(row, ctx) for fn in exprs)


class SliceNode(PlanNode):
    """Keeps a positional subset of columns (drops resjunk sort columns)."""

    def __init__(self, child: PlanNode, keep: list[int], output_names: list[str]) -> None:
        self.child = child
        self.keep = keep
        self.output_names = output_names
        self.estimate = child.estimate

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        keep = self.keep
        for row in self.child.run(ctx):
            yield tuple(row[i] for i in keep)


class NestedLoopJoin(PlanNode):
    """General join for arbitrary conditions; right side is materialized."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        join_type: str,
        condition: Optional[Predicate],
    ) -> None:
        self.left = left
        self.right = right
        self.join_type = join_type
        self.condition = condition
        self.output_names = list(left.output_names) + list(right.output_names)
        selectivity = 0.1 if condition else 1.0
        self.estimate = max(left.estimate * right.estimate * selectivity, 1.0)

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return f"NestedLoopJoin ({self.join_type})"

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        right_rows = list(self.right.run(ctx))
        condition = self.condition
        join_type = self.join_type
        left_width = self.left.width()
        right_width = self.right.width()
        null_left = (None,) * left_width
        null_right = (None,) * right_width
        right_matched = [False] * len(right_rows) if join_type in ("right", "full") else None

        for left_row in self.left.run(ctx):
            matched = False
            for i, right_row in enumerate(right_rows):
                combined = left_row + right_row
                if condition is None or condition(combined, ctx) is True:
                    matched = True
                    if right_matched is not None:
                        right_matched[i] = True
                    yield combined
            if not matched and join_type in ("left", "full"):
                yield left_row + null_right
        if right_matched is not None:
            for i, right_row in enumerate(right_rows):
                if not right_matched[i]:
                    yield null_left + right_row


class _NullKey:
    """Hashable stand-in letting null-safe keys match NULL with NULL."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NULL>"


NULL_KEY = _NullKey()


class HashJoin(PlanNode):
    """Equi-join on hashed keys with optional residual condition.

    The build side is the right input.  For plain ``=`` keys, NULL never
    matches; keys flagged null-safe (the rewriter's ``<=>`` joins) match
    NULL with NULL.  Unmatched rows are preserved for outer-join null
    extension either way.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        join_type: str,
        left_keys: list[Scalar],
        right_keys: list[Scalar],
        residual: Optional[Predicate] = None,
        null_safe: Optional[list[bool]] = None,
    ) -> None:
        if not left_keys or len(left_keys) != len(right_keys):
            raise ExecutionError("hash join requires matching key lists")
        self.left = left
        self.right = right
        self.join_type = join_type
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.null_safe = null_safe or [False] * len(left_keys)
        self.output_names = list(left.output_names) + list(right.output_names)
        self.estimate = max(left.estimate, right.estimate)

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return f"HashJoin ({self.join_type}, {len(self.left_keys)} keys)"

    def _make_key(self, row: Row, ctx: ExecContext, fns: list[Scalar]) -> Optional[tuple]:
        """Hash key for a row; None when a non-null-safe key is NULL."""
        values = []
        for fn, safe in zip(fns, self.null_safe):
            value = fn(row, ctx)
            if value is None:
                if not safe:
                    return None
                value = NULL_KEY
            values.append(value)
        return tuple(values)

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        join_type = self.join_type
        residual = self.residual
        null_left = (None,) * self.left.width()
        null_right = (None,) * self.right.width()

        build: dict[tuple, list[tuple[int, Row]]] = defaultdict(list)
        right_rows: list[Row] = []
        for row in self.right.run(ctx):
            index = len(right_rows)
            right_rows.append(row)
            key = self._make_key(row, ctx, self.right_keys)
            if key is not None:
                build[key].append((index, row))
        right_matched = (
            [False] * len(right_rows) if join_type in ("right", "full") else None
        )

        for left_row in self.left.run(ctx):
            key = self._make_key(left_row, ctx, self.left_keys)
            matched = False
            if key is not None:
                for index, right_row in build.get(key, ()):
                    combined = left_row + right_row
                    if residual is None or residual(combined, ctx) is True:
                        matched = True
                        if right_matched is not None:
                            right_matched[index] = True
                        yield combined
            if not matched and join_type in ("left", "full"):
                yield left_row + null_right
        if right_matched is not None:
            for index, right_row in enumerate(right_rows):
                if not right_matched[index]:
                    yield null_left + right_row


class HashAggregate(PlanNode):
    """Grouped aggregation.

    Output rows are ``group_values + aggregate_results``.  With no grouping
    columns a single group exists even for empty input (SQL grand
    aggregate), producing count=0 / sum=NULL defaults — the behaviour the
    paper's Fig. 11 footnote 4 relies on.
    """

    def __init__(
        self,
        child: PlanNode,
        group_exprs: list[Scalar],
        agg_factories: list[Callable[[], AggState]],
        agg_arg_exprs: list[Optional[Scalar]],
        output_names: list[str],
    ) -> None:
        self.child = child
        self.group_exprs = group_exprs
        self.agg_factories = agg_factories
        self.agg_arg_exprs = agg_arg_exprs
        self.output_names = output_names
        self.estimate = max(child.estimate * 0.1, 1.0)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"HashAggregate ({len(self.group_exprs)} keys, {len(self.agg_factories)} aggs)"

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        group_exprs = self.group_exprs
        groups: dict[tuple, list[AggState]] = {}
        order: list[tuple] = []
        for row in self.child.run(ctx):
            key = tuple(fn(row, ctx) for fn in group_exprs)
            states = groups.get(key)
            if states is None:
                states = [factory() for factory in self.agg_factories]
                groups[key] = states
                order.append(key)
            for state, arg_expr in zip(states, self.agg_arg_exprs):
                state.add(arg_expr(row, ctx) if arg_expr is not None else None)
        if not groups and not group_exprs:
            states = [factory() for factory in self.agg_factories]
            yield tuple(state.result() for state in states)
            return
        for key in order:
            yield key + tuple(state.result() for state in groups[key])


class SortNode(PlanNode):
    """Sort on output slots.  ``specs``: (slot, descending, nulls_first)."""

    def __init__(self, child: PlanNode, specs: list[tuple[int, bool, Optional[bool]]]) -> None:
        self.child = child
        self.specs = specs
        self.output_names = list(child.output_names)
        self.estimate = child.estimate

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        rows = list(self.child.run(ctx))
        # Stable sort from the last key to the first gives multi-key order.
        for slot, descending, nulls_first in reversed(self.specs):
            rows.sort(
                key=self._make_key(slot, descending, nulls_first),
                reverse=descending,
            )
        yield from rows

    @staticmethod
    def _make_key(slot: int, descending: bool, nulls_first: Optional[bool]):
        # SQL defaults: NULLS LAST for ASC, NULLS FIRST for DESC.  Ranking
        # nulls high (rank 1) realizes both defaults because reverse=True
        # flips the rank order.  Explicit NULLS FIRST/LAST picks the rank
        # that lands nulls on the requested side after the optional flip.
        if nulls_first is None:
            null_rank = 1
        else:
            null_rank = 1 if nulls_first == descending else 0
        non_null_rank = 1 - null_rank

        def key(row: Row):
            value = row[slot]
            if value is None:
                return (null_rank, 0)
            return (non_null_rank, value)

        return key


class LimitNode(PlanNode):
    def __init__(self, child: PlanNode, count: Optional[int], offset: int = 0) -> None:
        self.child = child
        self.count = count
        self.offset = offset
        self.output_names = list(child.output_names)
        self.estimate = min(child.estimate, count if count is not None else child.estimate)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        skipped = 0
        emitted = 0
        for row in self.child.run(ctx):
            if skipped < self.offset:
                skipped += 1
                continue
            if self.count is not None and emitted >= self.count:
                return
            emitted += 1
            yield row


class DistinctNode(PlanNode):
    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.output_names = list(child.output_names)
        self.estimate = max(child.estimate * 0.5, 1.0)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        seen: set = set()
        for row in self.child.run(ctx):
            if row not in seen:
                seen.add(row)
                yield row


class SetOpPlanNode(PlanNode):
    """UNION / INTERSECT / EXCEPT with ALL and DISTINCT variants.

    Implements the bag-operator definitions of the Perm algebra
    (paper Fig. 1a/1b) directly with counters.
    """

    def __init__(self, op: str, all_flag: bool, left: PlanNode, right: PlanNode) -> None:
        if left.width() != right.width():
            raise ExecutionError("set operation inputs differ in width")
        self.op = op
        self.all = all_flag
        self.left = left
        self.right = right
        self.output_names = list(left.output_names)
        self.estimate = left.estimate + right.estimate

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return f"SetOp ({self.op}{' all' if self.all else ''})"

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        if self.op == "union":
            if self.all:
                yield from self.left.run(ctx)
                yield from self.right.run(ctx)
                return
            seen: set = set()
            for source in (self.left, self.right):
                for row in source.run(ctx):
                    if row not in seen:
                        seen.add(row)
                        yield row
            return
        if self.op == "intersect":
            right_counts = Counter(self.right.run(ctx))
            if self.all:
                remaining = dict(right_counts)
                for row in self.left.run(ctx):
                    count = remaining.get(row, 0)
                    if count > 0:
                        remaining[row] = count - 1
                        yield row
                return
            emitted: set = set()
            for row in self.left.run(ctx):
                if row in right_counts and row not in emitted:
                    emitted.add(row)
                    yield row
            return
        if self.op == "except":
            right_counts = Counter(self.right.run(ctx))
            if self.all:
                remaining = dict(right_counts)
                for row in self.left.run(ctx):
                    count = remaining.get(row, 0)
                    if count > 0:
                        remaining[row] = count - 1
                        continue
                    yield row
                return
            emitted = set()
            for row in self.left.run(ctx):
                if row not in right_counts and row not in emitted:
                    emitted.add(row)
                    yield row
            return
        raise ExecutionError(f"unknown set operation {self.op!r}")


class MaterializeNode(PlanNode):
    """Caches child output; used when a subplan is executed repeatedly."""

    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.output_names = list(child.output_names)
        self.estimate = child.estimate
        self._cache: Optional[list[Row]] = None

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        if self._cache is None:
            self._cache = list(self.child.run(ctx))
        return iter(self._cache)
