"""Physical plan nodes.

Each node implements two execution protocols over the same plan tree:

* ``run(ctx) -> Iterator[tuple]`` — the original volcano-style row
  engine (with materialization where the algorithm requires it: hash
  builds, sorts, aggregation);
* ``run_batches(ctx) -> Iterator[Chunk]`` — vectorized batch-at-a-time
  execution over columnar :class:`~repro.storage.chunk.Chunk` inputs.
  Nodes the planner equipped with batch kernels (``batch_*``
  attributes) execute column-wise; nodes without them fall back to the
  base-class bridge, which runs the row protocol for that subtree and
  re-chunks its output — so batch and row subtrees compose freely.

Nodes carry ``output_names`` for EXPLAIN and result schema construction,
and an ``estimate`` used by the planner's greedy join ordering.

Join semantics notes:

* hash/nested-loop joins implement SQL semantics: NULL join keys never
  match, but unmatched rows still appear null-extended in outer joins;
* set operations implement bag semantics via counters (UNION/INTERSECT/
  EXCEPT ALL) and sets (DISTINCT variants), matching the Perm algebra
  definitions in paper Fig. 1b.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.errors import ExecutionError
from repro.executor.aggregates import AggState
from repro.executor.context import ExecContext
from repro.storage.chunk import Chunk, chunk_rows
from repro.storage.table import Table

Row = tuple
Predicate = Callable[[Row, ExecContext], Any]
Scalar = Callable[[Row, ExecContext], Any]
#: Batch kernel: one Chunk in, one output column (list) out.
BatchExpr = Callable[[Chunk, ExecContext], list]


def run_plan_rows(plan: "PlanNode", ctx: ExecContext) -> list[Row]:
    """Execute a plan in the context's protocol and return its rows.

    The single dispatch point between the two engines: top-level result
    assembly and subplan execution all flow through here, so the two
    protocols cannot drift apart call site by call site.
    """
    if ctx.vectorized:
        return [row for chunk in plan.run_batches(ctx) for row in chunk.rows()]
    return list(plan.run(ctx))


def apply_batch_predicates(
    chunk: Chunk, kernels: Sequence[BatchExpr], ctx: ExecContext
) -> Chunk:
    """Filter a chunk through predicate kernels via selection vectors.

    Kernels run in order on the *surviving* rows only (each pass narrows
    the selection), mirroring the row engine's merged-conjunct
    short-circuit.  Column-backed chunks are never copied — only index
    lists; row-backed chunks gather the surviving row tuples directly.
    """
    for kernel in kernels:
        if len(chunk) == 0:
            return chunk
        verdicts = kernel(chunk, ctx)
        if chunk.is_row_backed():
            chunk = Chunk.from_rows(
                [row for row, v in zip(chunk.rows(), verdicts) if v is True],
                chunk.width,
            )
            continue
        sel = chunk.sel
        if sel is None:
            new_sel = [i for i, v in enumerate(verdicts) if v is True]
        else:
            new_sel = [i for i, v in zip(sel, verdicts) if v is True]
        chunk = chunk.with_sel(new_sel)
    return chunk


def make_row_getter(indexes: list[int]) -> Callable[[Row], Row]:
    """A ``row -> tuple`` rearranger for the given positions (itemgetter
    with the 0/1-arity cases normalized to always return a tuple)."""
    if len(indexes) == 1:
        index = indexes[0]
        return lambda row: (row[index],)
    if not indexes:
        return lambda row: ()
    import operator

    return operator.itemgetter(*indexes)


class PlanNode:
    """Base class for physical plan nodes.

    ``estimate`` is the planner's cardinality estimate for this node's
    output (statistics-driven under the cost-based planner, magic
    constants under the heuristic one); ``EXPLAIN`` renders it as
    ``est=`` next to actual rows.  ``batch_size_hint`` (set on plan
    roots by the cost-based planner) bounds the vectorized engine's
    chunk size by the largest estimated intermediate.
    """

    output_names: list[str]
    estimate: float
    batch_size_hint: Optional[int] = None
    #: Whether this node may run inside a morsel-parallel worker.  The
    #: planner clears it on nodes whose expressions depend on
    #: per-execution shared state (sublinks, correlated outer refs);
    #: :func:`repro.parallel.planning.insert_exchanges` only wraps
    #: pipelines where every node keeps the default.
    parallel_safe: bool = True

    def run(self, ctx: ExecContext) -> Iterator[Row]:  # pragma: no cover
        raise NotImplementedError

    def run_batches(self, ctx: ExecContext) -> Iterator[Chunk]:
        """Vectorized execution; the default bridges the row protocol.

        Subtrees without batch kernels (conditional nested-loop joins,
        plans built with ``vectorize=False``) run row-at-a-time here and
        are re-chunked, so a batched parent never needs to care which
        mode its input runs in.
        """
        return chunk_rows(self.run(ctx), self.width(), ctx.batch_size)

    def children(self) -> list["PlanNode"]:
        return []

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + f"-> {self.label()}"]
        lines += [child.explain(indent + 1) for child in self.children()]
        return "\n".join(lines)

    def width(self) -> int:
        return len(self.output_names)


class SeqScan(PlanNode):
    """Full scan of a heap table, optionally filtered and column-narrowed.

    ``columns`` (when set) lists the heap attribute numbers to emit, in
    output order — the physical realization of the optimizer's projection
    pruning.  Predicates always evaluate against the emitted (narrow)
    row layout.
    """

    #: Planner-attached fusion metadata ``(varmap, [analyzed exprs])``
    #: for the node's predicates/projections, consumed by
    #: :mod:`repro.executor.fusion`; None = not fusible (no metadata, or
    #: a conjunct without a batch form poisoned it).
    fusion = None

    def __init__(
        self,
        table: Table,
        output_names: list[str],
        predicate: Optional[Predicate] = None,
        columns: Optional[list[int]] = None,
        batch_predicates: Optional[list[BatchExpr]] = None,
    ) -> None:
        self.table = table
        self.output_names = output_names
        self.predicate = predicate
        self.columns = columns
        # Batch-mode filter kernels, applied in order with selection
        # vectors.  None (as opposed to []) means "no batch form": the
        # scan falls back to the row bridge when a predicate exists.
        self.batch_predicates = batch_predicates
        rows = table.row_count()
        self.estimate = max(rows * (0.25 if predicate else 1.0), 1.0)

    def _bounds(self, ctx: ExecContext) -> tuple[int, int]:
        """The physical row range this execution may read: the morsel
        range (parallel worker) intersected with the snapshot-visible
        prefix (server MVCC token)."""
        stop = self.table.row_count()
        visible = ctx.snapshot_stop(self.table)
        if visible is not None:
            stop = min(stop, visible)
        start = 0
        if ctx.morsel is not None:
            morsel_start, morsel_stop = ctx.morsel
            start = max(start, morsel_start)
            stop = min(stop, morsel_stop)
        return start, max(start, stop)

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        rows = self.table.raw_rows()
        if ctx.snapshot is not None or ctx.morsel is not None:
            start, stop = self._bounds(ctx)
            rows = rows[start:stop]
        predicate = self.predicate
        if self.columns is None:
            if predicate is None:
                yield from rows
            else:
                for row in rows:
                    if predicate(row, ctx) is True:
                        yield row
            return
        getter = make_row_getter(self.columns)
        if predicate is None:
            for row in rows:
                yield getter(row)
        else:
            for row in rows:
                narrow = getter(row)
                if predicate(narrow, ctx) is True:
                    yield narrow

    def run_batches(self, ctx: ExecContext) -> Iterator[Chunk]:
        if self.predicate is not None and self.batch_predicates is None:
            yield from PlanNode.run_batches(self, ctx)
            return
        kernels = self.batch_predicates
        start, stop = 0, None
        if ctx.snapshot is not None or ctx.morsel is not None:
            start, stop = self._bounds(ctx)
        deadline = ctx.deadline
        for chunk in self.table.scan_chunks(
            ctx.batch_size, self.columns, start=start, stop=stop
        ):
            if deadline is not None:
                ctx.check_deadline()
            if kernels:
                chunk = apply_batch_predicates(chunk, kernels, ctx)
                if len(chunk) == 0:
                    continue
            yield chunk

    def label(self) -> str:
        suffix = " (filtered)" if self.predicate else ""
        if self.columns is not None:
            suffix += f" [{len(self.columns)} cols]"
        return f"SeqScan on {self.table.name}{suffix}"


class OneRow(PlanNode):
    """Produces a single empty row; basis for FROM-less selects."""

    def __init__(self) -> None:
        self.output_names = []
        self.estimate = 1.0

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        yield ()

    def run_batches(self, ctx: ExecContext) -> Iterator[Chunk]:
        yield Chunk(nrows=1, width=0, rows=[()])


class ValuesNode(PlanNode):
    """A constant list of rows (INSERT ... VALUES and tests)."""

    def __init__(self, rows: list[Row], output_names: list[str]) -> None:
        self.rows = rows
        self.output_names = output_names
        self.estimate = max(len(rows), 1)

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        yield from self.rows

    def run_batches(self, ctx: ExecContext) -> Iterator[Chunk]:
        if self.rows:
            yield Chunk.from_rows(list(self.rows), self.width())


class FilterNode(PlanNode):
    #: Fusion metadata; see :class:`SeqScan`.
    fusion = None

    def __init__(
        self,
        child: PlanNode,
        predicate: Predicate,
        batch_predicates: Optional[list[BatchExpr]] = None,
    ) -> None:
        self.child = child
        self.predicate = predicate
        self.batch_predicates = batch_predicates
        self.output_names = list(child.output_names)
        self.estimate = max(child.estimate * 0.25, 1.0)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        predicate = self.predicate
        for row in self.child.run(ctx):
            if predicate(row, ctx) is True:
                yield row

    def run_batches(self, ctx: ExecContext) -> Iterator[Chunk]:
        kernels = self.batch_predicates
        if kernels is None:
            yield from PlanNode.run_batches(self, ctx)
            return
        for chunk in self.child.run_batches(ctx):
            chunk = apply_batch_predicates(chunk, kernels, ctx)
            if len(chunk):
                yield chunk


class ProjectNode(PlanNode):
    """Expression projection.

    ``slots`` (optional, parallel to ``exprs``) marks positions that are
    plain input-slot reads; the per-row emitter is code-generated into a
    single lambda with slot reads inlined, so a wide provenance target
    list costs one call per row instead of one per column.
    """

    #: Fusion metadata; see :class:`SeqScan`.
    fusion = None

    def __init__(
        self,
        child: PlanNode,
        exprs: list[Scalar],
        output_names: list[str],
        slots: Optional[list[Optional[int]]] = None,
        batch_exprs: Optional[list[Optional[BatchExpr]]] = None,
    ) -> None:
        self.child = child
        self.exprs = exprs
        self.output_names = output_names
        self.slots = slots
        # Batch kernels parallel to ``exprs``; positions covered by a
        # slot read may be None (the column passes through untouched).
        self.batch_exprs = batch_exprs
        self.estimate = child.estimate
        self._emit = self._build_emitter()

    def _build_emitter(self):
        slots = self.slots if self.slots is not None else [None] * len(self.exprs)
        parts: list[str] = []
        env: dict[str, Any] = {}
        for index, (fn, slot) in enumerate(zip(self.exprs, slots)):
            if slot is not None:
                parts.append(f"row[{int(slot)}]")
            else:
                env[f"_f{index}"] = fn
                parts.append(f"_f{index}(row, ctx)")
        if not parts:
            return lambda row, ctx: ()
        body = ", ".join(parts)
        return eval(f"lambda row, ctx: ({body},)", env)  # generated slots/calls only

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        emit = self._emit
        for row in self.child.run(ctx):
            yield emit(row, ctx)

    def run_batches(self, ctx: ExecContext) -> Iterator[Chunk]:
        if self.batch_exprs is None:
            yield from PlanNode.run_batches(self, ctx)
            return
        slots = self.slots if self.slots is not None else [None] * len(self.exprs)
        pairs = list(zip(self.batch_exprs, slots))
        emit = self._emit
        for chunk in self.child.run_batches(ctx):
            n = len(chunk)
            if chunk.is_row_backed():
                # Row-backed input (join output): the generated row
                # emitter costs one call per row, cheaper than
                # extracting every slot-read column separately.
                yield Chunk.from_rows(
                    [emit(row, ctx) for row in chunk.rows()], len(pairs)
                )
                continue
            columns = [
                chunk.column(slot) if slot is not None else kernel(chunk, ctx)
                for kernel, slot in pairs
            ]
            yield Chunk(columns=columns, nrows=n, width=len(pairs))


class SliceNode(PlanNode):
    """Re-emits a positional selection of columns (any order, duplicates
    allowed): junk-column removal and Var-only projections.

    Unlike :class:`ProjectNode` this evaluates no expressions — the row is
    rearranged with a C-level ``itemgetter``, which is what makes the
    optimizer's pulled-up trees cheap (their projections are plain column
    references).
    """

    def __init__(self, child: PlanNode, keep: list[int], output_names: list[str]) -> None:
        self.child = child
        self.keep = keep
        self.output_names = output_names
        self.estimate = child.estimate

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        getter = make_row_getter(self.keep)
        for row in self.child.run(ctx):
            yield getter(row)

    def run_batches(self, ctx: ExecContext) -> Iterator[Chunk]:
        keep = self.keep
        for chunk in self.child.run_batches(ctx):
            # Column-backed chunks rearrange by reference (zero copy);
            # row-backed ones fall back to the itemgetter path.
            yield chunk.project(keep)


class NestedLoopJoin(PlanNode):
    """General join for arbitrary conditions; right side is materialized."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        join_type: str,
        condition: Optional[Predicate],
        batch_condition: Optional[BatchExpr] = None,
    ) -> None:
        self.left = left
        self.right = right
        self.join_type = join_type
        self.condition = condition
        self.batch_condition = batch_condition
        self.output_names = list(left.output_names) + list(right.output_names)
        selectivity = 0.1 if condition else 1.0
        self.estimate = max(left.estimate * right.estimate * selectivity, 1.0)

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return f"NestedLoopJoin ({self.join_type})"

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        right_rows = list(self.right.run(ctx))
        condition = self.condition
        join_type = self.join_type
        left_width = self.left.width()
        right_width = self.right.width()
        null_left = (None,) * left_width
        null_right = (None,) * right_width

        if condition is None and join_type in ("inner", "left", "cross"):
            # Unconditional cross product (the shape the provenance
            # rewrite's scalar-sublink joins fold to): no per-pair checks.
            if right_rows:
                for left_row in self.left.run(ctx):
                    for right_row in right_rows:
                        yield left_row + right_row
            elif join_type == "left":
                for left_row in self.left.run(ctx):
                    yield left_row + null_right
            return

        right_matched = [False] * len(right_rows) if join_type in ("right", "full") else None

        deadline = ctx.deadline
        for left_row in self.left.run(ctx):
            if deadline is not None:
                ctx.check_deadline()
            matched = False
            for i, right_row in enumerate(right_rows):
                combined = left_row + right_row
                if condition is None or condition(combined, ctx) is True:
                    matched = True
                    if right_matched is not None:
                        right_matched[i] = True
                    yield combined
            if not matched and join_type in ("left", "full"):
                yield left_row + null_right
        if right_matched is not None:
            for i, right_row in enumerate(right_rows):
                if not right_matched[i]:
                    yield null_left + right_row

    def run_batches(self, ctx: ExecContext) -> Iterator[Chunk]:
        """Batch nested loop.

        The unconditional inner/left/cross shapes build output *columns*
        directly (repeat/tile gathers, zero row materialization — the
        provenance rewrite's scalar-aggregate joins are the single-right-
        row case).  Conditional loops stream left chunks but check pairs
        with the row-mode condition closure, which is evaluated per pair
        either way; children stay vectorized, keeping fold-sensitive
        float aggregates consistent across the plan.
        """
        condition = self.condition
        join_type = self.join_type
        width = self.width()
        right_rows = [
            row for chunk in self.right.run_batches(ctx) for row in chunk.rows()
        ]

        if condition is None and join_type in ("inner", "left", "cross"):
            left_width = self.left.width()
            if not right_rows:
                if join_type == "left":
                    for chunk in self.left.run_batches(ctx):
                        n = len(chunk)
                        columns = [chunk.column(i) for i in range(left_width)]
                        columns += [[None] * n for _ in range(self.right.width())]
                        yield Chunk(columns=columns, nrows=n, width=width)
                return
            if len(right_rows) == 1:
                # The dominant provenance shape: one (scalar/grand-
                # aggregate) row glued onto every left row.
                single = right_rows[0]
                for chunk in self.left.run_batches(ctx):
                    n = len(chunk)
                    columns = [chunk.column(i) for i in range(left_width)]
                    columns += [[value] * n for value in single]
                    yield Chunk(columns=columns, nrows=n, width=width)
                return
            for chunk in self.left.run_batches(ctx):
                if ctx.deadline is not None:
                    ctx.check_deadline()
                # Wide cross product: one tuple concatenation per pair
                # beats building every output column element-wise.
                out = [
                    left_row + right_row
                    for left_row in chunk.rows()
                    for right_row in right_rows
                ]
                yield from chunk_rows(out, width, ctx.batch_size)
            return

        null_left = (None,) * self.left.width()
        null_right = (None,) * self.right.width()
        right_matched = (
            bytearray(len(right_rows)) if join_type in ("right", "full") else None
        )
        preserve_left = join_type in ("left", "full")
        batch_condition = self.batch_condition
        count = len(right_rows)
        # Left rows are processed in blocks sized so that one candidate
        # cross product fits a batch; the condition then evaluates as
        # one vectorized kernel call per block instead of one closure
        # call per pair.
        step = max(1, ctx.batch_size // count) if count else 1
        deadline = ctx.deadline
        for chunk in self.left.run_batches(ctx):
            left_rows = chunk.rows()
            out = []
            append = out.append
            for start in range(0, len(left_rows), step):
                if deadline is not None:
                    ctx.check_deadline()
                block = left_rows[start : start + step]
                if batch_condition is not None and condition is not None and count:
                    pairs = [
                        left_row + right_row
                        for left_row in block
                        for right_row in right_rows
                    ]
                    verdicts = batch_condition(
                        Chunk.from_rows(pairs, width), ctx
                    )
                    for offset, left_row in enumerate(block):
                        base = offset * count
                        matched = False
                        for index in range(count):
                            if verdicts[base + index] is True:
                                matched = True
                                if right_matched is not None:
                                    right_matched[index] = 1
                                append(pairs[base + index])
                        if not matched and preserve_left:
                            append(left_row + null_right)
                    continue
                for left_row in block:
                    matched = False
                    for index, right_row in enumerate(right_rows):
                        combined = left_row + right_row
                        if condition is None or condition(combined, ctx) is True:
                            matched = True
                            if right_matched is not None:
                                right_matched[index] = 1
                            append(combined)
                    if not matched and preserve_left:
                        append(left_row + null_right)
            if out:
                yield from chunk_rows(out, width, ctx.batch_size)
        if right_matched is not None:
            leftovers = [
                null_left + right_row
                for index, right_row in enumerate(right_rows)
                if not right_matched[index]
            ]
            if leftovers:
                yield from chunk_rows(leftovers, width, ctx.batch_size)


class _PairChunk(Chunk):
    """Candidate join pairs viewed as one chunk, concatenation deferred.

    Residual kernels read a handful of columns of the combined row;
    gathering those straight from the probe- and build-side tuples
    avoids allocating a wide concatenated tuple for every candidate
    pair — only pairs that pass the residual are materialized.  Kernels
    touch ``column``/``rows``/``select``/``len`` only, all overridden
    (``rows`` serves per-row fallback kernels and does concatenate).
    """

    __slots__ = ("left_rows", "right_rows", "split")

    def __init__(
        self,
        left_rows: list[Row],
        right_rows: list[Row],
        split: int,
        width: int,
    ) -> None:
        super().__init__(nrows=len(left_rows), width=width)
        self.left_rows = left_rows
        self.right_rows = right_rows
        self.split = split

    def column(self, index: int) -> list:
        if index < self.split:
            return [row[index] for row in self.left_rows]
        index -= self.split
        return [row[index] for row in self.right_rows]

    def rows(self) -> list[tuple]:
        if self._rows is None:
            self._rows = [
                left + right
                for left, right in zip(self.left_rows, self.right_rows)
            ]
        return self._rows

    def select(self, logical: Sequence[int]) -> "Chunk":
        return _PairChunk(
            [self.left_rows[i] for i in logical],
            [self.right_rows[i] for i in logical],
            self.split,
            self.width,
        )


class _NullKey:
    """Hashable stand-in letting null-safe keys match NULL with NULL."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NULL>"


NULL_KEY = _NullKey()


class HashJoin(PlanNode):
    """Equi-join on hashed keys with optional residual condition.

    The build side is the right input.  For plain ``=`` keys, NULL never
    matches; keys flagged null-safe (the rewriter's ``<=>`` joins) match
    NULL with NULL.  Unmatched rows are preserved for outer-join null
    extension either way.

    ``left_key_slots`` / ``right_key_slots`` (set by the planner when
    every key is a plain column reference) record which input slots the
    key closures read, enabling slice pushdown to remap keys onto
    narrowed inputs.  ``columnar_output`` switches the batch inner-join
    fast path from row concatenation to per-column gathers — chosen by
    the cost-based planner for narrow outputs feeding columnar
    consumers.
    """

    left_key_slots: Optional[list[int]] = None
    right_key_slots: Optional[list[int]] = None
    columnar_output: bool = False

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        join_type: str,
        left_keys: list[Scalar],
        right_keys: list[Scalar],
        residual: Optional[Predicate] = None,
        null_safe: Optional[list[bool]] = None,
        batch_left_keys: Optional[list[BatchExpr]] = None,
        batch_right_keys: Optional[list[BatchExpr]] = None,
        batch_residual: Optional[BatchExpr] = None,
    ) -> None:
        if not left_keys or len(left_keys) != len(right_keys):
            raise ExecutionError("hash join requires matching key lists")
        self.left = left
        self.right = right
        self.join_type = join_type
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.null_safe = null_safe or [False] * len(left_keys)
        self.batch_left_keys = batch_left_keys
        self.batch_right_keys = batch_right_keys
        self.batch_residual = batch_residual
        self.output_names = list(left.output_names) + list(right.output_names)
        self.estimate = max(left.estimate, right.estimate)

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return f"HashJoin ({self.join_type}, {len(self.left_keys)} keys)"

    def _key_builder(self, fns: list[Scalar]):
        """A specialized ``row, ctx -> key | None`` closure.

        Returns None when a non-null-safe key column is NULL (such rows
        can never match).  Specialized per arity/null-safety because key
        construction runs once per input row on both join sides.
        """
        null_safe = self.null_safe
        if len(fns) == 1:
            fn = fns[0]
            if null_safe[0]:

                def build_one_safe(row: Row, ctx: ExecContext):
                    value = fn(row, ctx)
                    return (NULL_KEY,) if value is None else (value,)

                return build_one_safe

            def build_one(row: Row, ctx: ExecContext):
                value = fn(row, ctx)
                return None if value is None else (value,)

            return build_one
        pairs = list(zip(fns, null_safe))

        def build_many(row: Row, ctx: ExecContext) -> Optional[tuple]:
            values = []
            for fn, safe in pairs:
                value = fn(row, ctx)
                if value is None:
                    if not safe:
                        return None
                    value = NULL_KEY
                values.append(value)
            return tuple(values)

        return build_many

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        join_type = self.join_type
        residual = self.residual
        null_left = (None,) * self.left.width()
        null_right = (None,) * self.right.width()
        build_key = self._key_builder(self.right_keys)
        probe_key = self._key_builder(self.left_keys)

        build: dict[tuple, list[tuple[int, Row]]] = defaultdict(list)
        right_rows: list[Row] = []
        for row in self.right.run(ctx):
            index = len(right_rows)
            right_rows.append(row)
            key = build_key(row, ctx)
            if key is not None:
                build[key].append((index, row))
        right_matched = (
            [False] * len(right_rows) if join_type in ("right", "full") else None
        )
        build_get = build.get
        preserve_left = join_type in ("left", "full")

        for left_row in self.left.run(ctx):
            key = probe_key(left_row, ctx)
            matched = False
            if key is not None:
                bucket = build_get(key)
                if bucket is not None:
                    for index, right_row in bucket:
                        combined = left_row + right_row
                        if residual is None or residual(combined, ctx) is True:
                            matched = True
                            if right_matched is not None:
                                right_matched[index] = True
                            yield combined
            if not matched and preserve_left:
                yield left_row + null_right
        if right_matched is not None:
            for index, right_row in enumerate(right_rows):
                if not right_matched[index]:
                    yield null_left + right_row

    # -- batch protocol -----------------------------------------------------

    def _batch_key_rows(self, key_columns: list[list]) -> list:
        """Per-row hash keys from key columns (None = can never match).

        Single-column keys stay *raw values* (no tuple wrapping): NULL
        maps to None (never matches) or, for null-safe keys, to the
        NULL_KEY sentinel (NULL matches NULL).  Multi-column keys are
        tuples with the same per-column treatment.
        """
        null_safe = self.null_safe
        if len(key_columns) == 1:
            column = key_columns[0]
            if null_safe[0]:
                return [NULL_KEY if v is None else v for v in column]
            return column
        keys: list = []
        append = keys.append
        for values in zip(*key_columns):
            if None in values:
                parts = []
                dead = False
                for value, safe in zip(values, null_safe):
                    if value is None:
                        if not safe:
                            dead = True
                            break
                        value = NULL_KEY
                    parts.append(value)
                append(None if dead else tuple(parts))
            else:
                append(values)
        return keys

    def run_batches(self, ctx: ExecContext) -> Iterator[Chunk]:
        """Batch hash join, hybrid row/column.

        Keys are computed *column-wise* (the batch kernels) and the
        probe is a handful of C-level comprehensions over the key
        column; output rows are assembled with one tuple concatenation
        per match — for the wide rows of provenance joins, a single
        C memcpy beats per-column gathers.  The output chunk is
        row-backed; downstream kernels extract just the columns they
        touch.  Residual conditions on inner joins vectorize as a
        filter over the candidate pairs; residual outer joins keep the
        per-pair check (the verdict drives null extension).
        """
        if self.batch_left_keys is None or self.batch_right_keys is None:
            yield from PlanNode.run_batches(self, ctx)
            return
        if self.residual is not None and (
            self.join_type != "inner" or self.batch_residual is None
        ):
            yield from self._run_batches_residual(ctx)
            return
        residual_kernel = self.batch_residual if self.residual is not None else None
        join_type = self.join_type
        width = self.width()
        null_left = (None,) * self.left.width()
        null_right = (None,) * self.right.width()

        build, right_rows, right_matched = self._spool_build_side(ctx)
        build_get = build.get
        preserve_left = join_type in ("left", "full")

        right_columns: Optional[list[list]] = None
        if (
            self.columnar_output
            and residual_kernel is None
            and join_type == "inner"
            and right_rows
        ):
            right_columns = [list(column) for column in zip(*right_rows)]

        for chunk in self.left.run_batches(ctx):
            keys = self._batch_key_rows(
                [kernel(chunk, ctx) for kernel in self.batch_left_keys]
            )
            if right_columns is not None and not chunk.is_row_backed():
                # Columnar output (narrow joins feeding columnar
                # consumers): gather each surviving column once instead
                # of concatenating row tuples per match.
                buckets = [build_get(key) for key in keys]
                probe_positions: list[int] = []
                build_positions: list[int] = []
                for position, bucket in enumerate(buckets):
                    if bucket is not None:
                        for index in bucket:
                            probe_positions.append(position)
                            build_positions.append(index)
                if not probe_positions:
                    continue
                columns = [
                    [column[p] for p in probe_positions]
                    for column in (
                        chunk.column(i) for i in range(self.left.width())
                    )
                ] + [
                    [column[i] for i in build_positions]
                    for column in right_columns
                ]
                yield Chunk(
                    columns=columns, nrows=len(probe_positions), width=width
                )
                continue
            left_rows = chunk.rows()
            if right_matched is None and not preserve_left:
                # Inner join fast path: two C-level comprehensions.
                # None keys look up None, which is never a dict key
                # (keys hash to values or tuples).
                buckets = [build_get(key) for key in keys]
                out = [
                    left_rows[position] + right_rows[index]
                    for position, bucket in enumerate(buckets)
                    if bucket is not None
                    for index in bucket
                ]
            else:
                out = []
                append = out.append
                for position, key in enumerate(keys):
                    bucket = build_get(key) if key is not None else None
                    if bucket is not None:
                        left_row = left_rows[position]
                        if right_matched is None:
                            for index in bucket:
                                append(left_row + right_rows[index])
                        else:
                            for index in bucket:
                                append(left_row + right_rows[index])
                                right_matched[index] = 1
                    elif preserve_left:
                        append(left_rows[position] + null_right)
            if not out:
                continue
            result = Chunk.from_rows(out, width)
            if residual_kernel is not None:
                # Inner join: the residual is a plain filter over the
                # candidate pairs, so it vectorizes like any predicate.
                result = apply_batch_predicates(result, (residual_kernel,), ctx)
                if len(result) == 0:
                    continue
            yield result
        if right_matched is not None:
            leftovers = [
                null_left + right_rows[index]
                for index in range(len(right_rows))
                if not right_matched[index]
            ]
            if leftovers:
                yield Chunk.from_rows(leftovers, width)

    def _spool_build_side(
        self, ctx: ExecContext
    ) -> tuple[dict, list[Row], Optional[bytearray]]:
        """Spool the right input as rows, hashing the key columns.

        Shared by the residual and no-residual batch paths: returns the
        ``key -> [row index]`` build table, the spooled rows, and the
        matched-flag array for right/full outer joins.
        """
        build: dict = {}
        build_setdefault = build.setdefault
        right_rows: list[Row] = []
        for chunk in self.right.run_batches(ctx):
            keys = self._batch_key_rows(
                [kernel(chunk, ctx) for kernel in self.batch_right_keys]
            )
            base = len(right_rows)
            right_rows.extend(chunk.rows())
            for offset, key in enumerate(keys):
                if key is not None:
                    build_setdefault(key, []).append(base + offset)
        right_matched = (
            bytearray(len(right_rows))
            if self.join_type in ("right", "full")
            else None
        )
        return build, right_rows, right_matched

    def _run_batches_residual(self, ctx: ExecContext) -> Iterator[Chunk]:
        """Residual outer joins (and residuals without a batch form).

        With a batch-form residual the per-chunk work is two-phase
        filter-then-reconcile: every candidate (probe row × bucket
        entry) pair is gathered into ONE combined chunk, the residual
        kernel runs once over it, and the verdicts are reconciled back
        into per-probe matched flags (driving LEFT/FULL null extension)
        and build-side matched flags (RIGHT/FULL).  Candidate building
        and the surviving-pair gather are C-level comprehensions; only
        the flag updates loop in Python.  A row-only residual keeps the
        per-pair closure loop.
        """
        join_type = self.join_type
        residual = self.residual
        residual_kernel = self.batch_residual
        width = self.width()
        null_left = (None,) * self.left.width()
        null_right = (None,) * self.right.width()
        batch_size = ctx.batch_size

        build, right_rows, right_matched = self._spool_build_side(ctx)
        build_get = build.get
        preserve_left = join_type in ("left", "full")

        for chunk in self.left.run_batches(ctx):
            keys = self._batch_key_rows(
                [kernel(chunk, ctx) for kernel in self.batch_left_keys]
            )
            left_rows = chunk.rows()
            if residual_kernel is not None:
                buckets = [
                    build_get(key) if key is not None else None
                    for key in keys
                ]
                left_gather = [
                    left_rows[position]
                    for position, bucket in enumerate(buckets)
                    if bucket is not None
                    for _ in bucket
                ]
                right_gather = [
                    right_rows[index]
                    for bucket in buckets
                    if bucket is not None
                    for index in bucket
                ]
                verdicts = (
                    residual_kernel(
                        _PairChunk(
                            left_gather, right_gather, len(null_left), width
                        ),
                        ctx,
                    )
                    if left_gather
                    else []
                )
                out = [
                    left + right
                    for left, right, verdict in zip(
                        left_gather, right_gather, verdicts
                    )
                    if verdict is True
                ]
                if right_matched is not None:
                    cursor = 0
                    for bucket in buckets:
                        if bucket is not None:
                            for index in bucket:
                                if verdicts[cursor] is True:
                                    right_matched[index] = 1
                                cursor += 1
                if preserve_left:
                    # Candidates are probe-major, so each probe row owns
                    # one contiguous verdict segment; ``True in seg`` is
                    # a C-level scan.
                    cursor = 0
                    unmatched = []
                    for position, bucket in enumerate(buckets):
                        if bucket is None:
                            unmatched.append(left_rows[position])
                            continue
                        step = cursor + len(bucket)
                        if True not in verdicts[cursor:step]:
                            unmatched.append(left_rows[position])
                        cursor = step
                    out.extend(row + null_right for row in unmatched)
            else:
                out = []
                append = out.append
                for left_row, key in zip(left_rows, keys):
                    matched = False
                    if key is not None:
                        bucket = build_get(key)
                        if bucket is not None:
                            for index in bucket:
                                combined = left_row + right_rows[index]
                                if residual(combined, ctx) is True:
                                    matched = True
                                    if right_matched is not None:
                                        right_matched[index] = 1
                                    append(combined)
                    if not matched and preserve_left:
                        append(left_row + null_right)
            if out:
                yield from chunk_rows(out, width, batch_size)
        if right_matched is not None:
            leftovers = [
                null_left + right_rows[index]
                for index in range(len(right_rows))
                if not right_matched[index]
            ]
            if leftovers:
                yield from chunk_rows(leftovers, width, batch_size)


class HashAggregate(PlanNode):
    """Grouped aggregation.

    Output rows are ``group_values + aggregate_results``.  With no grouping
    columns a single group exists even for empty input (SQL grand
    aggregate), producing count=0 / sum=NULL defaults — the behaviour the
    paper's Fig. 11 footnote 4 relies on.
    """

    def __init__(
        self,
        child: PlanNode,
        group_exprs: list[Scalar],
        agg_factories: list[Callable[[], AggState]],
        agg_arg_exprs: list[Optional[Scalar]],
        output_names: list[str],
        arg_slots: Optional[list[Optional[int]]] = None,
        unique_args: Optional[list[Scalar]] = None,
        batch_group_exprs: Optional[list[BatchExpr]] = None,
        batch_unique_args: Optional[list[BatchExpr]] = None,
    ) -> None:
        self.child = child
        self.group_exprs = group_exprs
        self.agg_factories = agg_factories
        self.agg_arg_exprs = agg_arg_exprs
        self.batch_group_exprs = batch_group_exprs
        self.batch_unique_args = batch_unique_args
        # Argument-evaluation sharing (``sum(x)`` + ``avg(x)`` read one
        # evaluation of ``x`` per row): ``unique_args`` are the distinct
        # compiled argument expressions, ``arg_slots[i]`` the index each
        # aggregate state reads (None = no argument, e.g. count(*)).
        if arg_slots is None:
            arg_slots = []
            unique_args = []
            for fn in agg_arg_exprs:
                if fn is None:
                    arg_slots.append(None)
                else:
                    arg_slots.append(len(unique_args))
                    unique_args.append(fn)
        self.arg_slots = arg_slots
        self.unique_args = unique_args or []
        self.output_names = output_names
        self.estimate = max(child.estimate * 0.1, 1.0)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"HashAggregate ({len(self.group_exprs)} keys, {len(self.agg_factories)} aggs)"

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        group_exprs = self.group_exprs
        factories = self.agg_factories
        unique_args = self.unique_args
        arg_slots = self.arg_slots
        agg_count = len(factories)
        single_group = group_exprs[0] if len(group_exprs) == 1 else None
        single_arg = (
            unique_args[0]
            if agg_count == 1 and arg_slots and arg_slots[0] == 0
            else None
        )
        groups: dict[tuple, list[AggState]] = {}
        groups_get = groups.get
        order: list[tuple] = []
        for row in self.child.run(ctx):
            if single_group is not None:
                key = (single_group(row, ctx),)
            else:
                key = tuple(fn(row, ctx) for fn in group_exprs)
            states = groups_get(key)
            if states is None:
                states = [factory() for factory in factories]
                groups[key] = states
                order.append(key)
            if single_arg is not None:
                states[0].add(single_arg(row, ctx))
            else:
                values = [fn(row, ctx) for fn in unique_args]
                for i in range(agg_count):
                    slot = arg_slots[i]
                    states[i].add(values[slot] if slot is not None else None)
        if not groups and not group_exprs:
            states = [factory() for factory in factories]
            yield tuple(state.result() for state in states)
            return
        for key in order:
            yield key + tuple(state.result() for state in groups[key])

    # -- batch protocol -----------------------------------------------------

    def run_batches(self, ctx: ExecContext) -> Iterator[Chunk]:
        if self.batch_group_exprs is None or self.batch_unique_args is None:
            yield from PlanNode.run_batches(self, ctx)
            return
        groups, order, grand_states = self._accumulate_batches(ctx)
        yield from self._emit_batches(groups, order, grand_states, ctx)

    def _accumulate_batches(
        self, ctx: ExecContext
    ) -> tuple[dict[tuple, list[AggState]], list[tuple], Optional[list[AggState]]]:
        """Drain the child and build per-group accumulator states.

        Split out of :meth:`run_batches` so a morsel-parallel exchange
        can run the accumulation once per worker (each restricted to its
        morsel range via the context) and merge the partial states —
        returns ``(groups, first-encounter key order, grand states)``.
        """
        factories = self.agg_factories
        arg_slots = self.arg_slots
        group_kernels = self.batch_group_exprs
        arg_kernels = self.batch_unique_args
        state_slots = list(zip(range(len(factories)), arg_slots))
        groups: dict[tuple, list[AggState]] = {}
        groups_get = groups.get
        order: list[tuple] = []

        grand_states: Optional[list[AggState]] = None
        for chunk in self.child.run_batches(ctx):
            n = len(chunk)
            if n == 0:
                continue
            arg_columns = [kernel(chunk, ctx) for kernel in arg_kernels]
            if not group_kernels:
                # Grand aggregate: every aggregate consumes whole column
                # slices (C-level folds in the hot accumulators).
                if grand_states is None:
                    grand_states = [factory() for factory in factories]
                for index, slot in state_slots:
                    if slot is None:
                        grand_states[index].add_count(n)
                    else:
                        grand_states[index].add_many(arg_columns[slot])
                continue
            group_columns = [kernel(chunk, ctx) for kernel in group_kernels]
            if len(group_columns) == 1:
                keys: Sequence[tuple] = [(v,) for v in group_columns[0]]
            else:
                keys = list(zip(*group_columns))
            # Two-pass: partition the chunk's row positions by key, then
            # feed each group's slice of every argument column at once.
            partitions: dict[tuple, list[int]] = {}
            partitions_get = partitions.get
            for position, key in enumerate(keys):
                bucket = partitions_get(key)
                if bucket is None:
                    partitions[key] = [position]
                else:
                    bucket.append(position)
            for key, positions in partitions.items():
                states = groups_get(key)
                if states is None:
                    states = [factory() for factory in factories]
                    groups[key] = states
                    order.append(key)
                count = len(positions)
                # Gather each unique argument slot once per group; every
                # aggregate reading that slot (sum(x) + avg(x)) shares
                # the slice, mirroring the row engine's arg sharing.
                gathered: dict[int, list] = {}
                for index, slot in state_slots:
                    if slot is None:
                        states[index].add_count(count)
                        continue
                    values = gathered.get(slot)
                    if values is None:
                        column = arg_columns[slot]
                        values = [column[i] for i in positions]
                        gathered[slot] = values
                    states[index].add_many(values)
        return groups, order, grand_states

    def _emit_batches(
        self,
        groups: dict[tuple, list[AggState]],
        order: list[tuple],
        grand_states: Optional[list[AggState]],
        ctx: ExecContext,
    ) -> Iterator[Chunk]:
        """Finalize accumulated states into output chunks."""
        factories = self.agg_factories
        width = self.width()
        if grand_states is not None:
            yield Chunk.from_rows(
                [tuple(state.result() for state in grand_states)], width
            )
            return
        if not groups and not self.group_exprs:
            states = [factory() for factory in factories]
            yield Chunk.from_rows(
                [tuple(state.result() for state in states)], width
            )
            return
        out = [
            key + tuple(state.result() for state in groups[key]) for key in order
        ]
        yield from chunk_rows(out, width, ctx.batch_size)


class SortNode(PlanNode):
    """Sort on output slots.  ``specs``: (slot, descending, nulls_first)."""

    def __init__(self, child: PlanNode, specs: list[tuple[int, bool, Optional[bool]]]) -> None:
        self.child = child
        self.specs = specs
        self.output_names = list(child.output_names)
        self.estimate = child.estimate

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        yield from self._sorted_rows(list(self.child.run(ctx)))

    def run_batches(self, ctx: ExecContext) -> Iterator[Chunk]:
        rows = [
            row for chunk in self.child.run_batches(ctx) for row in chunk.rows()
        ]
        yield from chunk_rows(self._sorted_rows(rows), self.width(), ctx.batch_size)

    def _sorted_rows(self, rows: list[Row]) -> list[Row]:
        # Stable sort from the last key to the first gives multi-key order.
        for slot, descending, nulls_first in reversed(self.specs):
            rows.sort(
                key=self._make_key(slot, descending, nulls_first),
                reverse=descending,
            )
        return rows

    @staticmethod
    def _make_key(slot: int, descending: bool, nulls_first: Optional[bool]):
        # SQL defaults: NULLS LAST for ASC, NULLS FIRST for DESC.  Ranking
        # nulls high (rank 1) realizes both defaults because reverse=True
        # flips the rank order.  Explicit NULLS FIRST/LAST picks the rank
        # that lands nulls on the requested side after the optional flip.
        if nulls_first is None:
            null_rank = 1
        else:
            null_rank = 1 if nulls_first == descending else 0
        non_null_rank = 1 - null_rank

        def key(row: Row):
            value = row[slot]
            if value is None:
                return (null_rank, 0)
            return (non_null_rank, value)

        return key


class LimitNode(PlanNode):
    def __init__(self, child: PlanNode, count: Optional[int], offset: int = 0) -> None:
        self.child = child
        self.count = count
        self.offset = offset
        self.output_names = list(child.output_names)
        self.estimate = min(child.estimate, count if count is not None else child.estimate)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        skipped = 0
        emitted = 0
        for row in self.child.run(ctx):
            if skipped < self.offset:
                skipped += 1
                continue
            if self.count is not None and emitted >= self.count:
                return
            emitted += 1
            yield row

    def run_batches(self, ctx: ExecContext) -> Iterator[Chunk]:
        to_skip = self.offset
        remaining = self.count
        for chunk in self.child.run_batches(ctx):
            n = len(chunk)
            if to_skip:
                if n <= to_skip:
                    to_skip -= n
                    continue
                chunk = chunk.slice(to_skip, None)
                n = len(chunk)
                to_skip = 0
            if remaining is not None:
                if remaining <= 0:
                    return
                if n > remaining:
                    chunk = chunk.slice(0, remaining)
                    n = remaining
                remaining -= n
            if n:
                yield chunk


class DistinctNode(PlanNode):
    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.output_names = list(child.output_names)
        self.estimate = max(child.estimate * 0.5, 1.0)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        seen: set = set()
        for row in self.child.run(ctx):
            if row not in seen:
                seen.add(row)
                yield row

    def run_batches(self, ctx: ExecContext) -> Iterator[Chunk]:
        seen: set = set()
        add = seen.add
        width = self.width()
        for chunk in self.child.run_batches(ctx):
            fresh: list[Row] = []
            append = fresh.append
            for row in chunk.rows():
                if row not in seen:
                    add(row)
                    append(row)
            if fresh:
                yield Chunk.from_rows(fresh, width)


class SetOpPlanNode(PlanNode):
    """UNION / INTERSECT / EXCEPT with ALL and DISTINCT variants.

    Implements the bag-operator definitions of the Perm algebra
    (paper Fig. 1a/1b) directly with counters.
    """

    def __init__(self, op: str, all_flag: bool, left: PlanNode, right: PlanNode) -> None:
        if left.width() != right.width():
            raise ExecutionError("set operation inputs differ in width")
        self.op = op
        self.all = all_flag
        self.left = left
        self.right = right
        self.output_names = list(left.output_names)
        self.estimate = left.estimate + right.estimate

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return f"SetOp ({self.op}{' all' if self.all else ''})"

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        if self.op == "union":
            if self.all:
                yield from self.left.run(ctx)
                yield from self.right.run(ctx)
                return
            seen: set = set()
            for source in (self.left, self.right):
                for row in source.run(ctx):
                    if row not in seen:
                        seen.add(row)
                        yield row
            return
        if self.op == "intersect":
            right_counts = Counter(self.right.run(ctx))
            if self.all:
                remaining = dict(right_counts)
                for row in self.left.run(ctx):
                    count = remaining.get(row, 0)
                    if count > 0:
                        remaining[row] = count - 1
                        yield row
                return
            emitted: set = set()
            for row in self.left.run(ctx):
                if row in right_counts and row not in emitted:
                    emitted.add(row)
                    yield row
            return
        if self.op == "except":
            right_counts = Counter(self.right.run(ctx))
            if self.all:
                remaining = dict(right_counts)
                for row in self.left.run(ctx):
                    count = remaining.get(row, 0)
                    if count > 0:
                        remaining[row] = count - 1
                        continue
                    yield row
                return
            emitted = set()
            for row in self.left.run(ctx):
                if row not in right_counts and row not in emitted:
                    emitted.add(row)
                    yield row
            return
        raise ExecutionError(f"unknown set operation {self.op!r}")

    def run_batches(self, ctx: ExecContext) -> Iterator[Chunk]:
        width = self.width()
        if self.op == "union":
            if self.all:
                yield from self.left.run_batches(ctx)
                yield from self.right.run_batches(ctx)
                return
            seen: set = set()
            add = seen.add
            for source in (self.left, self.right):
                for chunk in source.run_batches(ctx):
                    fresh: list[Row] = []
                    for row in chunk.rows():
                        if row not in seen:
                            add(row)
                            fresh.append(row)
                    if fresh:
                        yield Chunk.from_rows(fresh, width)
            return
        right_counts = Counter(
            row for chunk in self.right.run_batches(ctx) for row in chunk.rows()
        )
        if self.op == "intersect":
            if self.all:
                remaining = dict(right_counts)
                for chunk in self.left.run_batches(ctx):
                    out: list[Row] = []
                    for row in chunk.rows():
                        count = remaining.get(row, 0)
                        if count > 0:
                            remaining[row] = count - 1
                            out.append(row)
                    if out:
                        yield Chunk.from_rows(out, width)
                return
            emitted: set = set()
            for chunk in self.left.run_batches(ctx):
                out = []
                for row in chunk.rows():
                    if row in right_counts and row not in emitted:
                        emitted.add(row)
                        out.append(row)
                if out:
                    yield Chunk.from_rows(out, width)
            return
        if self.op == "except":
            if self.all:
                remaining = dict(right_counts)
                for chunk in self.left.run_batches(ctx):
                    out = []
                    for row in chunk.rows():
                        count = remaining.get(row, 0)
                        if count > 0:
                            remaining[row] = count - 1
                            continue
                        out.append(row)
                    if out:
                        yield Chunk.from_rows(out, width)
                return
            emitted = set()
            for chunk in self.left.run_batches(ctx):
                out = []
                for row in chunk.rows():
                    if row not in right_counts and row not in emitted:
                        emitted.add(row)
                        out.append(row)
                if out:
                    yield Chunk.from_rows(out, width)
            return
        raise ExecutionError(f"unknown set operation {self.op!r}")


class MaterializeNode(PlanNode):
    """Caches child output; used when a subplan is executed repeatedly.

    The spool lives in ``ctx.caches`` (keyed by the node), not on the
    plan object: within one execution every consumer shares one
    materialization, while a prepared plan re-run on a fresh context
    re-reads live table data.
    """

    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.output_names = list(child.output_names)
        self.estimate = child.estimate

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        cache = ctx.caches.get(self)
        if cache is None:
            chunks = ctx.caches.get((self, "chunks"))
            if chunks is not None:
                # A batched consumer already spooled the child; reuse it.
                cache = [row for chunk in chunks for row in chunk.rows()]
            else:
                cache = list(self.child.run(ctx))
            ctx.caches[self] = cache
        return iter(cache)

    def run_batches(self, ctx: ExecContext) -> Iterator[Chunk]:
        chunks = ctx.caches.get((self, "chunks"))
        if chunks is None:
            rows = ctx.caches.get(self)
            if rows is not None:
                chunks = list(chunk_rows(rows, self.width(), ctx.batch_size))
            else:
                chunks = [
                    chunk.compact() for chunk in self.child.run_batches(ctx)
                ]
            ctx.caches[(self, "chunks")] = chunks
        return iter(chunks)
