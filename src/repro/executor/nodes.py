"""Physical plan nodes.

Each node implements ``run(ctx) -> Iterator[tuple]`` (volcano-style, with
materialization where the algorithm requires it: hash builds, sorts,
aggregation).  Nodes carry ``output_names`` for EXPLAIN and result schema
construction, and an ``estimate`` used by the planner's greedy join
ordering.

Join semantics notes:

* hash/nested-loop joins implement SQL semantics: NULL join keys never
  match, but unmatched rows still appear null-extended in outer joins;
* set operations implement bag semantics via counters (UNION/INTERSECT/
  EXCEPT ALL) and sets (DISTINCT variants), matching the Perm algebra
  definitions in paper Fig. 1b.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Callable, Iterator, Optional, Sequence

from repro.errors import ExecutionError
from repro.executor.aggregates import AggState
from repro.executor.context import ExecContext
from repro.storage.table import Table

Row = tuple
Predicate = Callable[[Row, ExecContext], Any]
Scalar = Callable[[Row, ExecContext], Any]


def make_row_getter(indexes: list[int]) -> Callable[[Row], Row]:
    """A ``row -> tuple`` rearranger for the given positions (itemgetter
    with the 0/1-arity cases normalized to always return a tuple)."""
    if len(indexes) == 1:
        index = indexes[0]
        return lambda row: (row[index],)
    if not indexes:
        return lambda row: ()
    import operator

    return operator.itemgetter(*indexes)


class PlanNode:
    """Base class for physical plan nodes."""

    output_names: list[str]
    estimate: float

    def run(self, ctx: ExecContext) -> Iterator[Row]:  # pragma: no cover
        raise NotImplementedError

    def children(self) -> list["PlanNode"]:
        return []

    def label(self) -> str:
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        lines = ["  " * indent + f"-> {self.label()}"]
        lines += [child.explain(indent + 1) for child in self.children()]
        return "\n".join(lines)

    def width(self) -> int:
        return len(self.output_names)


class SeqScan(PlanNode):
    """Full scan of a heap table, optionally filtered and column-narrowed.

    ``columns`` (when set) lists the heap attribute numbers to emit, in
    output order — the physical realization of the optimizer's projection
    pruning.  Predicates always evaluate against the emitted (narrow)
    row layout.
    """

    def __init__(
        self,
        table: Table,
        output_names: list[str],
        predicate: Optional[Predicate] = None,
        columns: Optional[list[int]] = None,
    ) -> None:
        self.table = table
        self.output_names = output_names
        self.predicate = predicate
        self.columns = columns
        rows = table.row_count()
        self.estimate = max(rows * (0.25 if predicate else 1.0), 1.0)

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        rows = self.table.raw_rows()
        predicate = self.predicate
        if self.columns is None:
            if predicate is None:
                yield from rows
            else:
                for row in rows:
                    if predicate(row, ctx) is True:
                        yield row
            return
        getter = make_row_getter(self.columns)
        if predicate is None:
            for row in rows:
                yield getter(row)
        else:
            for row in rows:
                narrow = getter(row)
                if predicate(narrow, ctx) is True:
                    yield narrow

    def label(self) -> str:
        suffix = " (filtered)" if self.predicate else ""
        if self.columns is not None:
            suffix += f" [{len(self.columns)} cols]"
        return f"SeqScan on {self.table.name}{suffix}"


class OneRow(PlanNode):
    """Produces a single empty row; basis for FROM-less selects."""

    def __init__(self) -> None:
        self.output_names = []
        self.estimate = 1.0

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        yield ()


class ValuesNode(PlanNode):
    """A constant list of rows (INSERT ... VALUES and tests)."""

    def __init__(self, rows: list[Row], output_names: list[str]) -> None:
        self.rows = rows
        self.output_names = output_names
        self.estimate = max(len(rows), 1)

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        yield from self.rows


class FilterNode(PlanNode):
    def __init__(self, child: PlanNode, predicate: Predicate) -> None:
        self.child = child
        self.predicate = predicate
        self.output_names = list(child.output_names)
        self.estimate = max(child.estimate * 0.25, 1.0)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        predicate = self.predicate
        for row in self.child.run(ctx):
            if predicate(row, ctx) is True:
                yield row


class ProjectNode(PlanNode):
    """Expression projection.

    ``slots`` (optional, parallel to ``exprs``) marks positions that are
    plain input-slot reads; the per-row emitter is code-generated into a
    single lambda with slot reads inlined, so a wide provenance target
    list costs one call per row instead of one per column.
    """

    def __init__(
        self,
        child: PlanNode,
        exprs: list[Scalar],
        output_names: list[str],
        slots: Optional[list[Optional[int]]] = None,
    ) -> None:
        self.child = child
        self.exprs = exprs
        self.output_names = output_names
        self.slots = slots
        self.estimate = child.estimate
        self._emit = self._build_emitter()

    def _build_emitter(self):
        slots = self.slots if self.slots is not None else [None] * len(self.exprs)
        parts: list[str] = []
        env: dict[str, Any] = {}
        for index, (fn, slot) in enumerate(zip(self.exprs, slots)):
            if slot is not None:
                parts.append(f"row[{int(slot)}]")
            else:
                env[f"_f{index}"] = fn
                parts.append(f"_f{index}(row, ctx)")
        if not parts:
            return lambda row, ctx: ()
        body = ", ".join(parts)
        return eval(f"lambda row, ctx: ({body},)", env)  # generated slots/calls only

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        emit = self._emit
        for row in self.child.run(ctx):
            yield emit(row, ctx)


class SliceNode(PlanNode):
    """Re-emits a positional selection of columns (any order, duplicates
    allowed): junk-column removal and Var-only projections.

    Unlike :class:`ProjectNode` this evaluates no expressions — the row is
    rearranged with a C-level ``itemgetter``, which is what makes the
    optimizer's pulled-up trees cheap (their projections are plain column
    references).
    """

    def __init__(self, child: PlanNode, keep: list[int], output_names: list[str]) -> None:
        self.child = child
        self.keep = keep
        self.output_names = output_names
        self.estimate = child.estimate

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        getter = make_row_getter(self.keep)
        for row in self.child.run(ctx):
            yield getter(row)


class NestedLoopJoin(PlanNode):
    """General join for arbitrary conditions; right side is materialized."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        join_type: str,
        condition: Optional[Predicate],
    ) -> None:
        self.left = left
        self.right = right
        self.join_type = join_type
        self.condition = condition
        self.output_names = list(left.output_names) + list(right.output_names)
        selectivity = 0.1 if condition else 1.0
        self.estimate = max(left.estimate * right.estimate * selectivity, 1.0)

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return f"NestedLoopJoin ({self.join_type})"

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        right_rows = list(self.right.run(ctx))
        condition = self.condition
        join_type = self.join_type
        left_width = self.left.width()
        right_width = self.right.width()
        null_left = (None,) * left_width
        null_right = (None,) * right_width

        if condition is None and join_type in ("inner", "left", "cross"):
            # Unconditional cross product (the shape the provenance
            # rewrite's scalar-sublink joins fold to): no per-pair checks.
            if right_rows:
                for left_row in self.left.run(ctx):
                    for right_row in right_rows:
                        yield left_row + right_row
            elif join_type == "left":
                for left_row in self.left.run(ctx):
                    yield left_row + null_right
            return

        right_matched = [False] * len(right_rows) if join_type in ("right", "full") else None

        for left_row in self.left.run(ctx):
            matched = False
            for i, right_row in enumerate(right_rows):
                combined = left_row + right_row
                if condition is None or condition(combined, ctx) is True:
                    matched = True
                    if right_matched is not None:
                        right_matched[i] = True
                    yield combined
            if not matched and join_type in ("left", "full"):
                yield left_row + null_right
        if right_matched is not None:
            for i, right_row in enumerate(right_rows):
                if not right_matched[i]:
                    yield null_left + right_row


class _NullKey:
    """Hashable stand-in letting null-safe keys match NULL with NULL."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<NULL>"


NULL_KEY = _NullKey()


class HashJoin(PlanNode):
    """Equi-join on hashed keys with optional residual condition.

    The build side is the right input.  For plain ``=`` keys, NULL never
    matches; keys flagged null-safe (the rewriter's ``<=>`` joins) match
    NULL with NULL.  Unmatched rows are preserved for outer-join null
    extension either way.
    """

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        join_type: str,
        left_keys: list[Scalar],
        right_keys: list[Scalar],
        residual: Optional[Predicate] = None,
        null_safe: Optional[list[bool]] = None,
    ) -> None:
        if not left_keys or len(left_keys) != len(right_keys):
            raise ExecutionError("hash join requires matching key lists")
        self.left = left
        self.right = right
        self.join_type = join_type
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.null_safe = null_safe or [False] * len(left_keys)
        self.output_names = list(left.output_names) + list(right.output_names)
        self.estimate = max(left.estimate, right.estimate)

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return f"HashJoin ({self.join_type}, {len(self.left_keys)} keys)"

    def _key_builder(self, fns: list[Scalar]):
        """A specialized ``row, ctx -> key | None`` closure.

        Returns None when a non-null-safe key column is NULL (such rows
        can never match).  Specialized per arity/null-safety because key
        construction runs once per input row on both join sides.
        """
        null_safe = self.null_safe
        if len(fns) == 1:
            fn = fns[0]
            if null_safe[0]:

                def build_one_safe(row: Row, ctx: ExecContext):
                    value = fn(row, ctx)
                    return (NULL_KEY,) if value is None else (value,)

                return build_one_safe

            def build_one(row: Row, ctx: ExecContext):
                value = fn(row, ctx)
                return None if value is None else (value,)

            return build_one
        pairs = list(zip(fns, null_safe))

        def build_many(row: Row, ctx: ExecContext) -> Optional[tuple]:
            values = []
            for fn, safe in pairs:
                value = fn(row, ctx)
                if value is None:
                    if not safe:
                        return None
                    value = NULL_KEY
                values.append(value)
            return tuple(values)

        return build_many

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        join_type = self.join_type
        residual = self.residual
        null_left = (None,) * self.left.width()
        null_right = (None,) * self.right.width()
        build_key = self._key_builder(self.right_keys)
        probe_key = self._key_builder(self.left_keys)

        build: dict[tuple, list[tuple[int, Row]]] = defaultdict(list)
        right_rows: list[Row] = []
        for row in self.right.run(ctx):
            index = len(right_rows)
            right_rows.append(row)
            key = build_key(row, ctx)
            if key is not None:
                build[key].append((index, row))
        right_matched = (
            [False] * len(right_rows) if join_type in ("right", "full") else None
        )
        build_get = build.get
        preserve_left = join_type in ("left", "full")

        for left_row in self.left.run(ctx):
            key = probe_key(left_row, ctx)
            matched = False
            if key is not None:
                bucket = build_get(key)
                if bucket is not None:
                    for index, right_row in bucket:
                        combined = left_row + right_row
                        if residual is None or residual(combined, ctx) is True:
                            matched = True
                            if right_matched is not None:
                                right_matched[index] = True
                            yield combined
            if not matched and preserve_left:
                yield left_row + null_right
        if right_matched is not None:
            for index, right_row in enumerate(right_rows):
                if not right_matched[index]:
                    yield null_left + right_row


class HashAggregate(PlanNode):
    """Grouped aggregation.

    Output rows are ``group_values + aggregate_results``.  With no grouping
    columns a single group exists even for empty input (SQL grand
    aggregate), producing count=0 / sum=NULL defaults — the behaviour the
    paper's Fig. 11 footnote 4 relies on.
    """

    def __init__(
        self,
        child: PlanNode,
        group_exprs: list[Scalar],
        agg_factories: list[Callable[[], AggState]],
        agg_arg_exprs: list[Optional[Scalar]],
        output_names: list[str],
        arg_slots: Optional[list[Optional[int]]] = None,
        unique_args: Optional[list[Scalar]] = None,
    ) -> None:
        self.child = child
        self.group_exprs = group_exprs
        self.agg_factories = agg_factories
        self.agg_arg_exprs = agg_arg_exprs
        # Argument-evaluation sharing (``sum(x)`` + ``avg(x)`` read one
        # evaluation of ``x`` per row): ``unique_args`` are the distinct
        # compiled argument expressions, ``arg_slots[i]`` the index each
        # aggregate state reads (None = no argument, e.g. count(*)).
        if arg_slots is None:
            arg_slots = []
            unique_args = []
            for fn in agg_arg_exprs:
                if fn is None:
                    arg_slots.append(None)
                else:
                    arg_slots.append(len(unique_args))
                    unique_args.append(fn)
        self.arg_slots = arg_slots
        self.unique_args = unique_args or []
        self.output_names = output_names
        self.estimate = max(child.estimate * 0.1, 1.0)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        return f"HashAggregate ({len(self.group_exprs)} keys, {len(self.agg_factories)} aggs)"

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        group_exprs = self.group_exprs
        factories = self.agg_factories
        unique_args = self.unique_args
        arg_slots = self.arg_slots
        agg_count = len(factories)
        single_group = group_exprs[0] if len(group_exprs) == 1 else None
        single_arg = (
            unique_args[0]
            if agg_count == 1 and arg_slots and arg_slots[0] == 0
            else None
        )
        groups: dict[tuple, list[AggState]] = {}
        groups_get = groups.get
        order: list[tuple] = []
        for row in self.child.run(ctx):
            if single_group is not None:
                key = (single_group(row, ctx),)
            else:
                key = tuple(fn(row, ctx) for fn in group_exprs)
            states = groups_get(key)
            if states is None:
                states = [factory() for factory in factories]
                groups[key] = states
                order.append(key)
            if single_arg is not None:
                states[0].add(single_arg(row, ctx))
            else:
                values = [fn(row, ctx) for fn in unique_args]
                for i in range(agg_count):
                    slot = arg_slots[i]
                    states[i].add(values[slot] if slot is not None else None)
        if not groups and not group_exprs:
            states = [factory() for factory in factories]
            yield tuple(state.result() for state in states)
            return
        for key in order:
            yield key + tuple(state.result() for state in groups[key])


class SortNode(PlanNode):
    """Sort on output slots.  ``specs``: (slot, descending, nulls_first)."""

    def __init__(self, child: PlanNode, specs: list[tuple[int, bool, Optional[bool]]]) -> None:
        self.child = child
        self.specs = specs
        self.output_names = list(child.output_names)
        self.estimate = child.estimate

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        rows = list(self.child.run(ctx))
        # Stable sort from the last key to the first gives multi-key order.
        for slot, descending, nulls_first in reversed(self.specs):
            rows.sort(
                key=self._make_key(slot, descending, nulls_first),
                reverse=descending,
            )
        yield from rows

    @staticmethod
    def _make_key(slot: int, descending: bool, nulls_first: Optional[bool]):
        # SQL defaults: NULLS LAST for ASC, NULLS FIRST for DESC.  Ranking
        # nulls high (rank 1) realizes both defaults because reverse=True
        # flips the rank order.  Explicit NULLS FIRST/LAST picks the rank
        # that lands nulls on the requested side after the optional flip.
        if nulls_first is None:
            null_rank = 1
        else:
            null_rank = 1 if nulls_first == descending else 0
        non_null_rank = 1 - null_rank

        def key(row: Row):
            value = row[slot]
            if value is None:
                return (null_rank, 0)
            return (non_null_rank, value)

        return key


class LimitNode(PlanNode):
    def __init__(self, child: PlanNode, count: Optional[int], offset: int = 0) -> None:
        self.child = child
        self.count = count
        self.offset = offset
        self.output_names = list(child.output_names)
        self.estimate = min(child.estimate, count if count is not None else child.estimate)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        skipped = 0
        emitted = 0
        for row in self.child.run(ctx):
            if skipped < self.offset:
                skipped += 1
                continue
            if self.count is not None and emitted >= self.count:
                return
            emitted += 1
            yield row


class DistinctNode(PlanNode):
    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.output_names = list(child.output_names)
        self.estimate = max(child.estimate * 0.5, 1.0)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        seen: set = set()
        for row in self.child.run(ctx):
            if row not in seen:
                seen.add(row)
                yield row


class SetOpPlanNode(PlanNode):
    """UNION / INTERSECT / EXCEPT with ALL and DISTINCT variants.

    Implements the bag-operator definitions of the Perm algebra
    (paper Fig. 1a/1b) directly with counters.
    """

    def __init__(self, op: str, all_flag: bool, left: PlanNode, right: PlanNode) -> None:
        if left.width() != right.width():
            raise ExecutionError("set operation inputs differ in width")
        self.op = op
        self.all = all_flag
        self.left = left
        self.right = right
        self.output_names = list(left.output_names)
        self.estimate = left.estimate + right.estimate

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return f"SetOp ({self.op}{' all' if self.all else ''})"

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        if self.op == "union":
            if self.all:
                yield from self.left.run(ctx)
                yield from self.right.run(ctx)
                return
            seen: set = set()
            for source in (self.left, self.right):
                for row in source.run(ctx):
                    if row not in seen:
                        seen.add(row)
                        yield row
            return
        if self.op == "intersect":
            right_counts = Counter(self.right.run(ctx))
            if self.all:
                remaining = dict(right_counts)
                for row in self.left.run(ctx):
                    count = remaining.get(row, 0)
                    if count > 0:
                        remaining[row] = count - 1
                        yield row
                return
            emitted: set = set()
            for row in self.left.run(ctx):
                if row in right_counts and row not in emitted:
                    emitted.add(row)
                    yield row
            return
        if self.op == "except":
            right_counts = Counter(self.right.run(ctx))
            if self.all:
                remaining = dict(right_counts)
                for row in self.left.run(ctx):
                    count = remaining.get(row, 0)
                    if count > 0:
                        remaining[row] = count - 1
                        continue
                    yield row
                return
            emitted = set()
            for row in self.left.run(ctx):
                if row not in right_counts and row not in emitted:
                    emitted.add(row)
                    yield row
            return
        raise ExecutionError(f"unknown set operation {self.op!r}")


class MaterializeNode(PlanNode):
    """Caches child output; used when a subplan is executed repeatedly."""

    def __init__(self, child: PlanNode) -> None:
        self.child = child
        self.output_names = list(child.output_names)
        self.estimate = child.estimate
        self._cache: Optional[list[Row]] = None

    def children(self) -> list[PlanNode]:
        return [self.child]

    def run(self, ctx: ExecContext) -> Iterator[Row]:
        if self._cache is None:
            self._cache = list(self.child.run(ctx))
        return iter(self._cache)
