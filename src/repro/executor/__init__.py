"""Physical execution: compiled expressions and iterator plan nodes."""

from repro.executor.context import ExecContext
from repro.executor.nodes import PlanNode

__all__ = ["ExecContext", "PlanNode"]
