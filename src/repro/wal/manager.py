"""Glue between :class:`~repro.database.PermDatabase` and the WAL.

One :class:`Durability` instance per database owns the log, the
recovery pass at attach time, and the checkpoint protocol.  It also
owns the **commit lock**: the database wraps each durable statement's
``apply → append`` in it, and :meth:`checkpoint` takes it too, so a
snapshot always sits at a statement boundary — without the lock a
checkpoint could capture an applied-but-not-yet-logged statement whose
record then lands in the *next* segment and replays twice.

Reads never take the commit lock; the WAL is invisible to the read
hot path.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.faultinject import fault_point
from repro.wal.checkpoint import snapshot_catalog, write_checkpoint
from repro.wal.recovery import RecoveryReport, recover
from repro.wal.wal import WriteAheadLog, list_checkpoints, list_segments

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.database import PermDatabase

#: Auto-checkpoint after this many records in the active segment (the
#: database's ``wal_checkpoint_interval`` overrides; ``0`` disables).
DEFAULT_CHECKPOINT_INTERVAL = 1024


class Durability:
    """Recovery-at-open + statement logging + checkpoints for one db."""

    def __init__(
        self,
        db: "PermDatabase",
        directory,
        sync: str = "always",
        checkpoint_interval: Optional[int] = None,
    ) -> None:
        self.db = db
        self.directory = Path(directory)
        self.commit_lock = threading.RLock()
        self.checkpoint_interval = (
            DEFAULT_CHECKPOINT_INTERVAL
            if checkpoint_interval is None
            else checkpoint_interval
        )
        self.wal = WriteAheadLog(self.directory, sync=sync)
        self.report: Optional[RecoveryReport] = None
        self.checkpoints_taken = 0
        self._suspended = False

    # -- lifecycle -----------------------------------------------------------

    def attach(self) -> RecoveryReport:
        """Recover whatever the directory holds, then arm logging."""
        self._suspended = True
        try:
            self.report = recover(self.db, self.directory)
        finally:
            self._suspended = False
        self.wal.open_for_append(
            segment=self.report.tail_segment,
            lsn=self.report.last_lsn,
            records_in_segment=self.report.tail_records,
        )
        return self.report

    def close(self) -> None:
        self.wal.close()

    # -- the commit hook -----------------------------------------------------

    def log_statement(self, sql: str) -> None:
        """Append one committed statement (no-op during replay).

        The caller holds :attr:`commit_lock` (the database's execute
        loop takes it around apply+log for durable statements).
        """
        if self._suspended:
            return
        self.wal.append_statement(sql)
        if (
            self.checkpoint_interval
            and self.wal.records_in_segment >= self.checkpoint_interval
        ):
            self.checkpoint()

    @property
    def suspended(self) -> bool:
        return self._suspended

    # -- checkpoints ---------------------------------------------------------

    def checkpoint(self) -> int:
        """Snapshot the catalog, roll the WAL, drop obsolete files.

        Returns the new segment number.  Crash-safe at every point:
        until the atomic checkpoint rename the old checkpoint + full
        WAL reconstruct the state; after it the new checkpoint does,
        with or without its (possibly still missing) segment file.
        """
        with self.commit_lock, self.wal.lock:
            fault_point("wal.checkpoint.begin", segment=self.wal.segment)
            self.wal.sync()
            data = snapshot_catalog(self.db)
            new_segment = self.wal.segment + 1
            write_checkpoint(
                self.directory, new_segment, data, lsn=self.wal.lsn
            )
            self.wal.roll_segment(new_segment)
            self._remove_obsolete(new_segment)
            self.checkpoints_taken += 1
            fault_point("wal.checkpoint.done", segment=new_segment)
            return new_segment

    def _remove_obsolete(self, live_segment: int) -> None:
        for seg, path in list_segments(self.directory):
            if seg < live_segment:
                path.unlink(missing_ok=True)
        for seg, path in list_checkpoints(self.directory):
            if seg < live_segment:
                path.unlink(missing_ok=True)
        fault_point("wal.checkpoint.cleaned", segment=live_segment)

    # -- observability -------------------------------------------------------

    def status(self) -> dict:
        status = self.wal.status()
        status.update(
            checkpoint_interval=self.checkpoint_interval,
            checkpoints_taken=self.checkpoints_taken,
            last_recovery=None,
        )
        if self.report is not None:
            status["last_recovery"] = {
                "checkpoint_segment": self.report.checkpoint_segment,
                "statements_replayed": self.report.statements_replayed,
                "segments_replayed": self.report.segments_replayed,
                "torn_bytes_dropped": self.report.torn_bytes_dropped,
                "last_lsn": self.report.last_lsn,
            }
        return status


__all__ = ["Durability", "DEFAULT_CHECKPOINT_INTERVAL"]
