"""Durability: write-ahead logging, checkpoints, and crash recovery.

The engine's catalog is process memory; this package makes it survive
crashes.  The design is classic logical redo logging, shaped to the
repo's statement-level execution model:

* **Logical WAL** (:mod:`repro.wal.wal`, :mod:`repro.wal.format`) —
  every committed DML/DDL statement is appended to the active log
  segment as its canonical printed SQL (the printer is the log
  encoding), wrapped in a length-prefixed, CRC-checksummed frame.  A
  statement is *committed* when ``execute()`` returns: the in-memory
  apply happens first, then the append (+ fsync under the default
  ``sync="always"`` policy), so an acknowledged statement is durable
  and an unacknowledged one may be lost — never half of one.
* **Checkpoints** (:mod:`repro.wal.checkpoint`) — a full catalog
  snapshot (heaps, epochs, per-table delta logs, view and matview
  definitions, ANALYZE statistics) written atomically
  (tmp + fsync + rename), after which the WAL rolls to a fresh segment
  and obsolete files are removed.  Replay cost is bounded by the data
  since the last checkpoint, not the database's lifetime.
* **Recovery** (:mod:`repro.wal.recovery`) — load the newest valid
  checkpoint, replay the WAL suffix through the ordinary ``execute()``
  pipeline, and truncate any torn tail frame.  The recovered catalog
  is equivalent to replaying the durable statement prefix on an empty
  database: equal heaps, epochs, delta logs, statistics; materialized
  provenance views rebuild through their existing refresh path and
  resume incremental maintenance from the rehydrated delta logs.

Reads never touch this package: the WAL hook sits only on the
DML/DDL commit path, so the read hot path (and its benchmarks) is
byte-for-byte the in-memory engine.

Fault injection points (``repro.faultinject``) cover every crash
window — mid-frame torn writes, before/after fsync, checkpoint
interruption between snapshot, rename, roll and cleanup — and the
tests drive a crash-at-every-byte-boundary recovery matrix over them.
See ``docs/durability.md``.
"""

from repro.wal.manager import Durability
from repro.wal.recovery import RecoveryReport, recover
from repro.wal.wal import WriteAheadLog

__all__ = [
    "Durability",
    "RecoveryReport",
    "WriteAheadLog",
    "recover",
]
