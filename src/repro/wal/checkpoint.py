"""Checkpoints: an atomic full-catalog snapshot that truncates replay.

A checkpoint file (``checkpoint-<N>.ckpt``) holds the catalog state at
the *beginning* of WAL segment ``N``: recovery restores it and replays
only segments ``>= N``.  The file is written tmp + fsync + atomic
rename + directory fsync, with the payload CRC-checksummed, so at any
crash point the directory holds either the old checkpoint or the new
one — never a half-written one that recovery might trust.

What a snapshot captures, and why:

* **Tables** — schema, rows (tagged-JSON codec, shared with the wire
  protocol), ``epoch``, and the in-memory per-statement delta log
  (``delta_seq``/floor/retained deltas).  The delta log is state the
  matview maintenance layer resumes from; dropping it would silently
  force full refreshes after every restart.
* **Views / matviews** — their canonical printed ``CREATE`` statements,
  re-executed at restore.  Matview rows are *not* persisted: the
  re-executed ``CREATE`` rebuilds them through the existing
  full-refresh path, guaranteeing restored rows match the definition
  rather than trusting serialized derived state.
* **Statistics** — every stored :class:`TableStats`, exactly as held,
  including *lagging* ones.  Auto-ANALYZE triggers compare live heaps
  against these snapshots; persisting recollected (fresh) stats
  instead would make replayed DML re-ANALYZE at different points than
  the crashed process did, diverging plans and ``stats_epoch``.
* **Epochs** — ``catalog.epoch`` and ``stats_epoch`` are forced to
  their persisted values after restore so statement-cache keys line up.

Table ``uid``s are process-lifetime identities and deliberately not
persisted; a stats snapshot records whether its uid matched its table
at checkpoint time and is remapped to the table's fresh uid on restore
exactly when it did.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.catalog.schema import Column, TableSchema
from repro.codec import decode_row, decode_value, encode_row, encode_value
from repro.datatypes import SQLType
from repro.errors import WalError
from repro.faultinject import fault_point
from repro.storage.table import Table, TableDelta
from repro.wal.wal import checkpoint_path, fsync_directory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.database import PermDatabase

CHECKPOINT_MAGIC = b"PERMCKP1"
_CKP_HEADER = struct.Struct(">II")  # payload length, crc32(payload)

CHECKPOINT_VERSION = 1


# ---------------------------------------------------------------------------
# Snapshot / restore of the in-memory catalog
# ---------------------------------------------------------------------------


def snapshot_catalog(db: "PermDatabase") -> dict:
    """Serialize the full catalog state to a JSON-representable dict.

    The caller must hold the durability commit lock: the snapshot has to
    sit at a statement boundary or replaying the WAL suffix on top of it
    would double-apply the in-flight statement.
    """
    from repro.sql import ast
    from repro.sql.printer import format_statement

    catalog = db.catalog
    stats_entries = catalog.stats_entries()
    tables = []
    for table in catalog.tables():
        floor, deltas = table.delta_log_state()
        entry = {
            "name": table.schema.name,
            "columns": [
                {"name": col.name, "type": col.type.name}
                for col in table.schema.columns
            ],
            "primary_key": list(table.schema.primary_key),
            "epoch": table.epoch,
            "delta_seq": table.delta_seq,
            "delta_floor": floor,
            "rows": [encode_row(row) for row in table.raw_rows()],
            "deltas": [
                {
                    "seq": d.seq,
                    "command": d.command,
                    "inserted": [encode_row(r) for r in d.inserted],
                    "deleted": [encode_row(r) for r in d.deleted],
                }
                for d in deltas
            ],
        }
        stats = stats_entries.pop(table.name.lower(), None)
        if stats is not None:
            entry["stats"] = _encode_stats(stats, table)
        tables.append(entry)
    views = [
        format_statement(
            ast.CreateViewStmt(
                name=view.name,
                query=view.statement,
                provenance_attrs=tuple(view.provenance_attributes),
            )
        )
        for view in catalog.views()
    ]
    matviews = [
        format_statement(
            ast.CreateMatViewStmt(name=view.name, query=view.statement)
        )
        for view in catalog.matviews()
    ]
    return {
        "version": CHECKPOINT_VERSION,
        "catalog_epoch": catalog.epoch,
        "stats_epoch": catalog.stats_epoch,
        "tables": tables,
        "views": views,
        "matviews": matviews,
    }


def restore_catalog(db: "PermDatabase", data: dict) -> None:
    """Rebuild the catalog from a snapshot (inverse of
    :func:`snapshot_catalog`); the caller suspends WAL logging."""
    if data.get("version") != CHECKPOINT_VERSION:
        raise WalError(
            f"unsupported checkpoint version {data.get('version')!r}"
        )
    catalog = db.catalog
    stats_pending = []
    for entry in data["tables"]:
        try:
            columns = [
                Column(col["name"], SQLType[col["type"]])
                for col in entry["columns"]
            ]
        except KeyError as exc:
            raise WalError(f"checkpoint names unknown type {exc}") from None
        schema = TableSchema(
            entry["name"], columns, tuple(entry["primary_key"])
        )
        table = Table(schema)
        table.restore_state(
            rows=[decode_row(row) for row in entry["rows"]],
            epoch=entry["epoch"],
            delta_seq=entry["delta_seq"],
            delta_floor=entry["delta_floor"],
            deltas=[
                TableDelta(
                    seq=d["seq"],
                    command=d["command"],
                    inserted=tuple(decode_row(r) for r in d["inserted"]),
                    deleted=tuple(decode_row(r) for r in d["deleted"]),
                )
                for d in entry["deltas"]
            ],
        )
        catalog.install_table(table)
        if entry.get("stats") is not None:
            stats_pending.append((table, entry["stats"]))
    # Views before matviews: a matview definition may read a view.
    # Both re-execute their canonical CREATE through the ordinary
    # pipeline (matviews thereby re-materialize via full refresh);
    # logging is suspended, and the epochs both executions bump are
    # forced to the persisted values right after.
    for create_sql in data["views"]:
        db.execute(create_sql)
    for create_sql in data["matviews"]:
        db.execute(create_sql)
    for table, encoded in stats_pending:
        catalog.install_stats(table.name, _decode_stats(encoded, table))
    catalog.set_epochs(data["catalog_epoch"], data["stats_epoch"])


def _encode_stats(stats, table: Table) -> dict:
    return {
        "row_count": stats.row_count,
        "table_epoch": stats.table_epoch,
        "sampled_rows": stats.sampled_rows,
        # uids are process-lifetime; persist only whether the snapshot
        # was bound to this heap so restore can re-bind to the new uid.
        "uid_matches": stats.table_uid == table.uid,
        "columns": {
            name: {
                "ndv": col.ndv,
                "null_frac": col.null_frac,
                "min": encode_value(col.min_value),
                "max": encode_value(col.max_value),
                # Histogram bounds and MCV entries round-trip exactly so
                # replay plans (and re-ANALYZE decisions) match the
                # crashed process.
                "mcv": [
                    [encode_value(value), frac] for value, frac in col.mcv
                ],
                "hist": [encode_value(bound) for bound in col.histogram],
                "hist_frac": col.histogram_frac,
            }
            for name, col in stats.columns.items()
        },
    }


def _decode_stats(encoded: dict, table: Table):
    from repro.planner.stats import ColumnStats, TableStats

    return TableStats(
        table_name=table.schema.name,
        row_count=encoded["row_count"],
        columns={
            name: ColumnStats(
                ndv=col["ndv"],
                null_frac=col["null_frac"],
                min_value=decode_value(col["min"]),
                max_value=decode_value(col["max"]),
                mcv=tuple(
                    (decode_value(value), frac)
                    for value, frac in col.get("mcv", ())
                ),
                histogram=tuple(
                    decode_value(bound) for bound in col.get("hist", ())
                ),
                histogram_frac=col.get("hist_frac", 0.0),
            )
            for name, col in encoded["columns"].items()
        },
        table_uid=table.uid if encoded["uid_matches"] else -1,
        table_epoch=encoded["table_epoch"],
        sampled_rows=encoded.get("sampled_rows"),
    )


# ---------------------------------------------------------------------------
# Checkpoint files
# ---------------------------------------------------------------------------


def write_checkpoint(
    directory: Path, segment: int, data: dict, lsn: int
) -> Path:
    """Atomically persist a snapshot as ``checkpoint-<segment>.ckpt``."""
    data = dict(data)
    data["segment"] = segment
    data["lsn"] = lsn
    payload = json.dumps(data, separators=(",", ":")).encode("utf-8")
    body = (
        CHECKPOINT_MAGIC
        + _CKP_HEADER.pack(len(payload), zlib.crc32(payload))
        + payload
    )
    final = checkpoint_path(directory, segment)
    tmp = final.with_suffix(".tmp")
    fault_point("wal.checkpoint.write", segment=segment)
    with open(tmp, "wb") as fh:
        fh.write(body)
        fh.flush()
        os.fsync(fh.fileno())
    fault_point("wal.checkpoint.written", segment=segment)
    os.replace(tmp, final)
    fsync_directory(directory)
    fault_point("wal.checkpoint.renamed", segment=segment)
    return final


def read_checkpoint(path: Path) -> Optional[dict]:
    """Decode a checkpoint file; None when torn/corrupt (recovery then
    falls back to an older checkpoint or an empty catalog)."""
    try:
        body = path.read_bytes()
    except OSError:
        return None
    prefix = len(CHECKPOINT_MAGIC) + _CKP_HEADER.size
    if len(body) < prefix or body[: len(CHECKPOINT_MAGIC)] != CHECKPOINT_MAGIC:
        return None
    length, crc = _CKP_HEADER.unpack(body[len(CHECKPOINT_MAGIC) : prefix])
    payload = body[prefix : prefix + length]
    if len(payload) != length or zlib.crc32(payload) != crc:
        return None
    try:
        data = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None
