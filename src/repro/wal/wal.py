"""The append side of the write-ahead log.

One :class:`WriteAheadLog` owns a directory of numbered segment files
(``wal-00000001.log``, ...) and appends framed logical records to the
highest one.  Appends are serialized by an internal lock; the read hot
path never takes it because only the DML/DDL commit hook appends.

Sync policy (``sync=``) — syncs go through :data:`_datasync`
(``fdatasync`` where available):

* ``"always"`` (default) — sync after every record.  Commit
  acknowledgement implies durability; this is the mode the durability
  guarantees in ``docs/durability.md`` are stated for.
* ``"batch"`` — sync every :data:`BATCH_SYNC_RECORDS` records and
  at checkpoints/close.  A crash can lose the last unsynced tail of
  *acknowledged* statements, but recovery still sees a clean prefix.
* ``"never"`` — no explicit sync (tests and benchmarks of the framing
  overhead alone).

Fault points (see :mod:`repro.faultinject`): ``wal.append`` (torn
frames — only ``action.keep`` bytes of the frame reach the file before
the simulated crash), ``wal.fsync.before`` / ``wal.fsync.after``
(crash on either side of the durability boundary), and
``wal.segment.open``.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Optional

from repro.errors import WalError
from repro.faultinject import fault_point
from repro.wal.format import encode_record, segment_header

BATCH_SYNC_RECORDS = 64

SYNC_MODES = ("always", "batch", "never")

#: Data sync for appends: ``fdatasync`` where the platform has it —
#: it skips the mtime-only metadata commit ``fsync`` pays per call but
#: still persists the data and the file-size change a torn-tail scan
#: depends on (the same trade PostgreSQL's default wal_sync_method
#: makes on Linux).
_datasync = getattr(os, "fdatasync", os.fsync)


def segment_path(directory: Path, segment: int) -> Path:
    return directory / f"wal-{segment:08d}.log"


def checkpoint_path(directory: Path, segment: int) -> Path:
    return directory / f"checkpoint-{segment:08d}.ckpt"


def list_segments(directory: Path) -> list[tuple[int, Path]]:
    """(segment number, path) pairs, ascending."""
    found = []
    for path in directory.glob("wal-*.log"):
        try:
            found.append((int(path.stem.split("-", 1)[1]), path))
        except (IndexError, ValueError):
            continue
    return sorted(found)


def list_checkpoints(directory: Path) -> list[tuple[int, Path]]:
    found = []
    for path in directory.glob("checkpoint-*.ckpt"):
        try:
            found.append((int(path.stem.split("-", 1)[1]), path))
        except (IndexError, ValueError):
            continue
    return sorted(found)


def fsync_directory(directory: Path) -> None:
    """Persist directory-entry changes (new files, renames, unlinks)."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class WriteAheadLog:
    """Append-only framed log over numbered segment files."""

    def __init__(self, directory, sync: str = "always") -> None:
        if sync not in SYNC_MODES:
            raise WalError(
                f"unknown WAL sync mode {sync!r}; expected one of {SYNC_MODES}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.sync_mode = sync
        self.lock = threading.RLock()
        self.segment = 0
        self.lsn = 0  # last assigned lsn
        self._fh = None
        self._unsynced = 0
        #: records appended (not replayed) into the current segment —
        #: drives the auto-checkpoint threshold.
        self.records_in_segment = 0
        self.appended_records = 0
        self.appended_bytes = 0
        self.fsync_count = 0

    # -- lifecycle -----------------------------------------------------------

    def open_for_append(
        self, segment: int, lsn: int, records_in_segment: int = 0
    ) -> None:
        """Arm appends after recovery.

        ``segment``/``lsn`` come from the :class:`RecoveryReport`; the
        tail segment file either exists with its torn tail already
        truncated (append to it) or does not (crash during a roll —
        recreate it, the preceding checkpoint carries the state).
        """
        with self.lock:
            self.segment = segment
            self.lsn = lsn
            self.records_in_segment = records_in_segment
            path = segment_path(self.directory, segment)
            if path.exists() and path.stat().st_size > 0:
                fault_point("wal.segment.open", segment=segment)
                self._fh = open(path, "ab")
            else:
                self._create_segment(segment)

    def _create_segment(self, segment: int) -> None:
        fault_point("wal.segment.open", segment=segment)
        path = segment_path(self.directory, segment)
        fh = open(path, "wb")
        fh.write(segment_header(segment))
        fh.flush()
        _datasync(fh.fileno())
        fsync_directory(self.directory)
        self._fh = fh
        self.segment = segment
        self.records_in_segment = 0
        self._unsynced = 0

    def close(self) -> None:
        with self.lock:
            if self._fh is not None:
                self._fh.flush()
                if self.sync_mode != "never":
                    _datasync(self._fh.fileno())
                self._fh.close()
                self._fh = None

    @property
    def closed(self) -> bool:
        return self._fh is None

    # -- appends -------------------------------------------------------------

    def append_statement(self, sql: str) -> int:
        """Append one committed statement; returns its lsn.

        Under ``sync="always"`` the record is on disk when this
        returns — the caller may acknowledge the commit.
        """
        with self.lock:
            if self._fh is None:
                raise WalError("write-ahead log is closed")
            lsn = self.lsn + 1
            frame = encode_record(
                {"lsn": lsn, "kind": "statement", "sql": sql}
            )
            action = fault_point(
                "wal.append", lsn=lsn, size=len(frame), sql=sql
            )
            if action is not None and action.kind == "torn":
                # Simulated crash mid-frame: only a prefix reaches the
                # file.  Flush so the bytes are visible to recovery,
                # then die the way a power cut would.
                self._fh.write(frame[: max(0, min(action.keep, len(frame)))])
                self._fh.flush()
                _datasync(self._fh.fileno())
                from repro.faultinject import SimulatedCrash

                raise SimulatedCrash("wal.append")
            self._fh.write(frame)
            self._fh.flush()
            self.lsn = lsn
            self._unsynced += 1
            if self.sync_mode == "always" or (
                self.sync_mode == "batch"
                and self._unsynced >= BATCH_SYNC_RECORDS
            ):
                self._fsync()
            self.records_in_segment += 1
            self.appended_records += 1
            self.appended_bytes += len(frame)
            return lsn

    def sync(self) -> None:
        """Force durability of everything appended so far."""
        with self.lock:
            if self._fh is not None and self._unsynced:
                self._fsync()

    def _fsync(self) -> None:
        fault_point("wal.fsync.before", segment=self.segment, lsn=self.lsn)
        _datasync(self._fh.fileno())
        self._unsynced = 0
        self.fsync_count += 1
        fault_point("wal.fsync.after", segment=self.segment, lsn=self.lsn)

    # -- segment roll (checkpoint support) -----------------------------------

    def roll_segment(self, segment: int) -> None:
        """Close the current segment (fully synced) and start ``segment``."""
        with self.lock:
            if self._fh is not None:
                self._fh.flush()
                _datasync(self._fh.fileno())
                self._fh.close()
                self._fh = None
            self._create_segment(segment)

    # -- observability -------------------------------------------------------

    def status(self) -> dict:
        with self.lock:
            return {
                "directory": str(self.directory),
                "sync": self.sync_mode,
                "segment": self.segment,
                "lsn": self.lsn,
                "records_in_segment": self.records_in_segment,
                "appended_records": self.appended_records,
                "appended_bytes": self.appended_bytes,
                "fsync_count": self.fsync_count,
            }
