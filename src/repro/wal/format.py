"""On-disk WAL segment format: framed, checksummed logical records.

A segment file is::

    +--------------------------------------------+
    | magic  b"PERMWAL1"              (8 bytes)  |
    | segment number                  (u32 BE)   |
    | crc32 of the segment-number u32 (u32 BE)   |
    +--------------------------------------------+
    | record 0: u32 length | u32 crc32 | payload |
    | record 1: ...                              |

Payloads are UTF-8 JSON objects ``{"lsn": <int>, "kind": "statement",
"sql": "<canonical printed SQL>"}``.  The CRC covers the payload
bytes; the length prefix covers only the payload (not the 8-byte
record header).

Torn-tail semantics: :func:`scan_segment` walks records until the
first frame that is short, oversized, CRC-mismatched, or undecodable,
and reports ``good_offset`` — the byte offset of the last fully valid
frame boundary.  Recovery truncates the *final* segment there (a torn
tail is the expected residue of a crash mid-append); corruption before
the final frame of the log is *not* silently skipped, because records
after a gap may depend on the missing one.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Optional

SEGMENT_MAGIC = b"PERMWAL1"
_SEG_NUM = struct.Struct(">I")
SEGMENT_HEADER_SIZE = len(SEGMENT_MAGIC) + 2 * _SEG_NUM.size

_REC_HEADER = struct.Struct(">II")  # payload length, crc32(payload)

#: Sanity bound on one logical record; a length prefix beyond this is
#: treated as tail corruption, not an allocation request.
MAX_RECORD = 64 * 1024 * 1024


def segment_header(segment: int) -> bytes:
    num = _SEG_NUM.pack(segment)
    return SEGMENT_MAGIC + num + _SEG_NUM.pack(zlib.crc32(num))


def parse_segment_header(data: bytes) -> Optional[int]:
    """Segment number, or None when the header is torn or foreign."""
    if len(data) < SEGMENT_HEADER_SIZE:
        return None
    if data[: len(SEGMENT_MAGIC)] != SEGMENT_MAGIC:
        return None
    num = data[len(SEGMENT_MAGIC) : len(SEGMENT_MAGIC) + _SEG_NUM.size]
    (crc,) = _SEG_NUM.unpack(
        data[len(SEGMENT_MAGIC) + _SEG_NUM.size : SEGMENT_HEADER_SIZE]
    )
    if zlib.crc32(num) != crc:
        return None
    return _SEG_NUM.unpack(num)[0]


def encode_record(record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_RECORD:
        raise ValueError(
            f"WAL record of {len(payload)} bytes exceeds MAX_RECORD"
        )
    return _REC_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class SegmentScan:
    """Result of walking one segment's frames."""

    segment: Optional[int]  # None: torn/foreign header
    records: list = field(default_factory=list)
    #: Offset of the last valid frame boundary; bytes past it are torn.
    good_offset: int = 0
    torn: Optional[str] = None  # why the scan stopped early, if it did


def scan_segment(data: bytes) -> SegmentScan:
    """Decode every intact record; stop (don't raise) at the first torn
    or corrupt frame."""
    segment = parse_segment_header(data)
    if segment is None:
        return SegmentScan(segment=None, torn="torn or invalid segment header")
    scan = SegmentScan(segment=segment, good_offset=SEGMENT_HEADER_SIZE)
    offset = SEGMENT_HEADER_SIZE
    while offset < len(data):
        if offset + _REC_HEADER.size > len(data):
            scan.torn = "short record header"
            return scan
        length, crc = _REC_HEADER.unpack_from(data, offset)
        if length > MAX_RECORD:
            scan.torn = f"implausible record length {length}"
            return scan
        start = offset + _REC_HEADER.size
        end = start + length
        if end > len(data):
            scan.torn = "short record payload"
            return scan
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            scan.torn = "record checksum mismatch"
            return scan
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            scan.torn = "undecodable record payload"
            return scan
        if not isinstance(record, dict) or "lsn" not in record:
            scan.torn = "malformed record object"
            return scan
        scan.records.append(record)
        scan.good_offset = end
        offset = end
    return scan
