"""Crash recovery: checkpoint restore + WAL replay + torn-tail repair.

``recover(db, directory)`` brings an *empty* database to the state of
the durable statement prefix:

1. Pick the newest checkpoint whose payload decodes and whose WAL
   suffix is present (older candidates are tried if cleanup raced the
   crash); restore the catalog from it.
2. Replay every WAL segment ``>= checkpoint.segment`` in order through
   the ordinary ``db.execute()`` pipeline with logging suspended — the
   recovered catalog is built by the exact code paths that built the
   original, so epochs, delta logs and auto-ANALYZE decisions match a
   process that simply executed the same statements.
3. Truncate the torn tail of the *final* segment (the expected residue
   of a crash mid-append).  A torn frame before the end of the log is
   corruption recovery will not paper over: later statements may
   depend on the missing one, so it raises :class:`WalError` instead
   of silently skipping.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.errors import WalError
from repro.wal.checkpoint import read_checkpoint, restore_catalog
from repro.wal.format import scan_segment
from repro.wal.wal import list_checkpoints, list_segments

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.database import PermDatabase


@dataclass
class RecoveryReport:
    """What recovery found and did; surfaced by ``\\wal`` and tests."""

    directory: str
    checkpoint_segment: Optional[int] = None
    last_lsn: int = 0
    statements_replayed: int = 0
    segments_replayed: int = 0
    torn_bytes_dropped: int = 0
    torn_reason: Optional[str] = None
    #: Where appends continue: the highest segment seen (or the
    #: checkpoint's segment when its WAL file never got created).
    tail_segment: int = 1
    #: Intact records already in the tail segment (auto-checkpoint
    #: accounting continues from here).
    tail_records: int = 0


def recover(db: "PermDatabase", directory) -> RecoveryReport:
    """Restore ``db`` (which must be empty) from a WAL directory.

    Always safe on a fresh/empty directory: recovery of nothing is a
    no-op report.  WAL logging on ``db`` must be suspended by the
    caller (:meth:`repro.wal.manager.Durability.attach` does).
    """
    dirpath = Path(directory)
    dirpath.mkdir(parents=True, exist_ok=True)
    report = RecoveryReport(directory=str(dirpath))

    segments = list_segments(dirpath)
    checkpoint = _choose_checkpoint(dirpath, {seg for seg, _ in segments})
    base_segment = 1
    if checkpoint is not None:
        data, report.checkpoint_segment = checkpoint
        restore_catalog(db, data)
        report.last_lsn = int(data.get("lsn", 0))
        base_segment = report.checkpoint_segment
    report.tail_segment = base_segment

    replay = [(seg, path) for seg, path in segments if seg >= base_segment]
    for i, (seg, _) in enumerate(replay):
        if seg != replay[0][0] + i:
            raise WalError(
                f"WAL segment sequence has a gap before segment {seg} "
                f"in {dirpath}"
            )
    for index, (seg, path) in enumerate(replay):
        last = index == len(replay) - 1
        data = path.read_bytes()
        scan = scan_segment(data)
        if scan.segment is None:
            # A torn header can only be the residue of a crash during a
            # segment roll: nothing was ever appended, the checkpoint
            # carries the state.  Anywhere else it is corruption.
            if last and not scan.records:
                report.torn_reason = scan.torn
                report.torn_bytes_dropped += len(data)
                _truncate(path, 0)
                report.tail_segment = seg
                report.tail_records = 0
                continue
            raise WalError(f"unreadable WAL segment {path}: {scan.torn}")
        if scan.segment != seg:
            raise WalError(
                f"WAL segment {path} claims number {scan.segment}"
            )
        if scan.torn is not None and not last:
            raise WalError(
                f"corrupt interior WAL segment {path}: {scan.torn} "
                f"(refusing to replay past a gap)"
            )
        for record in scan.records:
            lsn = record.get("lsn")
            if not isinstance(lsn, int) or lsn <= report.last_lsn:
                raise WalError(
                    f"non-monotonic lsn {lsn!r} after {report.last_lsn} "
                    f"in {path}"
                )
            sql = record.get("sql")
            if record.get("kind") != "statement" or not isinstance(sql, str):
                raise WalError(f"malformed WAL record at lsn {lsn} in {path}")
            try:
                db.execute(sql)
            except BaseException as exc:
                raise WalError(
                    f"replay of lsn {lsn} failed ({sql!r}): {exc}"
                ) from exc
            report.last_lsn = lsn
            report.statements_replayed += 1
        report.segments_replayed += 1
        report.tail_segment = seg
        report.tail_records = len(scan.records)
        if scan.good_offset < len(data):
            report.torn_reason = scan.torn
            report.torn_bytes_dropped += len(data) - scan.good_offset
            _truncate(path, scan.good_offset)
    return report


def _choose_checkpoint(
    directory: Path, segment_numbers: set[int]
) -> Optional[tuple[dict, int]]:
    """Newest usable checkpoint: payload decodes and its replay suffix
    (segments >= N) is either present or legitimately absent."""
    for seg, path in reversed(list_checkpoints(directory)):
        data = read_checkpoint(path)
        if data is None:
            continue
        # A checkpoint with no WAL file of its own number is fine only
        # when no *later* segments exist either (crash during the roll);
        # otherwise the suffix is incomplete — try an older checkpoint.
        later = {n for n in segment_numbers if n >= seg}
        if later and seg not in later:
            continue
        return data, seg
    return None


def _truncate(path: Path, offset: int) -> None:
    with open(path, "r+b") as fh:
        fh.truncate(offset)
        fh.flush()
        os.fsync(fh.fileno())
