"""Hash partitioning: the sharded backend's data layer.

A :class:`Partitioner` mirrors the parent catalog's heaps into N
per-shard :class:`~repro.catalog.catalog.Catalog` instances.  Each
table is either *partitioned* — every row lives on exactly the shard
``shard_of(row[key])`` names — or *replicated*, a full copy on every
shard (the right call for tables with no usable key: broadcast joins
against them stay shard-local).

The shard key defaults to the first primary-key column and can be
overridden per table via ``shard_keys={"orders": "o_custkey"}``
(``None`` forces replication).  Mirrors are maintained lazily before
each scattered query, cheapest strategy first:

* same epoch, rows grew → route only the appended suffix;
* epoch bumped but the delta log still covers the gap → replay the
  per-statement deltas (deletes removed from the owning shard, inserts
  routed by key);
* otherwise (truncate, log overflow, uid change) → full repartition.

Every incremental path is verified against the parent row count and
degrades to a full reload on any mismatch — the mirror is never
silently wrong.
"""

from __future__ import annotations

import datetime
import pickle
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Optional, Sequence

from repro.catalog.catalog import Catalog
from repro.errors import ExecutionError, PermError
from repro.storage.table import Table

# How many (uid, epoch, rows) -> per-shard-state translations to retain
# for snapshot tokens handed out by ``snapshot_token``.
SNAPSHOT_TRANSLATIONS = 128


def shard_of(value: Any, shards: int) -> int:
    """Deterministic shard assignment for one shard-key value.

    Integers (and integer-valued floats, and dates via their ordinal)
    hash as ``value % shards`` so consecutive keys spread evenly and
    equality predicates prune to one shard; everything else goes
    through CRC-32 of a canonical encoding.  NULL keys live on shard 0,
    which keeps null-safe (``<=>``) join keys co-located.
    """
    if shards <= 1:
        return 0
    if value is None:
        return 0
    if isinstance(value, bool):
        return int(value) % shards
    if isinstance(value, int):
        return value % shards
    if isinstance(value, float):
        if value.is_integer():
            return int(value) % shards
        return zlib.crc32(repr(value).encode("utf-8")) % shards
    if isinstance(value, str):
        return zlib.crc32(value.encode("utf-8")) % shards
    if isinstance(value, datetime.datetime):
        return zlib.crc32(value.isoformat().encode("utf-8")) % shards
    if isinstance(value, datetime.date):
        return value.toordinal() % shards
    return zlib.crc32(repr(value).encode("utf-8")) % shards


def _localize(rows: Sequence[Sequence[Any]]) -> Sequence[Sequence[Any]]:
    """Reallocate row values into shard-local objects.

    Mirrors built from parent row references inherit the parent's
    allocation order, so a shard scan strides across the whole parent
    heap: CPython writes a refcount into every value an output tuple
    captures, and with hash-scattered objects those writes are cache
    misses — four shard scans cost ~1.7x one contiguous full scan.  A
    pickle round-trip materialises fresh values in allocation order per
    shard, after which the four scans sum to *less* than the full scan.
    Rows that refuse to pickle fall back to the shared objects.
    """
    try:
        return pickle.loads(pickle.dumps(list(rows), pickle.HIGHEST_PROTOCOL))
    except Exception:
        return rows


@dataclass
class _MirrorState:
    """Where the per-shard mirrors of one parent table stand."""

    uid: int
    epoch: int
    rows_synced: int
    delta_seq: int


class Partitioner:
    """Mirrors a parent catalog into N hash-partitioned shard catalogs."""

    def __init__(
        self,
        catalog: Catalog,
        shards: int,
        shard_keys: Optional[Mapping[str, Optional[str]]] = None,
    ) -> None:
        if shards < 1:
            raise PermError(f"shard count must be >= 1, got {shards}")
        self.catalog = catalog
        self.shards = int(shards)
        self.shard_keys = {
            name.lower(): (key.lower() if isinstance(key, str) else key)
            for name, key in (shard_keys or {}).items()
        }
        self.shard_catalogs = [Catalog() for _ in range(self.shards)]
        self._states: dict[str, _MirrorState] = {}
        self._key_attnos: dict[str, tuple[int, Optional[int]]] = {}
        self._translations: dict[tuple, tuple] = {}
        self._lock = threading.RLock()
        # counters surfaced through ``\shards`` / server stats
        self.full_loads = 0
        self.delta_syncs = 0
        self.appended_rows = 0

    # ------------------------------------------------------------------
    # shard-key scheme

    def key_column(self, name: str) -> Optional[str]:
        """The shard-key column for ``name``, or None if replicated."""
        attno = self.key_attno(name)
        if attno is None:
            return None
        return self.catalog.table(name).schema.columns[attno].name

    def key_attno(self, name: str) -> Optional[int]:
        """The shard-key attribute index for ``name`` (None = replicated)."""
        name = name.lower()
        table = self.catalog.table(name)
        # keyed by the table uid: DROP + CREATE between syncs must never
        # reuse an attno computed against the old schema
        cached = self._key_attnos.get(name)
        if cached is not None and cached[0] == table.uid:
            return cached[1]
        attno = self._compute_key_attno(name, table)
        self._key_attnos[name] = (table.uid, attno)
        return attno

    def _compute_key_attno(self, name: str, table: Table) -> Optional[int]:
        if name in self.shard_keys:
            key = self.shard_keys[name]
            if key is None:
                return None
            if not table.schema.has_column(key):
                raise PermError(
                    f"shard key {key!r} is not a column of table {name!r}"
                )
            return table.schema.column_index(key)
        if table.schema.primary_key:
            return table.schema.column_index(table.schema.primary_key[0])
        return None

    # ------------------------------------------------------------------
    # synchronisation

    def sync(self) -> None:
        """Bring every shard mirror up to date with the parent catalog."""
        with self._lock:
            live = {table.name.lower(): table for table in self.catalog.tables()}
            for name in list(self._states):
                if name not in live:
                    for shard in self.shard_catalogs:
                        shard.drop_table(name, missing_ok=True)
                    del self._states[name]
                    self._key_attnos.pop(name, None)
            for name, table in live.items():
                self._sync_table(name, table)

    def _sync_table(self, name: str, table: Table) -> None:
        epoch = table.epoch
        delta_seq = table.delta_seq
        nrows = table.row_count()
        attno = self.key_attno(name)
        state = self._states.get(name)

        if state is None or state.uid != table.uid:
            self._full_load(name, table, attno)
            return

        if state.epoch == epoch:
            if state.rows_synced > nrows:
                # append-only within an epoch; anything else is a bug or
                # a race — rebuild from scratch.
                self._full_load(name, table, attno)
                return
            if state.rows_synced < nrows:
                suffix = table.raw_rows()[state.rows_synced : nrows]
                self._route_insert(name, attno, suffix)
                self.appended_rows += len(suffix)
            state.rows_synced = nrows
            state.delta_seq = delta_seq
            self._verify(name, table, attno, state)
            return

        deltas = table.deltas_since(state.delta_seq)
        if deltas is None:
            self._full_load(name, table, attno)
            return
        for delta in deltas:
            if delta.deleted:
                self._route_delete(name, attno, delta.deleted)
            if delta.inserted:
                self._route_insert(name, attno, delta.inserted)
        self.delta_syncs += 1
        state.epoch = table.epoch
        state.rows_synced = table.row_count()
        state.delta_seq = deltas[-1].seq if deltas else state.delta_seq
        self._verify(name, table, attno, state)

    def _verify(self, name: str, table: Table, attno: Optional[int], state: _MirrorState) -> None:
        """Cross-check mirror cardinality; rebuild on any mismatch."""
        total = sum(shard.table(name).row_count() for shard in self.shard_catalogs)
        expected = state.rows_synced * (1 if attno is not None else self.shards)
        if total != expected or table.epoch != state.epoch:
            self._full_load(name, table, attno)

    def _full_load(self, name: str, table: Table, attno: Optional[int]) -> None:
        for _ in range(3):
            epoch = table.epoch
            delta_seq = table.delta_seq
            rows = table.raw_rows()
            nrows = table.row_count()
            if table.epoch == epoch:
                break
        for shard in self.shard_catalogs:
            shard.drop_table(name, missing_ok=True)
            shard.create_table(table.schema)
        self._route_insert(name, attno, rows[:nrows])
        self._states[name] = _MirrorState(table.uid, epoch, nrows, delta_seq)
        self.full_loads += 1

    def _route_insert(self, name: str, attno: Optional[int], rows: Sequence[Sequence[Any]]) -> None:
        if not rows:
            return
        if attno is None:
            for shard in self.shard_catalogs:
                shard.table(name).insert_many(_localize(rows))
            return
        buckets: list[list] = [[] for _ in range(self.shards)]
        n = self.shards
        for row in rows:
            buckets[shard_of(row[attno], n)].append(row)
        for shard, bucket in zip(self.shard_catalogs, buckets):
            if bucket:
                shard.table(name).insert_many(_localize(bucket))

    def _route_delete(self, name: str, attno: Optional[int], rows: Sequence[Sequence[Any]]) -> None:
        if not rows:
            return
        if attno is None:
            for shard in self.shard_catalogs:
                shard.table(name).remove_rows(rows)
            return
        buckets: list[list] = [[] for _ in range(self.shards)]
        n = self.shards
        for row in rows:
            buckets[shard_of(row[attno], n)].append(row)
        for shard, bucket in zip(self.shard_catalogs, buckets):
            if bucket:
                shard.table(name).remove_rows(bucket)

    # ------------------------------------------------------------------
    # snapshots

    def snapshot_token(self) -> dict[int, tuple[int, int]]:
        """A parent-shaped snapshot token backed by per-shard translations.

        The token maps the *parent* table uid to (epoch, rows) exactly as
        the unsharded database would, so fallback execution against the
        parent catalog can consume it directly.  For scattered execution
        the token translates, per table, to the shard mirrors' own
        (uid, epoch, rows) captured at the same instant.
        """
        with self._lock:
            self.sync()
            token: dict[int, tuple[int, int]] = {}
            for name, state in self._states.items():
                table = self.catalog.table(name)
                token[table.uid] = (state.epoch, state.rows_synced)
                key = (table.uid, state.epoch, state.rows_synced)
                if key not in self._translations:
                    self._translations[key] = tuple(
                        (
                            shard.table(name).uid,
                            shard.table(name).epoch,
                            shard.table(name).row_count(),
                        )
                        for shard in self.shard_catalogs
                    )
                    while len(self._translations) > SNAPSHOT_TRANSLATIONS:
                        self._translations.pop(next(iter(self._translations)))
            return token

    def translate_snapshot(
        self,
        names: Iterable[str],
        snapshot: Mapping[int, tuple[int, int]],
    ) -> list[dict[int, tuple[int, int]]]:
        """Per-shard snapshot tokens covering ``names``, or raise loudly.

        Raises :class:`ExecutionError` with a ``snapshot too old:``
        message (the wire protocol's ``snapshot_invalid`` class) when a
        table's sharded state at the snapshotted epoch is gone.
        """
        with self._lock:
            shard_snaps: list[dict[int, tuple[int, int]]] = [
                {} for _ in range(self.shards)
            ]
            for name in names:
                table = self.catalog.table(name)
                entry = snapshot.get(table.uid)
                if entry is None:
                    raise ExecutionError(
                        f"snapshot too old: table {name!r} is not covered by the snapshot"
                    )
                epoch, rows = entry
                translation = self._translations.get((table.uid, epoch, rows))
                if translation is None:
                    raise ExecutionError(
                        f"snapshot too old: sharded state of table {name!r} at "
                        f"epoch {epoch} has been superseded"
                    )
                for i, (uid, shard_epoch, shard_rows) in enumerate(translation):
                    shard_snaps[i][uid] = (shard_epoch, shard_rows)
            return shard_snaps

    # ------------------------------------------------------------------
    # introspection

    def describe_tables(self) -> list[dict[str, Any]]:
        """Per-table partitioning status for ``\\shards`` and tests."""
        with self._lock:
            self.sync()
            out = []
            for name in sorted(self._states):
                attno = self.key_attno(name)
                out.append(
                    {
                        "table": name,
                        "shard_key": self.key_column(name),
                        "replicated": attno is None,
                        "rows": self._states[name].rows_synced,
                        "shard_rows": [
                            shard.table(name).row_count()
                            for shard in self.shard_catalogs
                        ],
                    }
                )
            return out

    def warm_columnar(self, names: Iterable[str], shard_ids: Iterable[int]) -> None:
        """Materialise shard columnar caches before a fork-based scatter.

        Building the caches in the parent lets forked children share the
        pages copy-on-write instead of each transposing its own copy.
        """
        with self._lock:
            for shard_id in shard_ids:
                shard = self.shard_catalogs[shard_id]
                for name in names:
                    if shard.has_table(name):
                        shard.table(name).columnar()
