"""The gatherer: merging per-shard partial results semiring-natively.

Row streams concatenate — a witness-annotated result is a bag, and the
disjoint union of per-shard bags *is* the global bag.  Aggregate finals
re-merge through the executor's own :class:`AggState.merge`: per-shard
``count``/``sum``/``min``/``max`` finals are lifted back into partial
states and merged, and ``perm_poly_sum`` finals (``N[X]`` provenance
polynomials) add in the semiring — provenance union is polynomial
addition, so the distributed merge needs no new algebra.  ORDER BY and
LIMIT/OFFSET re-apply at the gatherer with the executor's exact NULL
ordering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import ExecutionError
from repro.executor.aggregates import (
    AggState,
    CountStarState,
    MaxState,
    MinState,
    PolySumState,
    SumState,
)
from repro.sharding.analysis import ScatterDecision

if TYPE_CHECKING:
    from repro.database import QueryResult


def merge_results(
    decision: ScatterDecision, partials: list["QueryResult"]
) -> "QueryResult":
    """Combine per-shard results according to the scatter decision."""
    from repro.database import QueryResult

    if not partials:
        raise ExecutionError("scatter produced no partial results")
    first = partials[0]
    if decision.mode == "single" and len(partials) == 1:
        return first
    spec = decision.merge
    if spec.reagg is not None:
        rows = _reaggregate(spec.reagg, partials)
    else:
        rows = [row for partial in partials for row in partial.rows]
        if spec.dedupe:
            rows = _dedupe(rows)
    if spec.sort_keys:
        _sort_rows(rows, spec.sort_keys)
    if spec.offset or spec.limit is not None:
        stop = None if spec.limit is None else spec.offset + spec.limit
        rows = rows[spec.offset : stop]
    return QueryResult(
        columns=list(first.columns),
        rows=rows,
        command=first.command,
        annotation_column=first.annotation_column,
    )


def _dedupe(rows: list[tuple]) -> list[tuple]:
    """First-occurrence dedupe, tolerating unhashable values."""
    seen: set = set()
    unhashable: list[tuple] = []
    out: list[tuple] = []
    for row in rows:
        try:
            if row in seen:
                continue
            seen.add(row)
        except TypeError:
            if row in unhashable:
                continue
            unhashable.append(row)
        out.append(row)
    return out


def _sort_rows(
    rows: list[tuple], sort_keys: tuple[tuple[int, bool, Optional[bool]], ...]
) -> None:
    # Mirror of SortNode: stable sorts from the last key to the first,
    # NULLs ranked exactly like the executor's comparator.
    for position, descending, nulls_first in reversed(sort_keys):
        if nulls_first is None:
            null_rank = 1
        else:
            null_rank = 1 if nulls_first == descending else 0
        non_null_rank = 1 - null_rank

        def key(row, position=position, null_rank=null_rank, non_null_rank=non_null_rank):
            value = row[position]
            if value is None:
                return (null_rank, 0)
            return (non_null_rank, value)

        rows.sort(key=key, reverse=descending)


def _partial_state(aggname: str, value) -> AggState:
    """Lift one shard's aggregate final back into a mergeable state."""
    if aggname == "count":
        state: AggState = CountStarState()
        state.add_count(value or 0)
        return state
    if aggname == "sum":
        state = SumState()
    elif aggname == "min":
        state = MinState()
    elif aggname == "max":
        state = MaxState()
    elif aggname == "perm_poly_sum":
        state = PolySumState()
    else:  # pragma: no cover - analysis admits only mergeable aggregates
        raise ExecutionError(f"aggregate {aggname!r} is not mergeable at the gatherer")
    state.add(value)
    return state


def _reaggregate(spec: tuple[tuple, ...], partials: list["QueryResult"]) -> list[tuple]:
    key_positions = [i for i, entry in enumerate(spec) if entry[0] == "key"]
    agg_entries = [(i, entry[1]) for i, entry in enumerate(spec) if entry[0] == "agg"]
    groups: dict[tuple, list[AggState]] = {}
    order: list[tuple] = []
    for partial in partials:
        for row in partial.rows:
            group = tuple(row[i] for i in key_positions)
            states = groups.get(group)
            if states is None:
                groups[group] = [
                    _partial_state(aggname, row[i]) for i, aggname in agg_entries
                ]
                order.append(group)
            else:
                for state, (i, aggname) in zip(states, agg_entries):
                    state.merge(_partial_state(aggname, row[i]))
    rows = []
    for group in order:
        states = iter(groups[group])
        keys = iter(group)
        row = [
            next(keys) if entry[0] == "key" else next(states).result()
            for entry in spec
        ]
        rows.append(tuple(row))
    return rows
