"""Sharded scatter-gather execution.

Hash-partitions catalog tables by a per-table shard key across N child
backend instances, pushes the provenance-rewritten query to every
relevant shard, and gather-merges the partial results semiring-natively:
row streams concatenate (witness bags union), aggregate finals merge
through :meth:`~repro.executor.aggregates.AggState.merge` (polynomial
annotations add in ``N[X]``), ORDER BY / LIMIT re-apply at the gatherer.

The subsystem splits into:

* :mod:`repro.sharding.partition` — the data layer: deterministic
  ``shard_of`` hashing, per-table shard-key schemes, and the
  :class:`Partitioner` that mirrors parent-catalog heaps into per-shard
  catalogs (suffix appends, delta-log replay, full repartition).
* :mod:`repro.sharding.analysis` — the planning layer: decides per
  query whether shard-local execution is exact, which shards the
  query needs (pruning on shard-key predicates), and which gatherer
  merge applies; shapes that cannot merge correctly fall back *loudly*
  with a typed reason, never silently wrong.
* :mod:`repro.sharding.merge` — the gatherer: concatenation,
  first-occurrence dedupe, semiring-native re-aggregation, and the
  ORDER BY / LIMIT replay.
* :mod:`repro.sharding.backend` — the registered ``sharded``
  :class:`~repro.backends.ExecutionBackend` tying it together.

See ``docs/sharding.md`` for the partitioning model, pruning rules,
merge algebra, and the fallback table.
"""

from repro.sharding.analysis import FallbackDecision, ScatterDecision, decide
from repro.sharding.backend import ShardedBackend
from repro.sharding.partition import Partitioner, shard_of

__all__ = [
    "FallbackDecision",
    "Partitioner",
    "ScatterDecision",
    "ShardedBackend",
    "decide",
    "shard_of",
]
