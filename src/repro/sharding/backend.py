"""The registered ``sharded`` execution backend.

Holds N child backends (python or sqlite), each over its own shard
catalog maintained by the :class:`~repro.sharding.partition.Partitioner`,
plus one local python backend over the full parent catalog for loud,
typed fallbacks.  Per query it

1. lazily syncs the shard mirrors,
2. asks :func:`~repro.sharding.analysis.decide` for a scatter decision
   (cached per analyzed tree, keyed like the python backend's plan
   cache and flushed on catalog epoch changes),
3. scatters the shard query to the relevant shards — pruned to ``k/N``
   when shard-key predicates allow — over the configured worker
   strategy (in-line for python children, whose GIL-bound kernels gain
   nothing from threads; a thread pool for sqlite children, which
   release the GIL inside the C library; fork-based processes when
   ``parallel_executor="process"``), and
4. gather-merges the partials semiring-natively
   (:mod:`repro.sharding.merge`).

Execution-control toggles (vectorize, cost_based, parallel knobs) fan
out to the children and the fallback backend so differential behaviour
matches the unsharded engine.
"""

from __future__ import annotations

import threading
from collections import Counter, OrderedDict
from typing import TYPE_CHECKING, Any, Mapping, Optional, Union

from repro.analyzer.query_tree import Query
from repro.backends.base import ExecutionBackend, collect_base_relations
from repro.catalog.catalog import Catalog
from repro.parallel.dispatch import get_strategy
from repro.sharding.analysis import FallbackDecision, ScatterDecision, decide
from repro.sharding.merge import merge_results
from repro.sharding.partition import Partitioner

if TYPE_CHECKING:
    from repro.database import QueryResult

#: Scatter decisions retained per backend (mirrors PLAN_CACHE_SIZE).
DECISION_CACHE_SIZE = 64

#: Toggles mirrored from the database layer onto every child backend.
_FANOUT_ATTRS = (
    "vectorize",
    "cost_based",
    "fuse_pipelines",
    "parallel_workers",
    "morsel_size",
    "parallel_executor",
)


class ShardedBackend(ExecutionBackend):
    """Hash-partitioned scatter-gather over N child backends."""

    name = "sharded"

    def __init__(
        self,
        catalog: Catalog,
        shards: int = 2,
        shard_keys: Optional[Mapping[str, Optional[str]]] = None,
        child: Union[str, Any] = "python",
    ) -> None:
        super().__init__(catalog)
        from repro.backends import create_backend

        self.partitioner = Partitioner(catalog, shards, shard_keys)
        self.child_name = child if isinstance(child, str) else getattr(child, "name", "python")
        self.children = [
            create_backend(child, shard_catalog)
            for shard_catalog in self.partitioner.shard_catalogs
        ]
        # fallback oracle: the plain python engine over the full catalog
        self.local = create_backend("python", catalog)
        self.supports_execution_controls = all(
            getattr(c, "supports_execution_controls", False) for c in self.children
        )
        self.parallel_executor = "thread"
        self._decisions: OrderedDict[int, tuple[Query, Any]] = OrderedDict()
        self._decision_epoch = -1
        self._lock = threading.Lock()
        # counters surfaced through \shards and server \stats
        self.scattered = 0
        self.pruned_queries = 0
        self.local_fallbacks = 0
        self.fallback_reasons: Counter = Counter()
        self.shard_queries = [0] * self.partitioner.shards
        self.shard_rows = [0] * self.partitioner.shards

    # ------------------------------------------------------------------
    # execution-control fan-out

    def _fanout(self, name: str, value: Any) -> None:
        for backend in (self.local, *self.children):
            if hasattr(backend, name):
                setattr(backend, name, value)

    def __setattr__(self, name: str, value: Any) -> None:
        object.__setattr__(self, name, value)
        if name in _FANOUT_ATTRS and "children" in self.__dict__:
            self._fanout(name, value)

    # ------------------------------------------------------------------
    # decisions

    def _decision(self, query: Query):
        with self._lock:
            if self._decision_epoch != self.catalog.epoch:
                self._decisions.clear()
                self._decision_epoch = self.catalog.epoch
            cached = self._decisions.get(id(query))
            if cached is not None and cached[0] is query:
                return cached[1]
        decision = decide(query, self.partitioner)
        with self._lock:
            while len(self._decisions) >= DECISION_CACHE_SIZE:
                self._decisions.popitem(last=False)
            self._decisions[id(query)] = (query, decision)
        return decision

    # ------------------------------------------------------------------
    # execution

    def run_select(
        self,
        query: Query,
        snapshot: Optional[dict] = None,
        timeout: Optional[float] = None,
    ) -> "QueryResult":
        self.partitioner.sync()
        decision = self._decision(query)
        if isinstance(decision, FallbackDecision):
            self.local_fallbacks += 1
            self.fallback_reasons[decision.kind] += 1
            return self._run_local(query, snapshot, timeout)
        self.scattered += 1
        if decision.pruned:
            self.pruned_queries += 1
        shard_snapshots = None
        if snapshot is not None:
            names = collect_base_relations(query)
            shard_snapshots = self.partitioner.translate_snapshot(names, snapshot)
        partials = self._scatter(decision, shard_snapshots, timeout)
        for shard_id, partial in zip(decision.shards, partials):
            self.shard_queries[shard_id] += 1
            self.shard_rows[shard_id] += len(partial.rows)
        return merge_results(decision, partials)

    def _run_local(
        self, query: Query, snapshot: Optional[dict], timeout: Optional[float]
    ) -> "QueryResult":
        if snapshot is not None or timeout is not None:
            return self.local.run_select(query, snapshot=snapshot, timeout=timeout)
        return self.local.run_select(query)

    def _scatter(
        self,
        decision: ScatterDecision,
        shard_snapshots: Optional[list[dict]],
        timeout: Optional[float],
    ) -> list["QueryResult"]:
        shard_query = decision.shard_query
        controls = self.supports_execution_controls

        def make_task(shard_id: int):
            child = self.children[shard_id]
            shard_snapshot = (
                shard_snapshots[shard_id] if shard_snapshots is not None else None
            )

            def task() -> "QueryResult":
                if controls and (shard_snapshot is not None or timeout is not None):
                    return child.run_select(
                        shard_query, snapshot=shard_snapshot, timeout=timeout
                    )
                return child.run_select(shard_query)

            return task

        tasks = [make_task(shard_id) for shard_id in decision.shards]
        if len(tasks) == 1:
            return [tasks[0]()]
        strategy_name = self._scatter_strategy()
        if strategy_name == "process":
            # build columnar caches up front so forked children share
            # them copy-on-write instead of each transposing a copy
            self.partitioner.warm_columnar(
                collect_base_relations(shard_query), decision.shards
            )
        strategy = get_strategy(strategy_name, len(tasks))
        return strategy.map_ordered(tasks)

    def _scatter_strategy(self) -> str:
        if self.parallel_executor == "process" and self.supports_execution_controls:
            return "process"
        if self.parallel_executor == "serial":
            return "serial"
        if self.supports_execution_controls:
            # Pure-Python children run CPU-bound kernels that hold the
            # GIL, so a thread pool serializes anyway and the contention
            # roughly doubles unpruned full scans.  Scatter in-line and
            # leave real parallelism to ``parallel_executor="process"``.
            return "serial"
        return "thread"

    # ------------------------------------------------------------------
    # introspection

    def describe(self) -> str:
        return (
            f"hash-sharded scatter-gather over {self.partitioner.shards} "
            f"{self.child_name} shard(s), {self._scatter_strategy()} scatter"
        )

    def describe_scatter(self, query: Query) -> str:
        """One-line scatter summary for ``\\explain+``."""
        self.partitioner.sync()
        decision = self._decision(query)
        if isinstance(decision, FallbackDecision):
            return (
                f"shards=fallback ({decision.kind}: {decision.detail}); "
                "executed locally on the full catalog"
            )
        total = self.partitioner.shards
        ids = ",".join(str(s) for s in decision.shards)
        note = " pruned" if decision.pruned else ""
        return f"shards={len(decision.shards)}/{total} [{ids}] merge={decision.mode}{note}"

    def scatter_stats(self) -> dict[str, Any]:
        """Counters for ``\\shards`` and the server's ``stats`` op."""
        return {
            "shards": self.partitioner.shards,
            "child_backend": self.child_name,
            "executor": self._scatter_strategy(),
            "scattered": self.scattered,
            "pruned_queries": self.pruned_queries,
            "local_fallbacks": self.local_fallbacks,
            "fallback_reasons": dict(self.fallback_reasons),
            "per_shard": [
                {"queries": q, "rows": r}
                for q, r in zip(self.shard_queries, self.shard_rows)
            ],
            "partitioner": {
                "full_loads": self.partitioner.full_loads,
                "delta_syncs": self.partitioner.delta_syncs,
                "appended_rows": self.partitioner.appended_rows,
            },
        }

    # ------------------------------------------------------------------
    # lifecycle

    def snapshot_token(self) -> dict[int, tuple[int, int]]:
        return self.partitioner.snapshot_token()

    def close(self) -> None:
        for backend in (self.local, *self.children):
            backend.close()
