"""Scatter analysis: is a rewritten query exact when run shard-locally?

The invariant every decision rests on: a *partitioned* table's row with
shard-key value ``v`` lives on exactly shard ``shard_of(v)``; a
*replicated* table is complete on every shard.  From that, each query
node is classified bottom-up as either

* **broadcast** — reads only replicated tables, so every shard computes
  the identical result (run it on one shard), or
* **disjoint** — its global result is exactly the disjoint union of the
  per-shard results, with a set of *aligned* output positions (columns
  provably carrying the shard key: a row with value ``v`` there can only
  come from shard ``shard_of(v)``) and a candidate shard set (pruned by
  shard-key equality/IN/small-range predicates).

Joins between disjoint inputs are exact only when an equality join
predicate connects their aligned keys (co-location); grouping and
DISTINCT are shard-local only when keyed by an aligned column; set
operations with distinct/intersect/except semantics need co-partitioned
arms.  Shapes that violate these rules *nested* inside the query raise
:class:`Fallback` with a typed reason.  At the *root*, two extra merge
modes recover common shapes: first-occurrence dedupe for a top-level
DISTINCT, and semiring-native re-aggregation for top-level aggregates
whose finals merge through ``AggState.merge`` (count/sum/min/max and
``perm_poly_sum`` — polynomial addition; AVG-style composite finals and
DISTINCT aggregates still fall back).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import (
    JoinTreeExpr,
    Query,
    QueryNodeClass,
    RangeTableRef,
    RTEKind,
    SetOpNode,
    SetOpRangeRef,
)
from repro.sharding.partition import Partitioner, shard_of

# Aggregates whose per-shard finals merge exactly at the gatherer.
MERGEABLE_AGGS = frozenset({"count", "sum", "min", "max", "perm_poly_sum"})

# Integer range predicates on the shard key are enumerated into shard
# sets only below this span (modulo hashing rarely prunes wide ranges).
MAX_RANGE_SPAN = 1024


class Fallback(Exception):
    """A query shape that cannot be scattered; carries the typed reason."""

    def __init__(self, kind: str, detail: str) -> None:
        super().__init__(f"{kind}: {detail}")
        self.kind = kind
        self.detail = detail


@dataclass(frozen=True)
class MergeSpec:
    """What the gatherer does with the per-shard result streams."""

    # (visible position, descending, nulls_first) — SortNode's comparator
    sort_keys: tuple[tuple[int, bool, Optional[bool]], ...] = ()
    limit: Optional[int] = None
    offset: int = 0
    dedupe: bool = False
    # Re-aggregation plan: one entry per visible position, either
    # ("key",) or ("agg", aggname).
    reagg: Optional[tuple[tuple, ...]] = None


@dataclass(frozen=True)
class ScatterDecision:
    """Run ``shard_query`` on ``shards`` and merge per ``merge``."""

    shards: tuple[int, ...]
    total_shards: int
    shard_query: Query
    merge: MergeSpec
    mode: str  # 'single' | 'concat' | 'dedupe' | 'reagg'
    pruned: bool


@dataclass(frozen=True)
class FallbackDecision:
    """The query cannot scatter; execute locally on the full catalog."""

    kind: str
    detail: str


@dataclass
class _Unit:
    """One join-tree unit during SPJ analysis (var-key granularity)."""

    broadcast: bool
    aligned: set  # {(varno, varattno)} carrying the shard key
    varnos: set  # range-table indexes this unit covers
    shards: Optional[set]  # None = all shards


@dataclass(frozen=True)
class _Info:
    """A nested query node's shard behaviour (output-position granularity)."""

    broadcast: bool
    aligned: frozenset  # visible output positions carrying the shard key
    shards: Optional[frozenset]  # None = all shards


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict = {}

    def find(self, item):
        parent = self._parent
        root = item
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(item, item) != item:
            parent[item], item = root, parent[item]
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def decide(query: Query, partitioner: Partitioner):
    """Classify ``query`` into a ScatterDecision or a FallbackDecision."""
    try:
        return _Analysis(partitioner).root(query)
    except Fallback as fb:
        return FallbackDecision(fb.kind, fb.detail)


# ---------------------------------------------------------------------------
# conjunct utilities


def _conjuncts(expr: Optional[ex.Expr]) -> list[ex.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ex.BoolOpExpr) and expr.op == "and":
        out: list[ex.Expr] = []
        for arg in expr.args:
            out.extend(_conjuncts(arg))
        return out
    return [expr]


def _var_key(node: ex.Expr) -> Optional[tuple[int, int]]:
    if isinstance(node, ex.Var) and node.levelsup == 0:
        return (node.varno, node.varattno)
    return None


def _as_equi(conj: ex.Expr) -> Optional[tuple[tuple[int, int], tuple[int, int]]]:
    """``a = b`` / ``a <=> b`` between two same-level Vars."""
    if isinstance(conj, ex.OpExpr) and conj.op in ("=", "<=>") and len(conj.args) == 2:
        a, b = _var_key(conj.args[0]), _var_key(conj.args[1])
        if a is not None and b is not None:
            return (a, b)
    return None


def _as_constraint(conj: ex.Expr) -> Optional[tuple[tuple[int, int], frozenset]]:
    """A shard-key-prunable predicate: Var = Const, IN-list, OR-of-equalities."""
    if isinstance(conj, ex.OpExpr) and conj.op in ("=", "<=>") and len(conj.args) == 2:
        for var, const in (conj.args, tuple(reversed(conj.args))):
            key = _var_key(var)
            if key is not None and isinstance(const, ex.Const):
                return (key, frozenset([const.value]))
        return None
    if isinstance(conj, ex.InList) and not conj.negated:
        key = _var_key(conj.arg)
        if key is not None and all(isinstance(item, ex.Const) for item in conj.items):
            return (key, frozenset(item.value for item in conj.items))
        return None
    if isinstance(conj, ex.BoolOpExpr) and conj.op == "or":
        # the analyzer lowers IN-lists to OR-of-equality chains
        key: Optional[tuple[int, int]] = None
        values = set()
        for arm in conj.args:
            sub = _as_constraint(arm)
            if sub is None:
                return None
            arm_key, arm_values = sub
            if key is None:
                key = arm_key
            elif key != arm_key:
                return None
            values.update(arm_values)
        if key is not None:
            return (key, frozenset(values))
    return None


def _note_range(conj: ex.Expr, ranges: dict) -> None:
    """Accumulate integer range bounds per var key from a comparison."""
    if not (isinstance(conj, ex.OpExpr) and conj.op in (">", ">=", "<", "<=") and len(conj.args) == 2):
        return
    left, right = conj.args
    key, const, op = None, None, conj.op
    if _var_key(left) is not None and isinstance(right, ex.Const):
        key, const = _var_key(left), right.value
    elif _var_key(right) is not None and isinstance(left, ex.Const):
        key, const = _var_key(right), left.value
        op = {">": "<", ">=": "<=", "<": ">", "<=": ">="}[op]
    if key is None or not isinstance(const, int) or isinstance(const, bool):
        return
    lo, hi = ranges.get(key, (None, None))
    if op == ">":
        lo = const + 1 if lo is None else max(lo, const + 1)
    elif op == ">=":
        lo = const if lo is None else max(lo, const)
    elif op == "<":
        hi = const - 1 if hi is None else min(hi, const - 1)
    else:
        hi = const if hi is None else min(hi, const)
    ranges[key] = (lo, hi)


def _isect(current: Optional[set], incoming: Optional[Iterable]) -> Optional[set]:
    if incoming is None:
        return current
    incoming = set(incoming)
    return incoming if current is None else current & incoming


def _union(a: Optional[set], b: Optional[set]) -> Optional[set]:
    if a is None or b is None:
        return None
    return set(a) | set(b)


def _jointree_quals(item) -> Iterator[ex.Expr]:
    stack = [item]
    while stack:
        node = stack.pop()
        if isinstance(node, JoinTreeExpr):
            if node.quals is not None:
                yield node.quals
            stack.append(node.left)
            stack.append(node.right)


def _query_expressions(query: Query) -> Iterator[ex.Expr]:
    for entry in query.target_list:
        yield entry.expr
    if query.jointree.quals is not None:
        yield query.jointree.quals
    for item in query.jointree.items:
        yield from _jointree_quals(item)
    yield from query.group_clause
    if query.having is not None:
        yield query.having
    if query.limit_count is not None:
        yield query.limit_count
    if query.limit_offset is not None:
        yield query.limit_offset


# ---------------------------------------------------------------------------
# the analysis


class _Analysis:
    def __init__(self, partitioner: Partitioner) -> None:
        self.partitioner = partitioner
        self.n = partitioner.shards

    # -- nested nodes -------------------------------------------------------

    def node(self, query: Query) -> _Info:
        """Strict classification of a nested node (raises Fallback)."""
        if query.set_operations is not None:
            info = self._setop_info(query)
            broadcast, aligned, shards = info.broadcast, info.aligned, info.shards
        else:
            core = self._core(query)
            broadcast = core.broadcast
            shards = None if core.shards is None else frozenset(core.shards)
            if not broadcast and query.node_class() is QueryNodeClass.ASPJ:
                self._require_aligned_group(query, core)
            aligned = frozenset(self._aligned_positions(query, core.aligned))
        if not broadcast:
            if query.distinct and not aligned:
                raise Fallback(
                    "distinct-across-shards",
                    "nested DISTINCT with no shard-key output column",
                )
            if query.limit_count is not None or query.limit_offset is not None:
                raise Fallback(
                    "nested-limit",
                    "LIMIT/OFFSET below the root cannot be applied per shard",
                )
        return _Info(broadcast, aligned, shards)

    def _require_aligned_group(self, query: Query, core: _Unit) -> None:
        if not query.group_clause:
            raise Fallback(
                "grand-aggregate",
                "nested aggregate without grouping cannot run shard-local",
            )
        for group in query.group_clause:
            key = _var_key(group)
            if key is not None and key in core.aligned:
                return
        raise Fallback(
            "unaligned-aggregate",
            "nested GROUP BY has no shard-key grouping column",
        )

    def _aligned_positions(self, query: Query, aligned_keys: set) -> set:
        positions = set()
        for pos, entry in enumerate(query.visible_targets):
            key = _var_key(entry.expr)
            if key is not None and key in aligned_keys:
                positions.add(pos)
        return positions

    # -- SPJ core -----------------------------------------------------------

    def _core(self, query: Query) -> _Unit:
        for expr in _query_expressions(query):
            for sublink in ex.collect_sublinks(expr):
                self._require_broadcast_sublink(sublink)
        units = [self._jointree_unit(item, query) for item in query.jointree.items]
        return self._merge_inner(units, _conjuncts(query.jointree.quals))

    def _require_broadcast_sublink(self, sublink: ex.SubLink) -> None:
        try:
            info = self.node(sublink.subquery)
        except Fallback:
            info = None
        if info is None or not info.broadcast:
            raise Fallback(
                "sublink-over-partitioned",
                "subquery expression reads a partitioned table",
            )

    def _rte_unit(self, query: Query, rtindex: int) -> _Unit:
        rte = query.rte(rtindex)
        if rte.kind is RTEKind.RELATION:
            attno = self.partitioner.key_attno(rte.relation_name)
            if attno is None:
                return _Unit(True, set(), {rtindex}, None)
            return _Unit(False, {(rtindex, attno)}, {rtindex}, None)
        info = self.node(rte.subquery)
        if info.broadcast:
            return _Unit(True, set(), {rtindex}, None)
        aligned = {(rtindex, pos) for pos in info.aligned}
        shards = None if info.shards is None else set(info.shards)
        return _Unit(False, aligned, {rtindex}, shards)

    def _jointree_unit(self, item, query: Query) -> _Unit:
        if isinstance(item, RangeTableRef):
            return self._rte_unit(query, item.rtindex)
        left = self._jointree_unit(item.left, query)
        right = self._jointree_unit(item.right, query)
        on = _conjuncts(item.quals)
        if item.join_type in ("inner", "cross"):
            return self._merge_inner([left, right], on)
        if item.join_type == "left":
            return self._outer_unit(left, right, on)
        if item.join_type == "right":
            return self._outer_unit(right, left, on)
        return self._full_unit(left, right, on)

    def _merge_inner(self, units: list[_Unit], conjuncts: list[ex.Expr]) -> _Unit:
        varnos: set = set()
        for unit in units:
            varnos |= unit.varnos
        equis = []
        constraints = []
        ranges: dict = {}
        for conj in conjuncts:
            equi = _as_equi(conj)
            if equi is not None:
                equis.append(equi)
                continue
            constraint = _as_constraint(conj)
            if constraint is not None:
                constraints.append(constraint)
                continue
            _note_range(conj, ranges)
        disjoint = [unit for unit in units if not unit.broadcast]
        if not disjoint:
            return _Unit(True, set(), varnos, None)

        aligned: set = set()
        for unit in disjoint:
            aligned |= unit.aligned
        all_keys = set(aligned)
        for a, b in equis:
            all_keys.add(a)
            all_keys.add(b)
        for key, _ in constraints:
            all_keys.add(key)
        all_keys.update(ranges)

        # equality classes over var keys; a class containing an aligned
        # key makes every member aligned (conjuncts hold on result rows)
        keys_uf = _UnionFind()
        for a, b in equis:
            keys_uf.union(a, b)
        aligned_roots = {keys_uf.find(key) for key in aligned}

        def is_aligned(key) -> bool:
            return keys_uf.find(key) in aligned_roots

        aligned_closure = {key for key in all_keys if is_aligned(key)}

        # connectivity: two disjoint units join exactly iff an equality
        # class ties an *own* aligned key of each (matching rows then
        # share the key value, hence the shard) — transitive through
        # replicated columns.  A class merely touching one unit through
        # a non-key column (t.a = s.c with s partitioned on s.a) says
        # nothing about where the matching s rows live.
        aligned_members: dict = {}
        for index, unit in enumerate(disjoint):
            for key in unit.aligned:
                aligned_members.setdefault(keys_uf.find(key), set()).add(index)
        units_uf = _UnionFind()
        for indexes in aligned_members.values():
            if len(indexes) > 1:
                ordered = sorted(indexes)
                for other in ordered[1:]:
                    units_uf.union(ordered[0], other)
        components = {units_uf.find(index) for index in range(len(disjoint))}
        if len(components) > 1:
            raise Fallback(
                "cross-shard-join",
                "join between partitioned inputs without a shard-key equality",
            )

        shards: Optional[set] = None
        for unit in disjoint:
            shards = _isect(shards, unit.shards)
        for key, values in constraints:
            if is_aligned(key):
                shards = _isect(shards, {shard_of(v, self.n) for v in values})
        for key, (lo, hi) in ranges.items():
            if lo is None or hi is None:
                continue
            if is_aligned(key) and 0 <= hi - lo <= MAX_RANGE_SPAN:
                shards = _isect(
                    shards, {shard_of(v, self.n) for v in range(lo, hi + 1)}
                )
        return _Unit(False, aligned_closure, varnos, shards)

    def _outer_unit(self, preserved: _Unit, nullable: _Unit, on: list[ex.Expr]) -> _Unit:
        varnos = preserved.varnos | nullable.varnos
        if preserved.broadcast and nullable.broadcast:
            return _Unit(True, set(), varnos, None)
        if nullable.broadcast:
            # full replica of the nullable side on every shard: the outer
            # join is shard-local and row multiplicity follows the
            # preserved side exactly
            return _Unit(False, set(preserved.aligned), varnos, preserved.shards)
        if preserved.broadcast:
            raise Fallback(
                "outer-join-broadcast-preserved",
                "outer join preserving a replicated side against a partitioned side "
                "would null-extend its rows once per shard",
            )
        self._require_on_alignment(preserved, nullable, on, "outer")
        return _Unit(False, set(preserved.aligned), varnos, preserved.shards)

    def _full_unit(self, left: _Unit, right: _Unit, on: list[ex.Expr]) -> _Unit:
        varnos = left.varnos | right.varnos
        if left.broadcast and right.broadcast:
            return _Unit(True, set(), varnos, None)
        if left.broadcast or right.broadcast:
            raise Fallback(
                "outer-join-broadcast-preserved",
                "full join mixing replicated and partitioned sides would "
                "null-extend the replicated rows once per shard",
            )
        self._require_on_alignment(left, right, on, "full")
        # unmatched rows surface on their own shard; matched pairs are
        # co-located — but neither side's key survives NULL-extension,
        # so no output column stays aligned
        return _Unit(False, set(), varnos, _union(left.shards, right.shards))

    def _require_on_alignment(
        self, left: _Unit, right: _Unit, on: list[ex.Expr], what: str
    ) -> None:
        for conj in on:
            equi = _as_equi(conj)
            if equi is None:
                continue
            a, b = equi
            if a[0] in left.varnos and b[0] in right.varnos:
                pair = (a, b)
            elif b[0] in left.varnos and a[0] in right.varnos:
                pair = (b, a)
            else:
                continue
            if pair[0] in left.aligned and pair[1] in right.aligned:
                return
        raise Fallback(
            "cross-shard-join",
            f"{what} join between partitioned inputs without a shard-key "
            "equality in its ON clause",
        )

    # -- set operations -----------------------------------------------------

    def _setop_info(self, query: Query) -> _Info:
        def walk(node) -> _Info:
            if isinstance(node, SetOpRangeRef):
                return self.node(query.rte(node.rtindex).subquery)
            return self._combine_setop(node, walk(node.left), walk(node.right))

        return walk(query.set_operations)

    def _combine_setop(self, node: SetOpNode, left: _Info, right: _Info) -> _Info:
        if left.broadcast and right.broadcast:
            return _Info(True, frozenset(), None)
        if left.broadcast or right.broadcast:
            raise Fallback(
                "setop-mixed",
                f"{node.op} mixing replicated and partitioned arms",
            )
        aligned = left.aligned & right.aligned
        if node.op == "union" and node.all:
            shards = _union(
                None if left.shards is None else set(left.shards),
                None if right.shards is None else set(right.shards),
            )
            return _Info(False, aligned, None if shards is None else frozenset(shards))
        if not aligned:
            raise Fallback(
                f"setop-{node.op}",
                f"{node.op} arms are not co-partitioned on a shard-key column",
            )
        if node.op == "union":
            shards = _union(
                None if left.shards is None else set(left.shards),
                None if right.shards is None else set(right.shards),
            )
        elif node.op == "intersect":
            shards = _isect(
                None if left.shards is None else set(left.shards), right.shards
            )
        else:  # except: the result is a subset of the left arm
            shards = None if left.shards is None else set(left.shards)
        return _Info(False, aligned, None if shards is None else frozenset(shards))

    # -- the root -----------------------------------------------------------

    def root(self, query: Query) -> ScatterDecision:
        if query.set_operations is not None:
            info = self._setop_info(query)
            if info.broadcast:
                return self._single(query)
            shard_ids = self._shard_ids(info.shards)
            if query.distinct and not info.aligned:
                return self._dedupe(query, shard_ids)
            return self._concat(query, shard_ids)
        core = self._core(query)
        if core.broadcast:
            return self._single(query)
        shard_ids = self._shard_ids(core.shards)
        aligned_positions = self._aligned_positions(query, core.aligned)
        if query.node_class() is QueryNodeClass.ASPJ:
            aligned_group = query.group_clause and any(
                _var_key(group) in core.aligned
                for group in query.group_clause
                if _var_key(group) is not None
            )
            if not aligned_group:
                return self._reagg(query, shard_ids)
            # grouped by the shard key: groups are complete per shard
        if query.distinct and not aligned_positions:
            return self._dedupe(query, shard_ids)
        return self._concat(query, shard_ids)

    def _single(self, query: Query) -> ScatterDecision:
        return ScatterDecision((0,), self.n, query, MergeSpec(), "single", False)

    def _shard_ids(self, shards) -> tuple[int, ...]:
        if shards is None:
            return tuple(range(self.n))
        if not shards:
            # contradictory shard-key predicates: any one shard evaluates
            # them to an empty (but well-typed) result
            return (0,)
        return tuple(sorted(shards))

    def _sort_keys(self, query: Query) -> tuple[tuple[int, bool, Optional[bool]], ...]:
        visible_position = {}
        position = 0
        for index, entry in enumerate(query.target_list):
            if not entry.resjunk:
                visible_position[index] = position
                position += 1
        keys = []
        for clause in query.sort_clause:
            if clause.tlist_index not in visible_position:
                raise Fallback(
                    "order-by-hidden",
                    "ORDER BY key is not part of the visible result and cannot "
                    "be re-sorted at the gatherer",
                )
            keys.append(
                (visible_position[clause.tlist_index], clause.descending, clause.nulls_first)
            )
        return tuple(keys)

    def _limit_consts(self, query: Query) -> tuple[Optional[int], int]:
        def const_of(expr: Optional[ex.Expr], what: str) -> Optional[int]:
            if expr is None:
                return None
            if not isinstance(expr, ex.Const):
                raise Fallback(
                    "dynamic-limit", f"non-constant {what} cannot be re-applied at the gatherer"
                )
            return expr.value
        limit = const_of(query.limit_count, "LIMIT")
        offset = const_of(query.limit_offset, "OFFSET") or 0
        return limit, offset

    def _pruned(self, shard_ids: tuple[int, ...]) -> bool:
        return len(shard_ids) < self.n

    def _concat(self, query: Query, shard_ids: tuple[int, ...]) -> ScatterDecision:
        sort_keys = self._sort_keys(query)
        limit, offset = self._limit_consts(query)
        shard_query = query
        if query.limit_count is not None or query.limit_offset is not None:
            # OFFSET applies only at the gatherer (a shard-local skip
            # would drop rows twice); each shard returns its own sorted
            # limit+offset prefix and the gatherer cuts the global one
            shard_query = query.deep_copy()
            shard_query.limit_offset = None
            if limit is not None:
                shard_query.limit_count = ex.Const(
                    limit + offset, query.limit_count.type
                )
        merge = MergeSpec(sort_keys=sort_keys, limit=limit, offset=offset)
        return ScatterDecision(
            shard_ids, self.n, shard_query, merge, "concat", self._pruned(shard_ids)
        )

    def _dedupe(self, query: Query, shard_ids: tuple[int, ...]) -> ScatterDecision:
        sort_keys = self._sort_keys(query)
        limit, offset = self._limit_consts(query)
        shard_query = query
        if query.limit_count is not None or query.limit_offset is not None:
            # LIMIT/OFFSET apply only at the gatherer, after the global
            # dedupe; a limit pushes down as a shard-local prefix only
            # under ORDER BY, where each globally-surviving row sits
            # within its shard's sorted distinct prefix
            shard_query = query.deep_copy()
            shard_query.limit_offset = None
            if limit is not None and sort_keys:
                shard_query.limit_count = ex.Const(
                    limit + offset, query.limit_count.type
                )
            else:
                shard_query.limit_count = None
        merge = MergeSpec(sort_keys=sort_keys, limit=limit, offset=offset, dedupe=True)
        return ScatterDecision(
            shard_ids, self.n, shard_query, merge, "dedupe", self._pruned(shard_ids)
        )

    def _reagg(self, query: Query, shard_ids: tuple[int, ...]) -> ScatterDecision:
        if query.distinct:
            raise Fallback(
                "distinct-across-shards", "DISTINCT over re-aggregated output"
            )
        if query.having is not None:
            raise Fallback(
                "unaligned-having",
                "HAVING over groups that re-aggregate at the gatherer would "
                "filter partial states",
            )
        if any(entry.resjunk for entry in query.target_list):
            raise Fallback(
                "order-by-hidden",
                "ORDER BY key is not part of the visible result and cannot "
                "be re-sorted at the gatherer",
            )
        visible = query.visible_targets
        for group in query.group_clause:
            if not any(entry.expr == group for entry in visible):
                raise Fallback(
                    "unaligned-aggregate",
                    "grouping key missing from the select list cannot be "
                    "re-grouped at the gatherer",
                )
        spec = []
        for entry in visible:
            if any(entry.expr == group for group in query.group_clause):
                spec.append(("key",))
                continue
            expr = entry.expr
            if not isinstance(expr, ex.Aggref):
                raise Fallback(
                    "composite-aggregate",
                    f"computed output {entry.name!r} over aggregates cannot "
                    "merge from per-shard finals",
                )
            if expr.distinct:
                raise Fallback(
                    "distinct-aggregate",
                    f"{expr.aggname}(DISTINCT ...) finals do not merge across shards",
                )
            if expr.aggname not in MERGEABLE_AGGS:
                raise Fallback(
                    "composite-aggregate",
                    f"{expr.aggname} finals are not mergeable (composite state)",
                )
            spec.append(("agg", expr.aggname))
        sort_keys = self._sort_keys(query)
        limit, offset = self._limit_consts(query)
        shard_query = query
        if sort_keys or limit is not None or query.limit_offset is not None:
            shard_query = query.deep_copy()
            shard_query.sort_clause = []
            shard_query.limit_count = None
            shard_query.limit_offset = None
        merge = MergeSpec(
            sort_keys=sort_keys, limit=limit, offset=offset, reagg=tuple(spec)
        )
        return ScatterDecision(
            shard_ids, self.n, shard_query, merge, "reagg", self._pruned(shard_ids)
        )
