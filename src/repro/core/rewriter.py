"""The Perm provenance rewrite module (paper sections III-C and IV).

Entry points:

* :func:`traverse_query_tree` -- the paper's ``traverseQueryTree``: walk a
  query tree, rewrite every node marked ``SELECT PROVENANCE`` and return
  the (possibly replaced) root.
* :func:`rewrite_query_node` -- the paper's ``rewriteQueryNode``: rewrite
  one node, returning the new node and its P-list (the list of provenance
  attributes appended to the node's result schema).

The three node classes (paper Fig. 6):

**SPJ** -- rewrite every range table entry, then append one target entry
per provenance attribute.  Base relations use rule R1 (duplicate +
rename); subqueries are rewritten recursively (rules R2-R4 compose into
"append the subqueries' P-lists").  Sublinks in WHERE and in the target
list are rewritten per section IV-E.

**ASPJ** -- keep the original aggregation node ``q_agg`` (semantics
preserved, including HAVING/ORDER/LIMIT), build a duplicate ``d`` with
aggregation, HAVING and the original projection stripped and the grouping
expressions as its target list, rewrite ``d`` as an SPJ node, and join
``q_agg`` with ``d+`` on null-safe equality of the grouping attributes
(rule R5).  HAVING/target sublinks attach at the new top node.

**Set operation** -- binarize the set-operation tree, then per binary node
keep the original operation ``q_set`` and join it with the rewritten
duplicates of its two inputs: left joins on null-safe tuple equality for
union, inner joins for intersection, and for difference attach ``T1+`` by
equality and ``T2+`` by tuple inequality (bag) or unconditionally (set)
-- rules R6-R9, built with the Fig. 6.3b node-splitting strategy used by
the evaluated prototype.  The except-free single-top-node variant
(Fig. 6.3a) is available as ``setop_strategy="flat"`` for the ablation
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.datatypes import SQLType
from repro.errors import RewriteError
from repro.analyzer import expressions as ex
from repro.analyzer.query_tree import (
    FromExpr,
    JoinTreeExpr,
    JoinTreeNode,
    Query,
    RangeTableEntry,
    RangeTableRef,
    RTEKind,
    SetOpNode,
    SetOpRangeRef,
    SetOpTreeNode,
    TargetEntry,
    binary_setop_query,
    subquery_rte,
)
from repro.core.naming import ProvenanceAttribute, ProvenanceNamer
from repro.core.pstack import PList, PStack, concat_plists
from repro.core.registry import (
    DEFAULT_STRATEGY,
    RewriteStrategy,
    get_rewrite_strategy,
    register_rewrite_strategy,
)

BOOL = SQLType.BOOLEAN


@dataclass
class _ProvColumn:
    """A provenance attribute plus the Var that reads it."""

    attribute: ProvenanceAttribute
    var: ex.Var


class ProvenanceRewriter:
    """One rewrite scope: a namer plus the paper's pStack."""

    def __init__(self, setop_strategy: str = "split") -> None:
        if setop_strategy not in ("split", "flat"):
            raise ValueError("setop_strategy must be 'split' or 'flat'")
        self.namer = ProvenanceNamer()
        self.pstack = PStack()
        self.setop_strategy = setop_strategy
        self._sublink_counter = 0

    # ------------------------------------------------------------------
    # traverseQueryTree (paper Fig. 7)
    # ------------------------------------------------------------------

    def traverse(self, query: Query) -> Query:
        if query.provenance:
            rewritten, _ = self.rewrite_node(query)
            return rewritten
        for rte in query.range_table:
            if rte.kind is RTEKind.SUBQUERY and rte.subquery is not None:
                sub = rte.subquery
                if sub.provenance and (sub.provenance_type or DEFAULT_STRATEGY) != DEFAULT_STRATEGY:
                    # A nested node marked with a non-default semantics
                    # (e.g. polynomial) rewrites through the registry.
                    strategy = get_rewrite_strategy(sub.provenance_type)
                    rewritten, attrs = strategy.rewrite_subquery(sub)
                    rte.subquery = rewritten
                    rte.column_names = list(rewritten.output_columns())
                    rte.column_types = list(rewritten.output_types())
                    if rte.provenance_attrs is None:
                        rte.provenance_attrs = attrs
                elif sub.provenance:
                    rewritten, plist = self.rewrite_node(sub)
                    rte.subquery = rewritten
                    rte.column_names = list(rewritten.output_columns())
                    rte.column_types = list(rewritten.output_types())
                    if rte.provenance_attrs is None:
                        rte.provenance_attrs = tuple(a.name for a in plist)
                else:
                    rte.subquery = self.traverse(sub)
        return query

    # ------------------------------------------------------------------
    # rewriteQueryNode (paper Fig. 7)
    # ------------------------------------------------------------------

    def rewrite_node(self, query: Query) -> tuple[Query, PList]:
        """Rewrite one query node; returns (q+, P-list) and pushes the
        P-list on the pStack."""
        self._reject_correlated(query)
        into = query.into
        query.into = None
        node_class = query.node_class().value
        if node_class == "setop":
            rewritten, plist = self._rewrite_setop_node(query)
        elif node_class == "aspj":
            rewritten, plist = self._rewrite_aspj_node(query)
        else:
            rewritten, plist = self._rewrite_spj_node(query)
        rewritten.provenance = False
        rewritten.into = into
        self.pstack.push(plist)
        return rewritten, plist

    # ------------------------------------------------------------------
    # SPJ (paper Fig. 6.1)
    # ------------------------------------------------------------------

    def _rewrite_spj_node(self, query: Query) -> tuple[Query, PList]:
        prov_columns: list[_ProvColumn] = []
        for rtindex, rte in enumerate(query.range_table):
            prov_columns.extend(self._rewrite_rte(rtindex, rte))
        # Sublinks in WHERE (section IV-E).
        prov_columns.extend(self._rewrite_where_sublinks(query))
        # Scalar sublinks in the target list contribute unconditionally.
        prov_columns.extend(self._rewrite_target_sublinks(query))
        for column in prov_columns:
            query.target_list.append(
                TargetEntry(expr=column.var, name=column.attribute.name)
            )
        return query, [c.attribute for c in prov_columns]

    def _rewrite_rte(self, rtindex: int, rte: RangeTableEntry) -> list[_ProvColumn]:
        """Rewrite one range table entry, returning its provenance columns.

        Cases (in priority order):

        1. ``PROVENANCE (attrs)`` annotation -- already rewritten/external
           provenance (section IV-A.3): accept as-is.
        2. ``BASERELATION`` -- rule R1 on the item's visible schema
           (section IV-A.4).
        3. base relation -- rule R1.
        4. subquery -- rewrite recursively and re-export its P-list.
        """
        if rte.provenance_attrs is not None:
            columns: list[_ProvColumn] = []
            for name in rte.provenance_attrs:
                attno = self._find_column(rte, name)
                attribute = ProvenanceAttribute(
                    name=name.lower(),
                    relation=rte.alias,
                    ref_id=0,
                    source_column=name.lower(),
                    type=rte.column_types[attno],
                )
                columns.append(
                    _ProvColumn(attribute, self._var(rtindex, attno, rte))
                )
            return columns
        if rte.base_relation or rte.kind is RTEKind.RELATION:
            relation_name = (
                rte.relation_name
                if rte.kind is RTEKind.RELATION and not rte.base_relation
                else rte.alias
            )
            attributes = self.namer.attributes_for_relation(
                relation_name or rte.alias,
                list(rte.column_names),
                list(rte.column_types),
            )
            return [
                _ProvColumn(attribute, self._var(rtindex, attno, rte))
                for attno, attribute in enumerate(attributes)
            ]
        # Plain subquery: rewrite recursively (the rewritten subquery's
        # provenance attributes surface as new output columns).
        old_width = rte.width()
        rewritten, plist = self.rewrite_node(rte.subquery)
        self.pstack.pop()  # consumed immediately by this parent
        rte.subquery = rewritten
        rte.column_names = list(rte.column_names) + [a.name for a in plist]
        rte.column_types = list(rte.column_types) + [a.type for a in plist]
        return [
            _ProvColumn(
                attribute,
                ex.Var(
                    varno=rtindex,
                    varattno=old_width + offset,
                    type=attribute.type,
                    name=attribute.name,
                ),
            )
            for offset, attribute in enumerate(plist)
        ]

    @staticmethod
    def _find_column(rte: RangeTableEntry, name: str) -> int:
        low = name.lower()
        for attno, column in enumerate(rte.column_names):
            if column.lower() == low:
                return attno
        raise RewriteError(
            f"PROVENANCE attribute {name!r} not found in from-item {rte.alias!r}"
        )

    @staticmethod
    def _var(rtindex: int, attno: int, rte: RangeTableEntry) -> ex.Var:
        return ex.Var(
            varno=rtindex,
            varattno=attno,
            type=rte.column_types[attno],
            name=rte.column_names[attno],
        )

    # ------------------------------------------------------------------
    # Sublinks (paper section IV-E)
    # ------------------------------------------------------------------

    def _reject_correlated(self, query: Query) -> None:
        for expr in _node_expressions(query):
            for node in ex.walk(expr):
                if isinstance(node, ex.SubLink) and node.correlated:
                    raise RewriteError(
                        "correlated sublinks are not supported by the "
                        "provenance rewriter (paper section IV-E)"
                    )

    def _rewrite_where_sublinks(self, query: Query) -> list[_ProvColumn]:
        quals = query.jointree.quals
        if quals is None:
            return []
        prov_columns: list[_ProvColumn] = []
        for sublink in _ordered_sublinks(quals):
            join_cond, columns = self._build_sublink_join(
                query, sublink, condition=quals
            )
            self._attach_left_join(query, join_cond)
            prov_columns.extend(columns)
        return prov_columns

    def _rewrite_target_sublinks(self, query: Query) -> list[_ProvColumn]:
        prov_columns: list[_ProvColumn] = []
        for target in list(query.target_list):
            for sublink in _ordered_sublinks(target.expr):
                join_cond, columns = self._build_sublink_join(
                    query, sublink, condition=None
                )
                self._attach_left_join(query, join_cond)
                prov_columns.extend(columns)
        return prov_columns

    def _build_sublink_join(
        self,
        query: Query,
        sublink: ex.SubLink,
        condition: Optional[ex.Expr],
    ) -> tuple[ex.Expr, list[_ProvColumn]]:
        """Add the rewritten sublink query to the range table.

        Returns the join condition ``J'`` and the provenance columns.  The
        original condition keeps the untouched sublink for filtering; the
        rewritten *copy* is joined in purely to attach provenance.
        """
        sub_original_width = len(sublink.subquery.visible_targets)
        sub_copy = sublink.subquery.deep_copy()
        rewritten, plist = self.rewrite_node(sub_copy)
        self.pstack.pop()
        alias = f"perm_sublink_{self._sublink_counter}"
        self._sublink_counter += 1
        rte = RangeTableEntry(
            kind=RTEKind.SUBQUERY,
            alias=alias,
            column_names=list(rewritten.output_columns()),
            column_types=list(rewritten.output_types()),
            subquery=rewritten,
        )
        rtindex = query.add_rte(rte)

        join_cond = self._witness_condition(sublink, rtindex, rte)
        if condition is not None:
            independent = _simplify_bools(_neutralize_sublink(condition, sublink))
            if not _is_const_false(independent):
                join_cond = ex.BoolOpExpr("or", (join_cond, independent))

        columns = [
            _ProvColumn(
                attribute,
                ex.Var(
                    varno=rtindex,
                    varattno=sub_original_width + offset,
                    type=attribute.type,
                    name=attribute.name,
                ),
            )
            for offset, attribute in enumerate(plist)
        ]
        return join_cond, columns

    def _witness_condition(
        self, sublink: ex.SubLink, rtindex: int, rte: RangeTableEntry
    ) -> ex.Expr:
        """The contribution condition J for one sublink tuple.

        * ANY (IN): tuples satisfying the comparison witness the result.
        * ALL (NOT IN as ``<> ALL``): the result holds only when *every*
          tuple satisfies the comparison, so exactly the tuples satisfying
          it contribute (the paper's Q16 discussion: every tuple that did
          not fulfill the original IN condition).
        * EXISTS / scalar: every tuple of the sublink query contributes.
        """
        if sublink.kind in (ex.SubLinkKind.ANY, ex.SubLinkKind.ALL):
            sub_var = ex.Var(
                varno=rtindex,
                varattno=0,
                type=rte.column_types[0],
                name=rte.column_names[0],
            )
            return ex.OpExpr(
                sublink.operator or "=", (sublink.testexpr, sub_var), BOOL
            )
        return ex.Const(True, BOOL)

    @staticmethod
    def _attach_left_join(query: Query, join_cond: ex.Expr) -> None:
        """LEFT JOIN the last range table entry against the rest of FROM."""
        new_ref = RangeTableRef(len(query.range_table) - 1)
        items = query.jointree.items
        if not items:
            # FROM-less query with a sublink: the join degenerates to a
            # filtered scan of the sublink relation preserving emptiness.
            query.jointree.items = [new_ref]
            existing_quals = query.jointree.quals
            query.jointree.quals = (
                join_cond
                if existing_quals is None
                else ex.BoolOpExpr("and", (existing_quals, join_cond))
            )
            return
        left: JoinTreeNode = items[0]
        for item in items[1:]:
            left = JoinTreeExpr(join_type="inner", left=left, right=item, quals=None)
        query.jointree.items = [
            JoinTreeExpr(join_type="left", left=left, right=new_ref, quals=join_cond)
        ]

    # ------------------------------------------------------------------
    # ASPJ (paper Fig. 6.2, rule R5)
    # ------------------------------------------------------------------

    def _rewrite_aspj_node(self, query: Query) -> tuple[Query, PList]:
        group_count = len(query.group_clause)

        # q_agg: the original aggregation, kept intact; extended with its
        # grouping expressions so the top node can join on them.
        q_agg = query
        q_agg.provenance = False
        original_width = len(q_agg.visible_targets)
        agg_group_slots: list[int] = []
        for i, group_expr in enumerate(query.group_clause):
            q_agg.target_list.append(
                TargetEntry(expr=group_expr, name=f"perm_g{i}")
            )
            agg_group_slots.append(original_width + i)

        # d: the duplicate with aggregation stripped (target list = the
        # grouping expressions), rewritten as an SPJ node.
        having = q_agg.having
        duplicate = Query(
            target_list=[
                TargetEntry(expr=g, name=f"perm_g{i}")
                for i, g in enumerate(query.group_clause)
            ],
            range_table=[_copy_rte(rte) for rte in query.range_table],
            jointree=_copy_jointree(query.jointree),
            group_clause=[],
            having=None,
            distinct=False,
            has_aggs=False,
        )
        d_plus, d_plist = self.rewrite_node(duplicate)
        self.pstack.pop()

        # Qtop: join q_agg with d+ on null-safe equality of the grouping
        # attributes (NULL group keys match their NULL group, as GROUP BY
        # itself treats NULLs as equal).
        top = Query()
        agg_rte = _subquery_rte(q_agg, alias="perm_agg")
        prov_rte = _subquery_rte(d_plus, alias="perm_prov")
        agg_index = top.add_rte(agg_rte)
        prov_index = top.add_rte(prov_rte)
        join_quals: Optional[ex.Expr] = None
        conjuncts = [
            ex.OpExpr(
                "<=>",
                (
                    ex.Var(
                        varno=agg_index,
                        varattno=agg_group_slots[i],
                        type=query.group_clause[i].type,
                        name=f"perm_g{i}",
                    ),
                    ex.Var(
                        varno=prov_index,
                        varattno=i,
                        type=query.group_clause[i].type,
                        name=f"perm_g{i}",
                    ),
                ),
                BOOL,
            )
            for i in range(group_count)
        ]
        if conjuncts:
            join_quals = (
                conjuncts[0]
                if len(conjuncts) == 1
                else ex.BoolOpExpr("and", tuple(conjuncts))
            )
        top.jointree = FromExpr(
            items=[
                JoinTreeExpr(
                    join_type="inner",
                    left=RangeTableRef(agg_index),
                    right=RangeTableRef(prov_index),
                    quals=join_quals,
                )
            ]
        )

        # Top target list: the original visible outputs, then provenance.
        for attno in range(original_width):
            top.target_list.append(
                TargetEntry(
                    expr=ex.Var(
                        varno=agg_index,
                        varattno=attno,
                        type=agg_rte.column_types[attno],
                        name=agg_rte.column_names[attno],
                    ),
                    name=agg_rte.column_names[attno],
                )
            )
        prov_columns: list[_ProvColumn] = [
            _ProvColumn(
                attribute,
                ex.Var(
                    varno=prov_index,
                    varattno=group_count + offset,
                    type=attribute.type,
                    name=attribute.name,
                ),
            )
            for offset, attribute in enumerate(d_plist)
        ]
        # Sublinks in HAVING and in aggregate target expressions attach
        # their provenance at the top node (q_agg keeps the originals).
        prov_columns.extend(
            self._rewrite_top_level_sublinks(
                top, q_agg, agg_index, having, original_width
            )
        )
        for column in prov_columns:
            top.target_list.append(
                TargetEntry(expr=column.var, name=column.attribute.name)
            )
        return top, [c.attribute for c in prov_columns]

    def _rewrite_top_level_sublinks(
        self,
        top: Query,
        q_agg: Query,
        agg_index: int,
        having: Optional[ex.Expr],
        original_width: int,
    ) -> list[_ProvColumn]:
        """Attach provenance for sublinks in HAVING / aggregate targets.

        The witness condition may reference aggregate results; those are
        exported from ``q_agg`` as extra columns so the top-level join can
        evaluate them.
        """
        prov_columns: list[_ProvColumn] = []
        sublinks: list[tuple[ex.SubLink, Optional[ex.Expr]]] = []
        if having is not None:
            sublinks.extend(
                (sublink, having) for sublink in _ordered_sublinks(having)
            )
        for target in q_agg.target_list[:original_width]:
            sublinks.extend(
                (sublink, None) for sublink in _ordered_sublinks(target.expr)
            )
        for sublink, condition in sublinks:
            prov_columns.extend(
                self._attach_top_sublink(top, q_agg, agg_index, sublink, condition)
            )
        return prov_columns

    def _attach_top_sublink(
        self,
        top: Query,
        q_agg: Query,
        agg_index: int,
        sublink: ex.SubLink,
        condition: Optional[ex.Expr],
    ) -> list[_ProvColumn]:
        sub_original_width = len(sublink.subquery.visible_targets)
        sub_copy = sublink.subquery.deep_copy()
        rewritten, plist = self.rewrite_node(sub_copy)
        self.pstack.pop()
        alias = f"perm_sublink_{self._sublink_counter}"
        self._sublink_counter += 1
        rte = RangeTableEntry(
            kind=RTEKind.SUBQUERY,
            alias=alias,
            column_names=list(rewritten.output_columns()),
            column_types=list(rewritten.output_types()),
            subquery=rewritten,
        )
        rtindex = top.add_rte(rte)

        if sublink.kind in (ex.SubLinkKind.ANY, ex.SubLinkKind.ALL):
            # Export the test expression (which may contain aggregates)
            # from q_agg and compare it with the sublink output column.
            test_slot = len(q_agg.target_list)
            q_agg.target_list.append(
                TargetEntry(expr=sublink.testexpr, name=f"perm_ht{rtindex}")
            )
            agg_rte = top.range_table[agg_index]
            agg_rte.column_names.append(f"perm_ht{rtindex}")
            agg_rte.column_types.append(sublink.testexpr.type)
            test_var = ex.Var(
                varno=agg_index,
                varattno=self._visible_position(q_agg, test_slot),
                type=sublink.testexpr.type,
                name=f"perm_ht{rtindex}",
            )
            sub_var = ex.Var(
                varno=rtindex,
                varattno=0,
                type=rte.column_types[0],
                name=rte.column_names[0],
            )
            join_cond: ex.Expr = ex.OpExpr(
                sublink.operator or "=", (test_var, sub_var), BOOL
            )
            if condition is not None:
                independent = _simplify_bools(
                    _neutralize_sublink(condition, sublink)
                )
                if not _is_const_false(independent):
                    indep_slot = len(q_agg.target_list)
                    q_agg.target_list.append(
                        TargetEntry(expr=independent, name=f"perm_hi{rtindex}")
                    )
                    agg_rte.column_names.append(f"perm_hi{rtindex}")
                    agg_rte.column_types.append(BOOL)
                    indep_var = ex.Var(
                        varno=agg_index,
                        varattno=self._visible_position(q_agg, indep_slot),
                        type=BOOL,
                        name=f"perm_hi{rtindex}",
                    )
                    join_cond = ex.BoolOpExpr("or", (join_cond, indep_var))
        else:
            join_cond = ex.Const(True, BOOL)

        top.jointree.items = [
            JoinTreeExpr(
                join_type="left",
                left=top.jointree.items[0],
                right=RangeTableRef(rtindex),
                quals=join_cond,
            )
        ]
        return [
            _ProvColumn(
                attribute,
                ex.Var(
                    varno=rtindex,
                    varattno=sub_original_width + offset,
                    type=attribute.type,
                    name=attribute.name,
                ),
            )
            for offset, attribute in enumerate(plist)
        ]

    @staticmethod
    def _visible_position(query: Query, tlist_index: int) -> int:
        """Output position of target ``tlist_index`` (junk removed)."""
        position = 0
        for i, target in enumerate(query.target_list):
            if i == tlist_index:
                return position
            if not target.resjunk:
                position += 1
        raise RewriteError("target index out of range")  # pragma: no cover

    # ------------------------------------------------------------------
    # Set operations (paper Fig. 6.3, rules R6-R9)
    # ------------------------------------------------------------------

    def _rewrite_setop_node(self, query: Query) -> tuple[Query, PList]:
        tree = query.set_operations
        assert tree is not None
        if isinstance(tree, SetOpRangeRef):  # degenerate single leaf
            inner = query.range_table[tree.rtindex].subquery
            return self.rewrite_node(inner)
        # The flat strategy (Fig. 6.3a) is only equivalent for homogeneous
        # except-free trees: mixed trees need the per-node membership
        # semijoins that the splitting strategy provides.
        ops = _tree_operators(tree)
        if self.setop_strategy == "flat" and len(ops) == 1 and "except" not in ops:
            return self._rewrite_setop_flat(query, tree)
        return self._rewrite_setop_split(query, tree)

    def _rewrite_setop_split(
        self, query: Query, tree: SetOpNode
    ) -> tuple[Query, PList]:
        """Fig. 6.3b: split into a binary node, rewrite both inputs."""
        left_query = self._subtree_query(query, tree.left)
        right_query = self._subtree_query(query, tree.right)

        # The original binary set operation, kept for the original result;
        # it inherits the original node's ORDER BY / LIMIT so the original
        # semantics (e.g. LIMIT before provenance expansion) is preserved.
        q_set = _binary_setop_query(tree.op, tree.all, left_query, right_query)
        q_set.sort_clause = list(query.sort_clause)
        q_set.limit_count = query.limit_count
        q_set.limit_offset = query.limit_offset

        left_dup, left_plist = self.rewrite_node(left_query.deep_copy())
        self.pstack.pop()
        right_dup, right_plist = self.rewrite_node(right_query.deep_copy())
        self.pstack.pop()

        top = Query()
        set_rte = _subquery_rte(q_set, alias="perm_set")
        set_index = top.add_rte(set_rte)
        left_rte = _subquery_rte(left_dup, alias="perm_left")
        left_index = top.add_rte(left_rte)
        width = len(set_rte.column_names)

        def tuple_eq(other_index: int) -> ex.Expr:
            conjuncts = [
                ex.OpExpr(
                    "<=>",
                    (
                        _rte_var(top, set_index, attno),
                        _rte_var(top, other_index, attno),
                    ),
                    BOOL,
                )
                for attno in range(width)
            ]
            if len(conjuncts) == 1:
                return conjuncts[0]
            return ex.BoolOpExpr("and", tuple(conjuncts))

        if tree.op == "union":
            # R6: left joins on tuple equality with both rewritten inputs.
            join1 = JoinTreeExpr(
                join_type="left",
                left=RangeTableRef(set_index),
                right=RangeTableRef(left_index),
                quals=tuple_eq(left_index),
            )
            right_rte = _subquery_rte(right_dup, alias="perm_right")
            right_index = top.add_rte(right_rte)
            join2 = JoinTreeExpr(
                join_type="left",
                left=join1,
                right=RangeTableRef(right_index),
                quals=tuple_eq(right_index),
            )
            top.jointree = FromExpr(items=[join2])
        elif tree.op == "intersect":
            # R7: inner joins on tuple equality with both rewritten inputs.
            join1 = JoinTreeExpr(
                join_type="inner",
                left=RangeTableRef(set_index),
                right=RangeTableRef(left_index),
                quals=tuple_eq(left_index),
            )
            right_rte = _subquery_rte(right_dup, alias="perm_right")
            right_index = top.add_rte(right_rte)
            join2 = JoinTreeExpr(
                join_type="inner",
                left=join1,
                right=RangeTableRef(right_index),
                quals=tuple_eq(right_index),
            )
            top.jointree = FromExpr(items=[join2])
        else:  # except
            # R8/R9: T1+ attaches by equality; T2+ by tuple inequality for
            # the bag version, unconditionally for the set version (every
            # T2 tuple differs from a surviving result tuple).
            join1 = JoinTreeExpr(
                join_type="left",
                left=RangeTableRef(set_index),
                right=RangeTableRef(left_index),
                quals=tuple_eq(left_index),
            )
            right_rte = _subquery_rte(right_dup, alias="perm_right")
            right_index = top.add_rte(right_rte)
            if tree.all:
                inequality = ex.BoolOpExpr("not", (tuple_eq(right_index),))
            else:
                inequality = ex.Const(True, BOOL)
            join2 = JoinTreeExpr(
                join_type="left",
                left=join1,
                right=RangeTableRef(right_index),
                quals=inequality,
            )
            top.jointree = FromExpr(items=[join2])

        for attno in range(width):
            top.target_list.append(
                TargetEntry(
                    expr=_rte_var(top, set_index, attno),
                    name=set_rte.column_names[attno],
                )
            )
        prov_columns = self._reexport_plist(
            top, left_index, left_plist, base_width=len(left_query.visible_targets)
        )
        prov_columns += self._reexport_plist(
            top, right_index, right_plist, base_width=len(right_query.visible_targets)
        )
        for column in prov_columns:
            top.target_list.append(
                TargetEntry(expr=column.var, name=column.attribute.name)
            )
        return top, [c.attribute for c in prov_columns]

    def _rewrite_setop_flat(
        self, query: Query, tree: SetOpNode
    ) -> tuple[Query, PList]:
        """Fig. 6.3a: one top node joining q_set with all rewritten leaves.

        Only valid for except-free trees.  Union leaves attach by left
        join, intersection leaves by inner join, on null-safe tuple
        equality with the set operation result.
        """
        join_kind = "left" if tree.op == "union" else "inner"
        leaves = [(ref, join_kind) for ref in _tree_leaf_refs(tree)]
        q_set = query  # the original set operation query node, unchanged
        q_set.provenance = False

        top = Query()
        set_rte = _subquery_rte(q_set, alias="perm_set")
        set_index = top.add_rte(set_rte)
        width = len(set_rte.column_names)
        current: JoinTreeNode = RangeTableRef(set_index)
        prov_columns: list[_ProvColumn] = []
        for leaf_number, (leaf_ref, join_kind) in enumerate(leaves):
            leaf_query = q_set.range_table[leaf_ref.rtindex].subquery
            leaf_width = len(leaf_query.visible_targets)
            rewritten, plist = self.rewrite_node(leaf_query.deep_copy())
            self.pstack.pop()
            leaf_rte = _subquery_rte(rewritten, alias=f"perm_leaf_{leaf_number}")
            leaf_index = top.add_rte(leaf_rte)
            conjuncts = [
                ex.OpExpr(
                    "<=>",
                    (
                        _rte_var(top, set_index, attno),
                        _rte_var(top, leaf_index, attno),
                    ),
                    BOOL,
                )
                for attno in range(width)
            ]
            quals: ex.Expr = (
                conjuncts[0]
                if len(conjuncts) == 1
                else ex.BoolOpExpr("and", tuple(conjuncts))
            )
            current = JoinTreeExpr(
                join_type=join_kind, left=current, right=RangeTableRef(leaf_index),
                quals=quals,
            )
            prov_columns += self._reexport_plist(
                top, leaf_index, plist, base_width=leaf_width
            )
        top.jointree = FromExpr(items=[current])
        for attno in range(width):
            top.target_list.append(
                TargetEntry(
                    expr=_rte_var(top, set_index, attno),
                    name=set_rte.column_names[attno],
                )
            )
        for column in prov_columns:
            top.target_list.append(
                TargetEntry(expr=column.var, name=column.attribute.name)
            )
        return top, [c.attribute for c in prov_columns]

    def _subtree_query(self, query: Query, node: SetOpTreeNode) -> Query:
        """Materialize a set-operation subtree as its own query node."""
        if isinstance(node, SetOpRangeRef):
            return query.range_table[node.rtindex].subquery
        left = self._subtree_query(query, node.left)
        right = self._subtree_query(query, node.right)
        return _binary_setop_query(node.op, node.all, left, right)

    @staticmethod
    def _reexport_plist(
        top: Query, rtindex: int, plist: PList, base_width: int
    ) -> list[_ProvColumn]:
        return [
            _ProvColumn(
                attribute,
                ex.Var(
                    varno=rtindex,
                    varattno=base_width + offset,
                    type=attribute.type,
                    name=attribute.name,
                ),
            )
            for offset, attribute in enumerate(plist)
        ]


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------


def traverse_query_tree(query: Query, setop_strategy: str = "split") -> Query:
    """Rewrite all provenance-marked nodes of a query tree (Fig. 7).

    A root marked with a non-default contribution semantics (``SELECT
    PROVENANCE (polynomial) ...``) dispatches to the registered rewrite
    strategy; everything else takes the witness-list path.
    """
    if query.provenance and (query.provenance_type or DEFAULT_STRATEGY) != DEFAULT_STRATEGY:
        return get_rewrite_strategy(query.provenance_type).rewrite_root(query)
    return ProvenanceRewriter(setop_strategy).traverse(query)


def rewrite_query_node(
    query: Query, setop_strategy: str = "split"
) -> tuple[Query, PList]:
    """Rewrite one query node unconditionally; returns (q+, P-list)."""
    return ProvenanceRewriter(setop_strategy).rewrite_node(query)


def _rewrite_witness_root(query: Query) -> Query:
    rewritten, _ = ProvenanceRewriter().rewrite_node(query)
    return rewritten


def _rewrite_witness_subquery(query: Query) -> tuple[Query, tuple[str, ...]]:
    rewritten, plist = ProvenanceRewriter().rewrite_node(query)
    return rewritten, tuple(a.name for a in plist)


register_rewrite_strategy(
    RewriteStrategy(
        name="witness",
        description="witness lists: contributing base tuples per result tuple",
        rewrite_root=_rewrite_witness_root,
        rewrite_subquery=_rewrite_witness_subquery,
    )
)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _node_expressions(query: Query):
    for target in query.target_list:
        yield target.expr
    if query.jointree.quals is not None:
        yield query.jointree.quals
    stack = list(query.jointree.items)
    while stack:
        node = stack.pop()
        if isinstance(node, JoinTreeExpr):
            if node.quals is not None:
                yield node.quals
            stack.append(node.left)
            stack.append(node.right)
    yield from query.group_clause
    if query.having is not None:
        yield query.having


def _ordered_sublinks(expr: ex.Expr) -> list[ex.SubLink]:
    """Sublinks in deterministic left-to-right pre-order."""
    found: list[ex.SubLink] = []

    def visit(node: ex.Expr) -> None:
        if isinstance(node, ex.SubLink):
            found.append(node)
        for child in node.children():
            visit(child)

    visit(expr)
    return found


def _replace_node(expr: ex.Expr, target: ex.Expr, replacement: ex.Expr) -> ex.Expr:
    """Replace ``target`` (by identity) inside ``expr``."""
    if expr is target:
        return replacement
    children = expr.children()
    if not children:
        return expr
    new_children = [_replace_node(c, target, replacement) for c in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return ex.rebuild_with_children(expr, new_children)


def _contains_node(expr: ex.Expr, target: ex.Expr) -> bool:
    return any(node is target for node in ex.walk(expr))


def _neutralize_sublink(condition: ex.Expr, sublink: ex.SubLink) -> ex.Expr:
    """``condition`` with the sublink's contribution made FALSE.

    Boolean sublinks (EXISTS, ANY, ALL) are replaced directly.  A *scalar*
    sublink appears as a non-boolean operand (``x = (SELECT ...)``); there
    the tightest boolean predicate containing it is replaced, keeping the
    result well-typed (``x = FALSE`` would be a float/boolean comparison —
    and, insidiously, ``0.0 = FALSE`` holds in the value domain).
    """
    if condition is sublink:
        return ex.Const(False, BOOL)
    if not _contains_node(condition, sublink):
        return condition
    if isinstance(condition, ex.BoolOpExpr):
        return ex.BoolOpExpr(
            condition.op,
            tuple(_neutralize_sublink(a, sublink) for a in condition.args),
        )
    # A non-AND/OR/NOT predicate containing the sublink: the whole
    # predicate is governed by the sublink's value.
    return ex.Const(False, BOOL)


def _simplify_bools(expr: ex.Expr) -> ex.Expr:
    """Constant-fold boolean structure (enough to drop ``x OR FALSE``)."""
    if isinstance(expr, ex.BoolOpExpr):
        args = [_simplify_bools(a) for a in expr.args]
        if expr.op == "not":
            arg = args[0]
            if isinstance(arg, ex.Const) and arg.type == BOOL:
                if arg.value is None:
                    return ex.Const(None, BOOL)
                return ex.Const(not arg.value, BOOL)
            return ex.BoolOpExpr("not", (arg,))
        keep: list[ex.Expr] = []
        if expr.op == "and":
            for arg in args:
                if isinstance(arg, ex.Const) and arg.value is True:
                    continue
                if isinstance(arg, ex.Const) and arg.value is False:
                    return ex.Const(False, BOOL)
                keep.append(arg)
            if not keep:
                return ex.Const(True, BOOL)
        else:  # or
            for arg in args:
                if isinstance(arg, ex.Const) and arg.value is False:
                    continue
                if isinstance(arg, ex.Const) and arg.value is True:
                    return ex.Const(True, BOOL)
                keep.append(arg)
            if not keep:
                return ex.Const(False, BOOL)
        if len(keep) == 1:
            return keep[0]
        return ex.BoolOpExpr(expr.op, tuple(keep))
    return expr


def _is_const_false(expr: ex.Expr) -> bool:
    return isinstance(expr, ex.Const) and expr.value is False


def _tree_operators(node: SetOpTreeNode) -> set[str]:
    if isinstance(node, SetOpRangeRef):
        return set()
    return {node.op} | _tree_operators(node.left) | _tree_operators(node.right)


def _tree_leaf_refs(node: SetOpTreeNode) -> list[SetOpRangeRef]:
    if isinstance(node, SetOpRangeRef):
        return [node]
    return _tree_leaf_refs(node.left) + _tree_leaf_refs(node.right)


def _rte_var(query: Query, rtindex: int, attno: int) -> ex.Var:
    rte = query.range_table[rtindex]
    return ex.Var(
        varno=rtindex,
        varattno=attno,
        type=rte.column_types[attno],
        name=rte.column_names[attno],
    )


# Shared query-tree builders; kept under their historical local names.
_subquery_rte = subquery_rte
_binary_setop_query = binary_setop_query


def _copy_rte(rte: RangeTableEntry) -> RangeTableEntry:
    import copy as _copy

    return _copy.deepcopy(rte)


def _copy_jointree(jointree: FromExpr) -> FromExpr:
    import copy as _copy

    return _copy.deepcopy(jointree)
