"""The provenance attribute stack of the rewrite algorithm (paper Fig. 7).

``rewriteQueryNode`` pushes the P-list of every rewritten node; parents
pop the P-lists of their children and concatenate them (the paper's
``I`` operation).  The stack makes the data flow of the paper's
pseudo-code explicit and is also handy for tests that inspect rewrite
traversal order.
"""

from __future__ import annotations

from repro.core.naming import ProvenanceAttribute

PList = list[ProvenanceAttribute]


class PStack:
    """Stack of provenance attribute lists."""

    def __init__(self) -> None:
        self._stack: list[PList] = []

    def push(self, plist: PList) -> None:
        self._stack.append(list(plist))

    def pop(self) -> PList:
        if not self._stack:
            raise IndexError("pStack is empty")
        return self._stack.pop()

    def pop_many(self, count: int) -> list[PList]:
        """Pop ``count`` P-lists, returned in push order."""
        if count > len(self._stack):
            raise IndexError("pStack underflow")
        if count == 0:
            return []
        popped = self._stack[-count:]
        del self._stack[-count:]
        return popped

    def peek(self) -> PList:
        return self._stack[-1]

    def __len__(self) -> int:
        return len(self._stack)

    def __bool__(self) -> bool:
        return bool(self._stack)


def concat_plists(plists: list[PList]) -> PList:
    """The paper's list concatenation ``P1 I P2 I ...``."""
    result: PList = []
    for plist in plists:
        result.extend(plist)
    return result
