"""Registry of provenance rewrite strategies (contribution semantics).

The Perm architecture computes provenance by rewriting marked query nodes
into ordinary queries over the same data model.  *Which* rewrite is
applied -- which contribution semantics is computed -- is pluggable:

* ``witness`` -- the paper's witness-list rewrite (``repro.core.rewriter``):
  every result tuple is paired with the contributing base tuples, one
  column block per base relation reference.  The default.
* ``polynomial`` -- the semiring rewrite (``repro.semiring.rewriter``):
  every result tuple carries one ``N[X]`` provenance polynomial.

SQL selects a strategy with ``SELECT PROVENANCE (<name>) ...``; a bare
``SELECT PROVENANCE`` uses the default.  Future semantics
(influence-contribution, copy-contribution, access-control policies)
register here and become available through the same syntax.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from repro.errors import RewriteError

if TYPE_CHECKING:  # pragma: no cover
    from repro.analyzer.query_tree import Query

DEFAULT_STRATEGY = "witness"


@dataclass(frozen=True)
class RewriteStrategy:
    """One pluggable contribution semantics.

    ``rewrite_root`` rewrites a marked top-level query node into its
    provenance-computing form.  ``rewrite_subquery`` rewrites a marked
    subquery and additionally names the provenance columns it exposes, so
    enclosing rewrites can treat the entry as already computed
    (incremental provenance, paper section IV-A.3).
    """

    name: str
    description: str
    rewrite_root: Callable[["Query"], "Query"]
    rewrite_subquery: Callable[["Query"], tuple["Query", tuple[str, ...]]]


_STRATEGIES: dict[str, RewriteStrategy] = {}


def register_rewrite_strategy(strategy: RewriteStrategy, replace: bool = False) -> RewriteStrategy:
    key = strategy.name.lower()
    if key in _STRATEGIES and not replace:
        raise ValueError(f"rewrite strategy {strategy.name!r} is already registered")
    _STRATEGIES[key] = strategy
    return strategy


def get_rewrite_strategy(name: str | None) -> RewriteStrategy:
    """Look up a strategy by name (None = the default witness semantics)."""
    _ensure_builtin_strategies()
    key = (name or DEFAULT_STRATEGY).lower()
    try:
        return _STRATEGIES[key]
    except KeyError:
        known = ", ".join(sorted(_STRATEGIES))
        raise RewriteError(
            f"unknown provenance semantics {name!r} (available: {known})"
        ) from None


def rewrite_strategy_names() -> list[str]:
    _ensure_builtin_strategies()
    return sorted(_STRATEGIES)


def _ensure_builtin_strategies() -> None:
    """Import the built-in strategy modules so they self-register."""
    import repro.core.rewriter  # noqa: F401  (registers "witness")
    import repro.semiring.rewriter  # noqa: F401  (registers "polynomial")
