"""Rewrite rules R1-R9 on the formal algebra (paper Fig. 3).

This is the paper's formal layer: each rule maps an algebra operator to
its provenance-propagating form.  ``rewrite_algebra`` applies them
recursively, returning the rewritten expression together with the list
of provenance attributes (each tied to the base relation *reference* it
duplicates).

The correctness property tests evaluate both versions with the direct
interpreter and check the two halves of the paper's section III-E proof:
result preservation and equivalence with Cui-Widom lineage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expr import Attr, BoolAnd, BoolNot, Lit, NullSafeEq, Scalar
from repro.algebra.operators import (
    Aggregate,
    AlgebraOp,
    BagDifference,
    BagIntersection,
    BagProject,
    BagUnion,
    BaseRelation,
    Cross,
    Join,
    Select,
    SetDifference,
    SetIntersection,
    SetProject,
    SetUnion,
)
from repro.core.naming import ProvenanceNamer


@dataclass(frozen=True)
class AlgebraProvAttr:
    """A provenance attribute produced by the algebra rewrite."""

    name: str
    relation: str
    ref_id: int
    source_column: str


PAList = list[AlgebraProvAttr]


def rewrite_algebra(op: AlgebraOp, namer: ProvenanceNamer | None = None) -> tuple[AlgebraOp, PAList]:
    """Rewrite an algebra expression per rules R1-R9; returns (q+, P-list)."""
    return _Rewriter(namer or ProvenanceNamer()).rewrite(op)


class _Rewriter:
    def __init__(self, namer: ProvenanceNamer) -> None:
        self.namer = namer
        self._alias_counter = 0

    # R-dispatch ------------------------------------------------------------

    def rewrite(self, op: AlgebraOp) -> tuple[AlgebraOp, PAList]:
        if isinstance(op, BaseRelation):
            return self._r1_base_relation(op)
        if isinstance(op, (SetProject, BagProject)):
            return self._r2_projection(op)
        if isinstance(op, Select):
            return self._r3_selection(op)
        if isinstance(op, Cross):
            return self._r4_cross(op)
        if isinstance(op, Join):
            return self._r4_join(op)
        if isinstance(op, Aggregate):
            return self._r5_aggregation(op)
        if isinstance(op, (SetUnion, BagUnion)):
            return self._r6_union(op)
        if isinstance(op, (SetIntersection, BagIntersection)):
            return self._r7_intersection(op)
        if isinstance(op, SetDifference):
            return self._r8_set_difference(op)
        if isinstance(op, BagDifference):
            return self._r9_bag_difference(op)
        raise TypeError(f"no rewrite rule for {op!r}")

    # R1 ---------------------------------------------------------------------

    def _r1_base_relation(self, op: BaseRelation) -> tuple[AlgebraOp, PAList]:
        """R1: R+ = Π_{R, R->P(R)}(R)."""
        ref_id = self.namer.next_reference(op.name)
        plist = [
            AlgebraProvAttr(
                name=self.namer.attribute_name(op.name, ref_id, column),
                relation=op.name,
                ref_id=op.ref_id,
                source_column=column,
            )
            for column in op.columns
        ]
        items: list[tuple[Scalar, str]] = [(Attr(c), c) for c in op.columns]
        items += [(Attr(p.source_column), p.name) for p in plist]
        return BagProject(op, items), plist

    # R2 ---------------------------------------------------------------------

    def _r2_projection(self, op) -> tuple[AlgebraOp, PAList]:
        """R2: (Π_A(T))+ = Π_{A, P(T+)}(T+), preserving the set/bag flavor."""
        rewritten, plist = self.rewrite(op.input)
        items = list(op.items) + [(Attr(p.name), p.name) for p in plist]
        cls = type(op)
        return cls(rewritten, items), plist

    # R3 ---------------------------------------------------------------------

    def _r3_selection(self, op: Select) -> tuple[AlgebraOp, PAList]:
        """R3: (σ_C(T))+ = σ_C(T+)."""
        rewritten, plist = self.rewrite(op.input)
        return Select(rewritten, op.condition), plist

    # R4 ---------------------------------------------------------------------

    def _r4_cross(self, op: Cross) -> tuple[AlgebraOp, PAList]:
        """R4: (T1 × T2)+ = T1+ × T2+."""
        left, left_plist = self.rewrite(op.left)
        right, right_plist = self.rewrite(op.right)
        return Cross(left, right), left_plist + right_plist

    def _r4_join(self, op: Join) -> tuple[AlgebraOp, PAList]:
        """Join rewrite via the algebraic equivalents: (T1 ⋈ T2)+ = T1+ ⋈ T2+."""
        left, left_plist = self.rewrite(op.left)
        right, right_plist = self.rewrite(op.right)
        return Join(left, right, op.condition, op.kind), left_plist + right_plist

    # R5 ---------------------------------------------------------------------

    def _r5_aggregation(self, op: Aggregate) -> tuple[AlgebraOp, PAList]:
        """R5: join the original aggregation with T+ on G = Ĝ."""
        rewritten, plist = self.rewrite(op.input)
        hat_names = [self._fresh(f"hat_{g}") for g in op.group_by]
        right_items = [
            (Attr(g), hat) for g, hat in zip(op.group_by, hat_names)
        ] + [(Attr(p.name), p.name) for p in plist]
        right = BagProject(rewritten, right_items)
        condition: Scalar
        if op.group_by:
            condition = BoolAnd(
                tuple(
                    NullSafeEq(Attr(g), Attr(hat))
                    for g, hat in zip(op.group_by, hat_names)
                )
            )
        else:
            condition = Lit(True)
        joined = Join(op, right, condition, "inner")
        out_items = [(Attr(c), c) for c in op.schema()]
        out_items += [(Attr(p.name), p.name) for p in plist]
        return BagProject(joined, out_items), plist

    # R6 / R7 ------------------------------------------------------------------

    def _renamed_rewritten(
        self, operand: AlgebraOp
    ) -> tuple[AlgebraOp, list[str], PAList]:
        """T̂ = Π_{T->T̂, P(T+)}(T+): rewritten input with renamed originals."""
        rewritten, plist = self.rewrite(operand)
        original = operand.schema()
        hat_names = [self._fresh(f"hat_{c}") for c in original]
        items = [(Attr(c), hat) for c, hat in zip(original, hat_names)]
        items += [(Attr(p.name), p.name) for p in plist]
        return BagProject(rewritten, items), hat_names, plist

    def _tuple_equality(self, schema: list[str], hat_names: list[str]) -> Scalar:
        return BoolAnd(
            tuple(
                NullSafeEq(Attr(c), Attr(hat))
                for c, hat in zip(schema, hat_names)
            )
        )

    def _r6_union(self, op) -> tuple[AlgebraOp, PAList]:
        """R6: left joins (tuples may come from only one input)."""
        return self._setop_rewrite(op, join_kind="left", right_condition=None)

    def _r7_intersection(self, op) -> tuple[AlgebraOp, PAList]:
        """R7: inner joins (an intersection tuple appears in both inputs)."""
        return self._setop_rewrite(op, join_kind="inner", right_condition=None)

    def _r8_set_difference(self, op: SetDifference) -> tuple[AlgebraOp, PAList]:
        """R8: T2+ attaches unconditionally (every T2 tuple differs)."""
        return self._setop_rewrite(op, join_kind="left", right_condition=Lit(True))

    def _r9_bag_difference(self, op: BagDifference) -> tuple[AlgebraOp, PAList]:
        """R9: T2+ attaches on tuple inequality T1 <> T2."""
        return self._setop_rewrite(op, join_kind="left", right_condition="inequality")

    def _setop_rewrite(
        self, op, join_kind: str, right_condition
    ) -> tuple[AlgebraOp, PAList]:
        schema = op.schema()
        left_hat, left_names, left_plist = self._renamed_rewritten(op.left)
        right_hat, right_names, right_plist = self._renamed_rewritten(op.right)
        join1 = Join(op, left_hat, self._tuple_equality(schema, left_names), join_kind)
        if right_condition is None:
            cond2: Scalar = self._tuple_equality(schema, right_names)
        elif right_condition == "inequality":
            cond2 = BoolNot(self._tuple_equality(schema, right_names))
        else:
            cond2 = right_condition
        join2 = Join(join1, right_hat, cond2, join_kind if join_kind == "inner" else "left")
        out_items = [(Attr(c), c) for c in schema]
        out_items += [(Attr(p.name), p.name) for p in left_plist + right_plist]
        return BagProject(join2, out_items), left_plist + right_plist

    # helpers ---------------------------------------------------------------------

    def _fresh(self, base: str) -> str:
        self._alias_counter += 1
        return f"{base}_{self._alias_counter}"
