"""Provenance attribute naming (paper section IV-A.1).

A provenance attribute name is::

    prov_<relation>_<attribute>

If a relation is referenced more than once in the scope of one rewritten
query, an identifying number is attached to the relation name starting
with the second reference (``prov_shop_1_name``), keeping every
provenance attribute name unique within the rewritten query's schema.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datatypes import SQLType

PROVENANCE_PREFIX = "prov"


@dataclass(frozen=True)
class ProvenanceAttribute:
    """Descriptor of one provenance attribute in a rewritten query.

    ``relation`` / ``source_column`` track which base relation attribute
    this provenance attribute duplicates; ``ref_id`` distinguishes multiple
    references to the same relation (0 for the first).  For external
    provenance (PROVENANCE-annotated from-items), the original relation is
    unknown and ``relation`` holds the from-item alias.
    """

    name: str
    relation: str
    ref_id: int
    source_column: str
    type: SQLType


class ProvenanceNamer:
    """Generates unique provenance attribute names for one rewrite scope."""

    def __init__(self) -> None:
        self._reference_counts: dict[str, int] = {}

    def next_reference(self, relation: str) -> int:
        """Register a new reference to ``relation``; returns its ref id."""
        key = relation.lower()
        ref_id = self._reference_counts.get(key, 0)
        self._reference_counts[key] = ref_id + 1
        return ref_id

    @staticmethod
    def attribute_name(relation: str, ref_id: int, column: str) -> str:
        relation = relation.lower()
        column = column.lower()
        if ref_id == 0:
            return f"{PROVENANCE_PREFIX}_{relation}_{column}"
        return f"{PROVENANCE_PREFIX}_{relation}_{ref_id}_{column}"

    def attributes_for_relation(
        self, relation: str, columns: list[str], types: list[SQLType]
    ) -> list[ProvenanceAttribute]:
        """R1: one provenance attribute per column of a base relation."""
        ref_id = self.next_reference(relation)
        return [
            ProvenanceAttribute(
                name=self.attribute_name(relation, ref_id, column),
                relation=relation.lower(),
                ref_id=ref_id,
                source_column=column,
                type=col_type,
            )
            for column, col_type in zip(columns, types)
        ]
